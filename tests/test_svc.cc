/**
 * @file
 * Tests for the experiment service (src/svc): the wire protocol's
 * round-trip fidelity (records must survive transport byte-exact),
 * the line reader's reassembly across arbitrary read boundaries, and
 * — the bulk — the broker state machine driven with a manual clock:
 * lease grant order, heartbeat extension, timeout reclaim with
 * exponential backoff, quarantine after the attempt budget, worker
 * death, late/duplicate results, and invalid-record rejection. The
 * broker takes every timestamp as a parameter precisely so these
 * tests never sleep.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/result.hh"
#include "exp/json.hh"
#include "exp/runner.hh"
#include "exp/sweep.hh"
#include "fault/chaos.hh"
#include "svc/broker.hh"
#include "svc/channel.hh"
#include "svc/proto.hh"

using namespace sst;
using namespace sst::svc;

// ---------------------------------------------------------------- proto

TEST(SvcProto, WorkerLinesRoundTrip)
{
    auto hello = parseMessage(helloLine("w3", 1234));
    ASSERT_TRUE(hello.ok()) << hello.error().message;
    EXPECT_EQ(hello.value().type, "hello");
    EXPECT_EQ(hello.value().worker, "w3");
    EXPECT_EQ(hello.value().pid, 1234);

    auto hb = parseMessage(heartbeatLine(7, 123456789ULL));
    ASSERT_TRUE(hb.ok());
    EXPECT_EQ(hb.value().type, "heartbeat");
    EXPECT_EQ(hb.value().job, 7u);
    EXPECT_EQ(hb.value().cycle, 123456789ULL);

    auto fail = parseMessage(failLine(2, "machine said \"no\"\n"));
    ASSERT_TRUE(fail.ok());
    EXPECT_EQ(fail.value().job, 2u);
    EXPECT_EQ(fail.value().error, "machine said \"no\"\n");

    EXPECT_EQ(parseMessage(leaseReqLine()).value().type, "lease_req");
    EXPECT_EQ(parseMessage(goodbyeLine()).value().type, "goodbye");
}

TEST(SvcProto, RecordSurvivesTransportByteExact)
{
    // The aggregate sweep JSON is byte-compared against sequential
    // runs, so the record must cross the socket without any
    // re-serialisation drift: embedded quotes, newlines, backslashes,
    // non-ASCII bytes and trailing whitespace all must survive.
    const std::string record =
        "{\"index\": 3, \"log\": \"warn: \\\"quoted\\\"\\nline2\\t\","
        " \"path\": \"C:\\\\tmp\", \"utf8\": \"\xc3\xa9\"}\n";
    auto m = parseMessage(resultLine(9, record));
    ASSERT_TRUE(m.ok()) << m.error().message;
    EXPECT_EQ(m.value().type, "result");
    EXPECT_EQ(m.value().job, 9u);
    EXPECT_EQ(m.value().record, record);
}

TEST(SvcProto, WelcomeCarriesManifestAndMatchingHash)
{
    const std::string manifest =
        "preset = sst2\nworkload = stream\n# comment\n";
    auto m = parseMessage(welcomeLine(manifest, "/tmp/arts", 5000, true));
    ASSERT_TRUE(m.ok()) << m.error().message;
    EXPECT_EQ(m.value().type, "welcome");
    EXPECT_EQ(m.value().manifest, manifest);
    EXPECT_EQ(m.value().manifestHash, manifestHash(manifest));
    EXPECT_EQ(m.value().artifactDir, "/tmp/arts");
    EXPECT_EQ(m.value().snapEvery, 5000u);
    EXPECT_TRUE(m.value().resume);
    // The hash is a pure function of the text: one byte flips it.
    EXPECT_NE(manifestHash(manifest), manifestHash(manifest + " "));
    EXPECT_EQ(manifestHash(manifest).size(), 16u);
}

TEST(SvcProto, BrokerLinesRoundTrip)
{
    auto lease = parseMessage(leaseLine(11, 2));
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(lease.value().type, "lease");
    EXPECT_EQ(lease.value().job, 11u);
    EXPECT_EQ(lease.value().attempt, 2u);

    auto wait = parseMessage(waitLine(750));
    ASSERT_TRUE(wait.ok());
    EXPECT_EQ(wait.value().waitMs, 750u);

    EXPECT_EQ(parseMessage(doneLine()).value().type, "done");
    auto err = parseMessage(errorLine("bad client"));
    ASSERT_TRUE(err.ok());
    EXPECT_EQ(err.value().type, "error");
    EXPECT_EQ(err.value().error, "bad client");
}

TEST(SvcProto, RejectsGarbageAndTypelessMessages)
{
    EXPECT_FALSE(parseMessage("not json at all").ok());
    EXPECT_FALSE(parseMessage("{\"job\": 1}").ok());
    EXPECT_FALSE(parseMessage("[1, 2, 3]").ok());
    EXPECT_FALSE(parseMessage("{\"type\": 42}").ok());
}

// -------------------------------------------------------------- channel

TEST(SvcChannel, LineReaderReassemblesAcrossReadBoundaries)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    LineReader reader(sv[0]);

    // One blocking line split across two writes.
    ASSERT_TRUE(::write(sv[1], "hel", 3) == 3);
    ASSERT_TRUE(::write(sv[1], "lo\nwor", 6) == 6);
    auto line = reader.readLine();
    ASSERT_TRUE(line.ok()) << line.error().message;
    EXPECT_EQ(line.value(), "hello");

    // The tail of the second write plus two more lines arrive in one
    // burst; drain (which needs the broker's non-blocking fd mode)
    // must hand all complete lines back at once.
    ASSERT_TRUE(setNonBlocking(sv[0]).ok());
    ASSERT_TRUE(::write(sv[1], "ld\nlast\n", 8) == 8);
    std::vector<std::string> lines;
    EXPECT_TRUE(reader.drain(lines));
    EXPECT_EQ(lines, (std::vector<std::string>{"world", "last"}));

    // Peer hangup: drain reports the connection closed.
    ::close(sv[1]);
    lines.clear();
    EXPECT_FALSE(reader.drain(lines));
    EXPECT_TRUE(lines.empty());
    ::close(sv[0]);
}

TEST(SvcChannel, SendLineAppendsNewline)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    ASSERT_TRUE(sendLine(sv[0], "{\"type\": \"goodbye\"}").ok());
    char buf[64] = {};
    ssize_t n = ::read(sv[1], buf, sizeof(buf));
    EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)),
              "{\"type\": \"goodbye\"}\n");
    ::close(sv[0]);
    ::close(sv[1]);
}

// --------------------------------------------------------------- broker

namespace
{

/** A tiny two-job matrix (one preset, two repeats). */
std::vector<exp::JobSpec>
twoJobs()
{
    auto spec = exp::SweepSpec::parse(
                    "preset = sst2\nworkload = stream\n"
                    "sweep.repeats = 2\n",
                    "unit")
                    .take();
    return spec.expand();
}

/** A manifest-valid record for @p job (identity matches, ran=false). */
std::string
validRecord(const exp::JobSpec &job)
{
    return exp::unrunOutcome(job, "made by the test").recordJson;
}

/** Fixture wiring a broker over twoJobs() with a manual clock. */
struct BrokerTest : ::testing::Test
{
    BrokerTest()
        : jobs(twoJobs()), sink(jobs.size()), done(jobs.size(), 0)
    {
        options.leaseTimeoutMs = 1000;
        options.maxAttempts = 3;
        options.backoffBaseMs = 100;
        options.backoffFactor = 2.0;
        options.backoffMaxMs = 8000;
    }

    Broker &broker()
    {
        if (!broker_)
            broker_ = std::make_unique<Broker>(jobs, options, sink,
                                               done);
        return *broker_;
    }

    std::vector<exp::JobSpec> jobs;
    BrokerOptions options;
    exp::ResultSink sink;
    std::vector<char> done;
    std::unique_ptr<Broker> broker_;
};

} // namespace

TEST_F(BrokerTest, LeasesLowestPendingIndexFirstThenWaits)
{
    Broker &b = broker();
    int w0 = b.workerJoined("w0", 0);
    int w1 = b.workerJoined("w1", 0);
    auto d0 = b.lease(w0, 0);
    ASSERT_EQ(d0.kind, Broker::LeaseDecision::Kind::Grant);
    EXPECT_EQ(d0.job, 0u);
    EXPECT_EQ(d0.attempt, 1u);
    auto d1 = b.lease(w1, 0);
    ASSERT_EQ(d1.kind, Broker::LeaseDecision::Kind::Grant);
    EXPECT_EQ(d1.job, 1u);
    // Matrix exhausted but not finished: a third worker must wait.
    int w2 = b.workerJoined("w2", 0);
    auto d2 = b.lease(w2, 0);
    EXPECT_EQ(d2.kind, Broker::LeaseDecision::Kind::Wait);
    EXPECT_GT(d2.waitMs, 0u);
    EXPECT_FALSE(b.finished());
}

TEST_F(BrokerTest, ResultCompletesJobAndFinishesSweep)
{
    Broker &b = broker();
    int w = b.workerJoined("w0", 0);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        auto d = b.lease(w, 10);
        ASSERT_EQ(d.kind, Broker::LeaseDecision::Kind::Grant);
        b.result(w, d.job, validRecord(jobs[d.job]), 20);
    }
    EXPECT_TRUE(b.finished());
    EXPECT_EQ(b.lease(w, 30).kind,
              Broker::LeaseDecision::Kind::Finished);
    EXPECT_EQ(b.scoreboard().completed, 2u);
    EXPECT_EQ(b.scoreboard().retries, 0u);
    EXPECT_EQ(sink.recorded(), 2u);
}

TEST_F(BrokerTest, HeartbeatExtendsLeaseTimeoutReclaims)
{
    Broker &b = broker();
    int w = b.workerJoined("w0", 0);
    auto d = b.lease(w, 0);
    ASSERT_EQ(d.kind, Broker::LeaseDecision::Kind::Grant);

    // Heartbeats at 600 and 1200 keep a 1000 ms lease alive past its
    // original expiry...
    b.heartbeat(w, d.job, 600);
    EXPECT_EQ(b.checkTimeouts(1100), 0u);
    b.heartbeat(w, d.job, 1200);
    EXPECT_EQ(b.checkTimeouts(2100), 0u);
    // ...but silence eventually kills it.
    EXPECT_EQ(b.checkTimeouts(2300), 1u);
    EXPECT_EQ(b.scoreboard().timeouts, 1u);
}

TEST_F(BrokerTest, TimeoutRetriesWithExponentialBackoff)
{
    Broker &b = broker();
    int w = b.workerJoined("w0", 0);
    // Burn attempt 1 of job 0 via timeout.
    ASSERT_EQ(b.lease(w, 0).job, 0u);
    EXPECT_EQ(b.checkTimeouts(1001), 1u);

    // Job 0 sits behind a 100 ms backoff gate; job 1 is free now, so
    // lease order flips: job 1 first, then Wait until the gate opens.
    auto d1 = b.lease(w, 1001);
    ASSERT_EQ(d1.kind, Broker::LeaseDecision::Kind::Grant);
    EXPECT_EQ(d1.job, 1u);
    int w2 = b.workerJoined("w2", 1001);
    auto gated = b.lease(w2, 1001);
    ASSERT_EQ(gated.kind, Broker::LeaseDecision::Kind::Wait);
    EXPECT_LE(gated.waitMs, 100u);
    EXPECT_EQ(b.nextDeadline(1001), 1101u) << "backoff gate deadline";

    auto retry = b.lease(w2, 1101);
    ASSERT_EQ(retry.kind, Broker::LeaseDecision::Kind::Grant);
    EXPECT_EQ(retry.job, 0u);
    EXPECT_EQ(retry.attempt, 2u);
    EXPECT_EQ(b.scoreboard().retries, 1u);

    // Attempt 2's failure doubles the gate: 200 ms this time.
    b.fail(w2, 0, "still broken", 1200);
    EXPECT_EQ(b.nextDeadline(1200), 1400u);
}

TEST_F(BrokerTest, QuarantineAfterAttemptBudgetWithSyntheticRecord)
{
    Broker &b = broker();
    int w = b.workerJoined("w0", 0);
    std::uint64_t now = 0;
    for (unsigned attempt = 1; attempt <= options.maxAttempts;
         ++attempt) {
        auto d = b.lease(w, now);
        ASSERT_EQ(d.kind, Broker::LeaseDecision::Kind::Grant);
        ASSERT_EQ(d.job, 0u);
        EXPECT_EQ(d.attempt, attempt);
        b.fail(w, 0, "poison", now + 1);
        now += 10000; // past any backoff gate
    }
    EXPECT_EQ(b.scoreboard().quarantined, 1u);
    // No fourth lease for job 0: the next grant is job 1.
    EXPECT_EQ(b.lease(w, now).job, 1u);
    // The sink got a synthetic ran=false record naming the failure.
    ASSERT_TRUE(sink.has(0));
    const exp::JobOutcome &out = sink.outcomes()[0];
    EXPECT_FALSE(out.ran);
    EXPECT_NE(out.error.find("quarantined after 3 attempts"),
              std::string::npos)
        << out.error;
    EXPECT_NE(out.error.find("poison"), std::string::npos);
    EXPECT_EQ(b.exitCode(), exit_code::quarantine);
}

TEST_F(BrokerTest, WorkerDeathReleasesItsLease)
{
    Broker &b = broker();
    int w0 = b.workerJoined("w0", 0);
    int w1 = b.workerJoined("w1", 0);
    ASSERT_EQ(b.lease(w0, 0).job, 0u);
    b.workerLeft(w0, 50);
    EXPECT_EQ(b.scoreboard().workerDeaths, 1u);
    // Job 0 comes back (behind its backoff gate) to the survivor.
    auto d = b.lease(w1, 5000);
    ASSERT_EQ(d.kind, Broker::LeaseDecision::Kind::Grant);
    EXPECT_EQ(d.job, 0u);
    EXPECT_EQ(d.attempt, 2u);
    // A worker that never held a lease leaves without side effects.
    int w2 = b.workerJoined("w2", 5000);
    b.workerLeft(w2, 5001);
    EXPECT_EQ(b.scoreboard().workerDeaths, 1u);
}

TEST_F(BrokerTest, LateResultFromReassignedLeaseStillCounts)
{
    Broker &b = broker();
    int w0 = b.workerJoined("w0", 0);
    ASSERT_EQ(b.lease(w0, 0).job, 0u);
    // w0 goes quiet; the lease times out and moves to w1.
    EXPECT_EQ(b.checkTimeouts(1001), 1u);
    int w1 = b.workerJoined("w1", 1001);
    ASSERT_EQ(b.lease(w1, 5000).job, 0u);
    // w0 was only stalled, not dead: its (deterministic, therefore
    // equally valid) result lands first and completes the job.
    b.result(w0, 0, validRecord(jobs[0]), 5100);
    ASSERT_TRUE(sink.has(0));
    EXPECT_EQ(b.scoreboard().completed, 1u);
    // w1's duplicate for the now-Done job is ignored.
    b.result(w1, 0, validRecord(jobs[0]), 6000);
    EXPECT_EQ(b.scoreboard().completed, 1u);
    EXPECT_EQ(sink.recorded(), 1u);
}

TEST_F(BrokerTest, InvalidRecordCountsAsFailedAttempt)
{
    Broker &b = broker();
    int w = b.workerJoined("w0", 0);
    ASSERT_EQ(b.lease(w, 0).job, 0u);
    // Torn write: not even JSON.
    b.result(w, 0, "{\"index\": 0, \"pres", 10);
    EXPECT_FALSE(sink.has(0));
    EXPECT_EQ(b.scoreboard().completed, 0u);
    // Identity mismatch: a record for some other manifest's job.
    auto d = b.lease(w, 5000);
    ASSERT_EQ(d.job, 0u);
    ASSERT_EQ(d.attempt, 2u);
    exp::JobSpec impostor = jobs[0];
    impostor.preset = "inorder";
    b.result(w, 0, validRecord(impostor), 5010);
    EXPECT_FALSE(sink.has(0));
    // Third attempt with a good record succeeds.
    auto d3 = b.lease(w, 20000);
    ASSERT_EQ(d3.attempt, 3u);
    b.result(w, 0, validRecord(jobs[0]), 20010);
    EXPECT_TRUE(sink.has(0));
}

TEST_F(BrokerTest, ResumedJobsAreNeverLeased)
{
    done[0] = 1;
    sink.record(exp::unrunOutcome(jobs[0], "resumed from disk"));
    Broker &b = broker();
    EXPECT_EQ(b.scoreboard().resumed, 1u);
    int w = b.workerJoined("w0", 0);
    auto d = b.lease(w, 0);
    ASSERT_EQ(d.kind, Broker::LeaseDecision::Kind::Grant);
    EXPECT_EQ(d.job, 1u);
    b.result(w, 1, validRecord(jobs[1]), 10);
    EXPECT_TRUE(b.finished());
    EXPECT_EQ(b.scoreboard().completed, 1u);
}

TEST_F(BrokerTest, HeartbeatFromNonOwnerDoesNotExtendLease)
{
    Broker &b = broker();
    int w0 = b.workerJoined("w0", 0);
    int w1 = b.workerJoined("w1", 0);
    ASSERT_EQ(b.lease(w0, 0).job, 0u);
    // A confused (or stale) worker heartbeats a job it does not own;
    // the real owner's silence must still expire the lease on time.
    b.heartbeat(w1, 0, 900);
    EXPECT_EQ(b.checkTimeouts(1001), 1u);
}

// ------------------------------------------------------------ ResultSink

TEST(SvcResultSink, TryRecordIsFirstWriteWins)
{
    auto jobs = twoJobs();
    exp::ResultSink sink(jobs.size());
    EXPECT_FALSE(sink.has(0));
    exp::JobOutcome first = exp::unrunOutcome(jobs[0], "first");
    exp::JobOutcome second = exp::unrunOutcome(jobs[0], "second");
    EXPECT_TRUE(sink.tryRecord(first));
    EXPECT_TRUE(sink.has(0));
    EXPECT_FALSE(sink.tryRecord(second)) << "duplicate must be dropped";
    EXPECT_EQ(sink.outcomes()[0].error, "first");
    EXPECT_EQ(sink.recorded(), 1u);
}

// ----------------------------------------------------------------- chaos

TEST(SvcChaos, StallMutesHeartbeatsAndTracksProgress)
{
    ChaosMonitor chaos;
    chaos.scheduleStall(100, 1);
    chaos.observe(50);
    EXPECT_EQ(chaos.lastObserved(), 50u);
    EXPECT_FALSE(chaos.muted());
    chaos.observe(150);
    EXPECT_TRUE(chaos.muted()) << "stall must mute heartbeats";
    // reset() re-arms for the next job.
    chaos.reset();
    EXPECT_FALSE(chaos.muted());
    chaos.observe(10'000'000);
    EXPECT_FALSE(chaos.muted()) << "triggers must not survive reset";
}

TEST(SvcChaosDeathTest, ScheduledExitKillsTheProcess)
{
    EXPECT_EXIT(
        {
            ChaosMonitor chaos;
            chaos.scheduleExit(1000, SIGKILL);
            chaos.observe(999);  // before the trigger: survives
            chaos.observe(1000); // at the trigger: raises SIGKILL
            std::fprintf(stderr, "unreachable\n");
        },
        ::testing::KilledBySignal(SIGKILL), "");
}
