/** @file Tests for the power/area model, presets, Machine and Cmp. */

#include <gtest/gtest.h>

#include "power/model.hh"
#include "sim/cmp.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

Workload
tinyWorkload(const std::string &name = "oltp_mix")
{
    WorkloadParams p;
    p.lengthScale = 0.05;
    p.footprintScale = 0.25;
    return makeWorkload(name, p);
}

} // namespace

TEST(Presets, AllPresetsConstructAndRun)
{
    Workload wl = tinyWorkload();
    for (const auto &name : presetNames()) {
        Machine m(makePreset(name), wl.program);
        RunResult r = m.run();
        EXPECT_TRUE(r.finished) << name;
        EXPECT_GT(r.ipc, 0.0) << name;
        EXPECT_EQ(r.preset, name);
    }
}

TEST(PresetsDeath, UnknownPresetFatal)
{
    EXPECT_DEATH((void)makePreset("bogus"), "unknown machine preset");
}

TEST(Presets, ModelsMatchNames)
{
    EXPECT_EQ(makePreset("inorder").model, "inorder");
    EXPECT_EQ(makePreset("scout").model, "sst");
    EXPECT_TRUE(makePreset("scout").core.discardSpecWork);
    EXPECT_EQ(makePreset("scout").core.checkpoints, 1u);
    EXPECT_EQ(makePreset("sst4").core.checkpoints, 4u);
    EXPECT_FALSE(makePreset("sst4").core.discardSpecWork);
    EXPECT_EQ(makePreset("ooo-large").core.robEntries, 128u);
    EXPECT_GT(makePreset("ooo-large").core.fetchWidth,
              makePreset("ooo-small").core.fetchWidth);
}

TEST(Presets, OverridesApply)
{
    MachineConfig cfg = makePreset("sst4");
    Config o;
    o.parseAssignment("core.checkpoints=7");
    o.parseAssignment("mem.dram_base_latency=500");
    o.parseAssignment("mem.l2_kb=4096");
    applyOverrides(cfg, o);
    EXPECT_EQ(cfg.core.checkpoints, 7u);
    EXPECT_EQ(cfg.mem.dram.baseLatency, 500u);
    EXPECT_EQ(cfg.mem.l2.sizeBytes, 4u * 1024 * 1024);
}

TEST(Machine, RunResultFieldsPopulated)
{
    Workload wl = tinyWorkload("hash_join");
    Machine m(makePreset("sst4"), wl.program);
    RunResult r = m.run();
    EXPECT_TRUE(r.finished);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.insts, 0u);
    EXPECT_GT(r.l1dMissRate, 0.0);
    EXPECT_GT(r.meanDemandMlp, 0.9);
    EXPECT_EQ(r.workload, "hash_join");
    EXPECT_FALSE(r.stats.empty());
}

TEST(Machine, RunOnConvenience)
{
    Workload wl = tinyWorkload();
    RunResult r = runOn("inorder", wl.program);
    EXPECT_TRUE(r.finished);
}

TEST(Power, OooCostsMoreAreaThanSst)
{
    Workload wl = tinyWorkload();
    Machine ooo(makePreset("ooo-large"), wl.program);
    ooo.run();
    Machine sst(makePreset("sst2"), wl.program);
    sst.run();
    Machine inorder(makePreset("inorder"), wl.program);
    inorder.run();

    PowerEstimate pe_ooo = estimatePower(ooo.core());
    PowerEstimate pe_sst = estimatePower(sst.core());
    PowerEstimate pe_in = estimatePower(inorder.core());

    EXPECT_GT(pe_ooo.coreArea, pe_sst.coreArea);
    EXPECT_GT(pe_sst.coreArea, pe_in.coreArea);
    EXPECT_GT(pe_ooo.avgPower(), 0.0);
    EXPECT_GT(pe_sst.perfPerWatt(), 0.0);
}

TEST(Power, AreaBreakdownItemised)
{
    Workload wl = tinyWorkload();
    Machine ooo(makePreset("ooo-large"), wl.program);
    ooo.run();
    PowerEstimate pe = estimatePower(ooo.core());
    EXPECT_TRUE(pe.areaItems.count("rename_map"));
    EXPECT_TRUE(pe.areaItems.count("rob"));
    EXPECT_TRUE(pe.areaItems.count("issue_queue"));
    double sum = 0;
    for (const auto &kv : pe.areaItems)
        sum += kv.second;
    EXPECT_DOUBLE_EQ(sum, pe.coreArea);
}

TEST(Power, SstAreaScalesWithCheckpoints)
{
    Workload wl = tinyWorkload();
    Machine a(makePreset("sst2"), wl.program);
    a.run();
    MachineConfig big = makePreset("sst8");
    Machine b(big, wl.program);
    b.run();
    EXPECT_GT(estimatePower(b.core()).coreArea,
              estimatePower(a.core()).coreArea);
}

TEST(Cmp, ThroughputScalesWithCores)
{
    std::vector<Workload> wls;
    for (int i = 0; i < 4; ++i) {
        WorkloadParams p;
        p.lengthScale = 0.03;
        p.footprintScale = 0.25;
        p.seed = 100 + i;
        wls.push_back(makeWorkload("hash_join", p));
    }
    MachineConfig cfg = makePreset("sst2");

    std::vector<const Program *> one{&wls[0].program};
    Cmp cmp1(cfg, one);
    CmpResult r1 = cmp1.run();
    ASSERT_TRUE(r1.finished);

    std::vector<const Program *> four;
    for (auto &w : wls)
        four.push_back(&w.program);
    Cmp cmp4(cfg, four);
    CmpResult r4 = cmp4.run();
    ASSERT_TRUE(r4.finished);

    EXPECT_EQ(r4.cores, 4u);
    EXPECT_GT(r4.aggregateIpc, r1.aggregateIpc * 1.5);
    EXPECT_EQ(r4.perCoreIpc.size(), 4u);
}

TEST(Cmp, CoresArchitecturallyIndependent)
{
    // Two cores running different workloads sharing an L2 must each
    // produce their own correct final state.
    WorkloadParams p1, p2;
    p1.lengthScale = p2.lengthScale = 0.03;
    p1.footprintScale = p2.footprintScale = 0.25;
    p2.seed = 77;
    Workload a = makeWorkload("oltp_mix", p1);
    Workload b = makeWorkload("oltp_mix", p2);

    MachineConfig cfg = makePreset("sst2");
    std::vector<const Program *> progs{&a.program, &b.program};
    Cmp cmp(cfg, progs);
    CmpResult r = cmp.run();
    ASSERT_TRUE(r.finished);

    for (int i = 0; i < 2; ++i) {
        const Workload &wl = i == 0 ? a : b;
        MemoryImage golden_mem;
        golden_mem.loadSegments(wl.program);
        Executor golden(wl.program, golden_mem);
        ArchState golden_state;
        golden.run(golden_state, 100'000'000ULL);
        EXPECT_TRUE(cmp.core(i).archState().regsEqual(golden_state))
            << "core " << i;
    }
}

TEST(Cmp, SharedL2CausesInterference)
{
    // The same workload takes longer with 4 co-runners than alone.
    std::vector<Workload> wls;
    for (int i = 0; i < 4; ++i) {
        WorkloadParams p;
        p.lengthScale = 0.03;
        p.seed = 10 + i;
        wls.push_back(makeWorkload("hash_join", p));
    }
    MachineConfig cfg = makePreset("inorder");
    std::vector<const Program *> one{&wls[0].program};
    Cmp alone(cfg, one);
    Cycle c1 = alone.run().cycles;

    std::vector<const Program *> four;
    for (auto &w : wls)
        four.push_back(&w.program);
    Cmp crowd(cfg, four);
    CmpResult r4 = crowd.run();
    EXPECT_GT(r4.cycles, c1); // slowest of 4 slower than solo
}

TEST(CmpDeath, NeedsAtLeastOneProgram)
{
    MachineConfig cfg = makePreset("inorder");
    std::vector<const Program *> none;
    EXPECT_DEATH({ Cmp cmp(cfg, none); }, "at least one");
}
