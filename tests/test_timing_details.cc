/** @file Fine-grained timing properties of the pipeline models. */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

Cycle
cyclesFor(const std::string &model, const std::string &src,
          CoreParams params = {})
{
    CoreRun r = makeRun(model, src, params);
    Cycle c = r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    return c;
}

} // namespace

TEST(TimingInOrder, DividerIsUnpipelined)
{
    // Two independent divides per iteration must serialise on the
    // single divider; two independent multiplies must not. Loop bodies
    // keep the I-cache warm so the difference is purely functional-unit
    // structure.
    auto body = [](const char *op) {
        std::string s = "li x1, 100\nli x2, 7\nli x3, 200\nli x4, 9\n"
                        "li x9, 200\nloop:\n";
        s += std::string(op) + " x5, x1, x2\n";
        s += std::string(op) + " x6, x3, x4\n";
        s += "addi x9, x9, -1\nbne x9, x0, loop\nhalt\n";
        return s;
    };
    Cycle cd = cyclesFor("inorder", body("div"));
    Cycle cm = cyclesFor("inorder", body("mul"));
    // DIV latency 20, unpipelined: >=40 cycles per iteration. MUL is
    // pipelined: a handful of cycles per iteration.
    EXPECT_GT(cd, 200u * 35);
    EXPECT_LT(cm, 200u * 10);
}

TEST(TimingInOrder, MulLatencyVisibleOnDependentChain)
{
    auto loop = [](const char *body4) {
        std::string s = "li x1, 3\nli x2, 5\nli x9, 300\nloop:\n";
        s += body4;
        s += "addi x9, x9, -1\nbne x9, x0, loop\nhalt\n";
        return s;
    };
    // Four chained muls vs four independent muls per iteration.
    Cycle cd = cyclesFor(
        "inorder",
        loop("mul x1, x1, x1\nmul x1, x1, x1\n"
             "mul x1, x1, x1\nmul x1, x1, x1\n"));
    Cycle ci = cyclesFor(
        "inorder",
        loop("mul x3, x1, x2\nmul x4, x1, x2\n"
             "mul x5, x1, x2\nmul x6, x1, x2\n"));
    EXPECT_GT(cd, ci + ci / 2); // 4-cycle latency exposed by the chain
}

TEST(TimingInOrder, MispredictPenaltyScalesWithDepth)
{
    // An unpredictable branch pattern under two pipeline depths.
    std::string src = R"(
        li x1, 600
        li x6, 0
        li x5, 2863311530
    loop:
        andi x7, x5, 1
        srli x5, x5, 1
        slli x8, x1, 1
        or   x5, x5, x8   ; keep the pattern register churning
        beq  x7, x0, skip
        addi x6, x6, 1
    skip:
        addi x1, x1, -1
        bne  x1, x0, loop
        halt
    )";
    CoreParams shallow;
    shallow.pipelineDepth = 6;
    CoreParams deep;
    deep.pipelineDepth = 24;
    Cycle cs = cyclesFor("inorder", src, shallow);
    Cycle cd = cyclesFor("inorder", src, deep);
    EXPECT_GT(cd, cs);
}

TEST(TimingInOrder, StoreBurstDrainsAtOnePerCycle)
{
    // A warm loop of stores to one line: bounded by the 1/cycle
    // store-buffer drain, not by the memory system.
    const char *src = R"(
        li x1, 0x200000
        li x2, 5
        ld x3, 0(x1)
        li x9, 300
    loop:
        st x2, 0(x1)
        st x2, 8(x1)
        addi x9, x9, -1
        bne x9, x0, loop
        halt
    )";
    CoreParams p;
    p.storeBufferEntries = 4;
    CoreRun r = makeRun("inorder", src, p);
    Cycle c = r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    // 600 stores at ~1/cycle (+ loop overhead + warmup), with slack.
    EXPECT_GT(c, 600u);
    EXPECT_LT(c, 600u * 4);
}

TEST(TimingOoO, IssueWidthBoundsIpc)
{
    std::string src = "li x1, 1\nli x9, 2000\nloop:\n";
    for (int i = 0; i < 8; ++i)
        src += "addi x" + std::to_string(10 + i) + ", x1, 1\n";
    src += "addi x9, x9, -1\nbne x9, x0, loop\nhalt\n";
    CoreParams narrow;
    narrow.fetchWidth = 4;
    narrow.issueWidth = 2;
    CoreParams wide;
    wide.fetchWidth = 4;
    wide.issueWidth = 4;
    Cycle cn = cyclesFor("ooo", src, narrow);
    Cycle cw = cyclesFor("ooo", src, wide);
    EXPECT_GT(cn, cw);
}

TEST(TimingOoO, TinyLsqThrottlesMemoryBursts)
{
    std::string src = "li x1, 0x400000\nli x9, 0\n";
    for (int i = 0; i < 24; ++i)
        src += "ld x5, " + std::to_string(i * 4096) + "(x1)\n";
    src += "halt\n";
    CoreParams tiny;
    tiny.lsqEntries = 2;
    CoreParams big;
    big.lsqEntries = 48;
    Cycle ct = cyclesFor("ooo", src, tiny);
    Cycle cb = cyclesFor("ooo", src, big);
    EXPECT_GT(ct, cb);
}

TEST(TimingSst, ReplayRunsConcurrentlyWithAhead)
{
    // Two widely separated misses with dependent work under each: the
    // total must be well under the serial sum because epoch 0's replay
    // overlaps epoch 1's ahead execution.
    std::string src = R"(
        li  x1, 0x200000
        li  x2, 0x280000
        ld  x3, 0(x1)     ; miss A
        add x4, x3, x3
        add x5, x4, x4
        ld  x6, 0(x2)     ; miss B (independent)
        add x7, x6, x6
        add x8, x7, x7
        add x9, x5, x8
        halt
        .data 0x200000
        .word 3
        .space 524280
        .word 4
    )";
    CoreRun sst = makeRun("sst", src, sstParams(4));
    CoreRun in = makeRun("inorder", src);
    Cycle cs = sst.run();
    Cycle ci = in.run();
    EXPECT_TRUE(sst.archMatchesGolden());
    EXPECT_EQ(sst.core->archState().reg(9), 28u);
    EXPECT_LT(cs, ci); // misses overlapped end to end
}

TEST(TimingSst, WidthSplitsBetweenStrands)
{
    // With fetchWidth=1 there is no room for a second strand; width 4
    // lets replay and ahead proceed together. The wide core must gain
    // more than the pure-width ratio on replay-heavy code.
    std::string src = "li x1, 0x400000\nli x9, 0\n";
    for (int i = 0; i < 12; ++i) {
        src += "ld x5, " + std::to_string(i * 4096) + "(x1)\n";
        for (int j = 0; j < 4; ++j)
            src += "add x9, x9, x5\n";
    }
    src += "halt\n.data 0x400000\n";
    for (int i = 0; i < 12; ++i) {
        src += ".word 1\n";
        if (i != 11)
            src += ".space 4088\n";
    }
    CoreParams w1 = sstParams(4);
    w1.fetchWidth = 1;
    CoreParams w4 = sstParams(4);
    w4.fetchWidth = 4;
    Cycle c1 = cyclesFor("sst", src, w1);
    Cycle c4 = cyclesFor("sst", src, w4);
    EXPECT_LT(c4, c1);
}
