/**
 * @file
 * Whole-machine snapshot/restore and divergence-diff tests — the
 * acceptance suite for deterministic machine snapshots.
 *
 * The headline property: for every preset × workload, interrupting a
 * run at an arbitrary cycle, serializing the machine, restoring the
 * image into a *fresh* machine and running to completion must be
 * invisible — byte-identical final stats and structured trace streams
 * versus the uninterrupted run. On top of that: state-hash semantics,
 * file round trips, restore-time validation of preset/model/workload,
 * the lockstep differ's self-check and its injected-divergence
 * pinpointing, and the CMP variants (including the per-core address
 * salt aliasing guard).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/cmp.hh"
#include "sim/fastfwd.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "sim_test_util.hh"
#include "snap/diff.hh"
#include "snap/snap.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

using namespace sst;
using test::expectStatsEqual;
using test::expectTracesEqual;
using test::kAllPresets;
using test::kWorkloads;
using test::workloadProgram;

namespace
{

std::string
tmpPath(const std::string &stem)
{
    return ::testing::TempDir() + "sstsim_" + stem + ".snap";
}

} // namespace

/**
 * The headline invariant, across the full differential harness sweep:
 * snapshot at an arbitrary mid-run cycle, restore into a fresh machine
 * (fresh hierarchy, fresh trace buffer — everything rebuilt from the
 * config, as a new process would), run both to completion, and compare
 * everything the simulator exposes.
 */
TEST(Snapshot, RoundTripAllPresets)
{
    constexpr Cycle snapAt = 4096;
    for (const auto &wl : kWorkloads) {
        Program program = workloadProgram(wl);
        for (const auto &preset : kAllPresets) {
            SCOPED_TRACE(preset + " / " + wl);

            trace::TraceBuffer baseTrace;
            Machine base(makePreset(preset), program);
            base.attachTraceBuffer(&baseTrace);
            RunResult want = base.run();

            trace::TraceBuffer srcTrace;
            Machine src(makePreset(preset), program);
            src.attachTraceBuffer(&srcTrace);
            src.stepTo(snapAt);
            ASSERT_EQ(src.core().cycles(), snapAt);
            std::vector<std::uint8_t> image = src.snapshot();

            trace::TraceBuffer dstTrace;
            Machine dst(makePreset(preset), program);
            dst.attachTraceBuffer(&dstTrace);
            dst.restore(image);
            EXPECT_EQ(dst.core().cycles(), snapAt);
            EXPECT_EQ(dst.stateHash(), src.stateHash());
            RunResult got = dst.run();

            EXPECT_EQ(want.cycles, got.cycles);
            EXPECT_EQ(want.insts, got.insts);
            EXPECT_EQ(want.ipc, got.ipc);
            EXPECT_EQ(want.finished, got.finished);
            EXPECT_EQ(want.degrade, got.degrade);
            EXPECT_EQ(want.l1dMissRate, got.l1dMissRate);
            EXPECT_EQ(want.meanDemandMlp, got.meanDemandMlp);
            EXPECT_EQ(want.mispredictRate, got.mispredictRate);
            expectStatsEqual(want.stats, got.stats);
            expectTracesEqual(baseTrace, dstTrace);
        }
    }
}

/** snapshot() must not disturb the machine: the source continues to
 *  the same completion as an untouched run. */
TEST(Snapshot, SnapshotIsNonDestructive)
{
    Program program = workloadProgram("hash_join");
    Machine plain(makePreset("sst2"), program);
    RunResult want = plain.run();

    Machine probed(makePreset("sst2"), program);
    probed.stepTo(2000);
    (void)probed.snapshot();
    (void)probed.stateHash();
    RunResult got = probed.run();

    EXPECT_EQ(want.cycles, got.cycles);
    EXPECT_EQ(want.insts, got.insts);
    expectStatsEqual(want.stats, got.stats);
}

/** Equal state ⇒ equal hash; advancing the machine changes the hash. */
TEST(Snapshot, StateHashTracksState)
{
    Program program = workloadProgram("oltp_mix");
    Machine a(makePreset("sst4"), program);
    Machine b(makePreset("sst4"), program);
    EXPECT_EQ(a.stateHash(), b.stateHash());

    a.stepTo(1000);
    b.stepTo(1000);
    EXPECT_EQ(a.stateHash(), b.stateHash());

    std::uint64_t at1000 = a.stateHash();
    a.stepTo(1001);
    EXPECT_NE(a.stateHash(), at1000);
}

TEST(Snapshot, FileRoundTripAndResume)
{
    Program program = workloadProgram("pointer_chase");
    const std::string path = tmpPath("machine");

    // Periodic-snapshot run: the file left behind is the last periodic
    // checkpoint, from which a fresh machine must reach the same end.
    Machine writer(makePreset("scout"), program);
    SnapPolicy policy;
    policy.everyCycles = 3000;
    policy.path = path;
    RunResult want = writer.run(500'000'000, policy);

    Machine resumed(makePreset("scout"), program);
    auto res = resumed.restoreFromFile(path);
    ASSERT_TRUE(res.ok()) << res.error().message;
    EXPECT_GE(resumed.core().cycles(), policy.everyCycles);
    RunResult got = resumed.run();

    EXPECT_EQ(want.cycles, got.cycles);
    EXPECT_EQ(want.insts, got.insts);
    expectStatsEqual(want.stats, got.stats);
    std::remove(path.c_str());

    Machine other(makePreset("scout"), program);
    auto missing = other.restoreFromFile(tmpPath("does_not_exist"));
    EXPECT_FALSE(missing.ok());
}

/** Restoring against the wrong configuration or workload must fail
 *  loudly, not corrupt the machine. */
TEST(Snapshot, RestoreValidatesIdentity)
{
    Program join = workloadProgram("hash_join");
    Program chase = workloadProgram("pointer_chase");

    Machine src(makePreset("sst2"), join);
    src.stepTo(1000);
    std::vector<std::uint8_t> image = src.snapshot();

    // Wrong preset.
    {
        Machine wrong(makePreset("ooo-large"), join);
        auto res = trapFatal([&] { wrong.restore(image); });
        ASSERT_FALSE(res.ok());
        EXPECT_NE(res.error().message.find("preset"), std::string::npos);
    }
    // Wrong workload (program fingerprint mismatch).
    {
        Machine wrong(makePreset("sst2"), chase);
        auto res = trapFatal([&] { wrong.restore(image); });
        EXPECT_FALSE(res.ok());
    }
    // Truncated image.
    {
        std::vector<std::uint8_t> cut(image.begin(),
                                      image.end() - image.size() / 2);
        Machine wrong(makePreset("sst2"), join);
        auto res = trapFatal([&] { wrong.restore(cut); });
        EXPECT_FALSE(res.ok());
    }
    // The machine that produced the image still restores fine.
    Machine dst(makePreset("sst2"), join);
    dst.restore(image);
    EXPECT_EQ(dst.stateHash(), src.stateHash());
}

/**
 * Differ self-check: fast-forward on vs off over the same preset and
 * workload is the PR 4 invariant — the differ must find no divergence
 * and see both sides finish at the same cycle.
 */
TEST(SnapDiff, SelfCheckNoDivergence)
{
    Program program = workloadProgram("hash_join");
    Machine a(makePreset("sst2"), program);
    Machine b(makePreset("sst2"), program);
    snap::DiffOptions opt;
    opt.stride = 512;
    snap::DiffReport rep = snap::diffMachines(a, b, opt);

    EXPECT_FALSE(rep.diverged);
    EXPECT_TRUE(rep.finishedA);
    EXPECT_TRUE(rep.finishedB);
    EXPECT_EQ(rep.cyclesA, rep.cyclesB);
    EXPECT_EQ(rep.hashA, rep.hashB);
    EXPECT_GT(rep.comparedPoints, 0u);
}

/** The acceptance criterion for the differ: a single injected bit flip
 *  at cycle N is pinpointed to exactly cycle N, and both sides'
 *  snapshots at that cycle are dumped. */
TEST(SnapDiff, PinpointsInjectedDivergence)
{
    constexpr Cycle inject = 3333;
    Program program = workloadProgram("oltp_mix");
    Machine a(makePreset("sst4"), program);
    Machine b(makePreset("sst4"), program);
    snap::DiffOptions opt;
    opt.stride = 512;
    opt.injectCycle = inject;
    opt.injectAddr = program.segments().empty()
                         ? Addr{64}
                         : program.segments().front().base;
    opt.outPrefix = ::testing::TempDir() + "sstsim_injected";
    snap::DiffReport rep = snap::diffMachines(a, b, opt);

    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.firstDivergentCycle, inject);
    EXPECT_NE(rep.hashA, rep.hashB);
    ASSERT_FALSE(rep.snapA.empty());
    ASSERT_FALSE(rep.snapB.empty());
    auto dumpA = snap::readFile(rep.snapA);
    auto dumpB = snap::readFile(rep.snapB);
    EXPECT_TRUE(dumpA.ok());
    EXPECT_TRUE(dumpB.ok());
    std::remove(rep.snapA.c_str());
    std::remove(rep.snapB.c_str());
}

/** An injection inside the very first stride exercises the bisection's
 *  left edge (last-good snapshot is the initial state). */
TEST(SnapDiff, InjectionNearStartIsFoundAtItsCycle)
{
    constexpr Cycle inject = 17; // inside the very first stride
    Program program = workloadProgram("pointer_chase");
    Machine a(makePreset("inorder"), program);
    Machine b(makePreset("inorder"), program);
    snap::DiffOptions opt;
    opt.stride = 4096;
    opt.injectCycle = inject;
    opt.injectAddr = 64;
    snap::DiffReport rep = snap::diffMachines(a, b, opt);
    ASSERT_TRUE(rep.diverged);
    EXPECT_EQ(rep.firstDivergentCycle, inject);
}

/** Cmp snapshot/restore: interrupt a two-core chip mid-run, restore
 *  into a fresh chip, and finish identically. */
TEST(Snapshot, CmpRoundTrip)
{
    Program program = workloadProgram("oltp_mix");
    std::vector<const Program *> programs{&program, &program};
    for (const auto &preset : {"inorder", "sst4", "ooo-large"}) {
        SCOPED_TRACE(preset);

        Cmp base(makePreset(preset), programs);
        CmpResult want = base.run();

        Cmp src(makePreset(preset), programs);
        (void)src.run(3000); // stop on the cycle budget mid-run
        ASSERT_FALSE(src.allHalted());
        std::vector<std::uint8_t> image = src.snapshot();

        Cmp dst(makePreset(preset), programs);
        dst.restore(image);
        EXPECT_EQ(dst.cycles(), src.cycles());
        CmpResult got = dst.run();

        EXPECT_EQ(want.cycles, got.cycles);
        EXPECT_EQ(want.totalInsts, got.totalInsts);
        EXPECT_EQ(want.aggregateIpc, got.aggregateIpc);
        EXPECT_EQ(want.finished, got.finished);
        EXPECT_EQ(want.degrade, got.degrade);
        ASSERT_EQ(want.perCoreIpc.size(), got.perCoreIpc.size());
        for (std::size_t i = 0; i < want.perCoreIpc.size(); ++i)
            EXPECT_EQ(want.perCoreIpc[i], got.perCoreIpc[i]);
        for (unsigned i = 0; i < want.cores; ++i)
            expectStatsEqual(base.core(i).stats().flatten(),
                             dst.core(i).stats().flatten());
    }
}

/** The address-salt aliasing guard: a program whose footprint spills
 *  past the per-core salt stride must be rejected at construction, not
 *  silently share physical addresses with its neighbour core. */
TEST(Snapshot, CmpRejectsFootprintBeyondSaltStride)
{
    Program huge("huge");
    huge.append(inst::halt());
    // One byte just past the 1 GiB salt stride makes the footprint
    // overlap core 1's physical range.
    huge.addData(Cmp::saltStride, {0xff});
    std::vector<const Program *> programs{&huge, &huge};
    EXPECT_DEATH({ Cmp cmp(makePreset("inorder"), programs); },
                 "salt stride");

    // A single-core chip cannot alias anyone and is fine.
    std::vector<const Program *> one{&huge};
    Cmp solo(makePreset("inorder"), one);
    CmpResult r = solo.run(10'000);
    EXPECT_TRUE(r.finished);
}
