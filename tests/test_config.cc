/** @file Unit tests for the configuration store. */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace sst;

TEST(Config, SetAndGetString)
{
    Config c;
    c.set("a.b", "hello");
    EXPECT_EQ(c.getString("a.b", "x"), "hello");
    EXPECT_TRUE(c.has("a.b"));
    EXPECT_FALSE(c.has("a.c"));
}

TEST(Config, DefaultsReturnedWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("k", 7), 7);
    EXPECT_EQ(c.getUint("k2", 9u), 9u);
    EXPECT_DOUBLE_EQ(c.getDouble("k3", 1.5), 1.5);
    EXPECT_TRUE(c.getBool("k4", true));
    EXPECT_EQ(c.getString("k5", "d"), "d");
}

TEST(Config, IntParsing)
{
    Config c;
    c.set("dec", "42");
    c.set("neg", "-13");
    c.set("hex", "0x10");
    EXPECT_EQ(c.getInt("dec", 0), 42);
    EXPECT_EQ(c.getInt("neg", 0), -13);
    EXPECT_EQ(c.getInt("hex", 0), 16);
}

TEST(Config, NumericSettersRoundTrip)
{
    Config c;
    c.set("i", std::int64_t{-5});
    c.set("u", std::uint64_t{77});
    c.set("d", 2.25);
    c.set("b", true);
    EXPECT_EQ(c.getInt("i", 0), -5);
    EXPECT_EQ(c.getUint("u", 0), 77u);
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0), 2.25);
    EXPECT_TRUE(c.getBool("b", false));
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on"}) {
        c.set("k", std::string(t));
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        c.set("k", std::string(f));
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
}

TEST(Config, ParseAssignment)
{
    Config c;
    c.parseAssignment("core.width=4");
    EXPECT_EQ(c.getInt("core.width", 0), 4);
    c.parseAssignment("name=with=equals");
    EXPECT_EQ(c.getString("name", ""), "with=equals");
}

TEST(Config, ParseArgs)
{
    const char *argv_c[] = {"prog", "a=1", "b=two"};
    Config c;
    c.parseArgs(3, const_cast<char **>(argv_c));
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_EQ(c.getString("b", ""), "two");
}

TEST(Config, MergeOverwrites)
{
    Config a, b;
    a.set("x", 1);
    a.set("y", 2);
    b.set("y", 3);
    b.set("z", 4);
    a.merge(b);
    EXPECT_EQ(a.getInt("x", 0), 1);
    EXPECT_EQ(a.getInt("y", 0), 3);
    EXPECT_EQ(a.getInt("z", 0), 4);
}

TEST(Config, DumpIncludesObservedDefaults)
{
    Config c;
    c.set("set.key", 1);
    (void)c.getInt("defaulted.key", 5);
    std::string d = c.dump();
    EXPECT_NE(d.find("set.key = 1"), std::string::npos);
    EXPECT_NE(d.find("defaulted.key = 5"), std::string::npos);
}

TEST(ConfigDeath, MalformedIntIsFatal)
{
    Config c;
    c.set("k", "notanint");
    EXPECT_DEATH((void)c.getInt("k", 0), "not an integer");
}

TEST(ConfigDeath, MalformedAssignmentIsFatal)
{
    Config c;
    EXPECT_DEATH(c.parseAssignment("noequals"), "key=value");
}

// --- recoverable (Result) paths ----------------------------------------

TEST(ConfigResult, TryGettersReturnValues)
{
    Config c;
    c.set("i", -7);
    c.set("u", std::uint64_t{9});
    c.set("d", 2.5);
    c.set("b", true);
    EXPECT_EQ(c.tryGetInt("i", 0).value(), -7);
    EXPECT_EQ(c.tryGetUint("u", 0).value(), 9u);
    EXPECT_EQ(c.tryGetDouble("d", 0).value(), 2.5);
    EXPECT_TRUE(c.tryGetBool("b", false).value());
    EXPECT_EQ(c.tryGetInt("absent", 42).value(), 42);
}

TEST(ConfigResult, MalformedValueIsAnErrorNotAnExit)
{
    Config c;
    c.set("k", "notanint");
    auto r = c.tryGetInt("k", 0);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("not an integer"),
              std::string::npos);
}

TEST(ConfigResult, TryParseAssignment)
{
    Config c;
    EXPECT_TRUE(c.tryParseAssignment("a.b=3").ok());
    EXPECT_EQ(c.getInt("a.b", 0), 3);
    auto r = c.tryParseAssignment("noequals");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("key=value"), std::string::npos);
}

TEST(ConfigResult, TrapFatalConvertsFatalToError)
{
    auto ok = trapFatal([] { return 5; });
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value(), 5);
    auto bad = trapFatal([]() -> int { fatal("boom %d", 3); });
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().message.find("boom 3"), std::string::npos);
}

TEST(EditDistance, Basics)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", ""), 3u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("fault.drop_fill_rte", "fault.drop_fill_rate"),
              1u);
}

TEST(EditDistance, ClosestMatch)
{
    std::vector<std::string> keys = {"core.checkpoints", "mem.l2_kb",
                                     "fault.seed"};
    EXPECT_EQ(closestMatch("core.checkpoint", keys), "core.checkpoints");
    EXPECT_EQ(closestMatch("falt.seed", keys), "fault.seed");
    EXPECT_EQ(closestMatch("zzzzzzzzzzzzzzzz", keys), "");
    EXPECT_EQ(closestMatch("anything", {}), "");
}
