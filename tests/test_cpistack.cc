/** @file Tests for CPI-stack cycle attribution (src/trace/cpistack). */

#include <gtest/gtest.h>

#include "core/smt.hh"
#include "sim/cmp.hh"
#include "sim_test_util.hh"
#include "trace/cpistack.hh"

using namespace sst;
using namespace sst::test;

namespace
{

// A load miss plus a dependent chain, so every model sees both retiring
// and stalling cycles.
const char *kMissChain = R"(
    li   x1, 0x200000
    ld   x2, 0(x1)
    add  x3, x2, x2
    add  x4, x3, x3
    addi x5, x0, 7
    halt
    .data 0x200000
    .word 21
)";

void
expectSumsToCycles(const std::string &model, CoreParams params)
{
    CoreRun r = makeRun(model, kMissChain, params);
    r.run();
    r.core->finalizeAttribution();
    EXPECT_TRUE(r.archMatchesGolden()) << model;
    EXPECT_EQ(r.core->cpiStack().total(), r.core->cycles()) << model;
    EXPECT_GT(r.core->cpiStack().value(trace::CpiCat::Base), 0u)
        << model;
}

} // namespace

TEST(CpiStack, InOrderSumsToCycles)
{
    expectSumsToCycles("inorder", CoreParams{});
}

TEST(CpiStack, OoOSumsToCycles)
{
    expectSumsToCycles("ooo", CoreParams{});
}

TEST(CpiStack, SstSumsToCycles)
{
    expectSumsToCycles("sst", sstParams(2));
}

TEST(CpiStack, ScoutSumsToCycles)
{
    expectSumsToCycles("sst", sstParams(1, true));
}

TEST(CpiStack, SstChargesSpeculationCycles)
{
    CoreRun r = makeRun("sst", kMissChain, sstParams(2));
    r.run();
    r.core->finalizeAttribution();
    // The region committed, so speculating cycles landed in replay (or
    // the queue-pressure categories), not in rollback_discard.
    trace::CpiStack &stack = r.core->cpiStack();
    EXPECT_GT(stack.value(trace::CpiCat::Replay), 0u);
    EXPECT_EQ(stack.value(trace::CpiCat::RollbackDiscard), 0u);
}

TEST(CpiStack, ScoutChargesDiscardedWork)
{
    CoreRun r = makeRun("sst", kMissChain, sstParams(1, true));
    r.run();
    r.core->finalizeAttribution();
    // Every scout region ends in a rollback: its speculation cycles are
    // all wasted work by construction.
    trace::CpiStack &stack = r.core->cpiStack();
    EXPECT_GT(stack.value(trace::CpiCat::RollbackDiscard), 0u);
    EXPECT_EQ(stack.value(trace::CpiCat::Replay), 0u);
}

TEST(CpiStack, FinalizeIsIdempotent)
{
    CoreRun r = makeRun("sst", kMissChain, sstParams(2));
    r.run();
    r.core->finalizeAttribution();
    std::uint64_t total = r.core->cpiStack().total();
    r.core->finalizeAttribution();
    EXPECT_EQ(r.core->cpiStack().total(), total);
}

TEST(CpiStack, CoherentCmpSumsToCyclesWithCoherenceBucket)
{
    // Two in-order cores contending one spinlock over a coherent
    // shared L2: the new Coherence category must receive the
    // invalidation-induced stalls and still leave every cycle charged
    // exactly once per core.
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    std::vector<Workload> w =
        makeSharedWorkload("spinlock_counter", 2, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);
    MachineConfig cfg;
    cfg.model = "inorder";
    cfg.core.name = "core";
    cfg.mem.coh.enabled = true;
    Cmp cmp(cfg, programs);
    CmpResult res = cmp.run(100'000'000);
    ASSERT_TRUE(res.finished);
    std::uint64_t coh = 0;
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(cmp.core(c).cpiStack().total(),
                  cmp.core(c).cycles())
            << "core " << c;
        coh += cmp.core(c).cpiStack().value(trace::CpiCat::Coherence);
    }
    EXPECT_GT(coh, 0u);
}

TEST(CpiStack, SmtSumsToCycles)
{
    Program pa = assemble(R"(
        li   x1, 0x200000
        ld   x2, 0(x1)
        add  x3, x2, x2
        halt
        .data 0x200000
        .word 5
    )",
                          "smt_a");
    Program pb = assemble(R"(
        addi x1, x0, 10
        addi x2, x1, 10
        addi x3, x2, 10
        halt
    )",
                          "smt_b");
    MemoryImage ma, mb;
    ma.loadSegments(pa);
    mb.loadSegments(pb);
    MemorySystem memsys{HierarchyParams{}};
    CorePort &port = memsys.addCore();
    SmtCore core(CoreParams{}, {&pa, &pb}, {&ma, &mb}, port);
    std::uint64_t guard = 0;
    while (!core.halted() && guard++ < 1'000'000)
        core.tick();
    ASSERT_TRUE(core.halted());
    EXPECT_EQ(core.cpiStack().total(), core.cycles());
    EXPECT_GT(core.cpiStack().value(trace::CpiCat::Base), 0u);
}
