/**
 * @file
 * Tests for the parallel experiment runner (src/exp): the
 * work-stealing ThreadPool, manifest parsing and cartesian expansion,
 * per-job seed derivation, and — the load-bearing property — that a
 * sweep's per-job records are byte-identical at -j 1 and -j 8, with
 * and without fault injection.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"
#include "exp/json.hh"
#include "exp/runner.hh"
#include "exp/sweep.hh"
#include "exp/threadpool.hh"

using namespace sst;
using namespace sst::exp;

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int kTasks = 500;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto &h : hits)
        h = 0;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&hits, i] { ++hits[i]; });
    pool.wait();
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    EXPECT_EQ(pool.executed(), static_cast<std::uint64_t>(kTasks));
}

TEST(ThreadPool, SingleTaskBatchesNeverLoseTheWakeup)
{
    // Regression for a lost-wakeup race: submit() once bumped signal_
    // before pushing the task, so a worker could observe the new
    // signal_, scan the still-empty deques, and sleep through the
    // notify with the task queued — deadlocking wait(). Single-task
    // batches are the most race-prone shape (exactly one notify per
    // wait), so hammer them.
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 2000; ++i) {
        pool.submit([&count] { ++count; });
        pool.wait();
    }
    EXPECT_EQ(count.load(), 2000);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 5; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        pool.wait();
        EXPECT_EQ(count.load(), (batch + 1) * 20);
    }
}

TEST(ThreadPool, TasksMaySubmitTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&pool, &count] {
            for (int k = 0; k < 4; ++k)
                pool.submit([&count] { ++count; });
        });
    pool.wait();
    EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPool, ParallelForCoversRange)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(100);
    for (auto &h : hits)
        h = 0;
    parallelFor(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, DefaultWorkersIsPositive)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), ThreadPool::defaultWorkers());
}

TEST(DeriveSeed, DeterministicAndWellSpread)
{
    EXPECT_EQ(deriveSeed(42, 0), deriveSeed(42, 0));
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ULL, 1ULL, 42ULL})
        for (std::uint64_t index = 0; index < 100; ++index)
            seen.insert(deriveSeed(base, index));
    // 300 derivations, no collisions, and none equal to the bases.
    EXPECT_EQ(seen.size(), 300u);
    EXPECT_FALSE(seen.count(0));
    EXPECT_FALSE(seen.count(42));
}

TEST(DeriveSeed, MatchesSplitmixDefinition)
{
    std::uint64_t state = 7 + 3 * 0x9e3779b97f4a7c15ULL;
    splitmix64(state);
    std::uint64_t expect = splitmix64(state);
    EXPECT_EQ(deriveSeed(7, 2), expect);
}

TEST(LogCapture, CapturesThisThreadOnly)
{
    LogCapture outer;
    warn("outer %d", 1);
    {
        LogCapture inner;
        warn("inner");
        std::thread other([] {
            // No capture active on this thread; goes to stderr (and
            // must not land in either capture).
            warn("other-thread");
        });
        other.join();
        EXPECT_EQ(inner.text(), "warn: inner\n");
    }
    warn("outer %d", 2);
    EXPECT_EQ(outer.text(), "warn: outer 1\nwarn: outer 2\n");
}

namespace
{

const char *kSmokeManifest = R"(
# comment line
sweep.name     = unit          # trailing comment
sweep.seed     = 7
sweep.repeats  = 2
sweep.baseline = inorder
sweep.length_scale = 0.05
preset   = inorder, sst2
workload = compute_kernel
mem.dram_base_latency = 120, 240
)";

} // namespace

TEST(SweepSpec, ParsesManifest)
{
    auto parsed = SweepSpec::parse(kSmokeManifest, "unit");
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    SweepSpec spec = parsed.take();
    EXPECT_EQ(spec.name, "unit");
    EXPECT_EQ(spec.baseSeed, 7u);
    EXPECT_EQ(spec.repeats, 2u);
    EXPECT_EQ(spec.baseline, "inorder");
    EXPECT_DOUBLE_EQ(spec.lengthScale, 0.05);
    ASSERT_EQ(spec.presets.size(), 2u);
    ASSERT_EQ(spec.workloads.size(), 1u);
    ASSERT_EQ(spec.axes.size(), 1u);
    EXPECT_EQ(spec.axes[0].key, "mem.dram_base_latency");
    EXPECT_EQ(spec.axes[0].values,
              (std::vector<std::string>{"120", "240"}));
    // 1 workload x 2 axis values x 2 repeats = 4 points, x 2 presets.
    EXPECT_EQ(spec.pointCount(), 4u);
    EXPECT_EQ(spec.jobCount(), 8u);
}

TEST(SweepSpec, ExpansionIsDeterministicAndSeededPerJob)
{
    SweepSpec spec = SweepSpec::parse(kSmokeManifest, "unit").take();
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 8u);
    std::set<std::uint64_t> jobSeeds;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(jobs[i].index, i);
        // Even indices: the odd subspace is the workload domain.
        EXPECT_EQ(jobs[i].jobSeed, deriveSeed(7, 2 * i));
        jobSeeds.insert(jobs[i].jobSeed);
    }
    EXPECT_EQ(jobSeeds.size(), jobs.size()) << "job seeds must differ";
    // Presets spin fastest: consecutive jobs share a point (and
    // therefore the workload seed), differing only in preset.
    EXPECT_EQ(jobs[0].preset, "inorder");
    EXPECT_EQ(jobs[1].preset, "sst2");
    EXPECT_EQ(jobs[0].pointKey, jobs[1].pointKey);
    EXPECT_EQ(jobs[0].workloadSeed, jobs[1].workloadSeed);
    EXPECT_NE(jobs[0].workloadSeed, jobs[2].workloadSeed);
    // The axis assignment rides in the overrides.
    EXPECT_EQ(jobs[0].overrides.getString("mem.dram_base_latency", ""),
              "120");
    // Two identical expansions agree completely.
    auto again = spec.expand();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].pointKey, again[i].pointKey);
}

TEST(SweepSpec, JobAndWorkloadSeedDomainsAreDisjoint)
{
    // With a single preset, job index == point ordinal for every job;
    // the even/odd domain split must still keep the fault-injector
    // stream independent of the workload stream.
    SweepSpec spec =
        SweepSpec::parse("preset = sst2\nworkload = stream\n"
                         "sweep.repeats = 4\n",
                         "m")
            .take();
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 4u);
    std::set<std::uint64_t> seeds;
    for (const auto &job : jobs) {
        EXPECT_NE(job.jobSeed, job.workloadSeed);
        seeds.insert(job.jobSeed);
        seeds.insert(job.workloadSeed);
    }
    EXPECT_EQ(seeds.size(), 2 * jobs.size())
        << "fault and workload seeds must never collide";
}

TEST(SweepSpec, RejectsUnknownKeysWithSuggestion)
{
    auto r = SweepSpec::parse("preset = sst2\nworkload = stream\n"
                              "mem.dram_base_latencyy = 1\n",
                              "m");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("mem.dram_base_latency"),
              std::string::npos)
        << r.error().message;
    EXPECT_NE(r.error().message.find("m:3"), std::string::npos)
        << "diagnostic should carry the line number: "
        << r.error().message;
}

TEST(SweepSpec, RejectsBadValuesAtParseTime)
{
    auto r = SweepSpec::parse("preset = sst2\nworkload = stream\n"
                              "mem.dram_base_latency = fast\n",
                              "m");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("not an unsigned integer"),
              std::string::npos)
        << r.error().message;
}

TEST(SweepSpec, RejectsBaselineOutsidePresetList)
{
    auto r = SweepSpec::parse("sweep.baseline = ooo-huge\n"
                              "preset = sst2\nworkload = stream\n",
                              "m");
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message.find("baseline"), std::string::npos);
}

TEST(SweepSpec, DerivesFaultSeedPerJobUnlessPinned)
{
    SweepSpec swept =
        SweepSpec::parse("preset = sst2\nworkload = stream\n"
                         "fault.drop_fill_rate = 0, 1e-4\n",
                         "m")
            .take();
    auto jobs = swept.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].overrides.getUint("fault.seed", 0),
              jobs[0].jobSeed);

    SweepSpec pinned =
        SweepSpec::parse("preset = sst2\nworkload = stream\n"
                         "fault.drop_fill_rate = 1e-4\n"
                         "fault.seed = 9\n",
                         "m")
            .take();
    auto pinnedJobs = pinned.expand();
    ASSERT_EQ(pinnedJobs.size(), 1u);
    EXPECT_EQ(pinnedJobs[0].overrides.getUint("fault.seed", 0), 9u);
}

namespace
{

/** Run @p manifest at a given -j and return the per-job records. */
std::vector<std::string>
recordsAt(const std::string &manifest, unsigned jobs)
{
    SweepSpec spec = SweepSpec::parse(manifest, "determinism").take();
    ResultSink sink(spec.jobCount());
    SweepRunOptions options;
    options.jobs = jobs;
    int code = runSweep(spec, options, sink);
    EXPECT_EQ(code, 0);
    std::vector<std::string> records;
    for (const auto &out : sink.outcomes()) {
        EXPECT_TRUE(out.ran) << out.error;
        records.push_back(out.recordJson);
    }
    return records;
}

} // namespace

TEST(SweepDeterminism, ParallelMatchesSerialByteForByte)
{
    // Two presets, fault injection on half the points: the exact
    // configuration where shared RNGs or racy stat trees would show.
    const std::string manifest = "sweep.seed = 11\n"
                                 "sweep.length_scale = 0.05\n"
                                 "preset = inorder, sst2\n"
                                 "workload = compute_kernel\n"
                                 "fault.drop_fill_rate = 0, 1e-4\n";
    auto serial = recordsAt(manifest, 1);
    auto parallel = recordsAt(manifest, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "record " << i;
}

TEST(SweepDeterminism, RecordsParseAndCarryTheContract)
{
    const std::string manifest = "sweep.length_scale = 0.05\n"
                                 "sweep.verify = true\n"
                                 "preset = sst2\n"
                                 "workload = compute_kernel\n";
    auto records = recordsAt(manifest, 2);
    ASSERT_EQ(records.size(), 1u);
    auto parsed = Json::parse(records[0]);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const Json &r = parsed.value();
    EXPECT_EQ(r["preset"].asString(), "sst2");
    EXPECT_EQ(r["workload"].asString(), "compute_kernel");
    EXPECT_TRUE(r["finished"].asBool());
    EXPECT_EQ(r["degrade"].asString(), "none");
    EXPECT_TRUE(r["arch_ok"].asBool()) << "golden verify must pass";
    EXPECT_GT(r["cycles"].asNumber(), 0.0);
    // The structured stat tree is present and contains the core group.
    EXPECT_TRUE(r["stats"].isObject());
    EXPECT_GT(r["stats"].size(), 0u);
    // Effective config is complete, not just the overrides.
    EXPECT_NE(r["config"].find("core.checkpoints"), nullptr);
}

TEST(SweepJson, DocumentParsesAndIndexesRecords)
{
    SweepSpec spec = SweepSpec::parse("sweep.length_scale = 0.05\n"
                                      "sweep.baseline = inorder\n"
                                      "preset = inorder, sst2\n"
                                      "workload = compute_kernel\n",
                                      "doc")
                         .take();
    ResultSink sink(spec.jobCount());
    SweepRunOptions options;
    options.jobs = 4;
    EXPECT_EQ(runSweep(spec, options, sink), 0);
    auto doc = Json::parse(sweepJson(spec, sink));
    ASSERT_TRUE(doc.ok()) << doc.error().message;
    const Json &d = doc.value();
    EXPECT_EQ(d["schema_version"].asNumber(), 1.0);
    EXPECT_EQ(d["sweep"]["name"].asString(), "sweep");
    EXPECT_EQ(d["sweep"]["baseline"].asString(), "inorder");
    ASSERT_EQ(d["records"].size(), 2u);
    for (std::size_t i = 0; i < d["records"].size(); ++i)
        EXPECT_EQ(d["records"].at(i)["index"].asNumber(),
                  static_cast<double>(i));
    // Both tables render without dying.
    EXPECT_FALSE(aggregateTable(spec, sink).render().empty());
    EXPECT_FALSE(baselineTable(spec, sink).render().empty());
}

TEST(SweepRunner, BadConfigValueFailsTheJobNotTheProcess)
{
    // Parse-time validation catches axis typos, so feed the runner a
    // hand-built job with a bad value to exercise the job-level trap.
    SweepSpec spec;
    spec.presets = {"sst2"};
    spec.workloads = {"compute_kernel"};
    spec.lengthScale = 0.05;
    JobSpec job;
    job.preset = "sst2";
    job.workload = "compute_kernel";
    job.overrides.set("mem.prefetch_mode", "psychic");
    JobOutcome out = runJob(spec, job);
    EXPECT_FALSE(out.ran);
    EXPECT_NE(out.error.find("psychic"), std::string::npos);
    auto parsed = Json::parse(out.recordJson);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_FALSE(parsed.value()["ran"].asBool());
}

namespace
{

/** Fresh artifact directory under the test temp root. */
std::string
artifactDir(const std::string &stem)
{
    std::string dir = ::testing::TempDir() + "sstsim_" + stem + "_"
                      + std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
    ASSERT_TRUE(out.good()) << path;
}

} // namespace

TEST(OutcomeFromRecord, DiagnosesEveryRejectionMode)
{
    SweepSpec spec = SweepSpec::parse("preset = sst2\n"
                                      "workload = stream\n"
                                      "sweep.repeats = 2\n",
                                      "m")
                         .take();
    auto jobs = spec.expand();
    JobOutcome out;
    std::string why;

    // Truncated mid-string: the classic torn write from a killed
    // worker.
    const std::string good = unrunOutcome(jobs[0], "x").recordJson;
    EXPECT_FALSE(outcomeFromRecord(jobs[0],
                                   good.substr(0, good.size() / 2), out,
                                   &why));
    EXPECT_NE(why.find("truncated or corrupt"), std::string::npos)
        << why;

    EXPECT_FALSE(outcomeFromRecord(jobs[0], "[1, 2]", out, &why));
    EXPECT_EQ(why, "record is not a JSON object");

    // A perfectly valid record — for a different job.
    EXPECT_FALSE(outcomeFromRecord(
        jobs[0], unrunOutcome(jobs[1], "x").recordJson, out, &why));
    EXPECT_EQ(why, "record identity does not match the manifest");

    // The good record round-trips.
    ASSERT_TRUE(outcomeFromRecord(jobs[0], good, out, &why)) << why;
    EXPECT_FALSE(out.ran);
    EXPECT_EQ(out.error, "x");
    EXPECT_EQ(out.recordJson, good);
}

TEST(SweepResume, CorruptRecordsAreRerunNotFatal)
{
    // A resumed sweep seeded with one truncated artifact, one garbage
    // artifact and one valid-but-foreign artifact must quietly re-run
    // those jobs and still produce records byte-identical to a clean
    // run — torn writes from a crashed worker never wedge a sweep.
    const std::string manifest = "sweep.length_scale = 0.05\n"
                                 "preset = sst2\n"
                                 "workload = compute_kernel\n"
                                 "sweep.repeats = 3\n";
    SweepSpec spec = SweepSpec::parse(manifest, "resume").take();
    auto jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 3u);

    ResultSink ref(spec.jobCount());
    SweepRunOptions refOpt;
    ASSERT_EQ(runSweep(spec, refOpt, ref), 0);

    const std::string dir = artifactDir("resume_corrupt");
    writeText(jobRecordPath(dir, 0),
              ref.outcomes()[0].recordJson.substr(0, 40));
    writeText(jobRecordPath(dir, 1), "not json at all");
    // Job 2's slot holds job 0's (valid!) record: identity mismatch.
    writeText(jobRecordPath(dir, 2), ref.outcomes()[0].recordJson);

    std::vector<char> done(jobs.size(), 0);
    ResultSink probe(spec.jobCount());
    EXPECT_EQ(loadFinishedRecords(jobs, dir, probe, done), 0u);
    EXPECT_EQ(done, std::vector<char>(jobs.size(), 0));

    ResultSink sink(spec.jobCount());
    SweepRunOptions opt;
    opt.artifactDir = dir;
    opt.resume = true;
    EXPECT_EQ(runSweep(spec, opt, sink), 0);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(sink.outcomes()[i].recordJson,
                  ref.outcomes()[i].recordJson)
            << "record " << i;
    std::filesystem::remove_all(dir);
}

TEST(SweepResume, ValidRecordsAreReusedWithoutRerunning)
{
    const std::string manifest = "sweep.length_scale = 0.05\n"
                                 "preset = sst2\n"
                                 "workload = compute_kernel\n"
                                 "sweep.repeats = 2\n";
    SweepSpec spec = SweepSpec::parse(manifest, "reuse").take();
    auto jobs = spec.expand();
    const std::string dir = artifactDir("resume_reuse");

    ResultSink first(spec.jobCount());
    SweepRunOptions opt;
    opt.artifactDir = dir;
    ASSERT_EQ(runSweep(spec, opt, first), 0);

    std::vector<char> done(jobs.size(), 0);
    ResultSink resumed(spec.jobCount());
    EXPECT_EQ(loadFinishedRecords(jobs, dir, resumed, done),
              jobs.size());
    EXPECT_EQ(done, std::vector<char>(jobs.size(), 1));
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(resumed.outcomes()[i].recordJson,
                  first.outcomes()[i].recordJson);
    std::filesystem::remove_all(dir);
}
