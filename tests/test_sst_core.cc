/** @file Mechanism-level tests for the SST and hardware-scout cores. */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

double
stat(Core &core, const std::string &suffix)
{
    auto flat = core.stats().flatten();
    for (const auto &kv : flat)
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            return kv.second;
    return 0.0;
}

/** One miss followed by dependent and independent work. */
const char *kOneMiss = R"(
    li   x1, 0x200000
    ld   x2, 0(x1)      ; trigger: cold miss
    add  x3, x2, x2     ; dependent -> deferred
    addi x4, x0, 7      ; independent -> executes ahead
    addi x5, x4, 1
    add  x6, x3, x5     ; mixes replay and ahead values
    halt
    .data 0x200000
    .word 21
)";

/** Independent misses: the MLP case SST is built for. */
std::string
independentMisses(int n)
{
    std::string src = "li x1, 0x400000\nli x9, 0\n";
    for (int i = 0; i < n; ++i) {
        src += "ld x5, " + std::to_string(i * 4096) + "(x1)\n";
        src += "add x9, x9, x5\n";
    }
    src += "halt\n.data 0x400000\n";
    // Each node needs a value; lay them out with .space hops.
    for (int i = 0; i < n; ++i) {
        src += ".word " + std::to_string(i + 1) + "\n";
        if (i != n - 1)
            src += ".space 4088\n";
    }
    return src;
}

} // namespace

TEST(SstCore, EntersSpeculationOnMiss)
{
    CoreRun r = makeRun("sst", kOneMiss, sstParams(4));
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GE(stat(*r.core, ".checkpoints_taken"), 1.0);
    EXPECT_GE(stat(*r.core, ".deferred_insts"), 2.0);
    EXPECT_GE(stat(*r.core, ".full_commits"), 1.0);
}

TEST(SstCore, DeferredValuesResolveCorrectly)
{
    CoreRun r = makeRun("sst", kOneMiss, sstParams(4));
    r.run();
    // x2=21, x3=42, x6=42+8=50.
    EXPECT_EQ(r.core->archState().reg(6), 50u);
}

TEST(SstCore, NaPropagatesThroughDataflow)
{
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)
        add x3, x2, x1    ; NA
        add x4, x3, x3    ; NA transitively
        xor x5, x4, x2    ; NA
        addi x6, x0, 1    ; independent
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GE(stat(*r.core, ".deferred_insts"), 3.0);
}

TEST(SstCore, NaKilledByOverwrite)
{
    // The register made NA by the miss is overwritten before use: no
    // instruction should be deferred beyond the trigger itself.
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)
        addi x2, x0, 9    ; kills the NA without reading it
        add x3, x2, x2    ; fully available
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(3), 18u);
    EXPECT_LE(stat(*r.core, ".deferred_insts"), 1.0);
}

TEST(SstCore, AheadStrandOverlapsIndependentMisses)
{
    std::string src = independentMisses(8);
    CoreRun in = makeRun("inorder", src);
    CoreRun sst = makeRun("sst", src, sstParams(4));
    Cycle ci = in.run();
    Cycle cs = sst.run();
    EXPECT_TRUE(sst.archMatchesGolden());
    EXPECT_LT(cs, ci); // misses overlapped
    EXPECT_GT(stat(*sst.core, "l1_mshrs.demand_mlp.mean"), 2.0);
}

TEST(SstCore, MultipleCheckpointsOpenOnNewMisses)
{
    std::string src = independentMisses(10);
    CoreRun r = makeRun("sst", src, sstParams(4));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GE(stat(*r.core, ".checkpoints_taken"), 4.0);
    EXPECT_GE(stat(*r.core, ".epochs_committed"), 2.0);
}

TEST(SstCore, SpeculativeStoreForwardsToSpeculativeLoad)
{
    const char *src = R"(
        li  x1, 0x200000
        li  x7, 0x300000
        ld  x2, 0(x1)      ; trigger miss
        li  x3, 1111
        st  x3, 0(x7)      ; speculative store (operands available)
        ld  x4, 0(x7)      ; must forward 1111 from the SSQ
        add x5, x4, x2     ; NA (via x2)
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(5), 1116u);
}

TEST(SstCore, SsqForwardsLoadSpanningTwoStores)
{
    // An 8-byte load whose bytes come from two adjacent resolved
    // 4-byte speculative stores: specMemRead must byte-merge both.
    const char *src = R"(
        li  x1, 0x200000
        li  x7, 0x300000
        ld  x2, 0(x1)      ; trigger miss
        li  x3, 0x1111
        li  x4, 0x2222
        sw  x3, 0(x7)      ; bytes [0,4)
        sw  x4, 4(x7)      ; bytes [4,8)
        ld  x5, 0(x7)      ; spans both stores
        add x6, x5, x2
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(5), 0x0000222200001111ull);
    EXPECT_EQ(stat(*r.core, ".fail_mem"), 0.0);
}

TEST(SstCore, SsqForwardsPartOfWiderStore)
{
    // A 4-byte load entirely inside an 8-byte store must extract the
    // right byte range (here the upper word) from the SSQ entry.
    const char *src = R"(
        li   x1, 0x200000
        li   x7, 0x300000
        ld   x2, 0(x1)      ; trigger miss
        li   x3, 0x1111
        slli x3, x3, 32
        ori  x3, x3, 0x2222 ; x3 = 0x00001111_00002222
        st   x3, 0(x7)      ; 8-byte store
        lw   x4, 4(x7)      ; upper word only
        add  x5, x4, x2
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(4), 0x1111u);
    EXPECT_EQ(stat(*r.core, ".fail_mem"), 0.0);
}

TEST(SstCore, LoadOverlappingUnresolvedStoreDefers)
{
    // The load spans one resolved store and one whose data is still NA
    // (address known): it must park on the unresolved store instead of
    // forwarding a half-stale value — no conflict rollback afterwards.
    const char *src = R"(
        li  x1, 0x200000
        li  x7, 0x300000
        ld  x2, 0(x1)      ; trigger miss, x2 NA
        li  x3, 0x55
        sw  x3, 0(x7)      ; resolved, bytes [0,4)
        sw  x2, 4(x7)      ; NA data, known address -> unresolved slot
        ld  x4, 0(x7)      ; overlaps the unresolved store: must defer
        add x5, x4, x0
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(4), 0x0000000500000055ull);
    // Deferred set: sw (NA data), ld (memory dependence), add (NA x4).
    EXPECT_GE(stat(*r.core, ".deferred_insts"), 3.0);
    EXPECT_EQ(stat(*r.core, ".fail_mem"), 0.0);
    EXPECT_GE(stat(*r.core, ".full_commits"), 1.0);
}

TEST(SstCore, StoresHeldUntilCommit)
{
    // While speculating, the memory image must not contain speculative
    // store data; it appears only after commit.
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)      ; long miss keeps speculation open
        li  x3, 42
        st  x3, 64(x1)
        add x4, x2, x2
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    // Tick a little: enough for the store to execute speculatively but
    // before the miss (~150+ cycles) returns.
    for (int i = 0; i < 30 && !r.core->halted(); ++i)
        r.core->tick();
    EXPECT_EQ(r.image.read(0x200040, 8), 0u) << "store leaked";
    r.run();
    EXPECT_EQ(r.image.read(0x200040, 8), 42u);
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(SstCore, DeferredStoreViaNaData)
{
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)      ; miss
        st  x2, 64(x1)     ; NA data -> deferred store
        ld  x4, 64(x1)     ; memory-dependent on the deferred store
        addi x5, x4, 1
        halt
        .data 0x200000
        .word 7
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(5), 8u);
}

TEST(SstCore, DeferredBranchCorrectPredictionCommits)
{
    // Branch depends on the miss; direction is heavily biased so the
    // predictor gets it right and speculation commits.
    const char *src = R"(
        li   x1, 0x200000
        li   x7, 30
        li   x9, 0
    loop:
        ld   x2, 0(x1)     ; miss on first iteration only
        bne  x2, x0, good  ; always taken (x2 == 7)
        addi x9, x9, 100
    good:
        addi x9, x9, 1
        addi x7, x7, -1
        bne  x7, x0, loop
        halt
        .data 0x200000
        .word 7
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(9), 30u);
}

TEST(SstCore, DeferredBranchMispredictRollsBack)
{
    // First encounter of a deferred taken branch: the predictor (gshare,
    // cold counters weakly not-taken... ) may or may not fail, so use a
    // pattern that guarantees at least one mispredict: branch direction
    // flips based on loaded data the predictor has never seen.
    const char *src = R"(
        li   x1, 0x200000
        ld   x2, 0(x1)     ; miss, value 1
        beq  x2, x0, skip  ; NOT taken (x2=1); cold predictor says NT: ok
        addi x9, x9, 1
    skip:
        ld   x3, 4096(x1)  ; second miss, value 0
        bne  x3, x0, skip2 ; NOT taken; after training on 'bne taken'
        addi x9, x9, 2
    skip2:
        halt
        .data 0x200000
        .word 1
        .space 4088
        .word 0
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    // Whatever the predictor did, the final state must be correct.
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(9), 3u);
}

TEST(SstCore, GuaranteedRollbackStillCorrect)
{
    // Alternating data-dependent deferred branch: some rollbacks are
    // inevitable; architectural state must survive all of them.
    std::string src = R"(
        li   x1, 0x400000
        li   x7, 24
        li   x9, 0
        li   x10, 0x400000
    loop:
        ld   x2, 0(x10)     ; miss each iteration (new line)
        andi x3, x2, 1
        beq  x3, x0, even   ; direction depends on loaded data
        addi x9, x9, 1
        j    next
    even:
        addi x9, x9, 100
    next:
        addi x10, x10, 4096
        addi x7, x7, -1
        bne  x7, x0, loop
        halt
        .data 0x400000
)";
    Rng rng(9);
    for (int i = 0; i < 24; ++i) {
        src += ".word " + std::to_string(rng.below(1000)) + "\n";
        if (i != 23)
            src += ".space 4088\n";
    }
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    double fails = stat(*r.core, ".fail_branch");
    EXPECT_GT(fails, 0.0); // at least one rollback happened
}

TEST(SstCore, MemConflictDetectedAndRolledBack)
{
    // A store whose ADDRESS depends on the miss, followed by a load
    // that speculatively reads (L1 hit) the location the store will
    // later resolve to. The load executes ahead with stale data, so the
    // store's replay must detect the conflict and roll back.
    const char *src = R"(
        li   x1, 0x200000
        li   x7, 0x300000
        ld   x6, 0(x7)     ; warm up the conflict line
        add  x8, x6, x6
        li   x9, 400       ; spin long enough for everything to settle
    spin:
        addi x9, x9, -1
        bne  x9, x0, spin
        ld   x2, 0(x1)     ; miss; value = 0x300000
        st   x1, 0(x2)     ; address NA -> deferred, addr unknown
        ld   x4, 0(x7)     ; L1 hit: executes speculatively, stale!
        add  x5, x4, x0
        halt
        .data 0x200000
        .word 0x300000
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    // x4 must observe the store's value (0x200000), not stale zero.
    EXPECT_EQ(r.core->archState().reg(5), 0x200000u);
    EXPECT_GE(stat(*r.core, ".fail_mem"), 1.0);
}

TEST(SstCore, DqExhaustionDegradesToStall)
{
    // More dependent instructions than DQ entries: the core must stall
    // (not break) and still finish correctly.
    std::string src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)
)";
    for (int i = 0; i < 40; ++i)
        src += "add x2, x2, x2\n"; // all deferred (dq of 8 overflows)
    src += "halt\n.data 0x200000\n.word 3\n";
    CoreRun r = makeRun("sst", src, sstParams(2, false, 8, 8));
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GT(stat(*r.core, ".dq_full_stalls"), 0.0);
}

TEST(SstCore, SsqExhaustionStallsAhead)
{
    std::string src = R"(
        li  x1, 0x200000
        li  x7, 0x300000
        ld  x2, 0(x1)
)";
    for (int i = 0; i < 16; ++i)
        src += "st x1, " + std::to_string(i * 8) + "(x7)\n";
    src += "add x3, x2, x2\nhalt\n.data 0x200000\n.word 3\n";
    CoreRun r = makeRun("sst", src, sstParams(2, false, 64, 4));
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GT(stat(*r.core, ".ssq_full_stalls"), 0.0);
}

TEST(SstCore, CommittedInstCountExact)
{
    CoreRun r = makeRun("sst", independentMisses(6), sstParams(4));
    r.run();
    EXPECT_EQ(r.core->instsRetired(), r.goldenInsts);
}

TEST(ScoutCore, DiscardsWorkButPrefetches)
{
    std::string src = independentMisses(8);
    CoreRun in = makeRun("inorder", src);
    CoreRun scout = makeRun("sst", src, sstParams(1, true));
    Cycle ci = in.run();
    Cycle cs = scout.run();
    EXPECT_TRUE(scout.archMatchesGolden());
    EXPECT_LT(cs, ci); // prefetching effect
    EXPECT_GE(stat(*scout.core, ".scout_ends"), 1.0);
    EXPECT_EQ(stat(*scout.core, ".replayed_insts"), 0.0);
    EXPECT_GT(stat(*scout.core, ".discarded_insts"), 0.0);
}

TEST(ScoutCore, StoreLeakImpossible)
{
    // Scout drops speculative stores entirely; they must never reach
    // memory, and re-execution must produce them exactly once.
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)
        li  x3, 9
        st  x3, 64(x1)
        add x4, x2, x3
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(1, true));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.image.read(0x200040, 8), 9u);
}

TEST(ScoutCore, TrainsBranchPredictorDuringRunahead)
{
    CoreRun r = makeRun("sst", independentMisses(8), sstParams(1, true));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(SstCoreDeath, ScoutNeedsExactlyOneCheckpoint)
{
    CoreParams p = sstParams(2, true);
    Program prog = assemble("halt\n");
    HierarchyParams h;
    MemorySystem sys(h);
    MemoryImage img;
    CorePort &port = sys.addCore();
    EXPECT_DEATH(
        { SstCore core(p, prog, img, port); },
        "single-checkpoint");
}

TEST(SstCore, JalrReturnPredictedViaRas)
{
    // A function returns via jalr x0,x1 while its return register is
    // restored from a missing load: the RAS prediction must hold.
    const char *src = R"(
        li   x1, 0x200000
        st   x1, 8(x1)      ; will be overwritten by call linkage
        jal  x1, func
        addi x9, x9, 1
        halt
    func:
        li   x5, 0x200000
        ld   x6, 0(x5)      ; miss inside the function
        add  x7, x6, x6     ; deferred
        jalr x0, x1, 0      ; return (predictable via RAS)
        .data 0x200000
        .word 3
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
}
