/** @file Integration tests for the full memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

using namespace sst;

namespace
{

HierarchyParams
tinyParams()
{
    HierarchyParams h;
    h.l1i = CacheParams{"l1i", 1024, 2, 64, 2, ReplPolicy::Lru};
    h.l1d = CacheParams{"l1d", 1024, 2, 64, 3, ReplPolicy::Lru};
    h.l2 = CacheParams{"l2", 8192, 4, 64, 20, ReplPolicy::Lru};
    h.dram = DramParams{"dram", 4, 4096, 100, 10, 20, 5};
    h.l1MshrEntries = 4;
    h.l2PortCycles = 4;
    h.dataPrefetch.enabled = false;
    h.instPrefetch.enabled = false;
    return h;
}

} // namespace

TEST(Hierarchy, L1HitLatency)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    auto miss = p.access(AccessType::Load, 0x1000, 0);
    EXPECT_FALSE(miss.l1Hit);
    Cycle later = miss.readyCycle + 10;
    auto hit = p.access(AccessType::Load, 0x1008, later);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.readyCycle, later + 3);
}

TEST(Hierarchy, MissGoesThroughL2ToDram)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    auto res = p.access(AccessType::Load, 0x1000, 0);
    EXPECT_FALSE(res.l1Hit);
    EXPECT_FALSE(res.l2Hit);
    // At least L2 latency + DRAM base latency.
    EXPECT_GT(res.readyCycle, 120u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    auto first = p.access(AccessType::Load, 0x1000, 0);
    Cycle t = first.readyCycle + 1;
    // L1D: 8 sets; addresses 0x1000 + k*0x200 share set 0 (2-way).
    p.access(AccessType::Load, 0x1200, t);
    t += 500;
    p.access(AccessType::Load, 0x1400, t);
    t += 500;
    // 0x1000 evicted from L1 but still in L2.
    auto back = p.access(AccessType::Load, 0x1000, t);
    EXPECT_FALSE(back.l1Hit);
    EXPECT_TRUE(back.l2Hit);
    EXPECT_LT(back.readyCycle - t, 100u);
}

TEST(Hierarchy, MergedMissSharesCompletion)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    auto a = p.access(AccessType::Load, 0x1000, 0);
    auto b = p.access(AccessType::Load, 0x1008, 1); // same line
    EXPECT_EQ(b.readyCycle, a.readyCycle);
}

TEST(Hierarchy, MshrExhaustionRejects)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    for (unsigned i = 0; i < 4; ++i) {
        auto r = p.access(AccessType::Load, 0x10000 + i * 0x1000, 0);
        EXPECT_FALSE(r.rejected) << i;
    }
    auto rej = p.access(AccessType::Load, 0x90000, 0);
    EXPECT_TRUE(rej.rejected);
    EXPECT_GT(rej.retryCycle, 0u);
    // After the retry cycle the access is accepted.
    auto ok = p.access(AccessType::Load, 0x90000, rej.retryCycle + 1);
    EXPECT_FALSE(ok.rejected);
}

TEST(Hierarchy, StoreMissAllocatesAndDirties)
{
    auto params = tinyParams();
    MemorySystem sys(params);
    CorePort &p = sys.addCore();
    auto st = p.access(AccessType::Store, 0x3000, 0);
    EXPECT_FALSE(st.l1Hit);
    Cycle t = st.readyCycle + 1;
    // Evict 0x3000 by filling its set; dirty writeback reaches L2.
    p.access(AccessType::Load, 0x3200, t);
    t += 500;
    p.access(AccessType::Load, 0x3400, t);
    t += 500;
    auto flat = sys.stats().flatten();
    EXPECT_GE(flat["memsys.core0_mem.l1d.writebacks"], 1.0);
}

TEST(Hierarchy, PrefetcherBringsNextLine)
{
    auto params = tinyParams();
    params.dataPrefetch = PrefetcherParams{true, 1, 1};
    MemorySystem sys(params);
    CorePort &p = sys.addCore();
    auto r = p.access(AccessType::Load, 0x1000, 0);
    // The next line should be in flight or present.
    Cycle t = r.readyCycle + 300;
    auto next = p.access(AccessType::Load, 0x1040, t);
    EXPECT_TRUE(next.l1Hit);
    auto flat = sys.stats().flatten();
    EXPECT_GE(flat["memsys.core0_mem.l1d_pf.issued"], 1.0);
    EXPECT_GE(flat["memsys.core0_mem.l1d_pf.useful"], 1.0);
}

TEST(Hierarchy, InstFetchUsesL1i)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    auto r = p.access(AccessType::InstFetch, 0x100000, 0);
    EXPECT_FALSE(r.l1Hit);
    auto again = p.access(AccessType::InstFetch, 0x100000,
                          r.readyCycle + 5);
    EXPECT_TRUE(again.l1Hit);
    auto flat = sys.stats().flatten();
    EXPECT_GE(flat["memsys.core0_mem.l1i.accesses"], 2.0);
    EXPECT_DOUBLE_EQ(flat["memsys.core0_mem.l1d.accesses"], 0.0);
}

TEST(Hierarchy, AddressSaltSeparatesCores)
{
    MemorySystem sys(tinyParams());
    CorePort &a = sys.addCore();
    CorePort &b = sys.addCore();
    b.setAddressSalt(Addr{1} << 30);
    a.access(AccessType::Load, 0x1000, 0);
    // Core b accessing the "same" program address must not hit core a's
    // L2 line.
    auto rb = b.access(AccessType::Load, 0x1000, 1);
    EXPECT_FALSE(rb.l2Hit);
}

TEST(Hierarchy, SharedL2VisibleAcrossCores)
{
    MemorySystem sys(tinyParams());
    CorePort &a = sys.addCore();
    CorePort &b = sys.addCore();
    auto ra = a.access(AccessType::Load, 0x1000, 0);
    auto rb = b.access(AccessType::Load, 0x1000, ra.readyCycle + 1);
    EXPECT_FALSE(rb.l1Hit); // own L1 is cold
    EXPECT_TRUE(rb.l2Hit);  // but L2 is shared
}

TEST(Hierarchy, FlushAllResets)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    auto r = p.access(AccessType::Load, 0x1000, 0);
    sys.flushAll();
    auto again = p.access(AccessType::Load, 0x1000, r.readyCycle + 10);
    EXPECT_FALSE(again.l1Hit);
    EXPECT_FALSE(again.l2Hit);
}

TEST(Hierarchy, ProbeDoesNotDisturbState)
{
    MemorySystem sys(tinyParams());
    CorePort &p = sys.addCore();
    EXPECT_FALSE(p.probeL1d(0x1000));
    auto r = p.access(AccessType::Load, 0x1000, 0);
    (void)r;
    EXPECT_TRUE(p.probeL1d(0x1000));
    auto flat = sys.stats().flatten();
    double accesses = flat["memsys.core0_mem.l1d.accesses"];
    EXPECT_FALSE(p.probeL1d(0x5000));
    flat = sys.stats().flatten();
    EXPECT_DOUBLE_EQ(flat["memsys.core0_mem.l1d.accesses"], accesses);
}

TEST(HierarchyDeath, MismatchedLineSizesFatal)
{
    HierarchyParams h = tinyParams();
    h.l1d.lineBytes = 32;
    EXPECT_DEATH({ MemorySystem sys(h); }, "line size");
}
