/** @file Unit tests for the table/CSV reporters. */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace sst;

TEST(Table, RendersHeaderAndRows)
{
    Table t("demo");
    t.setHeader({"col_a", "b"});
    t.addRow({"1", "two"});
    t.addRow({"333", "4"});
    std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("col_a"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table t("align");
    t.setHeader({"x", "y"});
    t.addRow({"longvalue", "1"});
    std::string out = t.render();
    // Header cell padded to the widest row value.
    EXPECT_NE(out.find("| x        "), std::string::npos);
}

TEST(Table, CaptionAppears)
{
    Table t("c");
    t.setHeader({"a"});
    t.addRow({"1"});
    t.setCaption("note: something");
    EXPECT_NE(t.render().find("note: something"), std::string::npos);
}

TEST(Table, NumFormatsDecimals)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    Table t("bad");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row has 1 cells");
}

TEST(Csv, EmitsMarkers)
{
    testing::internal::CaptureStdout();
    emitCsv("tag1", {"h1", "h2"}, {{"1", "2"}, {"3", "4"}});
    std::string out = testing::internal::GetCapturedStdout();
    EXPECT_NE(out.find("BEGIN_CSV tag1"), std::string::npos);
    EXPECT_NE(out.find("h1,h2"), std::string::npos);
    EXPECT_NE(out.find("3,4"), std::string::npos);
    EXPECT_NE(out.find("END_CSV tag1"), std::string::npos);
}
