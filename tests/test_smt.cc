/** @file Tests for the dual-thread (CMT) core. */

#include <gtest/gtest.h>

#include "core/smt.hh"
#include "sim_test_util.hh"
#include "workloads/workloads.hh"

using namespace sst;
using namespace sst::test;

namespace
{

struct SmtRun
{
    Program p0, p1;
    std::unique_ptr<MemorySystem> memsys;
    MemoryImage m0, m1;
    std::unique_ptr<SmtCore> core;

    ArchState golden0, golden1;
    std::uint64_t goldenInsts0 = 0, goldenInsts1 = 0;

    void
    run(std::uint64_t max_cycles = 10'000'000)
    {
        while (!core->halted() && core->cycles() < max_cycles)
            core->tick();
    }
};

SmtRun
makeSmtRun(const std::string &src0, const std::string &src1,
           CoreParams params = {})
{
    SmtRun r;
    r.p0 = assemble(src0, "t0");
    r.p1 = assemble(src1, "t1");
    r.memsys = std::make_unique<MemorySystem>(HierarchyParams{});
    r.m0.loadSegments(r.p0);
    r.m1.loadSegments(r.p1);
    CorePort &port = r.memsys->addCore();
    params.name = "smt";
    r.core = std::make_unique<SmtCore>(
        params, std::array<const Program *, 2>{&r.p0, &r.p1},
        std::array<MemoryImage *, 2>{&r.m0, &r.m1}, port);

    for (int t = 0; t < 2; ++t) {
        MemoryImage golden;
        golden.loadSegments(t == 0 ? r.p0 : r.p1);
        Executor exec(t == 0 ? r.p0 : r.p1, golden);
        ArchState st;
        std::uint64_t n = exec.run(st, 50'000'000ULL);
        if (t == 0) {
            r.golden0 = st;
            r.goldenInsts0 = n;
        } else {
            r.golden1 = st;
            r.goldenInsts1 = n;
        }
    }
    return r;
}

std::string
countLoop(int trips, int inc)
{
    return "li x1, " + std::to_string(trips)
           + "\nli x2, 0\nloop:\naddi x2, x2, " + std::to_string(inc)
           + "\naddi x1, x1, -1\nbne x1, x0, loop\nhalt\n";
}

std::string
missLoop(int trips)
{
    std::string src = "li x1, 0x400000\nli x3, " + std::to_string(trips)
                      + "\nli x4, 0\nloop:\nld x2, 0(x1)\n"
                        "add x4, x4, x2\naddi x1, x1, 4096\n"
                        "addi x3, x3, -1\nbne x3, x0, loop\nhalt\n"
                        ".data 0x400000\n";
    for (int i = 0; i < trips; ++i) {
        src += ".word " + std::to_string(i + 1) + "\n";
        if (i != trips - 1)
            src += ".space 4088\n";
    }
    return src;
}

} // namespace

TEST(Smt, BothContextsMatchGolden)
{
    SmtRun r = makeSmtRun(countLoop(500, 3), countLoop(300, 7));
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.core->archState(0).regsEqual(r.golden0));
    EXPECT_TRUE(r.core->archState(1).regsEqual(r.golden1));
    EXPECT_EQ(r.core->instsRetired(0), r.goldenInsts0);
    EXPECT_EQ(r.core->instsRetired(1), r.goldenInsts1);
}

TEST(Smt, ContextsShareWidthFairly)
{
    // Two identical compute loops: both should finish in roughly the
    // same number of cycles, each getting about half the pipeline.
    SmtRun r = makeSmtRun(countLoop(2000, 1), countLoop(2000, 1));
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_EQ(r.core->instsRetired(0), r.core->instsRetired(1));
}

TEST(Smt, AggregateBeatsSingleThreadOnMissBoundCode)
{
    // One miss-bound thread leaves most issue slots idle; a second
    // thread soaks them up: aggregate IPC must clearly beat solo IPC.
    std::string miss = missLoop(40);
    SmtRun solo = makeSmtRun(miss, "halt\n");
    solo.run();
    double solo_ipc = static_cast<double>(solo.core->instsRetired(0))
                      / static_cast<double>(solo.core->cycles());

    SmtRun both = makeSmtRun(miss, countLoop(20000, 1));
    both.run();
    EXPECT_TRUE(both.core->halted());
    EXPECT_GT(both.core->aggregateIpc(), 1.5 * solo_ipc);
    EXPECT_TRUE(both.core->archState(0).regsEqual(both.golden0));
    EXPECT_TRUE(both.core->archState(1).regsEqual(both.golden1));
}

TEST(Smt, MissBoundThreadBarelySlowsComputeThread)
{
    // The miss-bound context mostly waits on DRAM; the compute context
    // should run near its solo speed (slot donation works).
    std::string compute = countLoop(20000, 1);
    SmtRun solo = makeSmtRun(compute, "halt\n");
    solo.run();
    Cycle solo_cycles = solo.core->cycles();

    SmtRun both = makeSmtRun(compute, missLoop(30));
    both.run();
    // Allow 2x: the co-runner takes its fair share of slots at times.
    EXPECT_LT(both.core->cycles(), solo_cycles * 2);
}

TEST(Smt, SaltsKeepAddressSpacesApart)
{
    // Both threads store different values at the same virtual address;
    // each must read back its own.
    const char *t0 = R"(
        li x1, 0x200000
        li x2, 111
        st x2, 0(x1)
        ld x3, 0(x1)
        halt
    )";
    const char *t1 = R"(
        li x1, 0x200000
        li x2, 222
        st x2, 0(x1)
        ld x3, 0(x1)
        halt
    )";
    SmtRun r = makeSmtRun(t0, t1);
    r.run();
    EXPECT_EQ(r.core->archState(0).reg(3), 111u);
    EXPECT_EQ(r.core->archState(1).reg(3), 222u);
}

TEST(Smt, HaltedContextDonatesEverything)
{
    SmtRun r = makeSmtRun("halt\n", countLoop(4000, 1));
    r.run();
    EXPECT_TRUE(r.core->halted());
    // Thread 1 should reach near-solo IPC (~1.7 on this loop).
    double ipc1 = static_cast<double>(r.core->instsRetired(1))
                  / static_cast<double>(r.core->cycles());
    EXPECT_GT(ipc1, 1.3);
}

TEST(Smt, WorkloadPairRunsToCompletion)
{
    WorkloadParams wp;
    wp.lengthScale = 0.05;
    wp.footprintScale = 0.25;
    Workload w0 = makeWorkload("oltp_mix", wp);
    wp.seed = 77;
    Workload w1 = makeWorkload("hash_join", wp);

    MemorySystem memsys{HierarchyParams{}};
    MemoryImage m0, m1;
    m0.loadSegments(w0.program);
    m1.loadSegments(w1.program);
    CorePort &port = memsys.addCore();
    CoreParams params;
    params.name = "smt";
    SmtCore core(params,
                 std::array<const Program *, 2>{&w0.program, &w1.program},
                 std::array<MemoryImage *, 2>{&m0, &m1}, port);
    while (!core.halted() && core.cycles() < 100'000'000ULL)
        core.tick();
    EXPECT_TRUE(core.halted());
    EXPECT_GT(core.aggregateIpc(), 0.0);
}
