/** @file Tests for the data TLB and its role as an SST trigger. */

#include <gtest/gtest.h>

#include "mem/tlb.hh"
#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

double
stat(Core &core, const std::string &suffix)
{
    auto flat = core.stats().flatten();
    for (const auto &kv : flat)
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            return kv.second;
    return 0.0;
}

} // namespace

TEST(Tlb, DisabledAlwaysHits)
{
    StatGroup sg("t");
    Tlb tlb(TlbParams{0, 4096, 100}, "tlb", sg);
    EXPECT_FALSE(tlb.enabled());
    auto r = tlb.access(0x123456, 5);
    EXPECT_TRUE(r.hit);
}

TEST(Tlb, MissThenHitWithinPage)
{
    StatGroup sg("t");
    Tlb tlb(TlbParams{4, 4096, 100}, "tlb", sg);
    auto miss = tlb.access(0x10000, 0);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.readyCycle, 100u);
    // Same page, after the walk finished: hit.
    auto hit = tlb.access(0x10ff8, 200);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyCycle, 200u);
}

TEST(Tlb, WalkInFlightReportsMiss)
{
    StatGroup sg("t");
    Tlb tlb(TlbParams{4, 4096, 100}, "tlb", sg);
    tlb.access(0x10000, 0);
    auto again = tlb.access(0x10008, 50); // walk still pending
    EXPECT_FALSE(again.hit);
    EXPECT_EQ(again.readyCycle, 100u);
}

TEST(Tlb, LruEviction)
{
    StatGroup sg("t");
    Tlb tlb(TlbParams{2, 4096, 10}, "tlb", sg);
    tlb.access(0x1000, 0);  // page 1
    tlb.access(0x2000, 20); // page 2
    tlb.access(0x1000, 40); // touch page 1 (MRU)
    tlb.access(0x3000, 60); // page 3 evicts page 2
    EXPECT_TRUE(tlb.access(0x1000, 100).hit);
    EXPECT_FALSE(tlb.access(0x2000, 120).hit);
}

TEST(Tlb, FlushDropsEverything)
{
    StatGroup sg("t");
    Tlb tlb(TlbParams{4, 4096, 10}, "tlb", sg);
    tlb.access(0x1000, 0);
    tlb.flush();
    EXPECT_FALSE(tlb.access(0x1000, 100).hit);
}

TEST(Tlb, StatsTrackMissRate)
{
    StatGroup sg("t");
    Tlb tlb(TlbParams{4, 4096, 10}, "tlb", sg);
    tlb.access(0x1000, 0);
    tlb.access(0x1008, 50);
    auto flat = sg.flatten();
    EXPECT_DOUBLE_EQ(flat["t.tlb.misses"], 1.0);
    EXPECT_DOUBLE_EQ(flat["t.tlb.hits"], 1.0);
    EXPECT_DOUBLE_EQ(flat["t.tlb.miss_rate"], 0.5);
}

TEST(TlbTrigger, SstDefersOnTlbMiss)
{
    // One L1-resident page (warmed via a tight loop) then a jump to a
    // NEW page: the access hits... actually the simplest trigger check:
    // a load whose line is in L1 but whose PAGE is cold must still
    // trigger speculation when the TLB is enabled.
    const char *src = R"(
        li   x1, 0x200000
        ld   x2, 0(x1)     ; cold line AND cold page
        add  x3, x2, x2    ; deferred
        halt
        .data 0x200000
        .word 11
    )";
    HierarchyParams mem;
    mem.dtlb = TlbParams{16, 4096, 150};
    CoreRun r = makeRun("sst", src, sstParams(2), mem);
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GE(stat(*r.core, "dtlb.misses"), 1.0);
    EXPECT_GE(stat(*r.core, ".checkpoints_taken"), 1.0);
}

TEST(TlbTrigger, TlbPressureSlowsInorderMoreThanSst)
{
    // Random pages across a 64-page footprint with a 4-entry TLB:
    // in-order eats every walk serially, SST overlaps them.
    std::string src = "li x1, 0x400000\nli x9, 0\n";
    for (int i = 0; i < 24; ++i) {
        src += "ld x5, " + std::to_string(i * 4096) + "(x1)\n";
        src += "add x9, x9, x5\n";
    }
    src += "halt\n.data 0x400000\n";
    for (int i = 0; i < 24; ++i) {
        src += ".word " + std::to_string(i + 1) + "\n";
        if (i != 23)
            src += ".space 4088\n";
    }
    HierarchyParams mem;
    mem.dtlb = TlbParams{4, 4096, 150};
    CoreRun in = makeRun("inorder", src, CoreParams{}, mem);
    CoreRun sst = makeRun("sst", src, sstParams(4), mem);
    Cycle ci = in.run();
    Cycle cs = sst.run();
    EXPECT_TRUE(in.archMatchesGolden());
    EXPECT_TRUE(sst.archMatchesGolden());
    EXPECT_LT(cs, ci);
}

TEST(TlbTrigger, DifferentialWithTlbEnabled)
{
    // Architectural equivalence must hold with translation modelling
    // on, across core models.
    HierarchyParams mem;
    mem.dtlb = TlbParams{8, 4096, 120};
    for (const char *model : {"inorder", "ooo", "sst"}) {
        std::string src = R"(
            li   x1, 0x400000
            li   x7, 12
            li   x9, 0
        loop:
            ld   x2, 0(x1)
            add  x9, x9, x2
            st   x9, 8(x1)
            addi x1, x1, 8192
            addi x7, x7, -1
            bne  x7, x0, loop
            halt
            .data 0x400000
)";
        for (int i = 0; i < 12; ++i) {
            src += ".word " + std::to_string(i * 3) + "\n";
            if (i != 11)
                src += ".space 8184\n";
        }
        CoreParams p = std::string(model) == "sst" ? sstParams(2)
                                                   : CoreParams{};
        CoreRun r = makeRun(model, src, p, mem);
        r.run();
        EXPECT_TRUE(r.archMatchesGolden()) << model;
    }
}
