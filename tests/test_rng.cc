/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"

using namespace sst;

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    std::uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowZeroBoundIsZero)
{
    Rng rng(1);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    std::map<std::uint64_t, int> hist;
    for (int i = 0; i < 4000; ++i)
        ++hist[rng.below(8)];
    EXPECT_EQ(hist.size(), 8u);
    for (const auto &kv : hist)
        EXPECT_GT(kv.second, 300); // roughly uniform
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeDegenerate)
{
    Rng rng(12);
    EXPECT_EQ(rng.range(5, 5), 5);
    EXPECT_EQ(rng.range(5, 4), 5);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.real();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.03);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(14);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ZipfBounds)
{
    Rng rng(15);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(rng.zipf(100, 0.9), 100u);
}

TEST(Rng, ZipfSkewsTowardZero)
{
    Rng rng(16);
    int low = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        if (rng.zipf(1000, 1.1) < 10)
            ++low;
    // With s=1.1 the first 10 of 1000 ranks carry a large share.
    EXPECT_GT(low, n / 4);
}

TEST(Rng, ZipfZeroSkewIsUniformish)
{
    Rng rng(17);
    int low = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        if (rng.zipf(1000, 0.0) < 100)
            ++low;
    EXPECT_NEAR(low, n / 10, n / 25);
}

TEST(Rng, ZipfSingleElement)
{
    Rng rng(18);
    EXPECT_EQ(rng.zipf(1, 1.0), 0u);
    EXPECT_EQ(rng.zipf(0, 1.0), 0u);
}
