/**
 * @file
 * Tests for checkpoint-warmed sampling (sim/profile): the profiling
 * pass's determinism, the on-disk snapshot library's safety properties
 * (identity rejection, corrupt-member triage, concurrent population),
 * the cache-key hash, and the library-served sampled / warm-started
 * detailed runs' agreement with ground truth.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "func/executor.hh"
#include "func/memory_image.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "sim/profile.hh"
#include "sim/sampling.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

Workload
wl(const std::string &name, std::uint64_t seed = 42)
{
    WorkloadParams p;
    p.seed = seed;
    p.lengthScale = 0.4;
    p.footprintScale = 0.25;
    return makeWorkload(name, p);
}

ProfileParams
params(std::uint64_t stride = 5000, unsigned maxRegions = 4)
{
    ProfileParams pp;
    pp.regionInsts = stride;
    pp.maxRegions = maxRegions;
    return pp;
}

/** Effective config + hash for a preset with optional overrides. */
std::uint64_t
hashFor(MachineConfig &mc, Config &cfg)
{
    applyOverrides(mc, cfg);
    return memConfigHash(mc, cfg);
}

std::string
freshDir(const std::string &stem)
{
    std::string dir = ::testing::TempDir() + "sstsim_profile_" + stem;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

TEST(Profile, BuildIsDeterministic)
{
    Workload w = wl("hash_join");
    MachineConfig mc = makePreset("sst2");
    ProfileLibrary a = buildProfileLibrary(mc, w.program, params(), 1);
    ProfileLibrary b = buildProfileLibrary(mc, w.program, params(), 1);
    EXPECT_EQ(a.totalInsts, b.totalInsts);
    EXPECT_EQ(a.warmAccesses, b.warmAccesses);
    EXPECT_EQ(a.warmHits, b.warmHits);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    EXPECT_GT(a.usableCount(), 0u);
    for (std::size_t i = 0; i < a.regions.size(); ++i) {
        EXPECT_EQ(a.regions[i].selected, b.regions[i].selected);
        EXPECT_EQ(a.regions[i].weight, b.regions[i].weight);
        EXPECT_EQ(a.regions[i].member, b.regions[i].member) << i;
    }
}

TEST(Profile, SelectionWeightsCoverProgram)
{
    Workload w = wl("oltp_mix");
    MachineConfig mc = makePreset("sst2");
    ProfileLibrary lib = buildProfileLibrary(mc, w.program, params(), 1);
    ASSERT_GT(lib.regions.size(), 2u);
    EXPECT_LE(lib.usableCount(), 4u);
    std::uint64_t covered = 0, total = 0;
    for (const auto &r : lib.regions) {
        total += r.lengthInsts;
        if (r.selected) {
            covered += r.weight;
            EXPECT_FALSE(r.member.empty());
        } else {
            EXPECT_TRUE(r.member.empty());
        }
    }
    // Every region's instructions are assigned to exactly one
    // representative, so the weights partition the whole program.
    EXPECT_EQ(covered, lib.totalInsts);
    EXPECT_EQ(total, lib.totalInsts);
}

TEST(Profile, SaveLoadRoundTripIsByteIdentical)
{
    Workload w = wl("hash_join");
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    ProfileLibrary built =
        buildProfileLibrary(mc, w.program, params(), hash);
    std::string dir = freshDir("roundtrip");
    ASSERT_TRUE(saveProfileLibrary(built, dir).ok());

    auto loaded =
        loadProfileLibrary(dir, mc, w.program, params(), hash);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    const ProfileLibrary &lib = loaded.value();
    EXPECT_EQ(lib.totalInsts, built.totalInsts);
    EXPECT_EQ(lib.warmAccesses, built.warmAccesses);
    EXPECT_EQ(lib.fingerprint, built.fingerprint);
    ASSERT_EQ(lib.regions.size(), built.regions.size());
    for (std::size_t i = 0; i < lib.regions.size(); ++i)
        EXPECT_EQ(lib.regions[i].member, built.regions[i].member) << i;
}

TEST(Profile, EnsureBuildsOnceThenServesFromCache)
{
    Workload w = wl("oltp_mix");
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    std::string root = freshDir("ensure");

    auto first = ensureProfileLibrary(mc, w.program, params(), root, hash);
    ASSERT_TRUE(first.ok()) << first.error().message;
    std::string dir =
        profileCacheDir(root, mc, w.program, params(), hash);
    ASSERT_TRUE(std::filesystem::exists(dir + "/library.manifest"));

    auto second =
        ensureProfileLibrary(mc, w.program, params(), root, hash);
    ASSERT_TRUE(second.ok()) << second.error().message;
    ASSERT_EQ(first.value().regions.size(),
              second.value().regions.size());
    for (std::size_t i = 0; i < first.value().regions.size(); ++i)
        EXPECT_EQ(first.value().regions[i].member,
                  second.value().regions[i].member);
}

TEST(Profile, WrongProgramIdentityRejected)
{
    Workload a = wl("hash_join", 42);
    Workload b = wl("hash_join", 43); // same name, different program
    ASSERT_NE(programFingerprint(a.program),
              programFingerprint(b.program));
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    ProfileLibrary lib =
        buildProfileLibrary(mc, a.program, params(), hash);
    std::string dir = freshDir("identity");
    ASSERT_TRUE(saveProfileLibrary(lib, dir).ok());

    auto wrong = loadProfileLibrary(dir, mc, b.program, params(), hash);
    EXPECT_FALSE(wrong.ok());

    auto wrongHash =
        loadProfileLibrary(dir, mc, a.program, params(), hash ^ 1);
    EXPECT_FALSE(wrongHash.ok());
}

TEST(Profile, ForeignMemberSkippedWithWarning)
{
    // A member file whose bytes are a *valid* snapshot of a different
    // program (planted under this library's member name) must be
    // caught by the per-member fingerprint check, warned about and
    // dropped — while the untouched members stay usable.
    Workload a = wl("hash_join", 42);
    Workload b = wl("hash_join", 43);
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    ProfileLibrary libA =
        buildProfileLibrary(mc, a.program, params(), hash);
    ProfileLibrary libB =
        buildProfileLibrary(mc, b.program, params(), hash);
    ASSERT_GE(libA.usableCount(), 2u);
    std::string dirA = freshDir("foreignA");
    std::string dirB = freshDir("foreignB");
    ASSERT_TRUE(saveProfileLibrary(libA, dirA).ok());
    ASSERT_TRUE(saveProfileLibrary(libB, dirB).ok());

    // Find one selected region present in both and swap the files.
    std::string victim;
    for (const auto &r : libA.regions)
        if (r.selected)
            for (const auto &s : libB.regions)
                if (s.selected && s.index == r.index)
                    victim = "region-" + std::to_string(r.index)
                             + ".snap";
    ASSERT_FALSE(victim.empty());
    std::filesystem::copy_file(
        dirB + "/" + victim, dirA + "/" + victim,
        std::filesystem::copy_options::overwrite_existing);

    LogCapture capture;
    auto loaded =
        loadProfileLibrary(dirA, mc, a.program, params(), hash);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().usableCount(), libA.usableCount() - 1);
    EXPECT_NE(capture.text().find("warn"), std::string::npos)
        << "skipping a foreign member must warn: " << capture.text();
}

TEST(Profile, TruncatedMemberSkippedWithWarning)
{
    Workload w = wl("oltp_mix");
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    ProfileLibrary lib =
        buildProfileLibrary(mc, w.program, params(), hash);
    ASSERT_GE(lib.usableCount(), 2u);
    std::string dir = freshDir("truncated");
    ASSERT_TRUE(saveProfileLibrary(lib, dir).ok());

    // Truncate the first selected member to half its size.
    std::string victim;
    std::uintmax_t size = 0;
    for (const auto &r : lib.regions)
        if (r.selected) {
            victim =
                dir + "/region-" + std::to_string(r.index) + ".snap";
            size = r.member.size();
            break;
        }
    ASSERT_FALSE(victim.empty());
    std::filesystem::resize_file(victim, size / 2);

    LogCapture capture;
    auto loaded = loadProfileLibrary(dir, mc, w.program, params(), hash);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().usableCount(), lib.usableCount() - 1);
    EXPECT_FALSE(capture.text().empty());
}

TEST(Profile, CorruptBytesSkippedWithWarning)
{
    Workload w = wl("oltp_mix");
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    ProfileLibrary lib =
        buildProfileLibrary(mc, w.program, params(), hash);
    std::string dir = freshDir("corrupt");
    ASSERT_TRUE(saveProfileLibrary(lib, dir).ok());

    std::string victim;
    for (const auto &r : lib.regions)
        if (r.selected) {
            victim =
                dir + "/region-" + std::to_string(r.index) + ".snap";
            break;
        }
    ASSERT_FALSE(victim.empty());
    {
        // Flip one byte in the middle; the whole-file checksum must
        // catch it before any deserialization is attempted.
        std::fstream f(victim, std::ios::in | std::ios::out
                                   | std::ios::binary);
        f.seekp(static_cast<std::streamoff>(
            std::filesystem::file_size(victim) / 2));
        char c = 0;
        f.read(&c, 1);
        f.seekp(-1, std::ios::cur);
        c = static_cast<char>(c ^ 0x5a);
        f.write(&c, 1);
    }

    LogCapture capture;
    auto loaded = loadProfileLibrary(dir, mc, w.program, params(), hash);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().usableCount(), lib.usableCount() - 1);
    EXPECT_FALSE(capture.text().empty());
}

TEST(Profile, ConcurrentWritersLeaveOneValidEntry)
{
    Workload w = wl("hash_join");
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    ProfileLibrary lib =
        buildProfileLibrary(mc, w.program, params(), hash);
    std::string dir = freshDir("concurrent");

    // Byte-identical writers racing on one entry (the sweep-runner
    // cache-population scenario): rename staging means readers never
    // see a torn member, and last-rename-wins is harmless.
    std::vector<std::thread> writers;
    for (int i = 0; i < 4; ++i)
        writers.emplace_back(
            [&] { ASSERT_TRUE(saveProfileLibrary(lib, dir).ok()); });
    for (auto &t : writers)
        t.join();

    auto loaded = loadProfileLibrary(dir, mc, w.program, params(), hash);
    ASSERT_TRUE(loaded.ok()) << loaded.error().message;
    EXPECT_EQ(loaded.value().usableCount(), lib.usableCount());
    for (std::size_t i = 0; i < lib.regions.size(); ++i)
        EXPECT_EQ(loaded.value().regions[i].member,
                  lib.regions[i].member);
}

TEST(Profile, MemConfigHashTracksMemoryNotCore)
{
    MachineConfig base = makePreset("sst2");
    Config baseCfg;
    std::uint64_t h0 = hashFor(base, baseCfg);

    // A core-model knob must not move the hash: core-axis sweep points
    // share one library entry.
    MachineConfig coreMc = makePreset("sst2");
    Config coreCfg;
    coreCfg.set("core.rob_entries", "64");
    EXPECT_EQ(hashFor(coreMc, coreCfg), h0);

    // A memory knob shapes member bytes, so it must move the hash.
    MachineConfig memMc = makePreset("sst2");
    Config memCfg;
    memCfg.set("mem.l1d_kb", "16");
    EXPECT_NE(hashFor(memMc, memCfg), h0);

    // So does the preset itself.
    MachineConfig other = makePreset("inorder");
    Config otherCfg;
    EXPECT_NE(hashFor(other, otherCfg), h0);
}

TEST(Profile, RegionHintClamps)
{
    EXPECT_EQ(profileRegionHint(0), 10'000u);
    EXPECT_EQ(profileRegionHint(320'000), 20'000u);
    EXPECT_GE(profileRegionHint(1ULL << 40), 2'000'000u);
    EXPECT_LE(profileRegionHint(1ULL << 40), 2'000'000u);
}

TEST(Profile, LibrarySampledTracksFullRun)
{
    Workload w = wl("hash_join");
    MachineConfig mc = makePreset("sst2");
    ProfileLibrary lib =
        buildProfileLibrary(mc, w.program, params(5000, 8), 1);
    SampleParams sp;
    sp.detailInsts = 3000;
    SampledResult r = runSampledFromLibrary(mc, w.program, lib, sp);
    RunResult full = runOn("sst2", w.program);
    ASSERT_GT(r.windowIpc.size(), 1u);
    EXPECT_EQ(r.windowWeight.size(), r.windowIpc.size());
    double err = std::abs(r.ipc - full.ipc) / full.ipc;
    EXPECT_LT(err, 0.35) << "library " << r.ipc << " vs full "
                         << full.ipc;
}

TEST(Profile, WarmStartedRunMatchesGolden)
{
    Workload w = wl("oltp_mix");
    MachineConfig mc = makePreset("sst2");
    Config cfg;
    std::uint64_t hash = hashFor(mc, cfg);
    ProfileLibrary lib =
        buildProfileLibrary(mc, w.program, params(), hash);

    MemoryImage goldenMem;
    goldenMem.loadSegments(w.program);
    Executor golden(w.program, goldenMem);
    ArchState goldenState;
    std::uint64_t goldenInsts =
        golden.run(goldenState, 2'000'000'000ULL);
    ASSERT_TRUE(goldenState.halted);

    Machine machine(mc, w.program);
    std::uint64_t skipped = 0;
    auto warmed =
        warmStartMachine(machine, lib, goldenInsts / 2, &skipped);
    ASSERT_TRUE(warmed.ok()) << warmed.error().message;
    EXPECT_GT(skipped, 0u);
    EXPECT_LT(skipped, goldenInsts);

    RunResult r = machine.run();
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.insts, goldenInsts - skipped);
    EXPECT_TRUE(machine.core().archState().regsEqual(goldenState));
    EXPECT_TRUE(machine.image().contentEquals(goldenMem));
}

TEST(Profile, Ci95Math)
{
    SampledResult r;
    r.windowIpc = {1.0, 2.0, 3.0};
    // Unweighted: 1.96 * s / sqrt(n) with s = 1.
    EXPECT_NEAR(r.ipcCi95(), 1.96 / std::sqrt(3.0), 1e-9);
    r.windowWeight = {1.0, 1.0, 1.0};
    EXPECT_NEAR(r.ipcCi95(), 1.96 / std::sqrt(3.0), 1e-9);
    // One dominant weight shrinks the effective sample size, widening
    // nothing here (variance also collapses toward that window).
    r.windowIpc = {2.0};
    r.windowWeight = {5.0};
    EXPECT_EQ(r.ipcCi95(), 0.0);
}

TEST(Profile, CacheLookupNeedsResolvedStride)
{
    Workload w = wl("hash_join");
    MachineConfig mc = makePreset("sst2");
    ProfileParams pp; // regionInsts = 0 (auto)
    std::string root = freshDir("stride");
    auto r = ensureProfileLibrary(mc, w.program, pp, root, 1);
    EXPECT_FALSE(r.ok());
    // In-memory build (no cache) may auto-resolve.
    auto mem = ensureProfileLibrary(mc, w.program, pp, "", 1);
    EXPECT_TRUE(mem.ok()) << mem.error().message;
}
