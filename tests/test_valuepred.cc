/**
 * @file
 * Load-value prediction: unit tests for the ValuePredictor table
 * (learning, confidence gating, speculative chain advance, squash,
 * serialization) and mechanism-level tests of the SST core running on
 * predicted values — conversion of deferral stalls into overlap,
 * verify-on-fill squashes, and the RAS-restore regression for
 * speculative call/return churn across rollbacks.
 */

#include <gtest/gtest.h>

#include "branch/valuepred.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "sim_test_util.hh"
#include "snap/snap.hh"

using namespace sst;
using namespace sst::test;

// ---------------------------------------------------------------- unit

TEST(ValuePredictor, OffNeverPredicts)
{
    ValuePredictor p(ValuePredKind::Off);
    EXPECT_FALSE(p.enabled());
    for (int i = 0; i < 16; ++i)
        p.train(100, 7);
    std::uint64_t v = 0;
    EXPECT_FALSE(p.predict(100, v));
}

TEST(ValuePredictor, LastValueArmsOnlyAfterConfidence)
{
    ValuePredictor p(ValuePredKind::LastValue);
    std::uint64_t v = 0;
    p.train(100, 42); // allocation
    for (int i = 0; i < 3; ++i) {
        EXPECT_FALSE(p.predict(100, v)) << "armed too early, i=" << i;
        p.train(100, 42);
    }
    p.train(100, 42); // 4th agreement reaches the threshold
    ASSERT_TRUE(p.predict(100, v));
    EXPECT_EQ(v, 42u);
}

TEST(ValuePredictor, ConfidenceCollapsesOnDisagreement)
{
    ValuePredictor p(ValuePredKind::LastValue);
    for (int i = 0; i < 8; ++i)
        p.train(100, 42);
    std::uint64_t v = 0;
    ASSERT_TRUE(p.predict(100, v));
    p.squash(); // drop the chain the probe above started
    p.train(100, 43); // one disagreement zeroes confidence
    EXPECT_FALSE(p.predict(100, v));
}

TEST(ValuePredictor, StrideLearnsArithmeticSequence)
{
    ValuePredictor p(ValuePredKind::Stride);
    for (int i = 0; i < 8; ++i)
        p.train(200, 1000 + 64 * i);
    std::uint64_t v = 0;
    ASSERT_TRUE(p.predict(200, v));
    EXPECT_EQ(v, 1000u + 64 * 8);
}

TEST(ValuePredictor, PredictionsChainWithoutIntermediateTraining)
{
    // A dependent re-execution of one static load (linked-list walk)
    // loads the *next* element: consecutive predictions must advance
    // by the stride even though no fill has verified yet.
    ValuePredictor p(ValuePredKind::Stride);
    for (int i = 0; i < 8; ++i)
        p.train(200, 64 * i);
    std::uint64_t v1 = 0, v2 = 0, v3 = 0;
    ASSERT_TRUE(p.predict(200, v1));
    ASSERT_TRUE(p.predict(200, v2));
    ASSERT_TRUE(p.predict(200, v3));
    EXPECT_EQ(v1, 64u * 8);
    EXPECT_EQ(v2, 64u * 9);
    EXPECT_EQ(v3, 64u * 10);
}

TEST(ValuePredictor, SquashForcesReanchorBeforePredicting)
{
    ValuePredictor p(ValuePredKind::Stride);
    for (int i = 0; i < 8; ++i)
        p.train(200, 64 * i);
    std::uint64_t v = 0;
    ASSERT_TRUE(p.predict(200, v));
    ASSERT_TRUE(p.predict(200, v));
    EXPECT_EQ(v, 64u * 9);
    p.squash(); // rollback: in-flight predictions died
    // The stream rewound; lastValue may lie in the re-executed
    // stream's future, so the entry must train once before it may
    // speculate again.
    EXPECT_FALSE(p.predict(200, v)) << "must re-anchor after rollback";
    p.train(200, 64 * 8); // the re-executed instance resolves
    ASSERT_TRUE(p.predict(200, v));
    EXPECT_EQ(v, 64u * 9) << "chain must restart at lastValue+stride";
}

TEST(ValuePredictor, ReplayTrainingPullsTheTipInStep)
{
    // Fills verify in (program) order while younger predictions are in
    // flight: each replay train+resolve moves lastValue forward AND the
    // tip one instance closer, so the frontier extrapolation is stable.
    ValuePredictor p(ValuePredKind::Stride);
    for (int i = 0; i < 8; ++i)
        p.train(200, 64 * i);
    std::uint64_t v = 0;
    ASSERT_TRUE(p.predict(200, v)); // 512 in flight
    ASSERT_TRUE(p.predict(200, v)); // 576 in flight
    p.train(200, 512); // oldest prediction verified at replay...
    p.noteDeferResolved(200); // ...and leaves the in-flight window
    ASSERT_TRUE(p.predict(200, v));
    EXPECT_EQ(v, 64u * 10) << "tip must survive in-order verify";
    p.train(200, 576);
    p.noteDeferResolved(200);
    p.train(200, 640);
    p.noteDeferResolved(200);
    ASSERT_TRUE(p.predict(200, v));
    EXPECT_EQ(v, 64u * 11);
}

TEST(ValuePredictor, UnpredictedDefersWidenTheExtrapolation)
{
    // Two instances deferred without predictions (e.g. before the
    // entry armed): the frontier is now three instances past
    // lastValue, and a prediction there must extrapolate the whole
    // gap, not return the stale lastValue+stride.
    ValuePredictor p(ValuePredKind::Stride);
    for (int i = 0; i < 8; ++i)
        p.train(200, 64 * i); // lastValue 448, stride 64
    p.notePendingDefer(200); // 512 in flight, value unknown
    p.notePendingDefer(200); // 576 in flight, value unknown
    std::uint64_t v = 0;
    ASSERT_TRUE(p.predict(200, v));
    EXPECT_EQ(v, 64u * 10) << "must extrapolate across in-flight gap";
    // The two unpredicted defers replay and resolve in order.
    p.train(200, 512);
    p.noteDeferResolved(200);
    p.train(200, 576);
    p.noteDeferResolved(200);
    ASSERT_TRUE(p.predict(200, v));
    EXPECT_EQ(v, 64u * 11) << "tip: 640 predicted in flight, then 704";
}

TEST(ValuePredictor, SaveLoadRoundTripPreservesChainState)
{
    ValuePredictor p(ValuePredKind::Stride);
    for (int i = 0; i < 8; ++i)
        p.train(200, 64 * i);
    std::uint64_t v = 0;
    ASSERT_TRUE(p.predict(200, v)); // leaves an open chain

    snap::Writer w;
    p.save(w);

    ValuePredictor q(ValuePredKind::Stride);
    snap::Reader r(w.data());
    q.load(r);
    r.done();

    snap::Writer w2;
    q.save(w2);
    EXPECT_EQ(w.data(), w2.data()) << "round trip not byte-identical";

    std::uint64_t a = 0, b = 0;
    ASSERT_TRUE(p.predict(200, a));
    ASSERT_TRUE(q.predict(200, b));
    EXPECT_EQ(a, b) << "restored chain must continue identically";
}

// ------------------------------------------------ SST core integration

namespace
{

double
stat(Core &core, const std::string &suffix)
{
    auto flat = core.stats().flatten();
    for (const auto &kv : flat)
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            return kv.second;
    return 0.0;
}

/** A linked-list walk whose next pointers advance by a fixed stride:
 *  the canonical value-predictable dependent-miss chain. Nodes are a
 *  page apart so next-line prefetching can't hide the misses.
 *  @p splice >= 0 redirects that node's next pointer two nodes ahead,
 *  planting one guaranteed value mispredict once confidence is armed. */
std::string
listWalk(int nodes, int steps, int splice = -1)
{
    std::string src = "li x1, 0x400000\n"
                      "li x3, 0\n"
                      "li x4, " + std::to_string(steps) + "\n"
                      "loop:\n"
                      "ld x2, 8(x1)\n"
                      "add x3, x3, x2\n"
                      "ld x1, 0(x1)\n"
                      "addi x4, x4, -1\n"
                      "bne x4, x0, loop\n"
                      "halt\n"
                      ".data 0x400000\n";
    for (int i = 0; i < nodes; ++i) {
        int hop = i == splice ? 3 : 1;
        std::uint64_t next = 0x400000 + 4096ull * ((i + hop) % nodes);
        src += ".word " + std::to_string(next) + "\n";
        src += ".word " + std::to_string(i * 3 + 1) + "\n";
        src += ".space 4080\n";
    }
    return src;
}

CoreParams
vpParams(const std::string &mode)
{
    CoreParams p = sstParams(4);
    p.valuePred = mode;
    return p;
}

} // namespace

TEST(SstValuePred, StrideChainConvertsDeferralIntoOverlap)
{
    // Long enough that the armed predictor amortizes its warm-up (a
    // few serial iterations) and the one misalignment squash a cold
    // chain takes before the architectural state catches up.
    const std::string src = listWalk(160, 150);
    CoreRun off = makeRun("sst", src, vpParams("off"));
    off.run();
    ASSERT_TRUE(off.archMatchesGolden());

    CoreRun vp = makeRun("sst", src, vpParams("stride"));
    vp.run();
    ASSERT_TRUE(vp.archMatchesGolden());
    EXPECT_GT(stat(*vp.core, ".vp_predictions"), 0.0);
    EXPECT_GT(stat(*vp.core, ".vp_correct"), 0.0);
    EXPECT_GT(stat(*vp.core, ".cpi_stack.value_pred"), 0.0)
        << "converted cycles must be attributed in the CPI stack";
    EXPECT_LT(vp.core->cycles(), off.core->cycles())
        << "a perfectly stride-predictable walk must speed up";
}

TEST(SstValuePred, OffRunsHaveNoPredictorFootprint)
{
    CoreRun r = makeRun("sst", listWalk(48, 40), vpParams("off"));
    r.run();
    EXPECT_EQ(stat(*r.core, ".vp_predictions"), 0.0);
    EXPECT_EQ(stat(*r.core, ".fail_vpred"), 0.0);
    EXPECT_EQ(stat(*r.core, ".cpi_stack.value_pred"), 0.0);
    EXPECT_EQ(stat(*r.core, ".cpi_stack.value_pred_waste"), 0.0);
}

TEST(SstValuePred, MispredictSquashesAndStaysArchitecturallyCorrect)
{
    // One spliced link breaks the stride mid-list: the predicted chain
    // must be squashed (FailKind::ValueMispredict) and the final state
    // must still match the functional golden run exactly.
    CoreRun r = makeRun("sst", listWalk(48, 40, /*splice=*/30),
                        vpParams("stride"));
    r.run();
    ASSERT_TRUE(r.archMatchesGolden());
    EXPECT_GE(stat(*r.core, ".fail_vpred"), 1.0);
    EXPECT_GT(stat(*r.core, ".cpi_stack.value_pred_waste"), 0.0)
        << "squashed cycles must land in value_pred_waste";
}

TEST(SstValuePred, LastValueModeStaysQuietOnStridePointers)
{
    // Next pointers always change, so last-value never becomes
    // confident here — and must not slow the walk down.
    const std::string src = listWalk(48, 40);
    CoreRun off = makeRun("sst", src, vpParams("off"));
    off.run();
    CoreRun lv = makeRun("sst", src, vpParams("last"));
    lv.run();
    ASSERT_TRUE(lv.archMatchesGolden());
    EXPECT_EQ(stat(*lv.core, ".vp_predictions"), 0.0);
    EXPECT_EQ(lv.core->cycles(), off.core->cycles());
}

// ----------------------------------------------- RAS rollback repair

TEST(SstRas, CallReturnChurnSurvivesRollbacks)
{
    // Speculative call/return churn across forced rollbacks: each call
    // body defers a branch on a missed load that the static predictor
    // guesses wrong, so every iteration rolls back after the ahead
    // strand has already popped the RAS for the return. The rollback
    // must restore the checkpoint's RAS; a stale stack would mispredict
    // later returns (fail_jump) or starve the ahead strand.
    std::string src = "li x6, 0x400000\n"
                      "li x5, 6\n"
                      "li x9, 0\n"
                      "loop:\n"
                      "jal x1, work\n"
                      "addi x5, x5, -1\n"
                      "bne x5, x0, loop\n"
                      "halt\n"
                      "work:\n"
                      "ld x2, 0(x6)\n"
                      "bne x2, x0, taken\n" // static says NT; is taken
                      "addi x9, x9, 100\n"
                      "taken:\n"
                      "addi x9, x9, 1\n"
                      "addi x6, x6, 4096\n"
                      "jalr x0, x1, 0\n"
                      ".data 0x400000\n";
    for (int i = 0; i < 6; ++i)
        src += ".word 1\n.space 4088\n";

    CoreParams p = sstParams(4);
    p.predictor = "static";
    CoreRun r = makeRun("sst", src, p);
    r.run();
    ASSERT_TRUE(r.core->halted());
    ASSERT_TRUE(r.archMatchesGolden());
    EXPECT_GE(stat(*r.core, ".fail_branch"), 1.0)
        << "the test must actually force rollbacks";
    EXPECT_EQ(stat(*r.core, ".fail_jump"), 0.0)
        << "a correctly restored RAS never mispredicts these returns";
}

// ------------------------------------------- snapshot round trip

TEST(SstValuePred, SnapshotRoundTripWithPredictionMidFlight)
{
    // Snapshot in the middle of a run with live value-predictor and
    // per-strand-history state; the restored machine must finish with
    // byte-identical stats.
    Program program = workloadProgram("list_walk");
    MachineConfig cfg = makePreset("sst4");
    cfg.core.valuePred = "stride";
    cfg.core.strandHistory = true;

    Machine base(cfg, program);
    RunResult want = base.run();
    ASSERT_GT(stat(base.core(), ".vp_predictions"), 0.0)
        << "the workload must exercise the predictor";

    Machine src(cfg, program);
    src.stepTo(4096);
    std::vector<std::uint8_t> image = src.snapshot();

    Machine dst(cfg, program);
    dst.restore(image);
    EXPECT_EQ(dst.stateHash(), src.stateHash());
    RunResult got = dst.run();
    EXPECT_EQ(want.cycles, got.cycles);
    EXPECT_EQ(want.insts, got.insts);
    expectStatsEqual(want.stats, got.stats);
}
