/** @file Deep tests of the behind-strand replay machinery: multi-pass
 *  replay, re-deferral chains, cross-epoch dataflow, deferred
 *  long-latency ops, and commit accounting under adversity. */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

double
stat(Core &core, const std::string &suffix)
{
    auto flat = core.stats().flatten();
    for (const auto &kv : flat)
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            return kv.second;
    return 0.0;
}

} // namespace

TEST(Replay, DependentMissChainRedefers)
{
    // A pointer chase within speculation: the second load's address
    // comes from the first (deferred) load, so at replay it misses
    // again and must be re-deferred into a second pass.
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)      ; miss -> 0x208000
        ld  x3, 0(x2)      ; address NA; misses again at replay
        add x4, x3, x3
        addi x5, x0, 1     ; ahead work
        halt
        .data 0x200000
        .word 0x208000
        .space 32760
        .word 77
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(4), 154u);
    EXPECT_GE(stat(*r.core, ".redeferred_insts"), 1.0);
}

TEST(Replay, DeepRedeferralChain)
{
    // Four chained dependent misses: each replay pass uncovers the
    // next level. All levels must resolve and commit.
    std::string src = "li x1, 0x200000\nld x2, 0(x1)\n";
    src += "ld x3, 0(x2)\n";
    src += "ld x4, 0(x3)\n";
    src += "ld x5, 0(x4)\n";
    src += "add x6, x5, x5\nhalt\n.data 0x200000\n";
    // Node k at 0x200000 + k*0x8000 points to node k+1; last holds 9.
    for (int k = 0; k < 4; ++k) {
        long next = 0x200000 + (k + 1) * 0x8000;
        src += ".word " + std::to_string(k == 3 ? 9 : next) + "\n";
        if (k != 3)
            src += ".space " + std::to_string(0x8000 - 8) + "\n";
    }
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(6), 18u);
    EXPECT_GE(stat(*r.core, ".redeferred_insts"), 3.0);
}

TEST(Replay, CrossEpochProducerConsumer)
{
    // Epoch 1 opens on a second independent miss while the first is
    // outstanding; a consumer in epoch 1 reads a value produced by a
    // deferred instruction from epoch 0. The replayResults map must
    // survive the epoch boundary.
    const char *src = R"(
        li  x1, 0x200000
        li  x7, 0x280000
        ld  x2, 0(x1)      ; epoch 0 trigger
        add x3, x2, x2     ; deferred in epoch 0
        ld  x4, 0(x7)      ; independent miss -> epoch 1 trigger
        add x5, x4, x3     ; epoch 1, consumes epoch-0 producer x3
        halt
        .data 0x200000
        .word 10
        .space 524280
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(4));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(5), 25u);
    EXPECT_GE(stat(*r.core, ".checkpoints_taken"), 2.0);
}

TEST(Replay, EpochsCommitInOrder)
{
    // Several independent misses, each its own epoch: commits must be
    // incremental (epochs_committed > full_commits) and arch-exact.
    std::string src = "li x1, 0x400000\nli x9, 0\n";
    for (int i = 0; i < 6; ++i) {
        src += "ld x5, " + std::to_string(i * 32768) + "(x1)\n";
        src += "add x9, x9, x5\n";
        // Pad with ALU work so epochs stay distinct.
        for (int j = 0; j < 6; ++j)
            src += "addi x8, x8, 1\n";
    }
    src += "halt\n.data 0x400000\n";
    for (int i = 0; i < 6; ++i) {
        src += ".word " + std::to_string(100 + i) + "\n";
        if (i != 5)
            src += ".space 32760\n";
    }
    CoreRun r = makeRun("sst", src, sstParams(4));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GT(stat(*r.core, ".epochs_committed"),
              stat(*r.core, ".full_commits"));
}

TEST(Replay, DeferredDivideResolves)
{
    const char *src = R"(
        li  x1, 0x200000
        li  x6, 3
        ld  x2, 0(x1)      ; miss, value 21
        div x3, x2, x6     ; deferred long-latency op
        rem x4, x2, x6
        add x5, x3, x4
        halt
        .data 0x200000
        .word 21
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(5), 7u);
}

TEST(Replay, DeferredFpOpsResolve)
{
    const char *src = R"(
        li   x1, 0x200000
        ld   x2, 0(x1)      ; miss: bits of 2.0
        fadd x3, x2, x2     ; deferred FP
        fmul x4, x3, x2     ; chained deferred FP
        fcvt.l.d x5, x4
        halt
        .data 0x200000
        .word 4611686018427387904 ; 0x4000000000000000 = 2.0
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(5), 8u); // (2+2)*2
}

TEST(Replay, ReplayedStoreFeedsLaterEpochLoad)
{
    // A store deferred in epoch 0 (NA data) must be visible, via the
    // SSQ, to a load executed later by the ahead strand.
    const char *src = R"(
        li  x1, 0x200000
        li  x7, 0x300000
        ld  x2, 0(x1)      ; epoch 0 trigger, value 5
        st  x2, 0(x7)      ; deferred store (data NA), address known
        addi x8, x0, 50    ; ahead filler
        ld  x4, 0(x7)      ; memory-dependent: defers on the store
        add x5, x4, x8
        halt
        .data 0x200000
        .word 5
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(5), 55u);
}

TEST(Replay, NaThroughX0NeverSticks)
{
    // Writes to x0 are discarded; a deferred instruction with rd=x0
    // must not corrupt the NA machinery.
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)
        add x0, x2, x2     ; deferred, writes the zero register
        add x3, x0, x2     ; x0 must still read as 0
        halt
        .data 0x200000
        .word 9
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(3), 9u);
}

TEST(Replay, RetiredCountSurvivesRollbacks)
{
    // Data-dependent deferred branches cause rollbacks; retired count
    // must still match the golden executor exactly.
    std::string src = R"(
        li   x1, 0x400000
        li   x7, 16
        li   x9, 0
    loop:
        ld   x2, 0(x1)
        andi x3, x2, 1
        beq  x3, x0, skip
        addi x9, x9, 7
    skip:
        addi x1, x1, 4096
        addi x7, x7, -1
        bne  x7, x0, loop
        halt
        .data 0x400000
)";
    Rng rng(123);
    for (int i = 0; i < 16; ++i) {
        src += ".word " + std::to_string(rng.below(64)) + "\n";
        if (i != 15)
            src += ".space 4088\n";
    }
    CoreRun r = makeRun("sst", src, sstParams(2));
    r.run();
    EXPECT_EQ(r.core->instsRetired(), r.goldenInsts);
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(Replay, HaltInsideSpeculationWaitsForCommit)
{
    const char *src = R"(
        li  x1, 0x200000
        ld  x2, 0(x1)      ; miss
        add x3, x2, x2     ; deferred
        halt               ; reached speculatively
        .data 0x200000
        .word 8
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    // The core must not report halted before the epoch commits.
    int ticks_to_halt = 0;
    while (!r.core->halted() && ticks_to_halt < 100000) {
        r.core->tick();
        ++ticks_to_halt;
    }
    EXPECT_TRUE(r.core->halted());
    EXPECT_GT(ticks_to_halt, 50); // waited for the ~300-cycle miss
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(3), 16u);
}

TEST(Replay, SuppressionGuardBreaksRepeatedFailLoops)
{
    // Branch that always mispredicts at replay on a line that keeps
    // missing: progress is guaranteed by the suppression guard.
    const char *src = R"(
        li   x1, 0x200000
        ld   x2, 0(x1)     ; miss
        beq  x2, x0, wrong ; taken=false, but data-dependent
        addi x9, x9, 1
    wrong:
        addi x9, x9, 2
        halt
        .data 0x200000
        .word 1
    )";
    CoreRun r = makeRun("sst", src, sstParams(2));
    Cycle c = r.run(2'000'000);
    EXPECT_TRUE(r.core->halted()) << "livelock: " << c << " cycles";
    EXPECT_TRUE(r.archMatchesGolden());
}
