/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/cache.hh"

using namespace sst;

namespace
{

CacheParams
smallCache(ReplPolicy policy = ReplPolicy::Lru)
{
    // 4 sets x 2 ways x 64 B lines = 512 B.
    return CacheParams{"c", 512, 2, 64, 3, policy};
}

} // namespace

TEST(Cache, MissThenHit)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    EXPECT_FALSE(c.access(0x100, false, 0).hit);
    c.fill(0x100, 10, false);
    auto r = c.access(0x100, false, 20);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.readyCycle, 23u); // now + hitLatency
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LineGranularity)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    c.fill(0x100, 0, false);
    EXPECT_TRUE(c.access(0x13f, false, 5).hit);  // same 64B line
    EXPECT_FALSE(c.access(0x140, false, 5).hit); // next line
}

TEST(Cache, InFlightFillReportsFillCompletion)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    c.fill(0x100, 100, false); // data arrives at cycle 100
    auto r = c.access(0x100, false, 10);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.readyCycle, 100u); // hit-under-fill semantics
    r = c.access(0x100, false, 200);
    EXPECT_EQ(r.readyCycle, 203u); // settled afterwards
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    StatGroup sg("t");
    Cache c(smallCache(ReplPolicy::Lru), sg);
    // Set index = (addr>>6) & 3; 0x000, 0x400, 0x800 all map to set 0.
    c.fill(0x000, 0, false);
    c.fill(0x400, 0, false);
    c.access(0x000, false, 1); // make 0x000 MRU
    auto ev = c.fill(0x800, 0, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0x400u);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x400));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    c.fill(0x000, 0, false);
    c.access(0x000, true, 1); // store marks dirty
    c.fill(0x400, 0, false);
    auto ev = c.fill(0x800, 0, false); // evicts 0x000 (LRU)
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.lineAddr, 0x000u);
}

TEST(Cache, FillOfPresentLineMergesState)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    c.fill(0x100, 500, false);
    auto ev = c.fill(0x100, 50, true); // earlier data, dirty
    EXPECT_FALSE(ev.valid);
    auto r = c.access(0x100, false, 60);
    EXPECT_EQ(r.readyCycle, 63u); // readiness improved to min(500,50)
}

TEST(Cache, InvalidateAndFlush)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    c.fill(0x100, 0, false);
    c.fill(0x200, 0, false);
    c.invalidate(0x100);
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x200));
    c.flush();
    EXPECT_FALSE(c.contains(0x200));
}

TEST(Cache, InvalidWaysFilledBeforeEviction)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    auto ev1 = c.fill(0x000, 0, false);
    auto ev2 = c.fill(0x400, 0, false);
    EXPECT_FALSE(ev1.valid);
    EXPECT_FALSE(ev2.valid);
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_TRUE(c.contains(0x400));
}

TEST(Cache, NruPolicyWorks)
{
    StatGroup sg("t");
    Cache c(smallCache(ReplPolicy::Nru), sg);
    c.fill(0x000, 0, false);
    c.fill(0x400, 0, false);
    auto ev = c.fill(0x800, 0, false);
    EXPECT_TRUE(ev.valid); // something was evicted without crashing
}

TEST(Cache, RandomPolicyStaysWithinSet)
{
    StatGroup sg("t");
    Cache c(smallCache(ReplPolicy::Random), sg);
    c.fill(0x000, 0, false);
    c.fill(0x400, 0, false);
    auto ev = c.fill(0x800, 0, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.lineAddr == 0x000 || ev.lineAddr == 0x400);
}

TEST(Cache, MissRateFormula)
{
    StatGroup sg("t");
    Cache c(smallCache(), sg);
    c.access(0x100, false, 0); // miss
    c.fill(0x100, 0, false);
    c.access(0x100, false, 1); // hit
    auto flat = sg.flatten();
    EXPECT_DOUBLE_EQ(flat["t.c.miss_rate"], 0.5);
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    StatGroup sg("t");
    CacheParams p{"bad", 512, 3, 64, 1, ReplPolicy::Lru};
    EXPECT_DEATH({ Cache c(p, sg); }, "geometry");
}
