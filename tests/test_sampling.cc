/** @file Tests for the sampled-simulation runner. */

#include <gtest/gtest.h>

#include "sim/sampling.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

Workload
wl(const std::string &name, double length = 0.4)
{
    WorkloadParams p;
    p.lengthScale = length;
    p.footprintScale = 0.25;
    return makeWorkload(name, p);
}

} // namespace

TEST(Sampling, ReachesProgramEnd)
{
    Workload w = wl("oltp_mix");
    SampleParams sp;
    sp.detailInsts = 2000;
    sp.skipInsts = 6000;
    SampledResult r = runSampled(makePreset("sst2"), w.program, sp);
    EXPECT_TRUE(r.reachedEnd);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_GT(r.windowIpc.size(), 2u);
    EXPECT_GT(r.skippedInsts, r.detailedInsts);
}

TEST(Sampling, MaxSamplesBounds)
{
    Workload w = wl("hash_join");
    SampleParams sp;
    sp.detailInsts = 1000;
    sp.skipInsts = 2000;
    sp.maxSamples = 3;
    SampledResult r = runSampled(makePreset("inorder"), w.program, sp);
    EXPECT_LE(r.windowIpc.size(), 3u);
}

TEST(Sampling, DetailOnlyMatchesFullRun)
{
    // With skip=0 and no sample cap, the sampled runner degenerates to
    // a (windowed) full detailed run; its IPC must be very close to
    // Machine::run's.
    Workload w = wl("compute_kernel", 0.2);
    SampleParams sp;
    sp.detailInsts = 5000;
    sp.skipInsts = 0;
    SampledResult r = runSampled(makePreset("inorder"), w.program, sp);
    RunResult full = runOn("inorder", w.program);
    EXPECT_TRUE(r.reachedEnd);
    EXPECT_NEAR(r.ipc, full.ipc, full.ipc * 0.1);
}

class SamplingAccuracy
    : public testing::TestWithParam<std::tuple<std::string, std::string>>
{
};

TEST_P(SamplingAccuracy, EstimateWithinBand)
{
    // The point of sampling: ~25% detail should estimate full-run IPC
    // within a modest band on steady-state workloads.
    auto [preset, workload] = GetParam();
    Workload w = wl(workload);
    RunResult full = runOn(preset, w.program);

    SampleParams sp;
    sp.detailInsts = 3000;
    sp.skipInsts = 9000;
    SampledResult r = runSampled(makePreset(preset), w.program, sp);
    EXPECT_TRUE(r.reachedEnd);
    double err = std::abs(r.ipc - full.ipc) / full.ipc;
    EXPECT_LT(err, 0.35) << "sampled " << r.ipc << " vs full "
                         << full.ipc;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SamplingAccuracy,
    testing::Combine(testing::Values("inorder", "sst2", "ooo-large"),
                     testing::Values("hash_join", "oltp_mix", "stream")),
    [](const auto &info) {
        std::string n = std::get<0>(info.param) + "_"
                        + std::get<1>(info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

TEST(Sampling, WindowStddevComputed)
{
    SampledResult r;
    r.windowIpc = {1.0, 2.0, 3.0};
    EXPECT_NEAR(r.ipcStddev(), 1.0, 1e-9);
    r.windowIpc = {2.0};
    EXPECT_EQ(r.ipcStddev(), 0.0);
}

TEST(Sampling, WarmStartOffsetsClock)
{
    // warmStart must be reflected in startCycle() and keep IPC sane.
    Workload w = wl("compute_kernel", 0.1);
    MemorySystem sys(makePreset("inorder").mem);
    CorePort &port = sys.addCore();
    MemoryImage img;
    img.loadSegments(w.program);
    auto core = makeCore(makePreset("inorder"), w.program, img, port);
    ArchState st;
    core->warmStart(st, 5000);
    EXPECT_EQ(core->startCycle(), 5000u);
    for (int i = 0; i < 2000 && !core->halted(); ++i)
        core->tick();
    EXPECT_GT(core->cycles(), 5000u);
    EXPECT_LE(core->ipc(), 2.0);
}

TEST(Sampling, WindowIpcUsesWindowCycles)
{
    // Regression: a detailed-window core warm-started deep into the
    // shared clock must report IPC over *window* cycles, not absolute
    // cycles. If ipc() divided by now instead of (now - startCycle),
    // a window starting at cycle 10M would report ~0.
    Workload w = wl("compute_kernel", 0.1);
    MemorySystem sys(makePreset("inorder").mem);
    CorePort &port = sys.addCore();
    MemoryImage img;
    img.loadSegments(w.program);
    auto core = makeCore(makePreset("inorder"), w.program, img, port);
    ArchState st;
    core->warmStart(st, 10'000'000);
    for (int i = 0; i < 5000 && !core->halted(); ++i)
        core->tick();
    EXPECT_GT(core->instsRetired(), 0u);
    EXPECT_GT(core->ipc(), 0.05);
    EXPECT_LE(core->ipc(), 2.0);
}

TEST(Sampling, FastForwardWarmsCaches)
{
    // Regression: rejected warming accesses used to be dropped on the
    // floor (full MSHRs / busy banks), leaving the hierarchy cold and
    // the detailed windows biased. With the bounded retry in place, a
    // cache-friendly workload must see a healthy warm-hit rate.
    Workload w = wl("hash_join");
    SampleParams sp;
    sp.detailInsts = 2000;
    sp.skipInsts = 8000;
    SampledResult r = runSampled(makePreset("sst2"), w.program, sp);
    EXPECT_TRUE(r.reachedEnd);
    EXPECT_GT(r.warmAccesses, 0u);
    EXPECT_GT(r.warmHits, 0u);
    EXPECT_LE(r.warmHits, r.warmAccesses);
    // "Nonzero rate" with margin: spatial locality alone should warm
    // well past one hit per hundred accesses.
    EXPECT_GT(double(r.warmHits) / double(r.warmAccesses), 0.01);
}
