/** @file Unit tests for branch predictors, BTB and RAS. */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

using namespace sst;

TEST(Static, AlwaysNotTaken)
{
    StaticPredictor p;
    EXPECT_FALSE(p.predict(0));
    p.update(0, true);
    EXPECT_FALSE(p.predict(0));
}

TEST(Bimodal, LearnsAlwaysTaken)
{
    BimodalPredictor p;
    for (int i = 0; i < 4; ++i)
        p.update(100, true);
    EXPECT_TRUE(p.predict(100));
}

TEST(Bimodal, HysteresisSurvivesOneAnomaly)
{
    BimodalPredictor p;
    for (int i = 0; i < 8; ++i)
        p.update(100, true);
    p.update(100, false); // single not-taken
    EXPECT_TRUE(p.predict(100)); // still predicts taken
}

TEST(Bimodal, IndependentPcs)
{
    BimodalPredictor p;
    for (int i = 0; i < 4; ++i) {
        p.update(1, true);
        p.update(2, false);
    }
    EXPECT_TRUE(p.predict(1));
    EXPECT_FALSE(p.predict(2));
}

TEST(Gshare, LearnsAlternatingPattern)
{
    GsharePredictor p;
    // T,N,T,N... is invisible to bimodal but trivial with history.
    bool dir = false;
    for (int i = 0; i < 400; ++i) {
        dir = !dir;
        p.update(100, dir);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        dir = !dir;
        if (p.predict(100) == dir)
            ++correct;
        p.update(100, dir);
    }
    EXPECT_GT(correct, 95);
}

TEST(Gshare, HistorySnapshotRestore)
{
    GsharePredictor p;
    p.update(1, true);
    p.update(1, false);
    std::uint64_t h = p.snapshotHistory();
    p.update(1, true);
    p.update(1, true);
    EXPECT_NE(p.snapshotHistory(), h);
    p.restoreHistory(h);
    EXPECT_EQ(p.snapshotHistory(), h);
}

TEST(Tournament, BeatsWorstComponent)
{
    TournamentPredictor p;
    // Strongly biased branch: bimodal handles it.
    for (int i = 0; i < 64; ++i)
        p.update(5, true);
    EXPECT_TRUE(p.predict(5));
    // Alternating branch: gshare handles it; chooser should migrate.
    bool dir = false;
    for (int i = 0; i < 600; ++i) {
        dir = !dir;
        p.update(9, dir);
    }
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        dir = !dir;
        if (p.predict(9) == dir)
            ++correct;
        p.update(9, dir);
    }
    EXPECT_GT(correct, 85);
}

TEST(Gshare, TrainDoesNotShiftHistory)
{
    GsharePredictor p;
    std::uint64_t h = p.snapshotHistory();
    p.train(100, true);
    EXPECT_EQ(p.snapshotHistory(), h);
    p.update(100, true);
    EXPECT_NE(p.snapshotHistory(), h);
}

TEST(Gshare, ShiftHistoryMatchesUpdateShift)
{
    GsharePredictor a, b;
    a.update(5, true);
    b.train(5, true);
    b.shiftHistory(true);
    EXPECT_EQ(a.snapshotHistory(), b.snapshotHistory());
    EXPECT_EQ(a.predict(5), b.predict(5));
}

TEST(Gshare, SpeculativeShiftKeepsIndexStable)
{
    // The deferred-branch pattern: predict + speculative shift means a
    // later train() for the same dynamic branch hits the same table
    // entry the prediction read — so two wrong guesses flip it.
    GsharePredictor p;
    // Saturate "taken" for the current history index.
    std::uint64_t h0 = p.snapshotHistory();
    for (int i = 0; i < 4; ++i) {
        p.restoreHistory(h0);
        p.update(9, true);
    }
    p.restoreHistory(h0);
    ASSERT_TRUE(p.predict(9));
    // Two deferred encounters that turn out not-taken: verification
    // trains the entry the prediction read (trainAt with the captured
    // history), regardless of where the history has drifted since.
    for (int i = 0; i < 2; ++i) {
        p.restoreHistory(h0);
        std::uint64_t at = p.snapshotHistory();
        bool guess = p.predict(9);
        p.shiftHistory(guess);
        p.trainAt(9, false, at); // verification says not-taken
    }
    p.restoreHistory(h0);
    EXPECT_FALSE(p.predict(9)) << "entry did not flip after 2 wrongs";
}

TEST(Tournament, TrainAtRunsWithoutDisturbingHistory)
{
    TournamentPredictor p;
    p.update(3, true);
    std::uint64_t h = p.snapshotHistory();
    p.trainAt(3, false, 0);
    EXPECT_EQ(p.snapshotHistory(), h);
}

TEST(Tournament, TrainDoesNotShiftHistory)
{
    TournamentPredictor p;
    std::uint64_t h = p.snapshotHistory();
    p.train(7, true);
    EXPECT_EQ(p.snapshotHistory(), h);
}

TEST(Bimodal, TrainDefaultsToUpdate)
{
    BimodalPredictor p;
    for (int i = 0; i < 4; ++i)
        p.train(3, true);
    EXPECT_TRUE(p.predict(3));
}

TEST(Factory, MakesAllKinds)
{
    for (const char *kind :
         {"static", "bimodal", "gshare", "tournament"}) {
        auto p = makePredictor(kind);
        ASSERT_NE(p, nullptr);
        EXPECT_STREQ(p->name(), kind);
    }
}

TEST(FactoryDeath, UnknownKindFatal)
{
    EXPECT_DEATH((void)makePredictor("oracle"), "unknown");
}

TEST(Btb, MissThenHit)
{
    Btb btb(16);
    EXPECT_EQ(btb.lookup(100), Btb::invalidTarget);
    btb.update(100, 200);
    EXPECT_EQ(btb.lookup(100), 200u);
}

TEST(Btb, AliasesEvict)
{
    Btb btb(16);
    btb.update(1, 10);
    btb.update(17, 20); // same index, different tag
    EXPECT_EQ(btb.lookup(1), Btb::invalidTarget);
    EXPECT_EQ(btb.lookup(17), 20u);
}

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(10);
    ras.push(20);
    EXPECT_EQ(ras.pop(), 20u);
    EXPECT_EQ(ras.pop(), 10u);
    EXPECT_EQ(ras.pop(), ReturnAddressStack::invalidTarget);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(2);
    ras.push(1);
    ras.push(2);
    ras.push(3); // overwrites 1
    EXPECT_EQ(ras.pop(), 3u);
    EXPECT_EQ(ras.pop(), 2u);
    EXPECT_EQ(ras.pop(), ReturnAddressStack::invalidTarget);
}

TEST(Ras, ResetEmpties)
{
    ReturnAddressStack ras(4);
    ras.push(1);
    ras.reset();
    EXPECT_EQ(ras.pop(), ReturnAddressStack::invalidTarget);
}

TEST(FactoryDeath, UnknownKindSuggestsNearestName)
{
    EXPECT_DEATH((void)makePredictor("gshore"),
                 "did you mean 'gshare'");
    EXPECT_DEATH((void)makePredictor("tornament"),
                 "did you mean 'tournament'");
}

TEST(Tournament, TrainAtConvergesDeferredBranch)
{
    // The deferred-branch discipline: predict with the live history,
    // shift speculatively, verify later with trainAt() against the
    // captured history. Repeated wrong verifications must converge the
    // tournament (chooser + components) onto the branch even though
    // update() is never called.
    TournamentPredictor p;
    std::uint64_t h0 = p.snapshotHistory();
    int wrong = 0;
    for (int i = 0; i < 64; ++i) {
        p.restoreHistory(h0);
        std::uint64_t at = p.snapshotHistory();
        bool guess = p.predict(9);
        if (!guess)
            ++wrong;
        p.shiftHistory(guess);
        p.trainAt(9, true, at); // branch is always taken
    }
    p.restoreHistory(h0);
    EXPECT_TRUE(p.predict(9)) << "trainAt never converged";
    EXPECT_LT(wrong, 8) << "convergence took implausibly long";
}

TEST(Gshare, StrandHistoriesAreIsolated)
{
    GsharePredictor p(14, 12, /*strandAware=*/true);
    p.setStrand(BranchPredictor::mainStrand);
    p.shiftHistory(true);
    p.shiftHistory(false);
    std::uint64_t mainH = p.snapshotHistory();

    // Ahead-strand pollution must not leak into the main history.
    p.setStrand(BranchPredictor::aheadStrand);
    for (int i = 0; i < 10; ++i)
        p.shiftHistory(true);
    std::uint64_t aheadH = p.snapshotHistory();
    EXPECT_NE(aheadH, mainH);

    p.setStrand(BranchPredictor::mainStrand);
    EXPECT_EQ(p.snapshotHistory(), mainH);
}

TEST(Gshare, StrandSelectIsNoopWhenNotStrandAware)
{
    GsharePredictor p(14, 12, /*strandAware=*/false);
    p.shiftHistory(true);
    std::uint64_t h = p.snapshotHistory();
    p.setStrand(BranchPredictor::aheadStrand);
    EXPECT_EQ(p.snapshotHistory(), h)
        << "without core.strand_history both strands share one GHR";
    p.shiftHistory(false);
    p.setStrand(BranchPredictor::mainStrand);
    EXPECT_NE(p.snapshotHistory(), h);
}

TEST(Tournament, StrandSelectForwardsToGshare)
{
    TournamentPredictor p(13, 12, /*strandAware=*/true);
    p.shiftHistory(true);
    std::uint64_t mainH = p.snapshotHistory();
    p.setStrand(BranchPredictor::aheadStrand);
    p.shiftHistory(true);
    p.shiftHistory(true);
    p.setStrand(BranchPredictor::mainStrand);
    EXPECT_EQ(p.snapshotHistory(), mainH);
}
