/**
 * @file
 * Stall-cycle fast-forwarding must be invisible: for every preset and
 * workload, a run with the wake-cycle skip enabled must produce results,
 * stats and traces byte-identical to the naive per-cycle loop. These
 * tests flip the runtime switch both ways in-process and compare
 * everything the simulator exposes, plus check the wake-cycle contract
 * itself (no premature progress before the reported wake).
 */

#include <gtest/gtest.h>

#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/cmp.hh"
#include "sim/fastfwd.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "sim_test_util.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

using namespace sst;
using test::expectStatsEqual;
using test::expectTracesEqual;
using test::kAllPresets;
using test::kWorkloads;
using test::workloadProgram;

namespace
{

RunResult
runOnce(const std::string &preset, const Program &program, bool fastfwd,
        trace::TraceBuffer *buf)
{
    setFastForward(fastfwd);
    Machine machine(makePreset(preset), program);
    if (buf)
        machine.attachTraceBuffer(buf);
    RunResult res = machine.run();
    clearFastForwardOverride();
    return res;
}

} // namespace

/** The headline invariant: every preset × workload, skip on == skip
 *  off, down to every stat and every structured trace event. */
TEST(FastForward, DifferentialAllPresets)
{
    for (const auto &wl : kWorkloads) {
        Program program = workloadProgram(wl);
        for (const auto &preset : kAllPresets) {
            SCOPED_TRACE(preset + " / " + wl);
            trace::TraceBuffer naiveTrace;
            trace::TraceBuffer fastTrace;
            RunResult naive = runOnce(preset, program, false, &naiveTrace);
            RunResult fast = runOnce(preset, program, true, &fastTrace);

            EXPECT_EQ(naive.cycles, fast.cycles);
            EXPECT_EQ(naive.insts, fast.insts);
            EXPECT_EQ(naive.ipc, fast.ipc);
            EXPECT_EQ(naive.finished, fast.finished);
            EXPECT_EQ(naive.degrade, fast.degrade);
            EXPECT_EQ(naive.l1dMissRate, fast.l1dMissRate);
            EXPECT_EQ(naive.meanDemandMlp, fast.meanDemandMlp);
            EXPECT_EQ(naive.mispredictRate, fast.mispredictRate);
            expectStatsEqual(naive.stats, fast.stats);
            expectTracesEqual(naiveTrace, fastTrace);
        }
    }
}

/** Same invariant for the CMP lockstep loop (shared L2/DRAM). */
TEST(FastForward, DifferentialCmp)
{
    Program program = workloadProgram("oltp_mix");
    std::vector<const Program *> programs{&program, &program};
    for (const auto &preset : {"inorder", "sst4", "ooo-large"}) {
        SCOPED_TRACE(preset);
        setFastForward(false);
        Cmp naiveCmp(makePreset(preset), programs);
        CmpResult naive = naiveCmp.run();
        setFastForward(true);
        Cmp fastCmp(makePreset(preset), programs);
        CmpResult fast = fastCmp.run();
        clearFastForwardOverride();

        EXPECT_EQ(naive.cycles, fast.cycles);
        EXPECT_EQ(naive.totalInsts, fast.totalInsts);
        EXPECT_EQ(naive.aggregateIpc, fast.aggregateIpc);
        EXPECT_EQ(naive.finished, fast.finished);
        EXPECT_EQ(naive.degrade, fast.degrade);
        EXPECT_EQ(naive.watchdogRecoveries, fast.watchdogRecoveries);
        ASSERT_EQ(naive.perCoreIpc.size(), fast.perCoreIpc.size());
        for (std::size_t i = 0; i < naive.perCoreIpc.size(); ++i)
            EXPECT_EQ(naive.perCoreIpc[i], fast.perCoreIpc[i]);
        for (unsigned i = 0; i < naive.cores; ++i)
            expectStatsEqual(naiveCmp.core(i).stats().flatten(),
                             fastCmp.core(i).stats().flatten());
    }
}

/**
 * The wake-cycle contract, checked against the naive loop itself: after
 * a tick that retired nothing, no tick that starts before the reported
 * wake cycle may retire anything. (The other direction — that skipping
 * to the wake reproduces the same stats — is what the differential
 * tests above prove.)
 */
TEST(FastForward, WakeIsNeverPremature)
{
    Program program = workloadProgram("oltp_mix");
    for (const auto &preset : {"inorder", "scout", "sst4", "ooo-large"}) {
        SCOPED_TRACE(preset);
        setFastForward(false);
        Machine machine(makePreset(preset), program);
        Core &core = machine.core();
        std::uint64_t windows = 0;
        while (!core.halted() && core.cycles() < 5'000'000) {
            std::uint64_t before = core.instsRetired();
            core.tick();
            if (core.halted() || core.instsRetired() != before)
                continue;
            Cycle wake = core.nextWakeCycle();
            if (wake == Core::kWakeNever)
                break;
            if (wake <= core.cycles())
                continue;
            ++windows;
            while (!core.halted() && core.cycles() < wake) {
                std::uint64_t b = core.instsRetired();
                core.tick();
                ASSERT_EQ(core.instsRetired(), b)
                    << "retired inside a window declared idle until "
                    << wake;
            }
        }
        clearFastForwardOverride();
        EXPECT_GT(windows, 0u) << "workload never produced a skippable "
                                  "stall window";
    }
}

/** Bulk Distribution::sample(v, n) must equal n repeated samples. */
TEST(FastForward, BulkDistributionSample)
{
    Distribution loop;
    Distribution bulk;
    loop.init(128, 16);
    bulk.init(128, 16);
    const std::uint64_t values[] = {0, 1, 7, 8, 64, 127, 128, 500};
    const std::uint64_t counts[] = {1, 3, 10, 0, 2, 5, 4, 7};
    for (std::size_t i = 0; i < std::size(values); ++i) {
        for (std::uint64_t k = 0; k < counts[i]; ++k)
            loop.sample(values[i]);
        bulk.sample(values[i], counts[i]);
    }
    EXPECT_EQ(loop.toJson(), bulk.toJson());
    EXPECT_EQ(loop.count(), bulk.count());
    EXPECT_EQ(loop.mean(), bulk.mean());
    EXPECT_EQ(loop.maxSample(), bulk.maxSample());
}

/** The in-process override beats the environment in both directions. */
TEST(FastForward, OverrideSwitch)
{
    setFastForward(false);
    EXPECT_FALSE(fastForwardEnabled());
#if !SST_DISABLE_FASTFWD
    setFastForward(true);
    EXPECT_TRUE(fastForwardEnabled());
#endif
    clearFastForwardOverride();
}
