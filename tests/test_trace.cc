/** @file Tests for the pipeline-event trace facility. */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

const char *kOneMiss = R"(
    li   x1, 0x200000
    ld   x2, 0(x1)
    add  x3, x2, x2
    addi x4, x0, 7
    halt
    .data 0x200000
    .word 21
)";

std::vector<std::string>
runTraced(const std::string &model, CoreParams params)
{
    CoreRun r = makeRun(model, kOneMiss, params);
    std::vector<std::string> events;
    r.core->setTraceSink(
        [&events](const std::string &line) { events.push_back(line); });
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    return events;
}

bool
anyContains(const std::vector<std::string> &events, const char *what)
{
    for (const auto &e : events)
        if (e.find(what) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(Trace, SstEmitsLifecycleEvents)
{
    auto events = runTraced("sst", sstParams(2));
    EXPECT_TRUE(anyContains(events, "TRIGGER"));
    EXPECT_TRUE(anyContains(events, "CHECKPOINT"));
    EXPECT_TRUE(anyContains(events, "DEFER"));
    EXPECT_TRUE(anyContains(events, "REPLAY"));
    EXPECT_TRUE(anyContains(events, "COMMIT_ALL"));
}

TEST(Trace, ScoutEmitsRollback)
{
    auto events = runTraced("sst", sstParams(1, true));
    EXPECT_TRUE(anyContains(events, "TRIGGER"));
    EXPECT_TRUE(anyContains(events, "ROLLBACK"));
    EXPECT_FALSE(anyContains(events, "REPLAY"));
}

TEST(Trace, EventsOrderedByCycle)
{
    auto events = runTraced("sst", sstParams(2));
    ASSERT_FALSE(events.empty());
    std::uint64_t last = 0;
    for (const auto &e : events) {
        ASSERT_EQ(e[0], 'C');
        std::uint64_t cyc = std::strtoull(e.c_str() + 1, nullptr, 10);
        EXPECT_GE(cyc, last);
        last = cyc;
    }
}

TEST(Trace, DisabledByDefaultCostsNothing)
{
    CoreRun a = makeRun("sst", kOneMiss, sstParams(2));
    a.run();
    // No sink installed: nothing observable, and nothing crashes.
    SUCCEED();
}

TEST(Trace, ReplayMatchesDeferCount)
{
    auto events = runTraced("sst", sstParams(2));
    unsigned defers = 0, replays = 0;
    for (const auto &e : events) {
        if (e.find("DEFER") != std::string::npos)
            ++defers;
        if (e.find("REPLAY") != std::string::npos)
            ++replays;
    }
    // Without rollbacks every deferred instruction replays exactly once.
    EXPECT_EQ(defers, replays);
    EXPECT_GE(defers, 2u); // the load and its dependent add
}
