/** @file Tests for the pipeline-event trace facility. */

#include <gtest/gtest.h>

#include "exp/json.hh"
#include "sim_test_util.hh"
#include "trace/chrome.hh"
#include "trace/trace.hh"

using namespace sst;
using namespace sst::test;

namespace
{

const char *kOneMiss = R"(
    li   x1, 0x200000
    ld   x2, 0(x1)
    add  x3, x2, x2
    addi x4, x0, 7
    halt
    .data 0x200000
    .word 21
)";

std::vector<std::string>
runTraced(const std::string &model, CoreParams params)
{
    CoreRun r = makeRun(model, kOneMiss, params);
    std::vector<std::string> events;
    r.core->setTraceSink(
        [&events](const std::string &line) { events.push_back(line); });
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    return events;
}

bool
anyContains(const std::vector<std::string> &events, const char *what)
{
    for (const auto &e : events)
        if (e.find(what) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(Trace, SstEmitsLifecycleEvents)
{
    auto events = runTraced("sst", sstParams(2));
    EXPECT_TRUE(anyContains(events, "TRIGGER"));
    EXPECT_TRUE(anyContains(events, "CHECKPOINT"));
    EXPECT_TRUE(anyContains(events, "DEFER"));
    EXPECT_TRUE(anyContains(events, "REPLAY"));
    EXPECT_TRUE(anyContains(events, "COMMIT_ALL"));
}

TEST(Trace, ScoutEmitsRollback)
{
    auto events = runTraced("sst", sstParams(1, true));
    EXPECT_TRUE(anyContains(events, "TRIGGER"));
    EXPECT_TRUE(anyContains(events, "ROLLBACK"));
    EXPECT_FALSE(anyContains(events, "REPLAY"));
}

TEST(Trace, EventsOrderedByCycle)
{
    auto events = runTraced("sst", sstParams(2));
    ASSERT_FALSE(events.empty());
    std::uint64_t last = 0;
    for (const auto &e : events) {
        ASSERT_EQ(e[0], 'C');
        std::uint64_t cyc = std::strtoull(e.c_str() + 1, nullptr, 10);
        EXPECT_GE(cyc, last);
        last = cyc;
    }
}

TEST(Trace, DisabledByDefaultCostsNothing)
{
    CoreRun a = makeRun("sst", kOneMiss, sstParams(2));
    a.run();
    // No sink installed: nothing observable, and nothing crashes.
    SUCCEED();
}

TEST(Trace, ReplayMatchesDeferCount)
{
    auto events = runTraced("sst", sstParams(2));
    unsigned defers = 0, replays = 0;
    for (const auto &e : events) {
        if (e.find("DEFER") != std::string::npos)
            ++defers;
        if (e.find("REPLAY") != std::string::npos)
            ++replays;
    }
    // Without rollbacks every deferred instruction replays exactly once.
    EXPECT_EQ(defers, replays);
    EXPECT_GE(defers, 2u); // the load and its dependent add
}

namespace
{

/** Exposes Core::trace so the formatting path can be tested directly. */
class TraceProbe : public InOrderCore
{
  public:
    using InOrderCore::InOrderCore;

    void
    emit(const std::string &payload)
    {
        trace("%s", payload.c_str());
    }
};

} // namespace

TEST(Trace, LongLinesAreNotTruncated)
{
    // Regression: lines over the 256-byte stack buffer used to be
    // silently cut off at the vsnprintf limit.
    Program program = assemble(kOneMiss, "probe");
    MemorySystem memsys{HierarchyParams{}};
    MemoryImage image;
    image.loadSegments(program);
    CorePort &port = memsys.addCore();
    TraceProbe probe(CoreParams{}, program, image, port);

    std::vector<std::string> lines;
    probe.setTraceSink(
        [&lines](const std::string &line) { lines.push_back(line); });

    std::string longPayload(700, 'x');
    longPayload += "END";
    probe.emit("short");
    probe.emit(longPayload);

    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "C0 short");
    EXPECT_EQ(lines[1], "C0 " + longPayload);
    EXPECT_NE(lines[1].find("END"), std::string::npos);
}

#if SST_TRACE

namespace
{

std::vector<trace::TraceEvent>
runStructured(const std::string &model, CoreParams params,
              trace::TraceBuffer &buf)
{
    CoreRun r = makeRun(model, kOneMiss, params);
    r.core->attachTraceBuffer(&buf);
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    return buf.snapshot();
}

bool
hasKind(const std::vector<trace::TraceEvent> &events,
        trace::TraceKind kind)
{
    for (const auto &ev : events)
        if (ev.kind == kind)
            return true;
    return false;
}

} // namespace

TEST(TraceBuffer, SstRecordsLifecycle)
{
    trace::TraceBuffer buf;
    auto events = runStructured("sst", sstParams(2), buf);
    ASSERT_FALSE(events.empty());
    EXPECT_TRUE(hasKind(events, trace::TraceKind::Trigger));
    EXPECT_TRUE(hasKind(events, trace::TraceKind::Checkpoint));
    EXPECT_TRUE(hasKind(events, trace::TraceKind::Defer));
    EXPECT_TRUE(hasKind(events, trace::TraceKind::Replay));
    EXPECT_TRUE(hasKind(events, trace::TraceKind::Commit));
    // Both strands show up as distinct lanes.
    bool ahead = false, behind = false;
    for (const auto &ev : events) {
        ahead |= ev.strand == trace::TraceStrand::Ahead;
        behind |= ev.strand == trace::TraceStrand::Behind;
    }
    EXPECT_TRUE(ahead);
    EXPECT_TRUE(behind);
}

TEST(TraceBuffer, EventsAreCycleOrdered)
{
    trace::TraceBuffer buf;
    auto events = runStructured("sst", sstParams(2), buf);
    // Pipeline events are recorded as they happen; Fill events carry
    // their completion cycle, so compare within pipeline strands only.
    Cycle last = 0;
    for (const auto &ev : events) {
        if (ev.strand == trace::TraceStrand::Mem)
            continue;
        EXPECT_GE(ev.cycle, last);
        last = ev.cycle;
    }
}

TEST(TraceBuffer, CacheFillsAreTagged)
{
    trace::TraceBuffer buf;
    CoreRun r = makeRun("sst", kOneMiss, sstParams(2));
    r.core->attachTraceBuffer(&buf);
    r.core->port().l1d().setTrace(&buf, 1);
    r.run();
    bool sawL1 = false;
    for (const auto &ev : buf.snapshot())
        if (ev.kind == trace::TraceKind::Fill) {
            EXPECT_EQ(ev.strand, trace::TraceStrand::Mem);
            sawL1 |= ev.arg == 1;
        }
    EXPECT_TRUE(sawL1);
}

TEST(TraceBuffer, RingOverwritesOldest)
{
    trace::TraceBuffer buf(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        buf.record(trace::TraceEvent{i, i, 0, 0,
                                     trace::TraceKind::Exec,
                                     trace::TraceStrand::Main});
    EXPECT_EQ(buf.recorded(), 10u);
    EXPECT_EQ(buf.dropped(), 6u);
    auto events = buf.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().cycle, 6u);
    EXPECT_EQ(events.back().cycle, 9u);
}

TEST(ChromeTrace, ExportIsValidJsonWithStrandLanes)
{
    trace::TraceBuffer buf;
    auto events = runStructured("sst", sstParams(2), buf);
    ASSERT_FALSE(events.empty());
    std::string doc = trace::chromeTraceJson("core (sst)", buf);

    auto parsed = exp::Json::parse(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const exp::Json root = parsed.take();
    ASSERT_TRUE(root.isObject());
    const exp::Json *traceEvents = root.find("traceEvents");
    ASSERT_NE(traceEvents, nullptr);
    ASSERT_TRUE(traceEvents->isArray());

    bool aheadLane = false, behindLane = false;
    for (std::size_t i = 0; i < traceEvents->size(); ++i) {
        const exp::Json &ev = traceEvents->at(i);
        if (ev["ph"].asString() != "X")
            continue;
        double tid = ev["tid"].asNumber();
        aheadLane |=
            tid == static_cast<double>(trace::TraceStrand::Ahead);
        behindLane |=
            tid == static_cast<double>(trace::TraceStrand::Behind);
    }
    EXPECT_TRUE(aheadLane);
    EXPECT_TRUE(behindLane);
}

#endif // SST_TRACE
