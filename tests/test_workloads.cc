/** @file Tests for the workload generators. */

#include <gtest/gtest.h>

#include "func/executor.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

struct FuncResult
{
    ArchState state;
    std::uint64_t insts;
    MemoryImage mem;
};

FuncResult
runFunctional(const Workload &wl,
              std::uint64_t max_insts = 100'000'000ULL)
{
    FuncResult r;
    r.mem.loadSegments(wl.program);
    Executor exec(wl.program, r.mem);
    r.insts = exec.run(r.state, max_insts);
    return r;
}

class WorkloadFixture : public testing::TestWithParam<std::string>
{
};

} // namespace

TEST_P(WorkloadFixture, HaltsWithinBudget)
{
    WorkloadParams p;
    p.lengthScale = 0.1;
    p.footprintScale = 0.25;
    Workload wl = makeWorkload(GetParam(), p);
    FuncResult r = runFunctional(wl);
    EXPECT_TRUE(r.state.halted) << wl.name;
}

TEST_P(WorkloadFixture, DynamicCountNearEstimate)
{
    WorkloadParams p;
    Workload wl = makeWorkload(GetParam(), p);
    FuncResult r = runFunctional(wl);
    ASSERT_TRUE(r.state.halted);
    double ratio = static_cast<double>(r.insts)
                   / static_cast<double>(wl.approxDynInsts);
    EXPECT_GT(ratio, 0.4) << wl.name << " ran " << r.insts;
    EXPECT_LT(ratio, 2.5) << wl.name << " ran " << r.insts;
}

TEST_P(WorkloadFixture, DeterministicInSeed)
{
    WorkloadParams p;
    p.seed = 1234;
    p.lengthScale = 0.05;
    p.footprintScale = 0.25;
    Workload a = makeWorkload(GetParam(), p);
    Workload b = makeWorkload(GetParam(), p);
    ASSERT_EQ(a.program.size(), b.program.size());
    for (std::uint64_t i = 0; i < a.program.size(); ++i)
        ASSERT_EQ(a.program.at(i), b.program.at(i));
    FuncResult ra = runFunctional(a);
    FuncResult rb = runFunctional(b);
    EXPECT_TRUE(ra.state.regsEqual(rb.state));
    EXPECT_EQ(ra.insts, rb.insts);
}

TEST_P(WorkloadFixture, SeedChangesData)
{
    WorkloadParams p1, p2;
    p1.seed = 1;
    p2.seed = 2;
    p1.lengthScale = p2.lengthScale = 0.05;
    p1.footprintScale = p2.footprintScale = 0.25;
    Workload a = makeWorkload(GetParam(), p1);
    Workload b = makeWorkload(GetParam(), p2);
    FuncResult ra = runFunctional(a);
    FuncResult rb = runFunctional(b);
    // Different seeds should produce different checksums (result at
    // 0x1f0000), except for degenerate cases.
    std::uint64_t ca = ra.mem.read(0x1f0000, 8);
    std::uint64_t cb = rb.mem.read(0x1f0000, 8);
    EXPECT_NE(ca, cb) << a.name;
}

TEST_P(WorkloadFixture, ChecksumStoredToResultSlot)
{
    WorkloadParams p;
    p.lengthScale = 0.05;
    p.footprintScale = 0.25;
    Workload wl = makeWorkload(GetParam(), p);
    FuncResult r = runFunctional(wl);
    EXPECT_NE(r.mem.read(0x1f0000, 8), 0u) << wl.name;
}

TEST_P(WorkloadFixture, LengthScaleScalesWork)
{
    WorkloadParams small, large;
    small.lengthScale = 0.05;
    large.lengthScale = 0.2;
    small.footprintScale = large.footprintScale = 0.25;
    FuncResult rs = runFunctional(makeWorkload(GetParam(), small));
    FuncResult rl = runFunctional(makeWorkload(GetParam(), large));
    EXPECT_GT(rl.insts, rs.insts);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadFixture,
                         testing::ValuesIn(allWorkloadNames()),
                         [](const auto &info) { return info.param; });

TEST(Workloads, CategoriesPartitionTheSet)
{
    auto all = allWorkloadNames();
    auto commercial = commercialWorkloadNames();
    auto compute = computeWorkloadNames();
    EXPECT_EQ(all.size(), commercial.size() + compute.size());
    for (const auto &name : commercial)
        EXPECT_EQ(makeWorkload(name).category, "commercial");
    for (const auto &name : compute)
        EXPECT_EQ(makeWorkload(name).category, "compute");
}

TEST(Workloads, CommercialFootprintsExceedL2)
{
    // The commercial class must stress DRAM: data segments > 2 MB L2.
    for (const auto &name : commercialWorkloadNames()) {
        Workload wl = makeWorkload(name);
        std::uint64_t bytes = 0;
        for (const auto &seg : wl.program.segments())
            bytes += seg.bytes.size();
        EXPECT_GT(bytes, 2u * 1024 * 1024) << name;
    }
}

TEST(WorkloadsDeath, UnknownNameFatal)
{
    EXPECT_DEATH((void)makeWorkload("no_such"), "unknown workload");
}

TEST(Workloads, PointerChaseIsSingleCycle)
{
    // The Sattolo permutation must form one cycle covering all nodes:
    // walking N steps returns to the start without early repetition.
    WorkloadParams p;
    p.footprintScale = 0.02; // small node count for this check
    Workload wl = makeWorkload("pointer_chase", p);
    MemoryImage mem;
    mem.loadSegments(wl.program);
    const Addr base = 0x200000;
    std::uint64_t nodes = 0;
    for (const auto &seg : wl.program.segments())
        nodes = seg.bytes.size() / 64;
    Addr cur = base;
    for (std::uint64_t i = 0; i < nodes; ++i) {
        cur = mem.read(cur, 8);
        if (i + 1 < nodes) {
            ASSERT_NE(cur, base) << "cycle shorter than node count";
        }
    }
    EXPECT_EQ(cur, base);
}
