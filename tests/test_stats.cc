/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace sst;

TEST(Scalar, StartsAtZeroAndCounts)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 5;
    EXPECT_EQ(s.value(), 6u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Distribution, MeanAndCount)
{
    Distribution d;
    d.init(100, 10);
    d.sample(10);
    d.sample(20);
    d.sample(30);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_EQ(d.sum(), 60u);
    EXPECT_DOUBLE_EQ(d.mean(), 20.0);
    EXPECT_EQ(d.maxSample(), 30u);
}

TEST(Distribution, BucketsAndOverflow)
{
    Distribution d;
    d.init(100, 10); // width 10
    d.sample(0);
    d.sample(9);
    d.sample(10);
    d.sample(250);
    EXPECT_EQ(d.buckets()[0], 2u);
    EXPECT_EQ(d.buckets()[1], 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.maxSample(), 250u);
}

TEST(Distribution, BucketWidthRoundsUp)
{
    // Regression: truncating division left the top of [0, max) in
    // overflow — init(100, 8) gave width 12, covering only [0, 96).
    Distribution d;
    d.init(100, 8);
    EXPECT_EQ(d.bucketWidth(), 13u);
    d.sample(96);
    d.sample(99);
    EXPECT_EQ(d.buckets()[7], 2u);
    EXPECT_EQ(d.overflow(), 0u);

    Distribution e;
    e.init(10, 3); // ceil(10/3) = 4
    EXPECT_EQ(e.bucketWidth(), 4u);
    e.sample(9);
    EXPECT_EQ(e.buckets()[2], 1u);
    EXPECT_EQ(e.overflow(), 0u);
}

TEST(Distribution, MeanExactDespiteOverflow)
{
    Distribution d;
    d.init(10, 2);
    d.sample(1000);
    d.sample(0);
    EXPECT_DOUBLE_EQ(d.mean(), 500.0);
}

TEST(Distribution, Reset)
{
    Distribution d;
    d.init(10, 2);
    d.sample(5);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0u);
    EXPECT_EQ(d.buckets()[1], 0u);
}

TEST(StatGroup, ScalarRegistrationAndDump)
{
    StatGroup g("grp");
    Scalar &s = g.addScalar("events", "number of events");
    s += 3;
    std::string d = g.dump();
    EXPECT_NE(d.find("grp.events"), std::string::npos);
    EXPECT_NE(d.find("number of events"), std::string::npos);
}

TEST(StatGroup, FormulaEvaluatesLazily)
{
    StatGroup g("g");
    Scalar &a = g.addScalar("a", "");
    Scalar &b = g.addScalar("b", "");
    g.addFormula("ratio", "a/b", [&] {
        return b.value() ? double(a.value()) / double(b.value()) : 0.0;
    });
    a += 6;
    b += 3;
    auto flat = g.flatten();
    EXPECT_DOUBLE_EQ(flat["g.ratio"], 2.0);
}

TEST(StatGroup, ChildGroupsNest)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar &s = child.addScalar("x", "");
    s += 1;
    parent.addChild(child);
    auto flat = parent.flatten();
    EXPECT_EQ(flat.count("p.c.x"), 1u);
    EXPECT_DOUBLE_EQ(flat["p.c.x"], 1.0);
}

TEST(StatGroup, ResetRecurses)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar &a = parent.addScalar("a", "");
    Scalar &b = child.addScalar("b", "");
    parent.addChild(child);
    a += 1;
    b += 2;
    parent.reset();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, ReferencesStableAcrossManyRegistrations)
{
    StatGroup g("g");
    Scalar &first = g.addScalar("s0", "");
    std::vector<Scalar *> all{&first};
    for (int i = 1; i < 100; ++i)
        all.push_back(&g.addScalar("s" + std::to_string(i), ""));
    first += 42;
    EXPECT_EQ(all[0]->value(), 42u);
    auto flat = g.flatten();
    EXPECT_DOUBLE_EQ(flat["g.s0"], 42.0);
}

TEST(StatGroup, DumpJsonIsParseableShape)
{
    StatGroup g("g");
    Scalar &a = g.addScalar("hits", "");
    a += 7;
    g.addFormula("rate", "", [] { return 0.5; });
    std::string j = g.dumpJson();
    EXPECT_EQ(j.front(), '{');
    EXPECT_NE(j.find("\"g.hits\": 7"), std::string::npos);
    EXPECT_NE(j.find("\"g.rate\": 0.5"), std::string::npos);
    EXPECT_NE(j.find('}'), std::string::npos);
    // No trailing comma before the closing brace.
    auto brace = j.rfind('}');
    auto last_comma = j.rfind(',');
    EXPECT_TRUE(last_comma == std::string::npos || last_comma < j.rfind(':'));
    (void)brace;
}

TEST(StatGroup, AddChildIdempotent)
{
    StatGroup parent("p");
    StatGroup child("c");
    Scalar &s = child.addScalar("x", "");
    s += 1;
    parent.addChild(child);
    parent.addChild(child); // must not duplicate
    std::string d = parent.dump();
    auto first = d.find("p.c.x");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(d.find("p.c.x", first + 1), std::string::npos);
}

TEST(StatGroup, DistributionInGroup)
{
    StatGroup g("g");
    Distribution &d = g.addDist("lat", "latency", 100, 10);
    d.sample(50);
    auto flat = g.flatten();
    EXPECT_DOUBLE_EQ(flat["g.lat.mean"], 50.0);
}
