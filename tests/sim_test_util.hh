/** @file Shared helpers for core/system-level tests. */

#ifndef SSTSIM_TESTS_SIM_TEST_UTIL_HH
#define SSTSIM_TESTS_SIM_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/inorder.hh"
#include "core/ooo.hh"
#include "core/sst.hh"
#include "func/executor.hh"
#include "isa/assembler.hh"
#include "mem/hierarchy.hh"
#include "sim/machine.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

namespace sst::test
{

/** The differential harness sweep: every preset, three workloads that
 *  exercise distinct behaviours (dependent misses, mixed transactions,
 *  streaming joins). Shared by the fast-forward and snapshot tests. */
inline const std::vector<std::string> kAllPresets = {
    "inorder", "scout",     "ea",        "sst2",     "sst4",
    "sst8",    "ooo-small", "ooo-large", "ooo-huge",
};

inline const std::vector<std::string> kWorkloads = {
    "pointer_chase",
    "oltp_mix",
    "hash_join",
};

inline Program
workloadProgram(const std::string &name)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    return makeWorkload(name, wp).program;
}

inline void
expectStatsEqual(const std::map<std::string, double> &want,
                 const std::map<std::string, double> &got)
{
    EXPECT_EQ(want.size(), got.size());
    for (const auto &kv : want) {
        auto it = got.find(kv.first);
        ASSERT_NE(it, got.end()) << "stat missing: " << kv.first;
        EXPECT_EQ(kv.second, it->second) << "stat differs: " << kv.first;
    }
}

inline void
expectTracesEqual(const trace::TraceBuffer &want,
                  const trace::TraceBuffer &got)
{
    EXPECT_EQ(want.recorded(), got.recorded());
    EXPECT_EQ(want.dropped(), got.dropped());
    auto a = want.snapshot();
    auto b = got.snapshot();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("event " + std::to_string(i));
        EXPECT_EQ(a[i].cycle, b[i].cycle);
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].seq, b[i].seq);
        EXPECT_EQ(a[i].arg, b[i].arg);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].strand, b[i].strand);
        if (a[i].cycle != b[i].cycle || a[i].pc != b[i].pc
            || a[i].seq != b[i].seq)
            break; // one divergence point is enough noise
    }
}

/** One assembled program run on one core model, with its golden twin. */
struct CoreRun
{
    Program program;
    std::unique_ptr<MemorySystem> memsys;
    MemoryImage image;
    std::unique_ptr<Core> core;

    MemoryImage goldenImage;
    ArchState goldenState;
    std::uint64_t goldenInsts = 0;

    /** Tick until halt (bounded). @return cycles used. */
    Cycle
    run(std::uint64_t max_cycles = 10'000'000)
    {
        while (!core->halted() && core->cycles() < max_cycles)
            core->tick();
        return core->cycles();
    }

    bool
    archMatchesGolden() const
    {
        return core->archState().regsEqual(goldenState)
               && image.contentEquals(goldenImage)
               && core->instsRetired() == goldenInsts;
    }
};

/** Build a CoreRun for @p model over assembly source @p src. */
inline CoreRun
makeRun(const std::string &model, const std::string &src,
        CoreParams core_params = {}, HierarchyParams mem_params = {})
{
    CoreRun r;
    r.program = assemble(src, "test");
    r.memsys = std::make_unique<MemorySystem>(mem_params);
    r.image.loadSegments(r.program);
    CorePort &port = r.memsys->addCore();

    MachineConfig cfg;
    cfg.model = model;
    cfg.core = core_params;
    r.core = makeCore(cfg, r.program, r.image, port);

    r.goldenImage.loadSegments(r.program);
    Executor golden(r.program, r.goldenImage);
    r.goldenInsts = golden.run(r.goldenState, 50'000'000ULL);
    return r;
}

/** SST-flavoured CoreParams shorthand. */
inline CoreParams
sstParams(unsigned checkpoints, bool discard = false,
          unsigned dq = 64, unsigned ssq = 32)
{
    CoreParams p;
    p.name = "core";
    p.checkpoints = checkpoints;
    p.discardSpecWork = discard;
    p.dqEntries = dq;
    p.ssqEntries = ssq;
    return p;
}

} // namespace sst::test

#endif // SSTSIM_TESTS_SIM_TEST_UTIL_HH
