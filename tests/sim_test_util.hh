/** @file Shared helpers for core/system-level tests. */

#ifndef SSTSIM_TESTS_SIM_TEST_UTIL_HH
#define SSTSIM_TESTS_SIM_TEST_UTIL_HH

#include <memory>
#include <string>

#include "core/inorder.hh"
#include "core/ooo.hh"
#include "core/sst.hh"
#include "func/executor.hh"
#include "isa/assembler.hh"
#include "mem/hierarchy.hh"
#include "sim/machine.hh"

namespace sst::test
{

/** One assembled program run on one core model, with its golden twin. */
struct CoreRun
{
    Program program;
    std::unique_ptr<MemorySystem> memsys;
    MemoryImage image;
    std::unique_ptr<Core> core;

    MemoryImage goldenImage;
    ArchState goldenState;
    std::uint64_t goldenInsts = 0;

    /** Tick until halt (bounded). @return cycles used. */
    Cycle
    run(std::uint64_t max_cycles = 10'000'000)
    {
        while (!core->halted() && core->cycles() < max_cycles)
            core->tick();
        return core->cycles();
    }

    bool
    archMatchesGolden() const
    {
        return core->archState().regsEqual(goldenState)
               && image.contentEquals(goldenImage)
               && core->instsRetired() == goldenInsts;
    }
};

/** Build a CoreRun for @p model over assembly source @p src. */
inline CoreRun
makeRun(const std::string &model, const std::string &src,
        CoreParams core_params = {}, HierarchyParams mem_params = {})
{
    CoreRun r;
    r.program = assemble(src, "test");
    r.memsys = std::make_unique<MemorySystem>(mem_params);
    r.image.loadSegments(r.program);
    CorePort &port = r.memsys->addCore();

    MachineConfig cfg;
    cfg.model = model;
    cfg.core = core_params;
    r.core = makeCore(cfg, r.program, r.image, port);

    r.goldenImage.loadSegments(r.program);
    Executor golden(r.program, r.goldenImage);
    r.goldenInsts = golden.run(r.goldenState, 50'000'000ULL);
    return r;
}

/** SST-flavoured CoreParams shorthand. */
inline CoreParams
sstParams(unsigned checkpoints, bool discard = false,
          unsigned dq = 64, unsigned ssq = 32)
{
    CoreParams p;
    p.name = "core";
    p.checkpoints = checkpoints;
    p.discardSpecWork = discard;
    p.dqEntries = dq;
    p.ssqEntries = ssq;
    return p;
}

} // namespace sst::test

#endif // SSTSIM_TESTS_SIM_TEST_UTIL_HH
