/**
 * @file
 * Coherence subsystem tests: directory state machine, MSHR poison,
 * shared-memory litmus tests on coherent CMPs, speculative lock
 * elision, snapshot round-trips, and CPI attribution of coherence
 * stalls. (src/coh, plus the plumbing through mem/ and sim/cmp.)
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/result.hh"
#include "coh/coh.hh"
#include "mem/mshr.hh"
#include "sim_test_util.hh"
#include "sim/cmp.hh"
#include "snap/snap.hh"
#include "trace/cpistack.hh"

using namespace sst;
using namespace sst::test;

namespace
{

CohParams
testCohParams()
{
    CohParams p;
    p.enabled = true;
    p.invalidateLatency = 8;
    p.interventionLatency = 16;
    p.upgradeLatency = 6;
    return p;
}

/** A coherent CMP machine config for the given core model. */
MachineConfig
cohConfig(const std::string &model, bool elideLocks = false)
{
    MachineConfig cfg;
    cfg.presetName = "test-coh";
    cfg.model = model;
    cfg.core.name = "core";
    if (model == "sst") {
        cfg.core.checkpoints = 2;
        cfg.core.dqEntries = 64;
        cfg.core.ssqEntries = 32;
    }
    cfg.core.elideLocks = elideLocks;
    cfg.mem.coh.enabled = true;
    return cfg;
}

/** Sum one stat over all cores by suffix match on the flattened key. */
double
sumStat(Cmp &cmp, unsigned cores, const std::string &suffix)
{
    double total = 0;
    for (unsigned i = 0; i < cores; ++i)
        for (const auto &kv : cmp.core(i).stats().flatten())
            if (kv.first.size() >= suffix.size()
                && kv.first.compare(kv.first.size() - suffix.size(),
                                    suffix.size(), suffix)
                       == 0)
                total += kv.second;
    return total;
}

constexpr Addr kResultBase = 0x1f0000;
constexpr Addr kSharedBase = 0x201000; // shared workload payload base

} // namespace

// --- directory state machine ---------------------------------------

TEST(Directory, FirstTouchIsExclusiveAndFree)
{
    Directory dir(testCohParams());
    CohAction act = dir.onAccess(0x1000, 3, false);
    EXPECT_EQ(act.invalidateMask, 0u);
    EXPECT_FALSE(act.intervention);
    EXPECT_EQ(act.latency, 0u);
    EXPECT_EQ(dir.lineState(0x1000).owner, 3);
    // Repeated hits by the owner stay silent, stores included (E->M
    // has no traffic to model when data lives in the image).
    act = dir.onAccess(0x1000, 3, true);
    EXPECT_EQ(act.latency, 0u);
    EXPECT_EQ(dir.invalidations(), 0u);
}

TEST(Directory, RemoteReadOfOwnedLineIsAnIntervention)
{
    Directory dir(testCohParams());
    dir.onAccess(0x1000, 0, true); // core 0 owns (possibly dirty)
    CohAction act = dir.onAccess(0x1000, 1, false);
    EXPECT_TRUE(act.intervention);
    EXPECT_EQ(act.latency, 16u);
    EXPECT_EQ(act.invalidateMask, 0u); // read: old owner keeps a copy
    CohLine st = dir.lineState(0x1000);
    EXPECT_EQ(st.owner, -1);
    EXPECT_EQ(st.sharers, 0b11u);
    EXPECT_EQ(dir.interventions(), 1u);
}

TEST(Directory, RemoteStoreInvalidatesOwner)
{
    Directory dir(testCohParams());
    dir.onAccess(0x1000, 0, true);
    CohAction act = dir.onAccess(0x1000, 2, true);
    EXPECT_TRUE(act.intervention);
    EXPECT_EQ(act.invalidateMask, 0b001u);
    EXPECT_EQ(act.latency, 16u + 8u);
    EXPECT_EQ(dir.lineState(0x1000).owner, 2);
    EXPECT_EQ(dir.invalidations(), 1u);
}

TEST(Directory, StoreToSharedLineInvalidatesAllOtherSharers)
{
    Directory dir(testCohParams());
    dir.onAccess(0x2000, 0, false);
    dir.onAccess(0x2000, 1, false); // S {0,1}
    dir.onAccess(0x2000, 2, false); // S {0,1,2}
    CohAction act = dir.onAccess(0x2000, 1, true);
    EXPECT_EQ(act.invalidateMask, 0b101u);
    EXPECT_TRUE(act.upgrade); // core 1 already held a read copy
    EXPECT_EQ(act.latency, 8u + 6u);
    EXPECT_EQ(dir.lineState(0x2000).owner, 1);
    EXPECT_EQ(dir.invalidations(), 2u);
    EXPECT_EQ(dir.upgrades(), 1u);
}

TEST(Directory, StoreByNonSharerIsNotAnUpgrade)
{
    Directory dir(testCohParams());
    dir.onAccess(0x2000, 0, false);
    dir.onAccess(0x2000, 1, false); // line Shared by {0,1}
    // A write from a core holding no copy invalidates both sharers but
    // pays no upgrade (it never had the read copy to upgrade).
    CohAction act = dir.onAccess(0x2000, 3, true);
    EXPECT_EQ(act.invalidateMask, 0b011u);
    EXPECT_FALSE(act.upgrade);
    EXPECT_EQ(act.latency, 8u);
    EXPECT_EQ(dir.lineState(0x2000).owner, 3);
}

TEST(Directory, EvictAndDropCoreForgetLines)
{
    Directory dir(testCohParams());
    dir.onAccess(0x1000, 0, true);
    dir.onAccess(0x2000, 0, false);
    dir.onAccess(0x2000, 1, false);
    dir.onEvict(0x1000, 0);
    EXPECT_EQ(dir.lineState(0x1000).owner, -1);
    EXPECT_EQ(dir.lineState(0x1000).sharers, 0u);
    EXPECT_EQ(dir.trackedLines(), 1u); // 0x1000 fully forgotten
    dir.dropCore(1);
    EXPECT_EQ(dir.lineState(0x2000).sharers, 0b01u);
    dir.dropCore(0);
    EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST(Directory, SaveLoadRoundTripIsByteStable)
{
    Directory dir(testCohParams());
    dir.onAccess(0x3000, 1, true);
    dir.onAccess(0x1000, 0, false);
    dir.onAccess(0x1000, 2, false);
    dir.onAccess(0x2000, 3, true);
    dir.onAccess(0x2000, 0, false);

    snap::Writer w1;
    dir.save(w1);
    Directory copy(testCohParams());
    snap::Reader r(w1.data());
    copy.load(r);
    snap::Writer w2;
    copy.save(w2);
    EXPECT_EQ(w1.data(), w2.data());
    EXPECT_EQ(copy.lineState(0x1000).sharers,
              dir.lineState(0x1000).sharers);
    EXPECT_EQ(copy.invalidations(), dir.invalidations());
    EXPECT_EQ(copy.interventions(), dir.interventions());
}

// --- MSHR coherence poison -----------------------------------------

TEST(MshrCoherence, InvalidatePoisonsInFlightFill)
{
    StatGroup stats("test");
    MshrFile mshrs("l1_mshrs", 4, stats);
    mshrs.allocate(0x1000, 100, true, 10);
    EXPECT_EQ(mshrs.pendingCompletion(0x1000), 100u);

    // A remote write steals the line mid-fill: the entry must stop
    // matching (the next access re-misses and re-requests) but keep
    // occupying the file until its scheduled completion.
    mshrs.invalidate(0x1000);
    EXPECT_EQ(mshrs.pendingCompletion(0x1000), invalidCycle);
    EXPECT_EQ(mshrs.entries().size(), 1u);
    EXPECT_TRUE(!mshrs.full(10));
    mshrs.expire(100);
    EXPECT_EQ(mshrs.entries().size(), 0u);
}

// --- shared-memory litmus tests ------------------------------------

namespace
{

// Message passing: the fundamental invalidation-ordering litmus. The
// writer publishes data then raises a flag on a different line; the
// reader spins on the flag and must then observe the data.
const char *kWriterSrc = R"(
    li   x1, 0x200000
    li   x2, 42
    st   x2, 0(x1)
    li   x3, 1
    st   x3, 64(x1)
    halt
)";

const char *kReaderSrc = R"(
    li   x1, 0x200000
spin:
    ld   x2, 64(x1)
    beq  x2, x0, spin
    ld   x3, 0(x1)
    li   x4, 0x1f0008
    st   x3, 0(x4)
    halt
)";

void
runMessagePassing(const std::string &model)
{
    Program writer = assemble(kWriterSrc, "writer");
    Program reader = assemble(kReaderSrc, "reader");
    Cmp cmp(cohConfig(model), {&writer, &reader});
    CmpResult res = cmp.run(5'000'000);
    ASSERT_TRUE(res.finished) << model;
    EXPECT_EQ(cmp.image(1).read(0x1f0008, 8), 42u) << model;
}

} // namespace

TEST(Litmus, MessagePassingInOrder) { runMessagePassing("inorder"); }
TEST(Litmus, MessagePassingSst) { runMessagePassing("sst"); }
TEST(Litmus, MessagePassingOoO) { runMessagePassing("ooo"); }

namespace
{

/** Run spinlock_counter on @p cores coherent cores and check that no
 *  increment was lost: the counters must sum to cores * iters. */
void
runSpinlockCounter(const std::string &model, unsigned cores,
                   bool elideLocks)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1; // 200 iterations per core
    const std::uint64_t iters = 200;
    std::vector<Workload> w =
        makeSharedWorkload("spinlock_counter", cores, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);

    Cmp cmp(cohConfig(model, elideLocks), programs);
    CmpResult res = cmp.run(100'000'000);
    ASSERT_TRUE(res.finished)
        << model << " cores=" << cores << " elide=" << elideLocks;

    std::uint64_t sum = 0;
    for (unsigned s = 0; s < 64; ++s)
        sum += cmp.image(0).read(kSharedBase + s * 8, 8);
    EXPECT_EQ(sum, iters * cores)
        << model << " cores=" << cores << " elide=" << elideLocks;
    for (unsigned c = 0; c < cores; ++c)
        EXPECT_NE(cmp.image(c).read(kResultBase + c * 8, 8), 0u)
            << "core " << c << " checksum missing";
    // The lock itself must end up free.
    EXPECT_EQ(cmp.image(0).read(0x200000, 8), 0u);
    if (cores > 1) {
        EXPECT_GT(cmp.memsys().directory().invalidations(), 0u);
    }
}

} // namespace

TEST(Litmus, SpinlockCounterInOrder2) { runSpinlockCounter("inorder", 2, false); }
TEST(Litmus, SpinlockCounterSst2) { runSpinlockCounter("sst", 2, false); }
TEST(Litmus, SpinlockCounterSst4) { runSpinlockCounter("sst", 4, false); }
TEST(Litmus, SpinlockCounterSst16) { runSpinlockCounter("sst", 16, false); }
TEST(Litmus, SpinlockCounterOoO2) { runSpinlockCounter("ooo", 2, false); }

TEST(Litmus, ProducerConsumerMovesEveryItem)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    std::vector<Workload> w =
        makeSharedWorkload("producer_consumer", 4, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);
    Cmp cmp(cohConfig("sst"), programs);
    CmpResult res = cmp.run(100'000'000);
    ASSERT_TRUE(res.finished);
    // Each consumer's checksum equals its producer's: every item
    // crossed the ring intact, none lost or duplicated.
    EXPECT_EQ(cmp.image(0).read(kResultBase + 0, 8),
              cmp.image(1).read(kResultBase + 8, 8));
    EXPECT_EQ(cmp.image(2).read(kResultBase + 16, 8),
              cmp.image(3).read(kResultBase + 24, 8));
    EXPECT_NE(cmp.image(0).read(kResultBase, 8), 0u);
}

TEST(Litmus, SharedTableStaysConsistent)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    std::vector<Workload> w = makeSharedWorkload("shared_table", 4, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);
    Cmp cmp(cohConfig("sst"), programs);
    CmpResult res = cmp.run(100'000'000);
    ASSERT_TRUE(res.finished);
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_NE(cmp.image(c).read(kResultBase + c * 8, 8), 0u);
    EXPECT_EQ(cmp.image(0).read(0x200000, 8), 0u); // lock free
}

// The footprint-vs-salt-stride guard must only fire when a neighbour
// exists to alias: a single-program Cmp may exceed the stride freely.
TEST(Cmp, FootprintGuardNeedsANeighbour)
{
    const char *kHuge = R"(
        li   x1, 0x40000008
        ld   x2, 0(x1)
        halt
        .data 0x40000008
        .word 7
    )";
    Program huge = assemble(kHuge, "huge");
    MachineConfig cfg;
    cfg.model = "inorder";
    cfg.core.name = "core";

    auto solo = trapFatal([&] {
        Cmp cmp(cfg, {&huge});
        return cmp.run(1'000'000).finished;
    });
    ASSERT_TRUE(solo.ok());
    EXPECT_TRUE(solo.value());

    auto pair = trapFatal([&] {
        Cmp cmp(cfg, {&huge, &huge});
        return 0;
    });
    EXPECT_FALSE(pair.ok());
}

// --- speculative lock elision --------------------------------------

TEST(Sle, ElidesAndCommitsUncontendedLocks)
{
    runSpinlockCounter("sst", 2, true);
    // Correctness above; now the mechanism: rebuild and check stats.
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    std::vector<Workload> w =
        makeSharedWorkload("shared_table", 2, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);
    Cmp cmp(cohConfig("sst", true), programs);
    CmpResult res = cmp.run(100'000'000);
    ASSERT_TRUE(res.finished);
    EXPECT_GT(sumStat(cmp, 2, ".sle_elisions"), 0.0);
    EXPECT_GT(sumStat(cmp, 2, ".sle_commits"), 0.0);
}

namespace
{

// A deterministic elide-then-conflict pair. The elider warms X into
// its L1 first so the in-region loads hit (a deferred miss only joins
// the speculative read set at replay — it takes its value then, so a
// remote store before the replay is naturally ordered ahead of it),
// and raises a flag just before eliding so the conflicter's stores are
// guaranteed to overlap the open region.
const char *kSleElider = R"(
    li   x1, 0x200000
    li   x5, 0x200100
    li   x8, 0x200180
    ld   x6, 0(x5)
    li   x2, 1
    st   x2, 0(x8)
    amoswap x3, x2, 0(x1)
    li   x4, 400
loop:
    ld   x6, 0(x5)
    addi x4, x4, -1
    bne  x4, x0, loop
    st   x0, 0(x1)
    li   x7, 0x1f0000
    st   x6, 0(x7)
    halt
)";
const char *kSleConflicter = R"(
    li   x8, 0x200180
wait:
    ld   x9, 0(x8)
    beq  x9, x0, wait
    li   x1, 0x200100
    li   x2, 7
    li   x3, 200
loop:
    st   x2, 0(x1)
    addi x3, x3, -1
    bne  x3, x0, loop
    halt
)";

} // namespace

TEST(Sle, AbortsWhenARemoteWriteHitsTheReadSet)
{
    // Core 0 elides a lock and sits in a long read-only critical
    // section over X; core 1 waits for the flag, then hammers X with
    // plain stores. The elision must abort (requester wins) and retry
    // conventionally.
    Program elider = assemble(kSleElider, "elider");
    Program conflicter = assemble(kSleConflicter, "conflicter");
    Cmp cmp(cohConfig("sst", true), {&elider, &conflicter});
    CmpResult res = cmp.run(10'000'000);
    ASSERT_TRUE(res.finished);
    EXPECT_GE(sumStat(cmp, 2, ".sle_elisions"), 1.0);
    EXPECT_GE(sumStat(cmp, 2, ".sle_aborts"), 1.0);
    EXPECT_GE(sumStat(cmp, 2, ".fail_coh"), 1.0);
    // After the dust settles the lock is free and x6 made it out.
    EXPECT_EQ(cmp.image(0).read(0x200000, 8), 0u);
}

// --- snapshot round-trip -------------------------------------------

TEST(CohSnapshot, MidRunRestoreResumesByteIdentical)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    std::vector<Workload> w =
        makeSharedWorkload("spinlock_counter", 2, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);

    MachineConfig cfg = cohConfig("sst", true);
    Cmp a(cfg, programs);
    CmpResult mid = a.run(3'000); // stop mid-flight (cycle budget)
    ASSERT_FALSE(mid.finished);
    std::vector<std::uint8_t> midBytes = a.snapshot();

    Cmp b(cfg, programs);
    b.restore(midBytes);
    EXPECT_EQ(b.cycles(), a.cycles());
    // A restored chip must be bit-equal to the one it came from.
    EXPECT_EQ(b.snapshot(), midBytes);

    CmpResult ra = a.run(100'000'000);
    CmpResult rb = b.run(100'000'000);
    ASSERT_TRUE(ra.finished);
    ASSERT_TRUE(rb.finished);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.totalInsts, rb.totalInsts);
    // The whole point: resuming from the snapshot is invisible, down
    // to the directory state and every image byte.
    EXPECT_EQ(a.snapshot(), b.snapshot());
}

// --- CPI attribution of coherence stalls ---------------------------

TEST(CohCpi, CoherenceStallsSumIntoTotalCpi)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    std::vector<Workload> w =
        makeSharedWorkload("spinlock_counter", 2, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);
    Cmp cmp(cohConfig("inorder"), programs);
    CmpResult res = cmp.run(100'000'000);
    ASSERT_TRUE(res.finished);

    std::uint64_t coh = 0;
    for (unsigned c = 0; c < 2; ++c) {
        trace::CpiStack &stack = cmp.core(c).cpiStack();
        EXPECT_EQ(stack.total(), cmp.core(c).cycles())
            << "core " << c << ": CPI categories must cover every "
            << "cycle, coherence included";
        coh += stack.value(trace::CpiCat::Coherence);
    }
    // Two cores ping-ponging one lock line cannot avoid coherence
    // stalls; the new category must actually receive them.
    EXPECT_GT(coh, 0u);
}

TEST(CohCpi, SleRollbackChargesCoherence)
{
    // Reuse the deterministic conflict pair from the SLE abort test:
    // the squashed speculation's cycles must land in the Coherence
    // bucket (wasted by a remote write), not RollbackDiscard.
    Program elider = assemble(kSleElider, "elider");
    Program conflicter = assemble(kSleConflicter, "conflicter");
    Cmp cmp(cohConfig("sst", true), {&elider, &conflicter});
    CmpResult res = cmp.run(10'000'000);
    ASSERT_TRUE(res.finished);
    ASSERT_GE(sumStat(cmp, 2, ".sle_aborts"), 1.0);
    EXPECT_GT(cmp.core(0).cpiStack().value(trace::CpiCat::Coherence),
              0u);
    EXPECT_EQ(cmp.core(0).cpiStack().total(), cmp.core(0).cycles());
}
