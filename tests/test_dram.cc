/** @file Unit tests for the banked DRAM model. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/dram.hh"

using namespace sst;

namespace
{

DramParams
params(unsigned banks = 4)
{
    // base=100, tCas=10, tRcdRp=20, channel=5, rows of 4096 B.
    return DramParams{"d", banks, 4096, 100, 10, 20, 5};
}

} // namespace

TEST(Dram, ColdAccessPaysRowMiss)
{
    StatGroup sg("t");
    Dram d(params(), sg);
    Cycle done = d.access(0, 0, false);
    // base(100) + tRcdRp(20) + tCas(10) + channel(5)
    EXPECT_EQ(done, 135u);
}

TEST(Dram, RowHitIsFaster)
{
    StatGroup sg("t");
    Dram d(params(), sg);
    Cycle first = d.access(0, 0, false);
    Cycle second = d.access(64, first, false); // same row
    EXPECT_EQ(second - first, 115u); // base + tCas + channel
}

TEST(Dram, BankConflictSerialises)
{
    StatGroup sg("t");
    Dram d(params(4), sg);
    // Rows 0 and 4 share bank 0 (row % banks).
    Cycle a = d.access(0, 0, false);
    Cycle b = d.access(4 * 4096, 0, false);
    // Second access must wait for the first bank busy period.
    EXPECT_GT(b, a);
}

TEST(Dram, DifferentBanksOverlap)
{
    StatGroup sg("t");
    Dram d(params(4), sg);
    Cycle a = d.access(0, 0, false);
    Cycle b = d.access(1 * 4096, 0, false); // bank 1
    // Only the shared channel separates them (5 cycles), not the bank.
    EXPECT_EQ(b - a, 5u);
}

TEST(Dram, ChannelBoundsBandwidth)
{
    StatGroup sg("t");
    Dram d(params(16), sg);
    // 16 parallel accesses to 16 banks: completions must be spaced by
    // the 5-cycle channel occupancy.
    std::vector<Cycle> done;
    for (unsigned i = 0; i < 16; ++i)
        done.push_back(d.access(i * 4096, 0, false));
    for (size_t i = 1; i < done.size(); ++i)
        EXPECT_GE(done[i], done[i - 1] + 5);
}

TEST(Dram, StatsClassifyRowHits)
{
    StatGroup sg("t");
    Dram d(params(), sg);
    d.access(0, 0, false);
    d.access(64, 200, false);  // row hit
    d.access(8192, 400, false); // different row (bank 2): row miss
    auto flat = sg.flatten();
    EXPECT_DOUBLE_EQ(flat["t.d.row_hits"], 1.0);
    EXPECT_DOUBLE_EQ(flat["t.d.row_misses"], 2.0);
}

TEST(Dram, WritesCountedSeparately)
{
    StatGroup sg("t");
    Dram d(params(), sg);
    d.access(0, 0, true);
    d.access(64, 100, false);
    auto flat = sg.flatten();
    EXPECT_DOUBLE_EQ(flat["t.d.writes"], 1.0);
    EXPECT_DOUBLE_EQ(flat["t.d.reads"], 1.0);
}

TEST(Dram, DrainResetsTimingState)
{
    StatGroup sg("t");
    Dram d(params(), sg);
    Cycle first = d.access(0, 0, false);
    d.drain();
    Cycle again = d.access(0, 0, false);
    EXPECT_EQ(again, first); // row buffer closed again, channel free
}

TEST(DramDeath, ZeroBanksIsFatal)
{
    StatGroup sg("t");
    DramParams p = params(0);
    EXPECT_DEATH({ Dram d(p, sg); }, "bank");
}
