/** @file Unit tests for the sparse memory image. */

#include <gtest/gtest.h>

#include "func/memory_image.hh"
#include "isa/program.hh"

using namespace sst;

TEST(MemoryImage, UnwrittenReadsAsZero)
{
    MemoryImage m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.readByte(0xdeadbeef), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(MemoryImage, ByteRoundTrip)
{
    MemoryImage m;
    m.writeByte(10, 0xab);
    EXPECT_EQ(m.readByte(10), 0xab);
    EXPECT_EQ(m.readByte(11), 0u);
}

TEST(MemoryImage, MultiByteLittleEndian)
{
    MemoryImage m;
    m.write(0x100, 0x0102030405060708ULL, 8);
    EXPECT_EQ(m.readByte(0x100), 0x08);
    EXPECT_EQ(m.readByte(0x107), 0x01);
    EXPECT_EQ(m.read(0x100, 4), 0x05060708u);
    EXPECT_EQ(m.read(0x104, 4), 0x01020304u);
}

TEST(MemoryImage, PartialWidthWrite)
{
    MemoryImage m;
    m.write(0, ~0ULL, 8);
    m.write(2, 0, 2);
    EXPECT_EQ(m.read(0, 8), 0xffffffff0000ffffULL);
}

TEST(MemoryImage, PageCrossingAccess)
{
    MemoryImage m;
    Addr addr = MemoryImage::pageSize - 4;
    m.write(addr, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.read(addr, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(MemoryImage, LoadSegmentsUnalignedAcrossPages)
{
    // A segment starting mid-page and spanning several pages must load
    // identically to a byte-at-a-time copy.
    Program p("t");
    std::vector<std::uint8_t> bytes(3 * MemoryImage::pageSize + 100);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytes[i] = static_cast<std::uint8_t>(i * 13 + 1);
    const Addr base = 0x7fc0; // 64 bytes shy of a page boundary
    p.addData(base, bytes);

    MemoryImage chunked;
    chunked.loadSegments(p);
    MemoryImage bytewise;
    for (std::size_t i = 0; i < bytes.size(); ++i)
        bytewise.writeByte(base + i, bytes[i]);

    EXPECT_TRUE(chunked.contentEquals(bytewise));
    EXPECT_EQ(chunked.readByte(base), bytes[0]);
    EXPECT_EQ(chunked.readByte(base + bytes.size() - 1), bytes.back());
    EXPECT_EQ(chunked.readByte(base + bytes.size()), 0u);
}

TEST(MemoryImage, LoadSegments)
{
    Program p("t");
    p.addWords(0x2000, {7, 8});
    MemoryImage m;
    m.loadSegments(p);
    EXPECT_EQ(m.read(0x2000, 8), 7u);
    EXPECT_EQ(m.read(0x2008, 8), 8u);
}

TEST(MemoryImage, ContentEqualsIgnoresZeroPages)
{
    MemoryImage a, b;
    a.write(0x5000, 0, 8); // touches a page with zeroes only
    EXPECT_TRUE(a.contentEquals(b));
    EXPECT_TRUE(b.contentEquals(a));
    a.write(0x5000, 1, 8);
    EXPECT_FALSE(a.contentEquals(b));
    b.write(0x5000, 1, 8);
    EXPECT_TRUE(a.contentEquals(b));
}

TEST(MemoryImage, ContentEqualsSymmetry)
{
    MemoryImage a, b;
    b.write(0x9000, 5, 8);
    EXPECT_FALSE(a.contentEquals(b));
    EXPECT_FALSE(b.contentEquals(a));
}

TEST(MemoryImageDeath, BadSizePanics)
{
    MemoryImage m;
    EXPECT_DEATH(m.write(0, 0, 9), "size");
    EXPECT_DEATH((void)m.read(0, 0), "size");
}
