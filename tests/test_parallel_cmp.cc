/**
 * @file
 * Deterministic parallel CMP tick engine (src/sim/cmp.cc): byte-
 * equality of results, snapshots and mid-run state across worker
 * counts; chip-clock accounting in CmpResult; and the restore-path
 * write-observer regression.
 *
 * The engine's whole contract is that -j is invisible: every stat,
 * trace and snapshot byte must be identical whether the chip ticks on
 * one thread or eight. These tests run the same chips at -j {1,2,8}
 * and literally compare snapshot byte vectors.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/tickgate.hh"
#include "sim/cmp.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

struct RunOut
{
    CmpResult res;
    std::vector<std::uint8_t> snap;
    Cycle chipCycles = 0;
};

/** Run @p cores copies of a generator workload on a salted CMP. */
RunOut
runSalted(const std::string &preset, const std::string &workload,
          unsigned workers, unsigned cores = 4,
          std::uint64_t maxCycles = 20'000'000)
{
    WorkloadParams wp;
    wp.lengthScale = 0.05;
    Workload w = makeWorkload(workload, wp);
    std::vector<const Program *> programs(cores, &w.program);
    MachineConfig mc = makePreset(preset);
    mc.mem.coh.enabled = false; // salted even for rock16
    mc.cmpWorkers = workers;
    Cmp cmp(mc, programs);
    RunOut o;
    o.res = cmp.run(maxCycles);
    o.snap = cmp.snapshot();
    o.chipCycles = cmp.cycles();
    return o;
}

/** Run a shared-memory workload on the coherent rock16 chip. */
RunOut
runRock16(const std::string &workload, unsigned workers,
          std::uint64_t maxCycles = 100'000'000)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    MachineConfig mc = makePreset("rock16");
    mc.cmpWorkers = workers;
    std::vector<Workload> w =
        makeSharedWorkload(workload, mc.cmpCores, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);
    Cmp cmp(mc, programs);
    RunOut o;
    o.res = cmp.run(maxCycles);
    o.snap = cmp.snapshot();
    o.chipCycles = cmp.cycles();
    return o;
}

void
expectSameRun(const RunOut &a, const RunOut &b, const std::string &what)
{
    EXPECT_EQ(a.res.cycles, b.res.cycles) << what;
    EXPECT_EQ(a.res.totalInsts, b.res.totalInsts) << what;
    EXPECT_EQ(a.res.finished, b.res.finished) << what;
    EXPECT_EQ(a.res.degrade, b.res.degrade) << what;
    EXPECT_EQ(a.res.watchdogRecoveries, b.res.watchdogRecoveries)
        << what;
    EXPECT_EQ(a.res.perCoreIpc, b.res.perCoreIpc) << what;
    // The strongest claim: the complete chip state — every register,
    // cache tag, directory entry, stat and image byte — is identical.
    EXPECT_EQ(a.snap, b.snap) << what << ": snapshot bytes differ";
}

double
statSuffix(Cmp &cmp, const std::string &suffix)
{
    double total = 0;
    for (const auto &kv : cmp.memsys().stats().flatten())
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            total += kv.second;
    return total;
}

} // namespace

// --- synchronization primitives ------------------------------------

TEST(TickGate, EnterWaitsForLowerCoresToFinishTheCycle)
{
    TickGate gate(2);
    gate.completeThrough(0, 5);
    gate.completeThrough(1, 5);
    std::atomic<bool> entered{false};
    // Core 1 at cycle 5 needs core 0 to have *finished* 5.
    std::thread t([&] {
        gate.enter(1, 5);
        entered.store(true);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(entered.load());
    gate.completeThrough(0, 6);
    t.join();
    EXPECT_TRUE(entered.load());
    // Core 0 at cycle 5 only needs core 1 to have finished cycle 4,
    // which it has: enter must not block.
    gate.enter(0, 5);
}

TEST(SpinBarrier, LastArriverRunsTheSerialPhase)
{
    SpinBarrier barrier(4);
    std::atomic<unsigned> serial{0};
    std::atomic<unsigned> released{0};
    std::vector<std::thread> ts;
    for (unsigned w = 0; w < 4; ++w)
        ts.emplace_back([&] {
            for (int round = 0; round < 100; ++round) {
                if (barrier.arrive()) {
                    serial.fetch_add(1);
                    barrier.release();
                }
                released.fetch_add(1);
            }
        });
    for (auto &t : ts)
        t.join();
    EXPECT_EQ(serial.load(), 100u);
    EXPECT_EQ(released.load(), 400u);
}

// --- salted differential: preset x workload x workers --------------

TEST(ParallelCmp, SaltedMatrixIsByteIdenticalAcrossWorkerCounts)
{
    const std::vector<std::string> workloads = {"hash_join", "stream",
                                                "pointer_chase"};
    for (const std::string &preset : presetNames()) {
        for (const std::string &wl : workloads) {
            const std::string what = preset + "/" + wl;
            RunOut j1 = runSalted(preset, wl, 1);
            ASSERT_TRUE(j1.res.finished || !j1.res.perCoreIpc.empty())
                << what;
            for (unsigned j : {2u, 8u}) {
                RunOut jn = runSalted(preset, wl, j);
                expectSameRun(j1, jn, what + " -j" + std::to_string(j));
            }
        }
    }
}

TEST(ParallelCmp, ValuePredAndStrandHistoryAreByteIdenticalAcrossWorkers)
{
    // The predictor frontier adds per-worker-visible state (value
    // predictor table, per-strand GHRs, per-epoch RAS copies); all of
    // it must stay inside the deterministic tick so -j remains
    // invisible. list_walk keeps the value predictor genuinely hot.
    auto run = [&](unsigned workers) {
        WorkloadParams wp;
        wp.lengthScale = 0.02;
        Workload w = makeWorkload("list_walk", wp);
        std::vector<const Program *> programs(4, &w.program);
        MachineConfig mc = makePreset("sst4");
        mc.mem.coh.enabled = false;
        mc.cmpWorkers = workers;
        mc.core.valuePred = "stride";
        mc.core.strandHistory = true;
        Cmp cmp(mc, programs);
        RunOut o;
        o.res = cmp.run(40'000'000);
        o.snap = cmp.snapshot();
        o.chipCycles = cmp.cycles();
        return o;
    };
    RunOut j1 = run(1);
    ASSERT_TRUE(j1.res.finished);
    for (unsigned j : {2u, 8u})
        expectSameRun(j1, run(j),
                      "sst4+vp/list_walk -j" + std::to_string(j));
}

// --- coherent rock16 differential ----------------------------------

TEST(ParallelCmp, Rock16SpinlockIsByteIdenticalAcrossWorkerCounts)
{
    RunOut j1 = runRock16("spinlock_counter", 1);
    ASSERT_TRUE(j1.res.finished);
    for (unsigned j : {2u, 8u})
        expectSameRun(j1, runRock16("spinlock_counter", j),
                      "rock16/spinlock -j" + std::to_string(j));
}

TEST(ParallelCmp, Rock16ProducerConsumerIsByteIdenticalAcrossWorkerCounts)
{
    RunOut j1 = runRock16("producer_consumer", 1);
    ASSERT_TRUE(j1.res.finished);
    for (unsigned j : {2u, 8u})
        expectSameRun(j1, runRock16("producer_consumer", j),
                      "rock16/producer_consumer -j" + std::to_string(j));
}

TEST(ParallelCmp, Rock16SharedTableIsByteIdenticalAcrossWorkerCounts)
{
    RunOut j1 = runRock16("shared_table", 1);
    ASSERT_TRUE(j1.res.finished);
    for (unsigned j : {2u, 8u})
        expectSameRun(j1, runRock16("shared_table", j),
                      "rock16/shared_table -j" + std::to_string(j));
}

// --- mid-run state equality ----------------------------------------

TEST(ParallelCmp, MidRunSnapshotsMatchAcrossWorkerCounts)
{
    // A budget stop lands on the same barrier at every worker count,
    // so even a snapshot taken mid-flight must be byte-equal.
    RunOut salted1 = runSalted("sst4", "hash_join", 1, 4, 10'000);
    RunOut salted8 = runSalted("sst4", "hash_join", 8, 4, 10'000);
    EXPECT_FALSE(salted1.res.finished);
    EXPECT_EQ(salted1.snap, salted8.snap);

    RunOut coh1 = runRock16("spinlock_counter", 1, 3'000);
    RunOut coh8 = runRock16("spinlock_counter", 8, 3'000);
    EXPECT_FALSE(coh1.res.finished);
    EXPECT_EQ(coh1.snap, coh8.snap);
}

// --- livelock injection is worker-count independent ----------------

TEST(ParallelCmp, InjectedLivelockDegradesIdenticallyAtAnyWorkerCount)
{
    auto run = [&](unsigned workers) {
        WorkloadParams wp;
        wp.lengthScale = 0.05;
        Workload w = makeWorkload("pointer_chase", wp);
        std::vector<const Program *> programs(4, &w.program);
        MachineConfig mc = makePreset("inorder");
        // Every fill lost for effectively ever: the watchdog's
        // escalation runs out and declares livelock. Fault injection
        // armed also exercises the gate-every-access path.
        mc.mem.fault.dropFillRate = 1.0;
        mc.mem.fault.dropTimeout = 10'000'000;
        mc.watchdog.stallCycles = 1'000;
        mc.watchdog.maxInterventions = 3;
        mc.cmpWorkers = workers;
        Cmp cmp(mc, programs);
        RunOut o;
        o.res = cmp.run(100'000'000);
        o.snap = cmp.snapshot();
        return o;
    };
    RunOut j1 = run(1);
    EXPECT_FALSE(j1.res.finished);
    EXPECT_EQ(j1.res.degrade, DegradeReason::Livelock);
    for (unsigned j : {2u, 8u}) {
        RunOut jn = run(j);
        EXPECT_EQ(jn.res.degrade, DegradeReason::Livelock);
        expectSameRun(j1, jn, "livelock -j" + std::to_string(j));
    }
}

// --- CmpResult.cycles reports the chip clock (accounting fix) ------

TEST(ParallelCmp, ResultCyclesIsTheChipClock)
{
    // Budget stop: the result must report the chip clock (== budget),
    // not the max per-core cycle counter (which could diverge from the
    // clock a snapshot resumes at).
    RunOut mid = runSalted("sst2", "hash_join", 1, 4, 10'000);
    EXPECT_FALSE(mid.res.finished);
    EXPECT_EQ(mid.res.cycles, mid.chipCycles);
    EXPECT_EQ(mid.res.cycles, 10'000u);

    // Finished run: chip clock and slowest core agree.
    RunOut done = runSalted("sst2", "hash_join", 2, 4);
    EXPECT_TRUE(done.res.finished);
    EXPECT_EQ(done.res.cycles, done.chipCycles);
}

// --- the restore path keeps the coherent write observer ------------

TEST(ParallelCmp, RemoteWritesStillSquashAfterRestore)
{
    WorkloadParams wp;
    wp.lengthScale = 0.1;
    MachineConfig mc = makePreset("rock16");
    mc.cmpCores = 4;
    std::vector<Workload> w = makeSharedWorkload("spinlock_counter",
                                                 mc.cmpCores, wp);
    std::vector<const Program *> programs;
    for (const Workload &x : w)
        programs.push_back(&x.program);

    Cmp a(mc, programs);
    CmpResult mid = a.run(5'000);
    ASSERT_FALSE(mid.finished);
    const double squashesAtSnap = statSuffix(a, "coh_squashes");
    std::vector<std::uint8_t> bytes = a.snapshot();

    // The premise: squashes keep happening after the snapshot point
    // (spinlock contention squashes speculative readers throughout).
    CmpResult fullA = a.run(100'000'000);
    ASSERT_TRUE(fullA.finished);
    const double squashesTotal = statSuffix(a, "coh_squashes");
    ASSERT_GT(squashesTotal, squashesAtSnap)
        << "test premise broken: no squashes after the snapshot point";

    // If Cmp::restore dropped (or double-installed) the image's write
    // observer, the resumed chip would squash never (or differently)
    // and diverge from the uninterrupted run.
    Cmp b(mc, programs);
    b.restore(bytes);
    EXPECT_EQ(statSuffix(b, "coh_squashes"), squashesAtSnap);
    CmpResult fullB = b.run(100'000'000);
    ASSERT_TRUE(fullB.finished);
    EXPECT_EQ(statSuffix(b, "coh_squashes"), squashesTotal);
    EXPECT_EQ(fullB.cycles, fullA.cycles);
    EXPECT_EQ(a.snapshot(), b.snapshot());
}

// --- worker-count plumbing -----------------------------------------

TEST(ParallelCmp, WorkersClampToCoreCount)
{
    WorkloadParams wp;
    wp.lengthScale = 0.05;
    Workload w = makeWorkload("stream", wp);
    std::vector<const Program *> programs(2, &w.program);
    MachineConfig mc = makePreset("sst2");
    mc.cmpWorkers = 64;
    Cmp cmp(mc, programs);
    EXPECT_EQ(cmp.workers(), 2u);
}
