/**
 * @file
 * Unit tests for the snap serialization layer: the Writer/Reader
 * primitives (including the on-the-wire little-endian byte layout the
 * cross-machine hash depends on), the corruption discipline (tag
 * mismatches and truncation are fatal, never silent), the FNV hash,
 * the atomic file helpers, and save/load round trips of the leaf
 * components (Rng, Distribution, StatGroup, TraceBuffer).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "snap/snap.hh"
#include "trace/trace.hh"

using namespace sst;

namespace
{

/** Unique temp path per test (tests may run concurrently). */
std::string
tmpPath(const std::string &stem)
{
    return ::testing::TempDir() + "sstsim_" + stem + "_"
           + std::to_string(::getpid()) + ".snap";
}

} // namespace

TEST(Snap, PrimitiveRoundTrip)
{
    snap::Writer w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.i32(-42);
    w.i64(-1234567890123LL);
    w.b(true);
    w.b(false);
    w.f64(3.14159265358979);
    w.str("hello");
    w.str("");
    const std::uint8_t raw[3] = {1, 2, 3};
    w.bytes(raw, sizeof raw);

    snap::Reader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.i64(), -1234567890123LL);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.f64(), 3.14159265358979);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    std::uint8_t got[3] = {};
    r.bytes(got, sizeof got);
    EXPECT_EQ(got[0], 1);
    EXPECT_EQ(got[1], 2);
    EXPECT_EQ(got[2], 3);
    EXPECT_TRUE(r.atEnd());
    r.done();
}

/** The encoding is little-endian by definition, not by host accident —
 *  this is what makes snapshots and state hashes portable. */
TEST(Snap, LittleEndianLayout)
{
    snap::Writer w;
    w.u32(0x01020304u);
    ASSERT_EQ(w.size(), 4u);
    EXPECT_EQ(w.data()[0], 0x04);
    EXPECT_EQ(w.data()[1], 0x03);
    EXPECT_EQ(w.data()[2], 0x02);
    EXPECT_EQ(w.data()[3], 0x01);

    snap::Writer w2;
    w2.u64(0x1122334455667788ULL);
    ASSERT_EQ(w2.size(), 8u);
    EXPECT_EQ(w2.data()[0], 0x88);
    EXPECT_EQ(w2.data()[7], 0x11);
}

TEST(Snap, TagMismatchIsFatal)
{
    snap::Writer w;
    w.tag("caches");
    auto res = trapFatal([&] {
        snap::Reader r(w.data());
        r.tag("predictor");
    });
    ASSERT_FALSE(res.ok());
    EXPECT_NE(res.error().message.find("predictor"), std::string::npos);
}

TEST(Snap, TruncationIsFatal)
{
    snap::Writer w;
    w.u16(7);
    auto res = trapFatal([&] {
        snap::Reader r(w.data());
        (void)r.u64(); // only 2 bytes available
    });
    EXPECT_FALSE(res.ok());
}

TEST(Snap, TrailingGarbageIsFatal)
{
    snap::Writer w;
    w.u32(1);
    w.u8(0xcc); // one byte the reader will not consume
    auto res = trapFatal([&] {
        snap::Reader r(w.data());
        (void)r.u32();
        r.done();
    });
    EXPECT_FALSE(res.ok());
}

TEST(Snap, HasherMatchesOneShotFnv)
{
    const char payload[] = "simultaneous speculative threading";
    snap::Hasher h;
    h.mix(payload, 10);
    h.mix(payload + 10, sizeof(payload) - 10);
    EXPECT_EQ(h.value(), snap::fnv1a(payload, sizeof(payload)));

    // Writer::hash() is the same function over the serialized bytes.
    snap::Writer w;
    w.str("abc");
    w.u64(99);
    EXPECT_EQ(w.hash(), snap::fnv1a(w.data().data(), w.size()));
}

TEST(Snap, FileRoundTrip)
{
    const std::string path = tmpPath("file_roundtrip");
    std::vector<std::uint8_t> bytes = {0, 1, 2, 254, 255, 0, 42};
    auto wr = snap::writeFile(path, bytes);
    ASSERT_TRUE(wr.ok()) << wr.error().message;
    auto rd = snap::readFile(path);
    ASSERT_TRUE(rd.ok()) << rd.error().message;
    EXPECT_EQ(rd.value(), bytes);
    std::remove(path.c_str());
}

TEST(Snap, ReadMissingFileIsAnError)
{
    auto rd = snap::readFile(tmpPath("no_such_file"));
    EXPECT_FALSE(rd.ok());
}

/** An Rng restored mid-stream must continue the exact stream. */
TEST(Snap, RngRoundTrip)
{
    Rng rng(0x1234abcdULL);
    for (int i = 0; i < 1000; ++i)
        (void)rng.next();

    snap::Writer w;
    rng.save(w);
    std::vector<std::uint64_t> expect;
    for (int i = 0; i < 100; ++i)
        expect.push_back(rng.next());

    Rng other(999); // deliberately different seed
    snap::Reader r(w.data());
    other.load(r);
    r.done();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(other.next(), expect[i]) << "draw " << i;
}

TEST(Snap, DistributionRoundTrip)
{
    Distribution d;
    d.init(100, 10);
    for (std::uint64_t v : {3ULL, 55ULL, 99ULL, 250ULL})
        d.sample(v);
    d.sample(7, 12); // bulk path

    snap::Writer w;
    d.save(w);

    Distribution e;
    e.init(100, 10); // geometry is config, re-established by init()
    snap::Reader r(w.data());
    e.load(r);
    r.done();

    EXPECT_EQ(e.count(), d.count());
    EXPECT_EQ(e.sum(), d.sum());
    EXPECT_EQ(e.maxSample(), d.maxSample());
    EXPECT_EQ(e.overflow(), d.overflow());
    EXPECT_EQ(e.buckets(), d.buckets());
    EXPECT_EQ(e.toJson(), d.toJson());
}

TEST(Snap, StatGroupRoundTripAndValidation)
{
    StatGroup g("core");
    Scalar &a = g.addScalar("insts", "retired");
    Scalar &b = g.addScalar("cycles", "elapsed");
    Distribution &d = g.addDist("occupancy", "dq occupancy", 64, 8);
    g.addFormula("ipc", "derived", [&] {
        return double(a.value()) / double(b.value() ? b.value() : 1);
    });
    a += 1000;
    b += 500;
    d.sample(13);

    snap::Writer w;
    g.save(w);

    // Identically shaped tree: values transfer (and the formula,
    // being derived, recomputes from the restored scalars).
    StatGroup g2("core");
    Scalar &a2 = g2.addScalar("insts", "retired");
    Scalar &b2 = g2.addScalar("cycles", "elapsed");
    g2.addDist("occupancy", "dq occupancy", 64, 8);
    g2.addFormula("ipc", "derived", [&] {
        return double(a2.value()) / double(b2.value() ? b2.value() : 1);
    });
    {
        snap::Reader r(w.data());
        g2.load(r);
        r.done();
    }
    EXPECT_EQ(a2.value(), 1000u);
    EXPECT_EQ(g2.flatten(), g.flatten());

    // Differently shaped tree: load is fatal, with the stat named.
    StatGroup g3("core");
    g3.addScalar("instructions", "renamed stat");
    g3.addScalar("cycles", "elapsed");
    g3.addDist("occupancy", "dq occupancy", 64, 8);
    auto res = trapFatal([&] {
        snap::Reader r(w.data());
        g3.load(r);
    });
    EXPECT_FALSE(res.ok());
}

TEST(Snap, TraceBufferRoundTrip)
{
    // Small capacity so the test also exercises the overwrite cursors.
    trace::TraceBuffer buf(16);
    for (std::uint64_t i = 0; i < 32; ++i) {
        trace::TraceEvent e;
        e.cycle = 10 * i;
        e.pc = i;
        e.seq = i;
        e.arg = static_cast<std::uint32_t>(i * 3);
        e.kind = trace::TraceKind::Commit;
        e.strand = (i & 1) ? trace::TraceStrand::Ahead
                           : trace::TraceStrand::Main;
        buf.record(e);
    }

    snap::Writer w;
    buf.save(w);

    trace::TraceBuffer other(16);
    snap::Reader r(w.data());
    other.load(r);
    r.done();

    // Capacity is configuration, not state: a mismatch is fatal.
    trace::TraceBuffer wrongCap(32);
    auto res = trapFatal([&] {
        snap::Reader r2(w.data());
        wrongCap.load(r2);
    });
    EXPECT_FALSE(res.ok());

    EXPECT_EQ(other.recorded(), buf.recorded());
    EXPECT_EQ(other.dropped(), buf.dropped());
    auto x = buf.snapshot();
    auto y = other.snapshot();
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].cycle, y[i].cycle);
        EXPECT_EQ(x[i].pc, y[i].pc);
        EXPECT_EQ(x[i].kind, y[i].kind);
    }
}

TEST(Snap, WriteFileReportsUnwritableTargets)
{
    // A parent path component that is a regular file fails for any
    // uid (ENOTDIR) — unlike permission-based setups, which evaporate
    // when the tests run as root.
    const std::string blocker = tmpPath("write_blocker");
    {
        auto wr = snap::writeFile(blocker, {1, 2, 3});
        ASSERT_TRUE(wr.ok()) << wr.error().message;
    }
    auto wr = snap::writeFile(blocker + "/nested.snap", {4, 5, 6});
    ASSERT_FALSE(wr.ok());
    EXPECT_NE(wr.error().message.find("cannot open"), std::string::npos)
        << wr.error().message;

    // A missing parent directory fails too, and leaves nothing behind.
    auto missing =
        snap::writeFile(blocker + "_no_such_dir/x.snap", {7});
    EXPECT_FALSE(missing.ok());
    std::remove(blocker.c_str());
}

TEST(Snap, WriteFileStagesThroughPerProcessTmp)
{
    // The staging file is pid-suffixed so two processes writing the
    // same checkpoint (a re-leased job's new worker racing its stalled
    // predecessor) never rename each other's half-written files, and
    // it must be gone once writeFile returns.
    const std::string path = tmpPath("write_stage");
    auto wr = snap::writeFile(path, {9, 9, 9});
    ASSERT_TRUE(wr.ok()) << wr.error().message;
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    EXPECT_FALSE(snap::readFile(tmp).ok())
        << "staging file must not survive";
    EXPECT_TRUE(snap::readFile(path).ok());
    std::remove(path.c_str());
}

TEST(Snap, ProbeSnapshotFileDiagnosesHeaderDamage)
{
    // Missing file.
    EXPECT_FALSE(snap::probeSnapshotFile(tmpPath("probe_none")).ok());

    // Too short to even hold the magic+version header: the torn-write
    // shape a SIGKILLed worker leaves behind without atomic staging.
    const std::string shortPath = tmpPath("probe_short");
    ASSERT_TRUE(snap::writeFile(shortPath, {1, 2, 3}).ok());
    auto shortProbe = snap::probeSnapshotFile(shortPath);
    ASSERT_FALSE(shortProbe.ok());
    EXPECT_NE(shortProbe.error().message.find("truncated"),
              std::string::npos)
        << shortProbe.error().message;
    std::remove(shortPath.c_str());

    // Right size, wrong magic.
    const std::string badPath = tmpPath("probe_badmagic");
    ASSERT_TRUE(
        snap::writeFile(badPath, std::vector<std::uint8_t>(32, 0xee))
            .ok());
    auto badProbe = snap::probeSnapshotFile(badPath);
    ASSERT_FALSE(badProbe.ok());
    EXPECT_NE(badProbe.error().message.find("bad magic"),
              std::string::npos)
        << badProbe.error().message;
    std::remove(badPath.c_str());

    // Good magic, future format version.
    snap::Writer w;
    w.u64(snap::fileMagic);
    w.u32(snap::formatVersion + 1);
    const std::string versPath = tmpPath("probe_version");
    ASSERT_TRUE(snap::writeFile(versPath, w.data()).ok());
    auto versProbe = snap::probeSnapshotFile(versPath);
    ASSERT_FALSE(versProbe.ok());
    EXPECT_NE(versProbe.error().message.find("format version"),
              std::string::npos)
        << versProbe.error().message;

    // A well-formed header passes the probe.
    snap::Writer good;
    good.u64(snap::fileMagic);
    good.u32(snap::formatVersion);
    ASSERT_TRUE(snap::writeFile(versPath, good.data()).ok());
    EXPECT_TRUE(snap::probeSnapshotFile(versPath).ok());
    std::remove(versPath.c_str());
}
