/** @file Unit tests for the MSHR file and the sequential prefetcher. */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "mem/mshr.hh"
#include "mem/prefetcher.hh"

using namespace sst;

TEST(Mshr, AllocateAndLookup)
{
    StatGroup sg("t");
    MshrFile m("m", 4, sg);
    m.allocate(0x100, 50, true, 0);
    EXPECT_EQ(m.pendingCompletion(0x100), 50u);
    EXPECT_EQ(m.pendingCompletion(0x200), invalidCycle);
}

TEST(Mshr, ExpireFreesCompleted)
{
    StatGroup sg("t");
    MshrFile m("m", 2, sg);
    m.allocate(0x100, 50, true, 0);
    m.allocate(0x200, 80, true, 0);
    EXPECT_TRUE(m.full(10));
    EXPECT_FALSE(m.full(60)); // 0x100 expired
    EXPECT_EQ(m.pendingCompletion(0x100), invalidCycle);
    EXPECT_EQ(m.pendingCompletion(0x200), 80u);
}

TEST(Mshr, EarliestFree)
{
    StatGroup sg("t");
    MshrFile m("m", 2, sg);
    m.allocate(0x100, 90, true, 0);
    m.allocate(0x200, 40, true, 0);
    EXPECT_EQ(m.earliestFree(), 40u);
}

TEST(Mshr, OutstandingDemandExcludesPrefetch)
{
    StatGroup sg("t");
    MshrFile m("m", 8, sg);
    m.allocate(0x100, 100, true, 0);
    m.allocate(0x200, 100, false, 0); // prefetch
    m.allocate(0x300, 100, true, 0);
    EXPECT_EQ(m.outstandingDemand(10), 2u);
}

TEST(Mshr, MlpSampledAtAllocation)
{
    StatGroup sg("t");
    MshrFile m("m", 8, sg);
    m.allocate(0x100, 100, true, 0);
    m.allocate(0x200, 100, true, 0);
    m.allocate(0x300, 100, true, 0);
    // Samples were 1, 2, 3 -> mean 2.
    EXPECT_DOUBLE_EQ(m.meanDemandMlp(), 2.0);
}

TEST(Mshr, ResetClears)
{
    StatGroup sg("t");
    MshrFile m("m", 2, sg);
    m.allocate(0x100, 100, true, 0);
    m.reset();
    EXPECT_FALSE(m.full(0));
    EXPECT_EQ(m.pendingCompletion(0x100), invalidCycle);
}

TEST(MshrDeath, OverAllocatePanics)
{
    StatGroup sg("t");
    MshrFile m("m", 1, sg);
    m.allocate(0x100, 100, true, 0);
    EXPECT_DEATH(m.allocate(0x200, 100, true, 0), "full");
}

TEST(Prefetcher, DisabledIssuesNothing)
{
    StatGroup sg("t");
    Prefetcher p(PrefetcherParams{false, 2, 1}, 64, "p", sg);
    EXPECT_TRUE(p.onAccess(0x1000, true).empty());
}

TEST(Prefetcher, MissTriggersNextLines)
{
    StatGroup sg("t");
    Prefetcher p(PrefetcherParams{true, 2, 1}, 64, "p", sg);
    auto v = p.onAccess(0x1000, true);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 0x1040u);
    EXPECT_EQ(v[1], 0x1080u);
}

TEST(Prefetcher, DistanceOffsetsFirstLine)
{
    StatGroup sg("t");
    Prefetcher p(PrefetcherParams{true, 1, 4}, 64, "p", sg);
    auto v = p.onAccess(0x0, true);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 0x100u); // 4 lines ahead
}

TEST(Prefetcher, HitOnlyReArmsMatchingStream)
{
    StatGroup sg("t");
    Prefetcher p(PrefetcherParams{true, 1, 1}, 64, "p", sg);
    p.onAccess(0x1000, true);
    // A hit on an unrelated line does not prefetch...
    EXPECT_TRUE(p.onAccess(0x8000, false).empty());
    // ...but a hit on the last trigger line does (stream continuation).
    EXPECT_FALSE(p.onAccess(0x1000, false).empty());
}

TEST(Prefetcher, AccuracyFormula)
{
    StatGroup sg("t");
    Prefetcher p(PrefetcherParams{true, 1, 1}, 64, "p", sg);
    p.noteIssued();
    p.noteIssued();
    p.noteUseful();
    auto flat = sg.flatten();
    EXPECT_DOUBLE_EQ(flat["t.p.accuracy"], 0.5);
}
