/** @file Tests for the programmatic Builder and the text assembler. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "func/executor.hh"
#include "isa/assembler.hh"
#include "isa/builder.hh"

using namespace sst;

namespace
{

/** Run a program functionally and return the final state. */
ArchState
runProgram(const Program &p, std::uint64_t max_insts = 100000)
{
    MemoryImage mem;
    mem.loadSegments(p);
    Executor exec(p, mem);
    ArchState st;
    exec.run(st, max_insts);
    return st;
}

} // namespace

TEST(Builder, ForwardAndBackwardLabels)
{
    Builder b("t");
    b.li(5, 3);
    b.label("top");
    b.addi(5, 5, -1);
    b.bne(5, 0, "top"); // backward
    b.beq(0, 0, "end"); // forward
    b.addi(6, 0, 99);   // skipped
    b.label("end");
    b.halt();
    ArchState st = runProgram(b.finish());
    EXPECT_EQ(st.reg(5), 0u);
    EXPECT_EQ(st.reg(6), 0u);
}

TEST(Builder, LiRoundTripsArbitraryValues)
{
    Rng rng(77);
    std::vector<std::int64_t> values = {0,  1,  -1, 42, -42,
                                        INT32_MAX, INT32_MIN,
                                        INT64_MAX, INT64_MIN,
                                        0x123456789abcdef0LL};
    for (int i = 0; i < 50; ++i)
        values.push_back(static_cast<std::int64_t>(rng.next()));
    for (std::int64_t v : values) {
        Builder b("li");
        b.li(5, v).halt();
        ArchState st = runProgram(b.finish());
        EXPECT_EQ(st.reg(5), static_cast<std::uint64_t>(v)) << v;
    }
}

TEST(Builder, HereTracksPosition)
{
    Builder b("t");
    EXPECT_EQ(b.here(), 0u);
    b.nop();
    EXPECT_EQ(b.here(), 1u);
}

TEST(BuilderDeath, UnresolvedLabelIsFatal)
{
    Builder b("t");
    b.j("nowhere");
    b.halt();
    EXPECT_DEATH((void)b.finish(), "unresolved label");
}

TEST(Builder, DataSegmentsAttached)
{
    Builder b("t");
    b.li(5, 0x2000).ld(6, 5, 0).halt();
    b.words(0x2000, {1234});
    ArchState st = runProgram(b.finish());
    EXPECT_EQ(st.reg(6), 1234u);
}

TEST(Assembler, BasicAluProgram)
{
    Program p = assemble(R"(
        ; compute 2 + 3
        addi x1, x0, 2
        addi x2, x0, 3
        add  x3, x1, x2
        halt
    )");
    ArchState st = runProgram(p);
    EXPECT_EQ(st.reg(3), 5u);
}

TEST(Assembler, LoadsStoresAndData)
{
    Program p = assemble(R"(
        li   x1, 0x3000
        ld   x2, 0(x1)
        addi x2, x2, 1
        st   x2, 8(x1)
        halt
        .data 0x3000
        .word 41
    )");
    MemoryImage mem;
    mem.loadSegments(p);
    Executor exec(p, mem);
    ArchState st;
    exec.run(st, 1000);
    EXPECT_EQ(st.reg(2), 42u);
    EXPECT_EQ(mem.read(0x3008, 8), 42u);
}

TEST(Assembler, LoopWithLabels)
{
    Program p = assemble(R"(
        li   x1, 10
        li   x2, 0
    loop:
        add  x2, x2, x1
        addi x1, x1, -1
        bne  x1, x0, loop
        halt
    )");
    ArchState st = runProgram(p);
    EXPECT_EQ(st.reg(2), 55u); // 10+9+...+1
}

TEST(Assembler, CallAndReturn)
{
    Program p = assemble(R"(
        jal  x1, func
        addi x3, x2, 1
        halt
    func:
        addi x2, x0, 41
        ret
    )");
    ArchState st = runProgram(p);
    EXPECT_EQ(st.reg(3), 42u);
}

TEST(Assembler, PseudoOps)
{
    Program p = assemble(R"(
        li x1, 7
        mv x2, x1
        j  done
        addi x2, x0, 0
    done:
        halt
    )");
    ArchState st = runProgram(p);
    EXPECT_EQ(st.reg(2), 7u);
}

TEST(Assembler, SpaceDirectiveZeroFills)
{
    Program p = assemble(R"(
        li x1, 0x4000
        ld x2, 16(x1)
        halt
        .data 0x4000
        .space 64
    )");
    ArchState st = runProgram(p);
    EXPECT_EQ(st.reg(2), 0u);
}

TEST(Assembler, CommentsAndBlankLinesIgnored)
{
    Program p = assemble("\n; full comment\n# hash comment\n  halt ; x\n");
    EXPECT_EQ(p.size(), 1u);
    EXPECT_EQ(p.at(0).op, Opcode::HALT);
}

TEST(Assembler, NumericBranchOffsets)
{
    Program p = assemble(R"(
        beq x0, x0, 2
        halt
        halt
    )");
    ArchState st = runProgram(p);
    EXPECT_EQ(st.pc, 2u);
}

TEST(AssemblerDeath, UnknownMnemonicIsFatal)
{
    EXPECT_DEATH((void)assemble("frobnicate x1, x2\nhalt\n"),
                 "unknown mnemonic");
}

TEST(AssemblerDeath, BadRegisterIsFatal)
{
    EXPECT_DEATH((void)assemble("addi x99, x0, 1\nhalt\n"),
                 "bad register");
}

TEST(AssemblerDeath, WordOutsideDataIsFatal)
{
    EXPECT_DEATH((void)assemble(".word 1\n"), "outside .data");
}

TEST(Assembler, RoundTripThroughListing)
{
    // listing() output is human-oriented, but the mnemonics it prints
    // must at least match what the assembler accepts.
    Program p = assemble("addi x1, x0, 5\nhalt\n");
    std::string listing = p.listing();
    EXPECT_NE(listing.find("addi"), std::string::npos);
}
