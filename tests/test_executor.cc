/** @file Semantics tests for the golden functional executor. */

#include <gtest/gtest.h>

#include <bit>

#include "func/executor.hh"
#include "isa/assembler.hh"

using namespace sst;

namespace
{

ArchState
run(const std::string &src)
{
    Program p = assemble(src);
    MemoryImage mem;
    mem.loadSegments(p);
    Executor exec(p, mem);
    ArchState st;
    exec.run(st, 100000);
    return st;
}

} // namespace

TEST(Semantics, AluOpsBasic)
{
    using semantics::aluOp;
    EXPECT_EQ(aluOp(inst::rrr(Opcode::ADD, 1, 2, 3), 5, 7), 12u);
    EXPECT_EQ(aluOp(inst::rrr(Opcode::SUB, 1, 2, 3), 5, 7),
              static_cast<std::uint64_t>(-2));
    EXPECT_EQ(aluOp(inst::rrr(Opcode::AND, 1, 2, 3), 0xf0, 0x3c), 0x30u);
    EXPECT_EQ(aluOp(inst::rrr(Opcode::OR, 1, 2, 3), 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(aluOp(inst::rrr(Opcode::XOR, 1, 2, 3), 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(aluOp(inst::rrr(Opcode::MUL, 1, 2, 3), 6, 7), 42u);
}

TEST(Semantics, ShiftsMaskAmount)
{
    using semantics::aluOp;
    EXPECT_EQ(aluOp(inst::rrr(Opcode::SLL, 1, 2, 3), 1, 65), 2u);
    EXPECT_EQ(aluOp(inst::rrr(Opcode::SRL, 1, 2, 3), 4, 1), 2u);
    EXPECT_EQ(aluOp(inst::rrr(Opcode::SRA, 1, 2, 3),
                    static_cast<std::uint64_t>(-8), 2),
              static_cast<std::uint64_t>(-2));
}

TEST(Semantics, Comparisons)
{
    using semantics::aluOp;
    EXPECT_EQ(aluOp(inst::rrr(Opcode::SLT, 1, 2, 3),
                    static_cast<std::uint64_t>(-1), 0),
              1u);
    EXPECT_EQ(aluOp(inst::rrr(Opcode::SLTU, 1, 2, 3),
                    static_cast<std::uint64_t>(-1), 0),
              0u);
}

TEST(Semantics, DivRemEdgeCases)
{
    using semantics::aluOp;
    Inst div = inst::rrr(Opcode::DIV, 1, 2, 3);
    Inst rem = inst::rrr(Opcode::REM, 1, 2, 3);
    // Division by zero: RISC-V-style all-ones / dividend.
    EXPECT_EQ(aluOp(div, 7, 0), ~std::uint64_t{0});
    EXPECT_EQ(aluOp(rem, 7, 0), 7u);
    // INT64_MIN / -1 overflow case.
    auto min = static_cast<std::uint64_t>(INT64_MIN);
    EXPECT_EQ(aluOp(div, min, static_cast<std::uint64_t>(-1)), min);
    EXPECT_EQ(aluOp(rem, min, static_cast<std::uint64_t>(-1)), 0u);
    EXPECT_EQ(aluOp(div, static_cast<std::uint64_t>(-20), 5),
              static_cast<std::uint64_t>(-4));
}

TEST(Semantics, FloatingPoint)
{
    using semantics::aluOp;
    auto bits = [](double d) { return std::bit_cast<std::uint64_t>(d); };
    EXPECT_EQ(aluOp(inst::rrr(Opcode::FADD, 1, 2, 3), bits(1.5),
                    bits(2.25)),
              bits(3.75));
    EXPECT_EQ(aluOp(inst::rrr(Opcode::FMUL, 1, 2, 3), bits(3.0),
                    bits(-2.0)),
              bits(-6.0));
    EXPECT_EQ(aluOp(inst::rrr(Opcode::FDIV, 1, 2, 3), bits(1.0),
                    bits(4.0)),
              bits(0.25));
    EXPECT_EQ(aluOp(inst::rrr(Opcode::FCVT_D_L, 1, 2, 0),
                    static_cast<std::uint64_t>(-3), 0),
              bits(-3.0));
    EXPECT_EQ(aluOp(inst::rrr(Opcode::FCVT_L_D, 1, 2, 0), bits(41.9), 0),
              41u);
}

TEST(Semantics, BranchConditions)
{
    using semantics::branchTaken;
    auto br = [](Opcode op) { return inst::branch(op, 1, 2, 4); };
    EXPECT_TRUE(branchTaken(br(Opcode::BEQ), 5, 5));
    EXPECT_FALSE(branchTaken(br(Opcode::BEQ), 5, 6));
    EXPECT_TRUE(branchTaken(br(Opcode::BNE), 5, 6));
    EXPECT_TRUE(branchTaken(br(Opcode::BLT),
                            static_cast<std::uint64_t>(-1), 0));
    EXPECT_FALSE(branchTaken(br(Opcode::BLTU),
                             static_cast<std::uint64_t>(-1), 0));
    EXPECT_TRUE(branchTaken(br(Opcode::BGE), 3, 3));
    EXPECT_TRUE(branchTaken(br(Opcode::BGEU),
                            static_cast<std::uint64_t>(-1), 5));
}

TEST(Semantics, EffectiveAddr)
{
    Inst ld = inst::load(Opcode::LD, 1, 2, -8);
    EXPECT_EQ(semantics::effectiveAddr(ld, 0x1000), 0xff8u);
}

TEST(Semantics, LoadExtension)
{
    using semantics::extendLoad;
    EXPECT_EQ(extendLoad(Opcode::LD, 0xffffffffffffffffULL),
              0xffffffffffffffffULL);
    EXPECT_EQ(extendLoad(Opcode::LW, 0x80000000ULL),
              0xffffffff80000000ULL);
    EXPECT_EQ(extendLoad(Opcode::LW, 0x7fffffffULL), 0x7fffffffULL);
    EXPECT_EQ(extendLoad(Opcode::LB, 0x80ULL), 0xffffffffffffff80ULL);
    EXPECT_EQ(extendLoad(Opcode::LB, 0x7fULL), 0x7fULL);
}

TEST(Executor, X0AlwaysZero)
{
    ArchState st = run("addi x0, x0, 5\nadd x1, x0, x0\nhalt\n");
    EXPECT_EQ(st.reg(0), 0u);
    EXPECT_EQ(st.reg(1), 0u);
}

TEST(Executor, SubwordStoresAndSignExtension)
{
    ArchState st = run(R"(
        li  x1, 0x5000
        li  x2, -1
        sb  x2, 0(x1)
        lb  x3, 0(x1)     ; sign-extended -1
        ld  x4, 0(x1)     ; only one byte was written
        li  x5, 0x80000000
        sw  x5, 8(x1)
        lw  x6, 8(x1)     ; sign-extends
        halt
    )");
    EXPECT_EQ(st.reg(3), ~std::uint64_t{0});
    EXPECT_EQ(st.reg(4), 0xffu);
    EXPECT_EQ(st.reg(6), 0xffffffff80000000ULL);
}

TEST(Executor, JalLinksAndJumps)
{
    ArchState st = run(R"(
        jal x1, target
        halt
    target:
        addi x2, x1, 0
        halt
    )");
    EXPECT_EQ(st.reg(1), 1u); // link = pc+1
    EXPECT_EQ(st.reg(2), 1u);
}

TEST(Executor, JalrIndirectTarget)
{
    ArchState st = run(R"(
        li   x5, 4
        jalr x1, x5, 1    ; jump to inst 5
        halt
        halt
        halt
        addi x6, x0, 9
        halt
    )");
    EXPECT_EQ(st.reg(6), 9u);
}

TEST(Executor, HaltStopsAndPins)
{
    Program p = assemble("halt\n");
    MemoryImage mem;
    Executor exec(p, mem);
    ArchState st;
    StepInfo info = exec.step(st);
    EXPECT_TRUE(info.halted);
    EXPECT_TRUE(st.halted);
    EXPECT_EQ(st.pc, 0u);
}

TEST(Executor, RunBoundsInstructionCount)
{
    // Infinite loop: run() must stop at the budget.
    Program p = assemble("loop: j loop\n");
    MemoryImage mem;
    Executor exec(p, mem);
    ArchState st;
    EXPECT_EQ(exec.run(st, 500), 500u);
    EXPECT_FALSE(st.halted);
}

TEST(Executor, StepInfoForLoadAndStore)
{
    Program p = assemble(R"(
        li x1, 0x6000
        st x1, 8(x1)
        ld x2, 8(x1)
        halt
    )");
    MemoryImage mem;
    Executor exec(p, mem);
    ArchState st;
    // li expands to one LUI here.
    exec.step(st);
    StepInfo s = exec.step(st);
    EXPECT_EQ(s.effAddr, 0x6008u);
    EXPECT_EQ(s.memSize, 8u);
    EXPECT_EQ(s.storeValue, 0x6000u);
    s = exec.step(st);
    EXPECT_EQ(s.result, 0x6000u);
}

TEST(Executor, RegsEqualIgnoresX0)
{
    ArchState a, b;
    a.regs[0] = 1; // never visible through reg()
    EXPECT_TRUE(a.regsEqual(b));
    a.regs[5] = 2;
    EXPECT_FALSE(a.regsEqual(b));
}

TEST(ExecutorDeath, StepAfterHaltPanics)
{
    Program p = assemble("halt\n");
    MemoryImage mem;
    Executor exec(p, mem);
    ArchState st;
    exec.step(st);
    EXPECT_DEATH(exec.step(st), "halted");
}
