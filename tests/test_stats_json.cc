/**
 * @file
 * Round-trip tests for the structured JSON stat export: everything
 * StatGroup::toJson() emits must parse back (exp::Json) to exactly the
 * values the stat objects hold, including doubles bit-for-bit.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/stats.hh"
#include "exp/json.hh"

using namespace sst;
using sst::exp::Json;

TEST(JsonNumber, RoundTripsExactly)
{
    const double cases[] = {0.0,
                            1.0,
                            -1.0,
                            0.1,
                            1.0 / 3.0,
                            1e-300,
                            1e300,
                            3.141592653589793,
                            0.6931471805599453,
                            123456789.123456789,
                            std::nextafter(1.0, 2.0),
                            std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::max()};
    for (double v : cases) {
        std::string s = jsonNumber(v);
        double back = std::strtod(s.c_str(), nullptr);
        EXPECT_EQ(back, v) << "via \"" << s << "\"";
        // Deterministic: same value, same bytes.
        EXPECT_EQ(s, jsonNumber(v));
    }
    // Non-finite values have no JSON spelling; they become null —
    // including the negative forms ("-inf"/"-nan" under %g).
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(JsonEscape, CoversControlAndQuoteCharacters)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("tab\there\nline"), "tab\\there\\nline");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    // And the parser reverses it.
    auto parsed = Json::parse("\"a\\\"b\\\\c\\n\\u0041\"");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().asString(), "a\"b\\c\nA");
}

TEST(JsonParse, ValidatesUnicodeEscapes)
{
    // Non-hex characters must fail, not silently decode a prefix.
    EXPECT_FALSE(Json::parse("\"\\u12zz\"").ok());
    EXPECT_FALSE(Json::parse("\"\\u12\"").ok());
    // Lone surrogates are not scalar values.
    EXPECT_FALSE(Json::parse("\"\\ud800\"").ok());
    EXPECT_FALSE(Json::parse("\"\\udc00\"").ok());
    EXPECT_FALSE(Json::parse("\"\\ud83dx\"").ok());
    EXPECT_FALSE(Json::parse("\"\\ud83d\\u0041\"").ok());
    // A proper pair combines into one UTF-8 code point (U+1F600).
    auto pair = Json::parse("\"\\ud83d\\ude00\"");
    ASSERT_TRUE(pair.ok()) << pair.error().message;
    EXPECT_EQ(pair.value().asString(), "\xf0\x9f\x98\x80");
    // Upper-case hex digits are fine too.
    auto bmp = Json::parse("\"\\u20AC\"");
    ASSERT_TRUE(bmp.ok());
    EXPECT_EQ(bmp.value().asString(), "\xe2\x82\xac");
}

TEST(StatsJson, ScalarRoundTrip)
{
    Scalar s;
    s.set(18446744073709551615ULL); // uint64 max: must not go via double
    EXPECT_EQ(s.toJson(), "18446744073709551615");
    Scalar zero;
    EXPECT_EQ(zero.toJson(), "0");
}

TEST(StatsJson, DistributionRoundTrip)
{
    Distribution d;
    d.init(100, 4);
    for (std::uint64_t v : {0ULL, 10ULL, 30ULL, 55ULL, 99ULL, 250ULL})
        d.sample(v);
    auto parsed = Json::parse(d.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const Json &j = parsed.value();
    EXPECT_EQ(j["count"].asNumber(), static_cast<double>(d.count()));
    EXPECT_EQ(j["sum"].asNumber(), static_cast<double>(d.sum()));
    EXPECT_EQ(j["mean"].asNumber(), d.mean());
    EXPECT_EQ(j["max"].asNumber(), static_cast<double>(d.maxSample()));
    EXPECT_EQ(j["bucket_width"].asNumber(),
              static_cast<double>(d.bucketWidth()));
    ASSERT_EQ(j["buckets"].size(), d.buckets().size());
    for (std::size_t i = 0; i < d.buckets().size(); ++i)
        EXPECT_EQ(j["buckets"].at(i).asNumber(),
                  static_cast<double>(d.buckets()[i]));
    EXPECT_EQ(j["overflow"].asNumber(), 1.0) << "the 250 sample";
}

TEST(StatsJson, UninitialisedDistributionIsWellFormed)
{
    // A never-init'd distribution must still serialise consistently:
    // width 0 with an empty bucket array, not a fabricated layout.
    Distribution d;
    d.sample(7);
    auto parsed = Json::parse(d.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const Json &j = parsed.value();
    EXPECT_EQ(j["bucket_width"].asNumber(), 0.0);
    EXPECT_EQ(j["buckets"].size(), 0u);
    EXPECT_EQ(j["overflow"].asNumber(), 1.0);
    EXPECT_EQ(j["count"].asNumber(), 1.0);
}

TEST(StatsJson, NestedGroupRoundTripMatchesFlatten)
{
    StatGroup root("core");
    Scalar &cycles = root.addScalar("cycles", "cycle count");
    Scalar &insts = root.addScalar("insts", "instructions");
    cycles.set(1000);
    insts.set(750);
    root.addFormula("ipc", "instructions per cycle", [&] {
        return static_cast<double>(insts.value())
               / static_cast<double>(cycles.value());
    });
    Distribution &lat = root.addDist("miss_latency", "latency", 64, 8);
    lat.sample(3);
    lat.sample(47);

    StatGroup child("l1d");
    Scalar &misses = child.addScalar("misses", "miss count");
    misses.set(42);
    root.addChild(child);

    auto parsed = Json::parse(root.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    const Json &j = parsed.value();

    EXPECT_EQ(j["cycles"].asNumber(), 1000.0);
    EXPECT_EQ(j["insts"].asNumber(), 750.0);
    EXPECT_EQ(j["ipc"].asNumber(), 0.75);
    EXPECT_EQ(j["miss_latency"]["count"].asNumber(), 2.0);
    EXPECT_EQ(j["l1d"]["misses"].asNumber(), 42.0);

    // Registration order is the emission order.
    const auto &m = j.members();
    ASSERT_EQ(m.size(), 5u);
    EXPECT_EQ(m[0].first, "cycles");
    EXPECT_EQ(m[1].first, "insts");
    EXPECT_EQ(m[2].first, "ipc");
    EXPECT_EQ(m[3].first, "miss_latency");
    EXPECT_EQ(m[4].first, "l1d");

    // Every flatten() entry appears in the tree with the same value.
    // flatten() keys lead with the group's own name ("core.cycles");
    // toJson() members are unprefixed within the group, so drop it.
    for (const auto &[name, value] : root.flatten()) {
        ASSERT_EQ(name.rfind("core.", 0), 0u) << name;
        const Json *node = &j;
        std::size_t dot;
        std::string rest = name.substr(5);
        while ((dot = rest.find('.')) != std::string::npos) {
            node = node->find(rest.substr(0, dot));
            ASSERT_NE(node, nullptr) << name;
            rest = rest.substr(dot + 1);
        }
        node = node->find(rest);
        ASSERT_NE(node, nullptr) << name;
        EXPECT_EQ(node->asNumber(), value) << name;
    }

    // Determinism: serialising twice yields identical bytes.
    EXPECT_EQ(root.toJson(), root.toJson());
}

TEST(StatsJson, NonFiniteFormulaBecomesNull)
{
    StatGroup g("g");
    g.addFormula("div0", "x", [] { return 1.0 / 0.0; });
    auto parsed = Json::parse(g.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_TRUE(parsed.value()["div0"].isNull());
}

TEST(StatsJson, EscapedNamesStayValid)
{
    StatGroup g("we\"ird");
    g.addScalar("sl\\ash", "desc").set(1);
    auto parsed = Json::parse(g.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed.value()["sl\\ash"].asNumber(), 1.0);
}

TEST(JsonParse, RejectsDuplicateObjectKeys)
{
    // Last-wins would let a corrupted record carry two "index" (or
    // seed) members and pass identity validation with whichever copy
    // the parser kept; reject loudly instead.
    auto dup = Json::parse("{\"index\": 1, \"index\": 2}");
    ASSERT_FALSE(dup.ok());
    EXPECT_NE(dup.error().message.find("duplicate object key 'index'"),
              std::string::npos)
        << dup.error().message;
    // Nested objects are checked too, each within its own scope.
    EXPECT_FALSE(
        Json::parse("{\"a\": {\"k\": 1, \"k\": 2}}").ok());
    // The same key in *different* objects is fine.
    EXPECT_TRUE(Json::parse("{\"a\": {\"k\": 1}, \"b\": {\"k\": 2}}")
                    .ok());
}
