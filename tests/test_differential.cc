/**
 * @file
 * Differential property tests: every timing core model, run on any
 * program, must terminate with exactly the architectural state (all
 * registers, all of memory, retired-instruction count) produced by the
 * golden functional executor. This is the central correctness invariant
 * of the simulator — it exercises NA propagation, DQ replay ordering,
 * SSQ forwarding, rollback and commit paths far more broadly than the
 * targeted unit tests.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/builder.hh"
#include "sim_test_util.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace sst;
using namespace sst::test;

namespace
{

/**
 * Random structured-program generator. Emits a program that provably
 * halts: straight-line blocks of random ALU/memory ops plus counted
 * loops, over a small data arena so loads/stores collide frequently
 * (stressing forwarding and disambiguation).
 */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    Builder b("fuzz" + std::to_string(seed));
    constexpr Addr arena = 0x200000;
    constexpr std::uint64_t arenaWords = 512; // 4 KB hot arena
    constexpr Addr coldArena = 0x400000;

    // Skip over a leaf function that random ops may call through x3
    // (exercises JAL/JALR and BTB-predicted indirect returns).
    b.j("entry");
    b.label("leaf");
    b.xor_(21, 21, 22);
    b.fadd(22, 22, 21);
    b.addi(21, 21, 13);
    b.jalr(0, 3, 0); // return via the call's link register
    b.label("entry");

    b.li(1, static_cast<std::int64_t>(arena));
    b.li(2, static_cast<std::int64_t>(coldArena));
    for (RegId r = 5; r < 28; ++r)
        b.li(r, static_cast<std::int64_t>(rng.next() & 0xffff));

    auto randReg = [&]() -> RegId {
        return static_cast<RegId>(5 + rng.below(23)); // x5..x27
    };
    auto emitRandomOp = [&](int loop_depth) {
        switch (rng.below(15)) {
          case 0:
            b.add(randReg(), randReg(), randReg());
            break;
          case 1:
            b.sub(randReg(), randReg(), randReg());
            break;
          case 2:
            b.xor_(randReg(), randReg(), randReg());
            break;
          case 3:
            b.addi(randReg(), randReg(),
                   static_cast<std::int32_t>(rng.range(-100, 100)));
            break;
          case 4:
            b.mul(randReg(), randReg(), randReg());
            break;
          case 5:
            b.div(randReg(), randReg(), randReg());
            break;
          case 6: { // hot-arena load (frequent store collisions)
            std::int32_t off =
                static_cast<std::int32_t>(rng.below(arenaWords)) * 8;
            b.ld(randReg(), 1, off);
            break;
          }
          case 7: { // hot-arena store
            std::int32_t off =
                static_cast<std::int32_t>(rng.below(arenaWords)) * 8;
            b.st(randReg(), 1, off);
            break;
          }
          case 8: { // cold load: likely L1 miss -> speculation trigger
            std::int32_t off =
                static_cast<std::int32_t>(rng.below(64)) * 4096;
            b.ld(randReg(), 2, off);
            break;
          }
          case 9: { // dependent address: load via masked register
            RegId base = randReg();
            RegId tmp = 28;
            b.andi(tmp, base, 0x7f8); // keep inside 4 KB, 8-aligned
            b.add(tmp, tmp, 1);
            b.ld(randReg(), tmp, 0);
            break;
          }
          case 10: { // store through computed address
            RegId base = randReg();
            RegId tmp = 28;
            b.andi(tmp, base, 0x7f8);
            b.add(tmp, tmp, 1);
            b.st(randReg(), tmp, 0);
            break;
          }
          case 11: { // data-dependent skip (forward branch)
            if (loop_depth >= 0) {
                std::string skip =
                    "skip" + std::to_string(b.here());
                b.beq(randReg(), randReg(), skip);
                b.addi(randReg(), randReg(), 1);
                b.label(skip);
            }
            break;
          }
          case 12: // FP dataflow over arbitrary bit patterns
            b.fadd(randReg(), randReg(), randReg());
            break;
          case 13:
            b.fmul(randReg(), randReg(), randReg());
            break;
          case 14: // call the leaf through x3
            b.jal(3, "leaf");
            break;
        }
    };

    // Top-level: a few counted loops with random bodies.
    unsigned loops = 2 + static_cast<unsigned>(rng.below(3));
    for (unsigned l = 0; l < loops; ++l) {
        unsigned body = 4 + static_cast<unsigned>(rng.below(12));
        unsigned trips = 3 + static_cast<unsigned>(rng.below(20));
        RegId counter = 29;
        std::string top = "loop" + std::to_string(l);
        b.li(counter, static_cast<std::int64_t>(trips));
        b.label(top);
        for (unsigned i = 0; i < body; ++i)
            emitRandomOp(static_cast<int>(l));
        b.addi(counter, counter, -1);
        b.bne(counter, 0, top);
    }
    b.halt();

    // Random initial arena contents.
    std::vector<std::uint64_t> words(arenaWords);
    for (auto &w : words)
        w = rng.next();
    b.words(arena, words);
    return b.finish();
}

struct DiffCase
{
    std::string preset;
    std::string workload;
};

std::string
diffName(const testing::TestParamInfo<DiffCase> &info)
{
    std::string n = info.param.preset + "_" + info.param.workload;
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

class WorkloadDifferential : public testing::TestWithParam<DiffCase>
{
};

} // namespace

TEST_P(WorkloadDifferential, ArchStateMatchesGolden)
{
    const DiffCase &tc = GetParam();
    WorkloadParams wp;
    wp.lengthScale = 0.05; // keep each case fast
    wp.footprintScale = 0.25;
    Workload wl = makeWorkload(tc.workload, wp);

    MemoryImage golden_mem;
    golden_mem.loadSegments(wl.program);
    Executor golden(wl.program, golden_mem);
    ArchState golden_state;
    std::uint64_t golden_insts = golden.run(golden_state, 200'000'000ULL);
    ASSERT_TRUE(golden_state.halted);

    Machine machine(makePreset(tc.preset), wl.program);
    RunResult res = machine.run();
    ASSERT_TRUE(res.finished) << "did not halt in budget";
    EXPECT_EQ(res.insts, golden_insts);
    EXPECT_TRUE(machine.core().archState().regsEqual(golden_state));
    EXPECT_TRUE(machine.image().contentEquals(golden_mem));
}

namespace
{

std::vector<DiffCase>
allDiffCases()
{
    std::vector<DiffCase> cases;
    for (const auto &p : presetNames())
        for (const auto &w : allWorkloadNames())
            cases.push_back(DiffCase{p, w});
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPresetsAllWorkloads, WorkloadDifferential,
                         testing::ValuesIn(allDiffCases()), diffName);

// ---------------------------------------------------------------------

namespace
{

struct FuzzCase
{
    std::string model;
    CoreParams params;
    std::uint64_t seed;
};

std::string
fuzzName(const testing::TestParamInfo<FuzzCase> &info)
{
    return info.param.params.name + "_s"
           + std::to_string(info.param.seed);
}

class FuzzDifferential : public testing::TestWithParam<FuzzCase>
{
};

} // namespace

TEST_P(FuzzDifferential, RandomProgramMatchesGolden)
{
    const FuzzCase &tc = GetParam();
    Program prog = randomProgram(tc.seed);

    // Failure injection: odd seeds run on a deliberately starved
    // hierarchy (tiny caches, 2 MSHRs, 1 DRAM bank) so every structural
    // stall, rejection-retry and eviction path is exercised.
    HierarchyParams mem;
    if (tc.seed % 2 == 1) {
        mem.l1i = CacheParams{"l1i", 1024, 2, 64, 2, ReplPolicy::Lru};
        mem.l1d = CacheParams{"l1d", 1024, 2, 64, 3, ReplPolicy::Nru};
        mem.l2 = CacheParams{"l2", 4096, 4, 64, 20, ReplPolicy::Random};
        mem.dram.banks = 1;
        mem.l1MshrEntries = 2;
        mem.l2PortCycles = 9;
    }
    MemorySystem sys(mem);
    MemoryImage image;
    image.loadSegments(prog);
    CorePort &port = sys.addCore();
    MachineConfig cfg;
    cfg.model = tc.model;
    cfg.core = tc.params;
    auto core = makeCore(cfg, prog, image, port);

    MemoryImage golden_mem;
    golden_mem.loadSegments(prog);
    Executor golden(prog, golden_mem);
    ArchState golden_state;
    std::uint64_t golden_insts = golden.run(golden_state, 10'000'000ULL);
    ASSERT_TRUE(golden_state.halted) << "fuzz program did not halt";

    std::uint64_t budget = 50'000'000ULL;
    while (!core->halted() && core->cycles() < budget)
        core->tick();
    ASSERT_TRUE(core->halted()) << "timing core did not halt";
    EXPECT_EQ(core->instsRetired(), golden_insts);
    EXPECT_TRUE(core->archState().regsEqual(golden_state));
    EXPECT_TRUE(image.contentEquals(golden_mem));
}

namespace
{

std::vector<FuzzCase>
allFuzzCases()
{
    std::vector<FuzzCase> cases;
    auto named = [](CoreParams p, const std::string &n) {
        p.name = n;
        return p;
    };
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        CoreParams inorder;
        cases.push_back(
            FuzzCase{"inorder", named(inorder, "inorder"), seed});
        CoreParams ooo;
        cases.push_back(FuzzCase{"ooo", named(ooo, "ooo"), seed});
        cases.push_back(
            FuzzCase{"sst", named(sstParams(1, true), "scout"), seed});
        cases.push_back(
            FuzzCase{"sst", named(sstParams(1), "ea"), seed});
        cases.push_back(
            FuzzCase{"sst", named(sstParams(4), "sst4"), seed});
        // Stress tiny structures: every overflow/stall path gets hit.
        cases.push_back(FuzzCase{
            "sst", named(sstParams(2, false, 6, 3), "sst_tiny"), seed});
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(RandomPrograms, FuzzDifferential,
                         testing::ValuesIn(allFuzzCases()), fuzzName);
