/** @file Tests for the SST design-space knobs and the stride
 *  prefetcher added for the F12/F13 ablations. */

#include <gtest/gtest.h>

#include "mem/prefetcher.hh"
#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

double
stat(Core &core, const std::string &suffix)
{
    auto flat = core.stats().flatten();
    for (const auto &kv : flat)
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            return kv.second;
    return 0.0;
}

/** Misses with a data-dependent branch per iteration. */
std::string
branchyMissLoop(int iters)
{
    std::string src = R"(
        li   x1, 0x400000
        li   x7, )" + std::to_string(iters) + R"(
        li   x9, 0
    loop:
        ld   x2, 0(x1)
        andi x3, x2, 1
        beq  x3, x0, even
        addi x9, x9, 1
        j    next
    even:
        addi x9, x9, 3
    next:
        addi x1, x1, 4096
        addi x7, x7, -1
        bne  x7, x0, loop
        halt
        .data 0x400000
)";
    Rng rng(31);
    for (int i = 0; i < iters; ++i) {
        src += ".word " + std::to_string(rng.below(100)) + "\n";
        if (i != iters - 1)
            src += ".space 4088\n";
    }
    return src;
}

} // namespace

TEST(DeferOnL2MissOnly, StillCorrect)
{
    CoreParams p = sstParams(4);
    p.deferOnL2MissOnly = true;
    CoreRun r = makeRun("sst", branchyMissLoop(16), p);
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(DeferOnL2MissOnly, FewerCheckpointsOnL2Hits)
{
    // Evict-to-L2 pattern: lines were loaded before, so the re-visit
    // misses L1 but hits L2. With the L2-only trigger those re-visits
    // must not open speculation.
    std::string src = R"(
        li   x1, 0x400000
        li   x7, 3
        li   x9, 0
    pass:
        li   x1, 0x400000
        li   x6, 16
    loop:
        ld   x2, 0(x1)
        add  x9, x9, x2
        addi x1, x1, 4096
        addi x6, x6, -1
        bne  x6, x0, loop
        addi x7, x7, -1
        bne  x7, x0, pass
        halt
        .data 0x400000
)";
    for (int i = 0; i < 16; ++i) {
        src += ".word " + std::to_string(i) + "\n";
        if (i != 15)
            src += ".space 4088\n";
    }
    // Shrink L1D so the second pass misses L1 but hits the big L2.
    HierarchyParams mem;
    mem.l1d.sizeBytes = 4 * 1024;

    CoreParams aggressive = sstParams(4);
    CoreParams lazy = sstParams(4);
    lazy.deferOnL2MissOnly = true;
    CoreRun a = makeRun("sst", src, aggressive, mem);
    CoreRun b = makeRun("sst", src, lazy, mem);
    a.run();
    b.run();
    EXPECT_TRUE(a.archMatchesGolden());
    EXPECT_TRUE(b.archMatchesGolden());
    EXPECT_LT(stat(*b.core, ".checkpoints_taken"),
              stat(*a.core, ".checkpoints_taken"));
}

TEST(BranchThrottle, StallsInsteadOfPredicting)
{
    CoreParams p = sstParams(4);
    p.maxDeferredBranches = 1;
    CoreRun r = makeRun("sst", branchyMissLoop(20), p);
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GT(stat(*r.core, ".branch_throttle_stalls"), 0.0);
}

TEST(BranchThrottle, RollbacksDiscardLessWork)
{
    // With limit 1, the ahead strand never runs far past an unverified
    // branch, so each rollback throws away less speculative work than
    // in the unthrottled configuration (fail *counts* can differ either
    // way because training diverges; the per-fail waste is the claim).
    CoreParams loose = sstParams(4);
    CoreParams tight = sstParams(4);
    tight.maxDeferredBranches = 1;
    CoreRun a = makeRun("sst", branchyMissLoop(24), loose);
    CoreRun b = makeRun("sst", branchyMissLoop(24), tight);
    a.run();
    b.run();
    EXPECT_TRUE(a.archMatchesGolden());
    EXPECT_TRUE(b.archMatchesGolden());
    double fails_a = std::max(1.0, stat(*a.core, ".fail_branch"));
    double fails_b = std::max(1.0, stat(*b.core, ".fail_branch"));
    double waste_a = stat(*a.core, ".discarded_insts") / fails_a;
    double waste_b = stat(*b.core, ".discarded_insts") / fails_b;
    EXPECT_LT(waste_b, waste_a);
}

TEST(LineGranularConflicts, DetectsFalseSharing)
{
    // Store and load touch DIFFERENT bytes of the SAME line: byte-exact
    // tracking sees no conflict; line-granular must roll back.
    const char *src = R"(
        li   x1, 0x200000
        li   x7, 0x300000
        ld   x6, 0(x7)     ; warm the line
        li   x9, 300
    spin:
        addi x9, x9, -1
        bne  x9, x0, spin
        ld   x2, 0(x1)     ; trigger; value = 0x300000
        st   x1, 0(x2)     ; deferred store, resolves to 0x300000
        ld   x4, 32(x7)    ; same line, disjoint bytes (spec hit)
        add  x5, x4, x4
        halt
        .data 0x200000
        .word 0x300000
    )";
    CoreParams exact = sstParams(2);
    CoreParams coarse = sstParams(2);
    coarse.lineGranularConflicts = true;
    CoreRun a = makeRun("sst", src, exact);
    CoreRun b = makeRun("sst", src, coarse);
    a.run();
    b.run();
    EXPECT_TRUE(a.archMatchesGolden());
    EXPECT_TRUE(b.archMatchesGolden());
    EXPECT_EQ(stat(*a.core, ".fail_mem"), 0.0);
    EXPECT_GE(stat(*b.core, ".fail_mem"), 1.0);
}

TEST(LineGranularConflicts, FuzzStillCorrect)
{
    // Reuse the branchy miss loop with stores mixed in via oltp-style
    // read-modify-write; line granularity must never break
    // architectural equivalence.
    std::string src = R"(
        li   x1, 0x400000
        li   x7, 20
        li   x9, 0
    loop:
        ld   x2, 0(x1)
        addi x2, x2, 1
        st   x2, 0(x1)
        ld   x3, 8(x1)
        add  x9, x9, x3
        addi x1, x1, 4096
        addi x7, x7, -1
        bne  x7, x0, loop
        halt
        .data 0x400000
)";
    for (int i = 0; i < 20; ++i) {
        src += ".word " + std::to_string(i) + ", " + std::to_string(i * 7)
               + "\n";
        if (i != 19)
            src += ".space 4080\n";
    }
    CoreParams p = sstParams(2);
    p.lineGranularConflicts = true;
    CoreRun r = makeRun("sst", src, p);
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(StridePrefetcher, DetectsUnitStride)
{
    StatGroup sg("t");
    PrefetcherParams pp{true, 2, 1, PrefetchMode::Stride};
    Prefetcher p(pp, 64, "p", sg);
    EXPECT_TRUE(p.onAccess(0x10000, true).empty()); // allocate entry
    EXPECT_TRUE(p.onAccess(0x10040, true).empty()); // confidence 1
    auto v = p.onAccess(0x10080, true);             // confidence 2
    ASSERT_EQ(v.size(), 2u);
    EXPECT_EQ(v[0], 0x100c0u);
    EXPECT_EQ(v[1], 0x10100u);
}

TEST(StridePrefetcher, DetectsLargeStride)
{
    StatGroup sg("t");
    PrefetcherParams pp{true, 1, 1, PrefetchMode::Stride};
    Prefetcher p(pp, 64, "p", sg);
    p.onAccess(0x20000, true);
    p.onAccess(0x20400, true); // stride 0x400 within one region
    auto v = p.onAccess(0x20800, true);
    ASSERT_EQ(v.size(), 1u);
    EXPECT_EQ(v[0], 0x20c00u);
}

TEST(StridePrefetcher, InterleavedStreamsTrainSeparately)
{
    StatGroup sg("t");
    PrefetcherParams pp{true, 1, 1, PrefetchMode::Stride};
    Prefetcher p(pp, 64, "p", sg);
    // Two unit-stride streams in different 64 KB regions, interleaved.
    Addr a = 0x100000, b = 0x900000;
    std::vector<Addr> got_a, got_b;
    for (int i = 0; i < 4; ++i) {
        for (Addr t : p.onAccess(a + i * 64, true))
            got_a.push_back(t);
        for (Addr t : p.onAccess(b + i * 64, true))
            got_b.push_back(t);
    }
    EXPECT_FALSE(got_a.empty());
    EXPECT_FALSE(got_b.empty());
}

TEST(StridePrefetcher, RandomAddressesStayQuiet)
{
    StatGroup sg("t");
    PrefetcherParams pp{true, 2, 1, PrefetchMode::Stride};
    Prefetcher p(pp, 64, "p", sg);
    Rng rng(5);
    size_t issued = 0;
    for (int i = 0; i < 200; ++i)
        issued += p.onAccess(rng.next() & 0xffffc0, true).size();
    EXPECT_LT(issued, 40u); // mostly silent on random traffic
}

TEST(PresetOverrides, NewKnobsApply)
{
    MachineConfig cfg = makePreset("sst4");
    Config o;
    o.parseAssignment("core.defer_on_l2_miss_only=true");
    o.parseAssignment("core.max_deferred_branches=3");
    o.parseAssignment("core.line_granular_conflicts=true");
    o.parseAssignment("mem.prefetch_mode=stride");
    o.parseAssignment("mem.prefetch_degree=4");
    applyOverrides(cfg, o);
    EXPECT_TRUE(cfg.core.deferOnL2MissOnly);
    EXPECT_EQ(cfg.core.maxDeferredBranches, 3u);
    EXPECT_TRUE(cfg.core.lineGranularConflicts);
    EXPECT_EQ(cfg.mem.dataPrefetch.mode, PrefetchMode::Stride);
    EXPECT_EQ(cfg.mem.dataPrefetch.degree, 4u);
}

TEST(PresetOverridesDeath, BadPrefetchModeFatal)
{
    MachineConfig cfg = makePreset("inorder");
    Config o;
    o.parseAssignment("mem.prefetch_mode=psychic");
    EXPECT_DEATH(applyOverrides(cfg, o), "unknown prefetch mode");
}
