/** @file Behavioural tests for the in-order and out-of-order cores. */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

const char *kTinyLoop = R"(
    li   x1, 50
    li   x2, 0
loop:
    add  x2, x2, x1
    addi x1, x1, -1
    bne  x1, x0, loop
    halt
)";

/** A load-miss-bound kernel over a 64-node pointer ring whose nodes sit
 *  4 KB apart, so every hop misses the L1. */
std::string
missKernelWithRing()
{
    std::string out = R"(
    li   x1, 0x200000
    li   x3, 40
    li   x4, 0
loop:
    ld   x2, 0(x1)
    ld   x5, 8(x1)
    add  x4, x4, x5
    addi x1, x2, 0
    addi x3, x3, -1
    bne  x3, x0, loop
    halt
    .data 0x200000
)";
    for (int i = 0; i < 64; ++i) {
        long next = 0x200000 + ((i + 1) % 64) * 4096;
        out += "    .word " + std::to_string(next) + ", "
               + std::to_string(i * 3 + 1) + "\n";
        if (i != 63)
            out += "    .space 4080\n";
    }
    return out;
}

} // namespace

TEST(InOrder, MatchesGoldenOnLoop)
{
    CoreRun r = makeRun("inorder", kTinyLoop);
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(InOrder, IpcBoundedByWidth)
{
    CoreParams p;
    p.fetchWidth = 2;
    CoreRun r = makeRun("inorder", kTinyLoop, p);
    r.run();
    EXPECT_LE(r.core->ipc(), 2.0);
    EXPECT_GT(r.core->ipc(), 0.1);
}

TEST(InOrder, DependentChainSerialises)
{
    // 100 dependent adds cannot exceed IPC 1 regardless of width.
    std::string src = "li x1, 1\n";
    for (int i = 0; i < 100; ++i)
        src += "add x1, x1, x1\n";
    src += "halt\n";
    CoreParams p;
    p.fetchWidth = 4;
    CoreRun r = makeRun("inorder", src, p);
    Cycle c = r.run();
    EXPECT_GE(c, 100u);
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(InOrder, IndependentPairsDualIssue)
{
    // A warm loop of independent adds should approach IPC 2 with a
    // 2-wide front end (a straight-line version would be bound by cold
    // I-cache misses instead).
    std::string src = "li x1, 1\nli x2, 1\nli x9, 3000\nloop:\n";
    for (int i = 0; i < 5; ++i) {
        src += "addi x3, x1, " + std::to_string(i) + "\n";
        src += "addi x4, x2, " + std::to_string(i) + "\n";
    }
    src += "addi x9, x9, -1\nbne x9, x0, loop\nhalt\n";
    CoreRun r = makeRun("inorder", src);
    r.run();
    EXPECT_GT(r.core->ipc(), 1.5);
}

TEST(InOrder, BranchMispredictsCostCycles)
{
    // A data-dependent unpredictable branch pattern runs slower than a
    // perfectly-biased one with the same instruction count.
    const char *biased = R"(
        li x1, 400
        li x5, 0
    loop:
        addi x5, x5, 1
        addi x1, x1, -1
        bne  x1, x0, loop
        halt
    )";
    const char *noisy = R"(
        li x1, 400
        li x5, 0
        li x6, 2863311530 ; 0xAAAAAAAA pattern source
    loop:
        andi x7, x6, 1
        srli x6, x6, 1
        beq  x7, x0, skip
        addi x5, x5, 1
    skip:
        addi x1, x1, -1
        bne  x1, x0, loop
        halt
    )";
    CoreRun a = makeRun("inorder", biased);
    CoreRun b = makeRun("inorder", noisy);
    Cycle ca = a.run();
    Cycle cb = b.run();
    double cpi_a = double(ca) / double(a.core->instsRetired());
    double cpi_b = double(cb) / double(b.core->instsRetired());
    EXPECT_GT(cpi_b, cpi_a);
}

TEST(InOrder, MissKernelMatchesGolden)
{
    CoreRun r = makeRun("inorder", missKernelWithRing());
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(InOrder, StoreBufferBackpressure)
{
    // A burst of stores to distinct lines exceeds the store buffer and
    // MSHRs; the core must still finish correctly.
    std::string src = "li x1, 0x300000\nli x2, 77\n";
    for (int i = 0; i < 64; ++i)
        src += "st x2, " + std::to_string(i * 4096) + "(x1)\n";
    src += "halt\n";
    CoreParams p;
    p.storeBufferEntries = 2;
    CoreRun r = makeRun("inorder", src, p);
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(OoO, MatchesGoldenOnLoop)
{
    CoreRun r = makeRun("ooo", kTinyLoop);
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(OoO, ExtractsIlpFromIndependentChains)
{
    // Two interleaved dependent chains: an in-order 1-wide view gets
    // IPC ~1; the OoO core should overlap them.
    std::string src = "li x1, 1\nli x2, 1\n";
    for (int i = 0; i < 150; ++i) {
        src += "mul x1, x1, x1\n"; // 4-cycle latency chains
        src += "mul x2, x2, x2\n";
    }
    src += "halt\n";
    CoreRun in = makeRun("inorder", src);
    CoreRun ooo = makeRun("ooo", src);
    Cycle ci = in.run();
    Cycle co = ooo.run();
    EXPECT_LT(co, ci);
    EXPECT_TRUE(ooo.archMatchesGolden());
}

TEST(OoO, OverlapsIndependentMisses)
{
    // Independent loads to distinct lines: the ROB should expose MLP.
    std::string src = "li x1, 0x400000\nli x9, 0\n";
    for (int i = 0; i < 8; ++i)
        src += "ld x" + std::to_string(10 + i) + ", "
               + std::to_string(i * 4096) + "(x1)\n";
    src += "halt\n";
    CoreRun in = makeRun("inorder", src);
    CoreRun ooo = makeRun("ooo", src);
    // In-order also overlaps these (stall-on-use, non-blocking), so
    // compare against a serial executor estimate instead: 8 misses
    // must NOT take 8 * ~150 cycles on the OoO core.
    Cycle co = ooo.run();
    (void)in.run();
    EXPECT_LT(co, 8 * 150u);
    EXPECT_TRUE(ooo.archMatchesGolden());
}

TEST(OoO, RobSizeLimitsMlp)
{
    // With a tiny ROB the window can't reach distant independent loads.
    std::string src = "li x1, 0x400000\nli x9, 0\n";
    for (int i = 0; i < 12; ++i) {
        src += "ld x5, " + std::to_string(i * 4096) + "(x1)\n";
        for (int j = 0; j < 12; ++j)
            src += "addi x9, x9, 1\n"; // padding between misses
    }
    src += "halt\n";
    CoreParams small;
    small.robEntries = 8;
    small.issueQueueEntries = 8;
    small.lsqEntries = 8;
    CoreParams big;
    big.robEntries = 192;
    big.issueQueueEntries = 64;
    big.lsqEntries = 64;
    CoreRun s = makeRun("ooo", src, small);
    CoreRun b = makeRun("ooo", src, big);
    Cycle cs = s.run();
    Cycle cb = b.run();
    EXPECT_LT(cb, cs);
    EXPECT_TRUE(s.archMatchesGolden());
    EXPECT_TRUE(b.archMatchesGolden());
}

TEST(OoO, StoreToLoadForwarding)
{
    const char *src = R"(
        li x1, 0x500000
        li x2, 1234
        st x2, 0(x1)
        ld x3, 0(x1)
        addi x4, x3, 1
        halt
    )";
    CoreRun r = makeRun("ooo", src);
    r.run();
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.core->archState().reg(4), 1235u);
}

TEST(OoO, MissKernelMatchesGolden)
{
    CoreRun r = makeRun("ooo", missKernelWithRing());
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
}

TEST(OoO, HaltDrainsWindow)
{
    // HALT must not retire before older slow instructions.
    const char *src = R"(
        li x1, 0x600000
        ld x2, 0(x1)
        add x3, x2, x2
        halt
    )";
    CoreRun r = makeRun("ooo", src);
    r.run();
    EXPECT_TRUE(r.core->halted());
    EXPECT_EQ(r.core->instsRetired(), r.goldenInsts);
}

// --- cycle-budget degradation ------------------------------------------

namespace
{

/** Spins forever: retirement keeps flowing, HALT never commits. */
const char *kSpinForever = R"(
loop:
    addi x1, x1, 1
    beq  x0, x0, loop
    halt
)";

void
expectCycleBudget(const std::string &preset)
{
    Program p = assemble(kSpinForever, "spin");
    Machine m(makePreset(preset), p);
    RunResult r = m.run(20'000);
    EXPECT_FALSE(r.finished);
    EXPECT_EQ(r.degrade, DegradeReason::CycleBudget);
    EXPECT_GE(r.cycles, 20'000u);
    // The watchdog must not mistake a busy spin for a livelock.
    EXPECT_EQ(r.stats.at("watchdog.interventions"), 0.0);
}

} // namespace

TEST(CycleBudget, InOrderReportsDegradeReason)
{
    expectCycleBudget("inorder");
}

TEST(CycleBudget, OoOReportsDegradeReason)
{
    expectCycleBudget("ooo-large");
}

TEST(CycleBudget, SstReportsDegradeReason)
{
    expectCycleBudget("sst4");
}

TEST(CycleBudget, FinishedRunReportsNone)
{
    Program p = assemble(kTinyLoop, "tiny");
    Machine m(makePreset("sst2"), p);
    RunResult r = m.run();
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.degrade, DegradeReason::None);
}
