/** @file Property test: the Cache's LRU hit/miss/eviction behaviour
 *  against an independent reference model over random address streams. */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "common/rng.hh"
#include "common/stats.hh"
#include "mem/cache.hh"

using namespace sst;

namespace
{

/**
 * Reference LRU cache: per-set std::list kept in recency order.
 * Deliberately structured nothing like the production code.
 */
class RefLru
{
  public:
    RefLru(unsigned sets, unsigned ways, unsigned line_shift)
        : sets_(sets), ways_(ways), lineShift_(line_shift)
    {
        lists_.resize(sets);
    }

    bool
    access(Addr addr)
    {
        auto &lst = lists_[setOf(addr)];
        Addr tag = addr >> lineShift_;
        for (auto it = lst.begin(); it != lst.end(); ++it) {
            if (*it == tag) {
                lst.erase(it);
                lst.push_front(tag);
                return true;
            }
        }
        return false;
    }

    /** Install; @return evicted tag or ~0 when none. */
    Addr
    fill(Addr addr)
    {
        auto &lst = lists_[setOf(addr)];
        Addr tag = addr >> lineShift_;
        lst.push_front(tag);
        if (lst.size() > ways_) {
            Addr victim = lst.back();
            lst.pop_back();
            return victim << lineShift_;
        }
        return ~Addr{0};
    }

  private:
    unsigned setOf(Addr addr) const
    {
        return static_cast<unsigned>((addr >> lineShift_) & (sets_ - 1));
    }

    unsigned sets_;
    unsigned ways_;
    unsigned lineShift_;
    std::vector<std::list<Addr>> lists_;
};

} // namespace

class CacheVsReference : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheVsReference, RandomStreamAgrees)
{
    // 8 sets x 4 ways x 64 B lines.
    StatGroup sg("t");
    Cache cache(CacheParams{"c", 2048, 4, 64, 1, ReplPolicy::Lru}, sg);
    RefLru ref(8, 4, 6);

    Rng rng(GetParam());
    for (int i = 0; i < 4000; ++i) {
        // 64 lines of reach => heavy set pressure.
        Addr addr = (rng.below(64) << 6) | rng.below(64);
        bool hit = cache.access(addr, false, i).hit;
        bool ref_hit = ref.access(addr);
        ASSERT_EQ(hit, ref_hit) << "step " << i << " addr " << addr;
        if (!hit) {
            Eviction ev = cache.fill(addr, i, false);
            Addr ref_ev = ref.fill(addr);
            if (ev.valid)
                ASSERT_EQ(ev.lineAddr, ref_ev) << "step " << i;
            else
                ASSERT_EQ(ref_ev, ~Addr{0}) << "step " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheVsReference,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const auto &info) {
                             return "s" + std::to_string(info.param);
                         });
