/** @file Unit + property tests for the ISA layer. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/instruction.hh"
#include "isa/opcodes.hh"
#include "isa/program.hh"

using namespace sst;

TEST(Opcodes, TableCoversEveryOpcode)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        const OpInfo &info = opInfo(static_cast<Opcode>(i));
        EXPECT_NE(info.mnemonic, nullptr);
        EXPECT_GE(info.latency, 1u);
    }
}

TEST(Opcodes, Predicates)
{
    EXPECT_TRUE(isLoad(Opcode::LD));
    EXPECT_TRUE(isLoad(Opcode::LB));
    EXPECT_FALSE(isLoad(Opcode::ST));
    EXPECT_TRUE(isStore(Opcode::SW));
    EXPECT_TRUE(isMem(Opcode::LD));
    EXPECT_TRUE(isMem(Opcode::SB));
    EXPECT_FALSE(isMem(Opcode::ADD));
    EXPECT_TRUE(isCondBranch(Opcode::BLTU));
    EXPECT_FALSE(isCondBranch(Opcode::JAL));
    EXPECT_TRUE(isJump(Opcode::JALR));
    EXPECT_TRUE(isControl(Opcode::BEQ));
    EXPECT_TRUE(isControl(Opcode::JAL));
    EXPECT_FALSE(isControl(Opcode::HALT));
    EXPECT_TRUE(isLongLatency(Opcode::DIV));
    EXPECT_TRUE(isLongLatency(Opcode::FDIV));
    EXPECT_FALSE(isLongLatency(Opcode::MUL));
}

TEST(Opcodes, MemAccessSizes)
{
    EXPECT_EQ(memAccessSize(Opcode::LD), 8u);
    EXPECT_EQ(memAccessSize(Opcode::ST), 8u);
    EXPECT_EQ(memAccessSize(Opcode::LW), 4u);
    EXPECT_EQ(memAccessSize(Opcode::SW), 4u);
    EXPECT_EQ(memAccessSize(Opcode::LB), 1u);
    EXPECT_EQ(memAccessSize(Opcode::SB), 1u);
}

TEST(Opcodes, MnemonicLookupRoundTrips)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        auto op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromMnemonic(opInfo(op).mnemonic), op);
    }
    EXPECT_EQ(opcodeFromMnemonic("bogus"), Opcode::NumOpcodes);
}

TEST(Opcodes, LatencyClasses)
{
    EXPECT_EQ(opInfo(Opcode::ADD).latency, 1u);
    EXPECT_GT(opInfo(Opcode::MUL).latency, 1u);
    EXPECT_GT(opInfo(Opcode::DIV).latency, opInfo(Opcode::MUL).latency);
    EXPECT_GT(opInfo(Opcode::FDIV).latency, opInfo(Opcode::FADD).latency);
}

TEST(Instruction, EncodeDecodeRoundTripProperty)
{
    Rng rng(2024);
    for (int i = 0; i < 2000; ++i) {
        Inst in;
        in.op = static_cast<Opcode>(
            rng.below(static_cast<unsigned>(Opcode::NumOpcodes)));
        in.rd = static_cast<RegId>(rng.below(numArchRegs));
        in.rs1 = static_cast<RegId>(rng.below(numArchRegs));
        in.rs2 = static_cast<RegId>(rng.below(numArchRegs));
        in.imm = static_cast<std::int32_t>(rng.next());
        Inst out = Inst::decode(in.encode());
        EXPECT_EQ(in, out);
    }
}

TEST(Instruction, NegativeImmediatesSurviveEncoding)
{
    Inst in = inst::rri(Opcode::ADDI, 1, 2, -12345);
    EXPECT_EQ(Inst::decode(in.encode()).imm, -12345);
}

TEST(Instruction, ToStringFormats)
{
    EXPECT_EQ(inst::rrr(Opcode::ADD, 3, 1, 2).toString(),
              "add      x3, x1, x2");
    EXPECT_EQ(inst::load(Opcode::LD, 4, 2, 8).toString(),
              "ld       x4, 8(x2)");
    EXPECT_EQ(inst::store(Opcode::ST, 4, 2, 0).toString(),
              "st       x4, 0(x2)");
    EXPECT_EQ(inst::branch(Opcode::BNE, 1, 2, -3).toString(),
              "bne      x1, x2, -3");
    EXPECT_EQ(inst::halt().toString(), "halt");
}

TEST(Instruction, FactoriesSetFields)
{
    Inst ld = inst::load(Opcode::LW, 5, 6, -4);
    EXPECT_EQ(ld.rd, 5);
    EXPECT_EQ(ld.rs1, 6);
    EXPECT_EQ(ld.imm, -4);
    Inst st = inst::store(Opcode::SB, 7, 8, 12);
    EXPECT_EQ(st.rs2, 7);
    EXPECT_EQ(st.rs1, 8);
    Inst j = inst::jal(1, 42);
    EXPECT_EQ(j.rd, 1);
    EXPECT_EQ(j.imm, 42);
}

TEST(Program, AppendAndAt)
{
    Program p("t");
    EXPECT_TRUE(p.empty());
    auto pc0 = p.append(inst::nop());
    auto pc1 = p.append(inst::halt());
    EXPECT_EQ(pc0, 0u);
    EXPECT_EQ(pc1, 1u);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_EQ(p.at(1).op, Opcode::HALT);
}

TEST(Program, PatchReplaces)
{
    Program p("t");
    p.append(inst::nop());
    p.patch(0, inst::halt());
    EXPECT_EQ(p.at(0).op, Opcode::HALT);
}

TEST(Program, InstAddrUsesCodeBase)
{
    Program p("t");
    p.setCodeBase(0x1000);
    EXPECT_EQ(p.instAddr(0), 0x1000u);
    EXPECT_EQ(p.instAddr(3), 0x1000u + 24);
}

TEST(Program, WordsSegmentLittleEndian)
{
    Program p("t");
    p.addWords(0x100, {0x0102030405060708ULL});
    ASSERT_EQ(p.segments().size(), 1u);
    const auto &seg = p.segments()[0];
    EXPECT_EQ(seg.base, 0x100u);
    ASSERT_EQ(seg.bytes.size(), 8u);
    EXPECT_EQ(seg.bytes[0], 0x08);
    EXPECT_EQ(seg.bytes[7], 0x01);
}

TEST(Program, ListingShowsLabels)
{
    Program p("t");
    p.addLabel("start", 0);
    p.append(inst::nop());
    p.append(inst::halt());
    std::string l = p.listing();
    EXPECT_NE(l.find("start:"), std::string::npos);
    EXPECT_NE(l.find("halt"), std::string::npos);
}

TEST(ProgramDeath, FetchPastEndPanics)
{
    Program p("t");
    p.append(inst::nop());
    EXPECT_DEATH((void)p.at(5), "past end");
}
