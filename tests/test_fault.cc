/**
 * @file
 * Fault-injection and watchdog tests.
 *
 * The contract under test: injected faults may cost cycles, never
 * correctness. Every faulted run must end in an architectural state
 * identical to the golden functional executor's, and equal seeds must
 * reproduce bit-identical fault sequences.
 */

#include <gtest/gtest.h>

#include "sim_test_util.hh"

using namespace sst;
using namespace sst::test;

namespace
{

/** Pointer-chase kernel whose nodes sit 4 KB apart: every hop misses
 *  the L1, giving the injector a dense stream of demand fills. */
std::string
chaseKernel(int iters = 24)
{
    std::string out = R"(
    li   x1, 0x200000
    li   x3, )" + std::to_string(iters)
                      + R"(
    li   x4, 0
loop:
    ld   x2, 0(x1)
    ld   x5, 8(x1)
    add  x4, x4, x5
    st   x4, 16(x1)
    addi x1, x2, 0
    addi x3, x3, -1
    bne  x3, x0, loop
    halt
    .data 0x200000
)";
    for (int i = 0; i < 32; ++i) {
        long next = 0x200000 + ((i + 1) % 32) * 4096;
        out += "    .word " + std::to_string(next) + ", "
               + std::to_string(i * 3 + 1) + "\n    .space 8\n";
        if (i != 31)
            out += "    .space 4072\n";
    }
    return out;
}

/** Run @p model over the chase kernel with @p fault injected. */
CoreRun
faultedRun(const std::string &model, const FaultParams &fault,
           CoreParams core = {})
{
    HierarchyParams mem;
    mem.fault = fault;
    CoreRun r = makeRun(model, chaseKernel(), std::move(core), mem);
    r.run();
    return r;
}

double
faultStat(CoreRun &r, const std::string &key)
{
    auto flat = r.memsys->faults().stats().flatten();
    auto it = flat.find(key);
    return it == flat.end() ? 0.0 : it->second;
}

} // namespace

TEST(FaultInjection, DisabledByDefault)
{
    FaultParams f;
    EXPECT_FALSE(f.enabled());
    CoreRun r = faultedRun("sst", f, sstParams(4));
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_EQ(r.memsys->faults().injectedCount(), 0u);
}

TEST(FaultInjection, SameSeedIsBitIdentical)
{
    FaultParams f;
    f.seed = 99;
    f.dropFillRate = 0.01;
    f.dropTimeout = 4000;
    f.delayFillRate = 0.05;
    f.mshrPressureRate = 0.02;
    CoreRun a = faultedRun("sst", f, sstParams(4));
    CoreRun b = faultedRun("sst", f, sstParams(4));
    EXPECT_GT(a.memsys->faults().injectedCount(), 0u);
    EXPECT_EQ(a.core->cycles(), b.core->cycles());
    EXPECT_EQ(a.core->stats().flatten(), b.core->stats().flatten());
    EXPECT_EQ(a.memsys->faults().stats().flatten(),
              b.memsys->faults().stats().flatten());
}

TEST(FaultInjection, DifferentSeedsStayCorrect)
{
    for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        FaultParams f;
        f.seed = seed;
        f.dropFillRate = 0.02;
        f.dropTimeout = 3000;
        f.delayFillRate = 0.05;
        f.delayCycles = 700;
        f.mshrPressureRate = 0.05;
        f.tlbPressureRate = 0.02;
        CoreRun r = faultedRun("sst", f, sstParams(4));
        EXPECT_TRUE(r.core->halted()) << "seed " << seed;
        EXPECT_TRUE(r.archMatchesGolden()) << "seed " << seed;
    }
}

TEST(FaultInjection, PerturbFillSemantics)
{
    StatGroup parent("parent");
    FaultParams drop;
    drop.dropFillRate = 1.0;
    drop.dropTimeout = 1000;
    FaultInjector dropper(drop, parent);
    // A dropped fill completes only after the timeout...
    EXPECT_EQ(dropper.perturbFill(100, 150), 1100u);
    // ...but one already slower than the timeout is never accelerated.
    EXPECT_EQ(dropper.perturbFill(100, 5000), 5000u);

    StatGroup parent2("parent2");
    FaultParams delay;
    delay.delayFillRate = 1.0;
    delay.delayCycles = 400;
    FaultInjector delayer(delay, parent2);
    EXPECT_EQ(delayer.perturbFill(100, 150), 550u);

    // An all-off injector is a strict no-op.
    StatGroup parent3("parent3");
    FaultInjector off(FaultParams{}, parent3);
    EXPECT_EQ(off.perturbFill(100, 150), 150u);
    EXPECT_FALSE(off.mshrPressure());
    EXPECT_FALSE(off.forceAbort());
    EXPECT_EQ(off.tlbPressure(120), 0u);
    EXPECT_EQ(off.injectedCount(), 0u);
}

TEST(FaultInjection, DroppedFillsCostCyclesNotCorrectness)
{
    CoreRun base = faultedRun("sst", FaultParams{}, sstParams(4));
    FaultParams f;
    f.seed = 3;
    f.dropFillRate = 0.25;
    f.dropTimeout = 5000;
    CoreRun r = faultedRun("sst", f, sstParams(4));
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GT(faultStat(r, "fault.fills_dropped"), 0.0);
    EXPECT_GT(r.core->cycles(), base.core->cycles());
}

TEST(FaultInjection, ForcedAbortsRollBackSafely)
{
    FaultParams f;
    f.seed = 11;
    f.forceAbortRate = 0.002;
    CoreRun r = faultedRun("sst", f, sstParams(4));
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GT(faultStat(r, "fault.forced_aborts"), 0.0);
    auto flat = r.core->stats().flatten();
    double forced = 0;
    for (const auto &kv : flat)
        if (kv.first.find("fail_forced") != std::string::npos)
            forced = kv.second;
    EXPECT_GT(forced, 0.0);
}

TEST(FaultInjection, MshrPressureIsAbsorbedByRetry)
{
    FaultParams f;
    f.seed = 5;
    f.mshrPressureRate = 0.1;
    for (const char *model : {"inorder", "ooo", "sst"}) {
        CoreRun r = faultedRun(model, f,
                               std::string(model) == "sst"
                                   ? sstParams(4)
                                   : CoreParams{});
        EXPECT_TRUE(r.core->halted()) << model;
        EXPECT_TRUE(r.archMatchesGolden()) << model;
        EXPECT_GT(faultStat(r, "fault.mshr_rejects"), 0.0) << model;
    }
}

TEST(FaultInjection, TlbPressureDefersButStaysCorrect)
{
    FaultParams f;
    f.seed = 13;
    f.tlbPressureRate = 0.05;
    CoreRun r = faultedRun("sst", f, sstParams(4));
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());
    EXPECT_GT(faultStat(r, "fault.tlb_spikes"), 0.0);
}

TEST(FaultInjection, QueueSqueezesStayCorrect)
{
    FaultParams f;
    f.dqSqueeze = 60; // 64-entry DQ squeezed to 4
    f.ssqSqueeze = 30; // 32-entry SSQ squeezed to 2
    CoreRun r = faultedRun("sst", f, sstParams(4));
    EXPECT_TRUE(r.core->halted());
    EXPECT_TRUE(r.archMatchesGolden());

    // Squeezing below zero clamps to one entry instead of wrapping.
    FaultParams huge;
    huge.dqSqueeze = 1000;
    huge.ssqSqueeze = 1000;
    CoreRun tiny = faultedRun("sst", huge, sstParams(2));
    EXPECT_TRUE(tiny.core->halted());
    EXPECT_TRUE(tiny.archMatchesGolden());
}

// --- watchdog ----------------------------------------------------------

TEST(Watchdog, RecoversFromDroppedFills)
{
    // Every fill is dropped for 40k cycles; the watchdog notices the
    // 10k-cycle retirement gaps and degrades speculation so the core
    // limps forward non-speculatively. The run must still complete and
    // must still match golden execution.
    Program p = assemble(chaseKernel(6), "chase");
    MachineConfig mc = makePreset("sst4");
    mc.mem.fault.seed = 1;
    mc.mem.fault.dropFillRate = 1.0;
    mc.mem.fault.dropTimeout = 40'000;
    mc.watchdog.stallCycles = 10'000;

    MemoryImage golden_mem;
    golden_mem.loadSegments(p);
    Executor golden(p, golden_mem);
    ArchState golden_state;
    std::uint64_t golden_insts = golden.run(golden_state, 50'000'000ULL);

    Machine m(mc, p);
    RunResult r = m.run(50'000'000ULL);
    EXPECT_TRUE(r.finished);
    EXPECT_EQ(r.degrade, DegradeReason::None);
    EXPECT_GT(r.stats.at("watchdog.recoveries"), 0.0);
    EXPECT_GT(r.stats.at("fault.injected"), 0.0);
    EXPECT_TRUE(m.core().archState().regsEqual(golden_state));
    EXPECT_TRUE(m.image().contentEquals(golden_mem));
    EXPECT_EQ(r.insts, golden_insts);
}

TEST(Watchdog, DeclaresLivelockWhenDegradationCannotHelp)
{
    // The in-order core has no speculation to degrade; with every fill
    // lost for an effectively infinite timeout, the watchdog's
    // escalation runs out and the run terminates cleanly instead of
    // spinning to the cycle budget.
    Program p = assemble(chaseKernel(6), "chase");
    MachineConfig mc = makePreset("inorder");
    mc.mem.fault.dropFillRate = 1.0;
    mc.mem.fault.dropTimeout = 10'000'000;
    mc.watchdog.stallCycles = 1'000;
    mc.watchdog.maxInterventions = 3;

    Machine m(mc, p);
    RunResult r = m.run(100'000'000ULL);
    EXPECT_FALSE(r.finished);
    EXPECT_EQ(r.degrade, DegradeReason::Livelock);
    EXPECT_EQ(r.stats.at("watchdog.interventions"), 3.0);
    // Clean early termination, nowhere near the cycle budget.
    EXPECT_LT(r.cycles, 100'000u);
}

TEST(Watchdog, DisabledWatchdogRunsToBudget)
{
    Program p = assemble(chaseKernel(6), "chase");
    MachineConfig mc = makePreset("inorder");
    mc.mem.fault.dropFillRate = 1.0;
    mc.mem.fault.dropTimeout = 10'000'000;
    mc.watchdog.enabled = false;

    Machine m(mc, p);
    RunResult r = m.run(50'000);
    EXPECT_FALSE(r.finished);
    EXPECT_EQ(r.degrade, DegradeReason::CycleBudget);
    EXPECT_EQ(r.stats.at("watchdog.interventions"), 0.0);
}
