# Empty dependencies file for test_stats_json.
# This may be replaced when dependencies are built.
