file(REMOVE_RECURSE
  "CMakeFiles/test_stats_json.dir/test_stats_json.cc.o"
  "CMakeFiles/test_stats_json.dir/test_stats_json.cc.o.d"
  "test_stats_json"
  "test_stats_json.pdb"
  "test_stats_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
