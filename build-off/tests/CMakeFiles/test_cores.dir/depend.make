# Empty dependencies file for test_cores.
# This may be replaced when dependencies are built.
