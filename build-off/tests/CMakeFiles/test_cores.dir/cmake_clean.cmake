file(REMOVE_RECURSE
  "CMakeFiles/test_cores.dir/test_cores.cc.o"
  "CMakeFiles/test_cores.dir/test_cores.cc.o.d"
  "test_cores"
  "test_cores.pdb"
  "test_cores[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
