# Empty dependencies file for test_timing_details.
# This may be replaced when dependencies are built.
