file(REMOVE_RECURSE
  "CMakeFiles/test_timing_details.dir/test_timing_details.cc.o"
  "CMakeFiles/test_timing_details.dir/test_timing_details.cc.o.d"
  "test_timing_details"
  "test_timing_details.pdb"
  "test_timing_details[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timing_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
