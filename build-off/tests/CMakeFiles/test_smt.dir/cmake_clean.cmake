file(REMOVE_RECURSE
  "CMakeFiles/test_smt.dir/test_smt.cc.o"
  "CMakeFiles/test_smt.dir/test_smt.cc.o.d"
  "test_smt"
  "test_smt.pdb"
  "test_smt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
