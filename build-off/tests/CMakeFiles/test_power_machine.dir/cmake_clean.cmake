file(REMOVE_RECURSE
  "CMakeFiles/test_power_machine.dir/test_power_machine.cc.o"
  "CMakeFiles/test_power_machine.dir/test_power_machine.cc.o.d"
  "test_power_machine"
  "test_power_machine.pdb"
  "test_power_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_power_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
