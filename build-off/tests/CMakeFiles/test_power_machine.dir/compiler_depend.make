# Empty compiler generated dependencies file for test_power_machine.
# This may be replaced when dependencies are built.
