# Empty dependencies file for test_builder_assembler.
# This may be replaced when dependencies are built.
