file(REMOVE_RECURSE
  "CMakeFiles/test_builder_assembler.dir/test_builder_assembler.cc.o"
  "CMakeFiles/test_builder_assembler.dir/test_builder_assembler.cc.o.d"
  "test_builder_assembler"
  "test_builder_assembler.pdb"
  "test_builder_assembler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builder_assembler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
