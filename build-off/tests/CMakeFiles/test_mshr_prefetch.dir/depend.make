# Empty dependencies file for test_mshr_prefetch.
# This may be replaced when dependencies are built.
