file(REMOVE_RECURSE
  "CMakeFiles/test_mshr_prefetch.dir/test_mshr_prefetch.cc.o"
  "CMakeFiles/test_mshr_prefetch.dir/test_mshr_prefetch.cc.o.d"
  "test_mshr_prefetch"
  "test_mshr_prefetch.pdb"
  "test_mshr_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mshr_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
