file(REMOVE_RECURSE
  "CMakeFiles/test_sst_core.dir/test_sst_core.cc.o"
  "CMakeFiles/test_sst_core.dir/test_sst_core.cc.o.d"
  "test_sst_core"
  "test_sst_core.pdb"
  "test_sst_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
