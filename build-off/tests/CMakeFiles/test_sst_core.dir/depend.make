# Empty dependencies file for test_sst_core.
# This may be replaced when dependencies are built.
