# Empty dependencies file for test_cpistack.
# This may be replaced when dependencies are built.
