file(REMOVE_RECURSE
  "CMakeFiles/test_cpistack.dir/test_cpistack.cc.o"
  "CMakeFiles/test_cpistack.dir/test_cpistack.cc.o.d"
  "test_cpistack"
  "test_cpistack.pdb"
  "test_cpistack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpistack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
