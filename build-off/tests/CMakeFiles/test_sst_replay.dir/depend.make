# Empty dependencies file for test_sst_replay.
# This may be replaced when dependencies are built.
