file(REMOVE_RECURSE
  "CMakeFiles/test_sst_replay.dir/test_sst_replay.cc.o"
  "CMakeFiles/test_sst_replay.dir/test_sst_replay.cc.o.d"
  "test_sst_replay"
  "test_sst_replay.pdb"
  "test_sst_replay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sst_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
