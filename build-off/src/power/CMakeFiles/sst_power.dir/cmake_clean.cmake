file(REMOVE_RECURSE
  "CMakeFiles/sst_power.dir/model.cc.o"
  "CMakeFiles/sst_power.dir/model.cc.o.d"
  "libsst_power.a"
  "libsst_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
