# Empty compiler generated dependencies file for sst_power.
# This may be replaced when dependencies are built.
