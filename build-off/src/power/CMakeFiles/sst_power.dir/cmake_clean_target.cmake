file(REMOVE_RECURSE
  "libsst_power.a"
)
