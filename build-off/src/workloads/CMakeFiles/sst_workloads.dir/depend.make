# Empty dependencies file for sst_workloads.
# This may be replaced when dependencies are built.
