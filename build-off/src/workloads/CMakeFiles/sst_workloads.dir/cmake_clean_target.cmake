file(REMOVE_RECURSE
  "libsst_workloads.a"
)
