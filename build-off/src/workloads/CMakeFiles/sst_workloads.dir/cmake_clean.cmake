file(REMOVE_RECURSE
  "CMakeFiles/sst_workloads.dir/workloads.cc.o"
  "CMakeFiles/sst_workloads.dir/workloads.cc.o.d"
  "libsst_workloads.a"
  "libsst_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
