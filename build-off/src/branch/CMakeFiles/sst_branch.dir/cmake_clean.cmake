file(REMOVE_RECURSE
  "CMakeFiles/sst_branch.dir/predictor.cc.o"
  "CMakeFiles/sst_branch.dir/predictor.cc.o.d"
  "libsst_branch.a"
  "libsst_branch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
