# Empty compiler generated dependencies file for sst_branch.
# This may be replaced when dependencies are built.
