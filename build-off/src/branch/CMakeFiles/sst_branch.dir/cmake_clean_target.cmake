file(REMOVE_RECURSE
  "libsst_branch.a"
)
