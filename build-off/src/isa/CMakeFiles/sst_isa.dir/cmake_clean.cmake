file(REMOVE_RECURSE
  "CMakeFiles/sst_isa.dir/assembler.cc.o"
  "CMakeFiles/sst_isa.dir/assembler.cc.o.d"
  "CMakeFiles/sst_isa.dir/builder.cc.o"
  "CMakeFiles/sst_isa.dir/builder.cc.o.d"
  "CMakeFiles/sst_isa.dir/instruction.cc.o"
  "CMakeFiles/sst_isa.dir/instruction.cc.o.d"
  "CMakeFiles/sst_isa.dir/opcodes.cc.o"
  "CMakeFiles/sst_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/sst_isa.dir/program.cc.o"
  "CMakeFiles/sst_isa.dir/program.cc.o.d"
  "libsst_isa.a"
  "libsst_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
