file(REMOVE_RECURSE
  "libsst_isa.a"
)
