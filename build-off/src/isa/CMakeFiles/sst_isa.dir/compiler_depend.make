# Empty compiler generated dependencies file for sst_isa.
# This may be replaced when dependencies are built.
