
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cc" "src/isa/CMakeFiles/sst_isa.dir/assembler.cc.o" "gcc" "src/isa/CMakeFiles/sst_isa.dir/assembler.cc.o.d"
  "/root/repo/src/isa/builder.cc" "src/isa/CMakeFiles/sst_isa.dir/builder.cc.o" "gcc" "src/isa/CMakeFiles/sst_isa.dir/builder.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/sst_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/sst_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/isa/CMakeFiles/sst_isa.dir/opcodes.cc.o" "gcc" "src/isa/CMakeFiles/sst_isa.dir/opcodes.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/isa/CMakeFiles/sst_isa.dir/program.cc.o" "gcc" "src/isa/CMakeFiles/sst_isa.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/common/CMakeFiles/sst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
