file(REMOVE_RECURSE
  "CMakeFiles/sst_core.dir/core.cc.o"
  "CMakeFiles/sst_core.dir/core.cc.o.d"
  "CMakeFiles/sst_core.dir/inorder.cc.o"
  "CMakeFiles/sst_core.dir/inorder.cc.o.d"
  "CMakeFiles/sst_core.dir/ooo.cc.o"
  "CMakeFiles/sst_core.dir/ooo.cc.o.d"
  "CMakeFiles/sst_core.dir/smt.cc.o"
  "CMakeFiles/sst_core.dir/smt.cc.o.d"
  "CMakeFiles/sst_core.dir/sst.cc.o"
  "CMakeFiles/sst_core.dir/sst.cc.o.d"
  "libsst_core.a"
  "libsst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
