# Empty dependencies file for sst_core.
# This may be replaced when dependencies are built.
