
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/core.cc" "src/core/CMakeFiles/sst_core.dir/core.cc.o" "gcc" "src/core/CMakeFiles/sst_core.dir/core.cc.o.d"
  "/root/repo/src/core/inorder.cc" "src/core/CMakeFiles/sst_core.dir/inorder.cc.o" "gcc" "src/core/CMakeFiles/sst_core.dir/inorder.cc.o.d"
  "/root/repo/src/core/ooo.cc" "src/core/CMakeFiles/sst_core.dir/ooo.cc.o" "gcc" "src/core/CMakeFiles/sst_core.dir/ooo.cc.o.d"
  "/root/repo/src/core/smt.cc" "src/core/CMakeFiles/sst_core.dir/smt.cc.o" "gcc" "src/core/CMakeFiles/sst_core.dir/smt.cc.o.d"
  "/root/repo/src/core/sst.cc" "src/core/CMakeFiles/sst_core.dir/sst.cc.o" "gcc" "src/core/CMakeFiles/sst_core.dir/sst.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/common/CMakeFiles/sst_common.dir/DependInfo.cmake"
  "/root/repo/build-off/src/trace/CMakeFiles/sst_trace.dir/DependInfo.cmake"
  "/root/repo/build-off/src/isa/CMakeFiles/sst_isa.dir/DependInfo.cmake"
  "/root/repo/build-off/src/func/CMakeFiles/sst_func.dir/DependInfo.cmake"
  "/root/repo/build-off/src/mem/CMakeFiles/sst_mem.dir/DependInfo.cmake"
  "/root/repo/build-off/src/branch/CMakeFiles/sst_branch.dir/DependInfo.cmake"
  "/root/repo/build-off/src/fault/CMakeFiles/sst_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
