file(REMOVE_RECURSE
  "libsst_core.a"
)
