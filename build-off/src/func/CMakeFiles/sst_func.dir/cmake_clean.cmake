file(REMOVE_RECURSE
  "CMakeFiles/sst_func.dir/executor.cc.o"
  "CMakeFiles/sst_func.dir/executor.cc.o.d"
  "CMakeFiles/sst_func.dir/memory_image.cc.o"
  "CMakeFiles/sst_func.dir/memory_image.cc.o.d"
  "libsst_func.a"
  "libsst_func.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_func.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
