file(REMOVE_RECURSE
  "libsst_func.a"
)
