
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/func/executor.cc" "src/func/CMakeFiles/sst_func.dir/executor.cc.o" "gcc" "src/func/CMakeFiles/sst_func.dir/executor.cc.o.d"
  "/root/repo/src/func/memory_image.cc" "src/func/CMakeFiles/sst_func.dir/memory_image.cc.o" "gcc" "src/func/CMakeFiles/sst_func.dir/memory_image.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/common/CMakeFiles/sst_common.dir/DependInfo.cmake"
  "/root/repo/build-off/src/isa/CMakeFiles/sst_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
