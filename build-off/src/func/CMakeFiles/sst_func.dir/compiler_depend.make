# Empty compiler generated dependencies file for sst_func.
# This may be replaced when dependencies are built.
