file(REMOVE_RECURSE
  "CMakeFiles/sst_fault.dir/fault.cc.o"
  "CMakeFiles/sst_fault.dir/fault.cc.o.d"
  "libsst_fault.a"
  "libsst_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
