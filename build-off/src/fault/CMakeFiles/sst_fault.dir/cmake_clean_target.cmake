file(REMOVE_RECURSE
  "libsst_fault.a"
)
