# Empty compiler generated dependencies file for sst_fault.
# This may be replaced when dependencies are built.
