# Empty compiler generated dependencies file for sst_exp.
# This may be replaced when dependencies are built.
