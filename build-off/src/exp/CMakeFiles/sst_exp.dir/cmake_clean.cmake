file(REMOVE_RECURSE
  "CMakeFiles/sst_exp.dir/json.cc.o"
  "CMakeFiles/sst_exp.dir/json.cc.o.d"
  "CMakeFiles/sst_exp.dir/runner.cc.o"
  "CMakeFiles/sst_exp.dir/runner.cc.o.d"
  "CMakeFiles/sst_exp.dir/sweep.cc.o"
  "CMakeFiles/sst_exp.dir/sweep.cc.o.d"
  "CMakeFiles/sst_exp.dir/threadpool.cc.o"
  "CMakeFiles/sst_exp.dir/threadpool.cc.o.d"
  "libsst_exp.a"
  "libsst_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
