file(REMOVE_RECURSE
  "libsst_exp.a"
)
