# Empty dependencies file for sst_mem.
# This may be replaced when dependencies are built.
