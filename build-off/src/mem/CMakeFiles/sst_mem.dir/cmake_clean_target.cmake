file(REMOVE_RECURSE
  "libsst_mem.a"
)
