file(REMOVE_RECURSE
  "CMakeFiles/sst_mem.dir/cache.cc.o"
  "CMakeFiles/sst_mem.dir/cache.cc.o.d"
  "CMakeFiles/sst_mem.dir/dram.cc.o"
  "CMakeFiles/sst_mem.dir/dram.cc.o.d"
  "CMakeFiles/sst_mem.dir/hierarchy.cc.o"
  "CMakeFiles/sst_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/sst_mem.dir/mshr.cc.o"
  "CMakeFiles/sst_mem.dir/mshr.cc.o.d"
  "CMakeFiles/sst_mem.dir/prefetcher.cc.o"
  "CMakeFiles/sst_mem.dir/prefetcher.cc.o.d"
  "CMakeFiles/sst_mem.dir/tlb.cc.o"
  "CMakeFiles/sst_mem.dir/tlb.cc.o.d"
  "libsst_mem.a"
  "libsst_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
