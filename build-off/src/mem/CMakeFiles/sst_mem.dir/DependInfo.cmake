
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/sst_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/mem/CMakeFiles/sst_mem.dir/dram.cc.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/dram.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/mem/CMakeFiles/sst_mem.dir/hierarchy.cc.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/hierarchy.cc.o.d"
  "/root/repo/src/mem/mshr.cc" "src/mem/CMakeFiles/sst_mem.dir/mshr.cc.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/mshr.cc.o.d"
  "/root/repo/src/mem/prefetcher.cc" "src/mem/CMakeFiles/sst_mem.dir/prefetcher.cc.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/prefetcher.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/sst_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/sst_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/common/CMakeFiles/sst_common.dir/DependInfo.cmake"
  "/root/repo/build-off/src/trace/CMakeFiles/sst_trace.dir/DependInfo.cmake"
  "/root/repo/build-off/src/fault/CMakeFiles/sst_fault.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
