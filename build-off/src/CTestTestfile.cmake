# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-off/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("trace")
subdirs("fault")
subdirs("isa")
subdirs("func")
subdirs("mem")
subdirs("branch")
subdirs("core")
subdirs("power")
subdirs("workloads")
subdirs("sim")
subdirs("exp")
