# Empty dependencies file for sst_common.
# This may be replaced when dependencies are built.
