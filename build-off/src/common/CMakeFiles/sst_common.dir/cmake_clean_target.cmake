file(REMOVE_RECURSE
  "libsst_common.a"
)
