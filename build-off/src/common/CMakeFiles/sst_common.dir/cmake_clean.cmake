file(REMOVE_RECURSE
  "CMakeFiles/sst_common.dir/config.cc.o"
  "CMakeFiles/sst_common.dir/config.cc.o.d"
  "CMakeFiles/sst_common.dir/logging.cc.o"
  "CMakeFiles/sst_common.dir/logging.cc.o.d"
  "CMakeFiles/sst_common.dir/rng.cc.o"
  "CMakeFiles/sst_common.dir/rng.cc.o.d"
  "CMakeFiles/sst_common.dir/stats.cc.o"
  "CMakeFiles/sst_common.dir/stats.cc.o.d"
  "CMakeFiles/sst_common.dir/table.cc.o"
  "CMakeFiles/sst_common.dir/table.cc.o.d"
  "libsst_common.a"
  "libsst_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
