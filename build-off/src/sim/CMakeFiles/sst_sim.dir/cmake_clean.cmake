file(REMOVE_RECURSE
  "CMakeFiles/sst_sim.dir/cmp.cc.o"
  "CMakeFiles/sst_sim.dir/cmp.cc.o.d"
  "CMakeFiles/sst_sim.dir/machine.cc.o"
  "CMakeFiles/sst_sim.dir/machine.cc.o.d"
  "CMakeFiles/sst_sim.dir/presets.cc.o"
  "CMakeFiles/sst_sim.dir/presets.cc.o.d"
  "CMakeFiles/sst_sim.dir/sampling.cc.o"
  "CMakeFiles/sst_sim.dir/sampling.cc.o.d"
  "libsst_sim.a"
  "libsst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
