file(REMOVE_RECURSE
  "libsst_sim.a"
)
