# Empty dependencies file for sst_sim.
# This may be replaced when dependencies are built.
