file(REMOVE_RECURSE
  "CMakeFiles/sst_trace.dir/chrome.cc.o"
  "CMakeFiles/sst_trace.dir/chrome.cc.o.d"
  "CMakeFiles/sst_trace.dir/cpistack.cc.o"
  "CMakeFiles/sst_trace.dir/cpistack.cc.o.d"
  "CMakeFiles/sst_trace.dir/trace.cc.o"
  "CMakeFiles/sst_trace.dir/trace.cc.o.d"
  "libsst_trace.a"
  "libsst_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sst_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
