# Empty compiler generated dependencies file for sst_trace.
# This may be replaced when dependencies are built.
