file(REMOVE_RECURSE
  "libsst_trace.a"
)
