file(REMOVE_RECURSE
  "CMakeFiles/latency_wall.dir/latency_wall.cpp.o"
  "CMakeFiles/latency_wall.dir/latency_wall.cpp.o.d"
  "latency_wall"
  "latency_wall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_wall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
