# Empty dependencies file for latency_wall.
# This may be replaced when dependencies are built.
