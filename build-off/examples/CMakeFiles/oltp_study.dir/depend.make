# Empty dependencies file for oltp_study.
# This may be replaced when dependencies are built.
