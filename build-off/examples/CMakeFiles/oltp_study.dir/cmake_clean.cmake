file(REMOVE_RECURSE
  "CMakeFiles/oltp_study.dir/oltp_study.cpp.o"
  "CMakeFiles/oltp_study.dir/oltp_study.cpp.o.d"
  "oltp_study"
  "oltp_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
