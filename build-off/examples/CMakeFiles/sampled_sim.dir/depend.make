# Empty dependencies file for sampled_sim.
# This may be replaced when dependencies are built.
