file(REMOVE_RECURSE
  "CMakeFiles/sampled_sim.dir/sampled_sim.cpp.o"
  "CMakeFiles/sampled_sim.dir/sampled_sim.cpp.o.d"
  "sampled_sim"
  "sampled_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
