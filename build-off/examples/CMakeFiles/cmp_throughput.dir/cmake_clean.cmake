file(REMOVE_RECURSE
  "CMakeFiles/cmp_throughput.dir/cmp_throughput.cpp.o"
  "CMakeFiles/cmp_throughput.dir/cmp_throughput.cpp.o.d"
  "cmp_throughput"
  "cmp_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
