# Empty dependencies file for cmp_throughput.
# This may be replaced when dependencies are built.
