file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_failures.dir/bench_f10_failures.cc.o"
  "CMakeFiles/bench_f10_failures.dir/bench_f10_failures.cc.o.d"
  "bench_f10_failures"
  "bench_f10_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
