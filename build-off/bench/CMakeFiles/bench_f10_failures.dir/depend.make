# Empty dependencies file for bench_f10_failures.
# This may be replaced when dependencies are built.
