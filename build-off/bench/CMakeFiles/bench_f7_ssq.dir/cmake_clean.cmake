file(REMOVE_RECURSE
  "CMakeFiles/bench_f7_ssq.dir/bench_f7_ssq.cc.o"
  "CMakeFiles/bench_f7_ssq.dir/bench_f7_ssq.cc.o.d"
  "bench_f7_ssq"
  "bench_f7_ssq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_ssq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
