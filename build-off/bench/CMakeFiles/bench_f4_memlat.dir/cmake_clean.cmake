file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_memlat.dir/bench_f4_memlat.cc.o"
  "CMakeFiles/bench_f4_memlat.dir/bench_f4_memlat.cc.o.d"
  "bench_f4_memlat"
  "bench_f4_memlat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_memlat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
