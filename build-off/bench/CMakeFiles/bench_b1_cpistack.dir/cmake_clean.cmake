file(REMOVE_RECURSE
  "CMakeFiles/bench_b1_cpistack.dir/bench_b1_cpistack.cc.o"
  "CMakeFiles/bench_b1_cpistack.dir/bench_b1_cpistack.cc.o.d"
  "bench_b1_cpistack"
  "bench_b1_cpistack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b1_cpistack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
