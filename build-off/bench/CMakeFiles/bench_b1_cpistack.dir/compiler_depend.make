# Empty compiler generated dependencies file for bench_b1_cpistack.
# This may be replaced when dependencies are built.
