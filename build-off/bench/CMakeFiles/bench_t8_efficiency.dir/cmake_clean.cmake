file(REMOVE_RECURSE
  "CMakeFiles/bench_t8_efficiency.dir/bench_t8_efficiency.cc.o"
  "CMakeFiles/bench_t8_efficiency.dir/bench_t8_efficiency.cc.o.d"
  "bench_t8_efficiency"
  "bench_t8_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t8_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
