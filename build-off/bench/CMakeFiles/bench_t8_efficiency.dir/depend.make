# Empty dependencies file for bench_t8_efficiency.
# This may be replaced when dependencies are built.
