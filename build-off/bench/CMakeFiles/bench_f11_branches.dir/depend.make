# Empty dependencies file for bench_f11_branches.
# This may be replaced when dependencies are built.
