file(REMOVE_RECURSE
  "CMakeFiles/bench_f11_branches.dir/bench_f11_branches.cc.o"
  "CMakeFiles/bench_f11_branches.dir/bench_f11_branches.cc.o.d"
  "bench_f11_branches"
  "bench_f11_branches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_branches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
