# Empty dependencies file for bench_f3_mlp.
# This may be replaced when dependencies are built.
