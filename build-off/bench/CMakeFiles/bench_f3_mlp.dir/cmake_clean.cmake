file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_mlp.dir/bench_f3_mlp.cc.o"
  "CMakeFiles/bench_f3_mlp.dir/bench_f3_mlp.cc.o.d"
  "bench_f3_mlp"
  "bench_f3_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
