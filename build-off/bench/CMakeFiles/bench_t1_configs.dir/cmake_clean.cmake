file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_configs.dir/bench_t1_configs.cc.o"
  "CMakeFiles/bench_t1_configs.dir/bench_t1_configs.cc.o.d"
  "bench_t1_configs"
  "bench_t1_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
