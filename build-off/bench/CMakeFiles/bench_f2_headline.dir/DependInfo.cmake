
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f2_headline.cc" "bench/CMakeFiles/bench_f2_headline.dir/bench_f2_headline.cc.o" "gcc" "bench/CMakeFiles/bench_f2_headline.dir/bench_f2_headline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-off/src/sim/CMakeFiles/sst_sim.dir/DependInfo.cmake"
  "/root/repo/build-off/src/power/CMakeFiles/sst_power.dir/DependInfo.cmake"
  "/root/repo/build-off/src/exp/CMakeFiles/sst_exp.dir/DependInfo.cmake"
  "/root/repo/build-off/src/core/CMakeFiles/sst_core.dir/DependInfo.cmake"
  "/root/repo/build-off/src/func/CMakeFiles/sst_func.dir/DependInfo.cmake"
  "/root/repo/build-off/src/mem/CMakeFiles/sst_mem.dir/DependInfo.cmake"
  "/root/repo/build-off/src/trace/CMakeFiles/sst_trace.dir/DependInfo.cmake"
  "/root/repo/build-off/src/fault/CMakeFiles/sst_fault.dir/DependInfo.cmake"
  "/root/repo/build-off/src/branch/CMakeFiles/sst_branch.dir/DependInfo.cmake"
  "/root/repo/build-off/src/workloads/CMakeFiles/sst_workloads.dir/DependInfo.cmake"
  "/root/repo/build-off/src/isa/CMakeFiles/sst_isa.dir/DependInfo.cmake"
  "/root/repo/build-off/src/common/CMakeFiles/sst_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
