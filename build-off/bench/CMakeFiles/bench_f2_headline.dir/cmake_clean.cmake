file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_headline.dir/bench_f2_headline.cc.o"
  "CMakeFiles/bench_f2_headline.dir/bench_f2_headline.cc.o.d"
  "bench_f2_headline"
  "bench_f2_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
