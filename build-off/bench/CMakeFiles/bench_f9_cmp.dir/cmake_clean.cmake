file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_cmp.dir/bench_f9_cmp.cc.o"
  "CMakeFiles/bench_f9_cmp.dir/bench_f9_cmp.cc.o.d"
  "bench_f9_cmp"
  "bench_f9_cmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_cmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
