# Empty dependencies file for bench_f9_cmp.
# This may be replaced when dependencies are built.
