file(REMOVE_RECURSE
  "CMakeFiles/bench_f12_policies.dir/bench_f12_policies.cc.o"
  "CMakeFiles/bench_f12_policies.dir/bench_f12_policies.cc.o.d"
  "bench_f12_policies"
  "bench_f12_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f12_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
