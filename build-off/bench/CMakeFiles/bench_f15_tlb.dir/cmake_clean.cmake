file(REMOVE_RECURSE
  "CMakeFiles/bench_f15_tlb.dir/bench_f15_tlb.cc.o"
  "CMakeFiles/bench_f15_tlb.dir/bench_f15_tlb.cc.o.d"
  "bench_f15_tlb"
  "bench_f15_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f15_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
