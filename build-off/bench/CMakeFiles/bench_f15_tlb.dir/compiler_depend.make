# Empty compiler generated dependencies file for bench_f15_tlb.
# This may be replaced when dependencies are built.
