# Empty dependencies file for bench_b0_simspeed.
# This may be replaced when dependencies are built.
