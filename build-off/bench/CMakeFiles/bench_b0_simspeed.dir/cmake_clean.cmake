file(REMOVE_RECURSE
  "CMakeFiles/bench_b0_simspeed.dir/bench_b0_simspeed.cc.o"
  "CMakeFiles/bench_b0_simspeed.dir/bench_b0_simspeed.cc.o.d"
  "bench_b0_simspeed"
  "bench_b0_simspeed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_b0_simspeed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
