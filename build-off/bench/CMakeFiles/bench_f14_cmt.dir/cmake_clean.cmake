file(REMOVE_RECURSE
  "CMakeFiles/bench_f14_cmt.dir/bench_f14_cmt.cc.o"
  "CMakeFiles/bench_f14_cmt.dir/bench_f14_cmt.cc.o.d"
  "bench_f14_cmt"
  "bench_f14_cmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f14_cmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
