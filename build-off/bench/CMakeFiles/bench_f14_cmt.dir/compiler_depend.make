# Empty compiler generated dependencies file for bench_f14_cmt.
# This may be replaced when dependencies are built.
