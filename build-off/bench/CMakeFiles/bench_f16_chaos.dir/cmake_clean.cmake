file(REMOVE_RECURSE
  "CMakeFiles/bench_f16_chaos.dir/bench_f16_chaos.cc.o"
  "CMakeFiles/bench_f16_chaos.dir/bench_f16_chaos.cc.o.d"
  "bench_f16_chaos"
  "bench_f16_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f16_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
