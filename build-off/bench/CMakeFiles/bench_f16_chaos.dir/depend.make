# Empty dependencies file for bench_f16_chaos.
# This may be replaced when dependencies are built.
