file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_dq.dir/bench_f6_dq.cc.o"
  "CMakeFiles/bench_f6_dq.dir/bench_f6_dq.cc.o.d"
  "bench_f6_dq"
  "bench_f6_dq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_dq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
