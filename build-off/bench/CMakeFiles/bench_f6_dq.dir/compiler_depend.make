# Empty compiler generated dependencies file for bench_f6_dq.
# This may be replaced when dependencies are built.
