# Empty dependencies file for bench_f13_prefetch.
# This may be replaced when dependencies are built.
