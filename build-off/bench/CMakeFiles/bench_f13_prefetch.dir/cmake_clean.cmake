file(REMOVE_RECURSE
  "CMakeFiles/bench_f13_prefetch.dir/bench_f13_prefetch.cc.o"
  "CMakeFiles/bench_f13_prefetch.dir/bench_f13_prefetch.cc.o.d"
  "bench_f13_prefetch"
  "bench_f13_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f13_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
