file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_checkpoints.dir/bench_f5_checkpoints.cc.o"
  "CMakeFiles/bench_f5_checkpoints.dir/bench_f5_checkpoints.cc.o.d"
  "bench_f5_checkpoints"
  "bench_f5_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
