# Empty compiler generated dependencies file for bench_f5_checkpoints.
# This may be replaced when dependencies are built.
