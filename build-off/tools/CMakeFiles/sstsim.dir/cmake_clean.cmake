file(REMOVE_RECURSE
  "CMakeFiles/sstsim.dir/sstsim.cc.o"
  "CMakeFiles/sstsim.dir/sstsim.cc.o.d"
  "sstsim"
  "sstsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sstsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
