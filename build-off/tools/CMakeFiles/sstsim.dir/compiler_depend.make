# Empty compiler generated dependencies file for sstsim.
# This may be replaced when dependencies are built.
