/**
 * @file
 * Sampled simulation demo: estimate a long workload's IPC from
 * detailed sample windows separated by warmed functional fast-forward,
 * and compare the estimate (and host-time cost) against the full
 * detailed run.
 *
 * Usage: sampled_sim [preset=sst2] [workload=oltp_mix]
 *                    [detail=5000] [skip=20000] [length_scale=2.0]
 */

#include <chrono>
#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/sampling.hh"
#include "workloads/workloads.hh"

using namespace sst;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    setVerbose(false);

    WorkloadParams wp;
    wp.lengthScale = cfg.getDouble("length_scale", 2.0);
    Workload wl = makeWorkload(cfg.getString("workload", "oltp_mix"), wp);
    std::string preset = cfg.getString("preset", "sst2");

    using clk = std::chrono::steady_clock;

    auto t0 = clk::now();
    RunResult full = runOn(preset, wl.program);
    auto t1 = clk::now();

    SampleParams sp;
    sp.detailInsts = cfg.getUint("detail", 5000);
    sp.skipInsts = cfg.getUint("skip", 20000);
    SampledResult sampled = runSampled(makePreset(preset), wl.program, sp);
    auto t2 = clk::now();

    auto ms = [](auto a, auto b) {
        return std::chrono::duration_cast<std::chrono::milliseconds>(b
                                                                     - a)
            .count();
    };

    Table t("sampled vs full detailed simulation (" + preset + " on "
            + wl.name + ")");
    t.setHeader({"method", "IPC", "insts simulated in detail",
                 "host ms"});
    t.addRow({"full detail", Table::num(full.ipc, 4),
              std::to_string(full.insts),
              std::to_string(ms(t0, t1))});
    t.addRow({"sampled", Table::num(sampled.ipc, 4),
              std::to_string(sampled.detailedInsts),
              std::to_string(ms(t1, t2))});
    t.setCaption("windows: " + std::to_string(sampled.windowIpc.size())
                 + ", window IPC stddev "
                 + Table::num(sampled.ipcStddev(), 4) + ", error "
                 + Table::num(100.0 * std::abs(sampled.ipc - full.ipc)
                                  / full.ipc,
                              1)
                 + "%");
    t.print();
    return 0;
}
