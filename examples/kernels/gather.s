; gather.s — 64 independent random gathers through an index array.
; The SST showcase: the ahead strand computes every gather address from
; the (L1-resident after first touch) index array and floods the MSHRs.
; Run: asm_playground file=examples/kernels/gather.s preset=sst2 trace=true
    li   x5, 0x200000        ; idx[]
    li   x6, 0x400000        ; table (sparse pages)
    li   x7, 64
    li   x9, 0
    li   x10, 0
loop:
    slli x11, x10, 3
    add  x11, x11, x5
    ld   x12, 0(x11)         ; index (sequential, hits after fill)
    slli x12, x12, 12        ; pick a 4 KB-aligned slot
    add  x12, x12, x6
    ld   x13, 0(x12)         ; the gather: independent miss
    add  x9, x9, x13
    addi x10, x10, 1
    bne  x10, x7, loop
    li   x30, 0x1f0000
    st   x9, 0(x30)
    halt
    .data 0x200000
    .word 5, 17, 3, 29, 11, 41, 23, 7
    .word 37, 2, 19, 47, 13, 31, 43, 53
    .word 8, 26, 50, 14, 38, 20, 44, 32
    .word 56, 4, 28, 52, 16, 40, 22, 46
    .word 10, 34, 58, 6, 30, 54, 18, 42
    .word 24, 48, 12, 36, 60, 0, 27, 51
    .word 15, 39, 63, 9, 33, 57, 21, 45
    .word 1, 25, 49, 35, 59, 55, 61, 62
