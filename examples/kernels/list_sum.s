; list_sum.s — sum the payloads of a 16-node linked list whose nodes
; sit 4 KB apart: every hop is a dependent L1 miss, and the loop branch
; depends on the missed pointer. This is SST's adversarial corner: no
; technique can overlap the chain, the nodes alias to two cache sets
; (thrash), and the loop-exit branch is deferred 15 nodes past the
; front checkpoint — so its (inevitable) mispredict discards the whole
; region. Expect sst2 to run SLOWER than inorder here; run with
; trace=true to watch the rollbacks. pointer_chase (the bench version)
; avoids the aliasing and shows parity instead.
; Run: asm_playground file=examples/kernels/list_sum.s preset=sst2
    li   x5, 0x300000        ; head
    li   x9, 0               ; sum
loop:
    ld   x6, 8(x5)           ; payload
    add  x9, x9, x6
    ld   x5, 0(x5)           ; next (dependent miss)
    bne  x5, x0, loop
    li   x30, 0x1f0000
    st   x9, 0(x30)
    halt
    .data 0x300000
    .word 0x301000, 1
    .space 4080
    .word 0x302000, 2
    .space 4080
    .word 0x303000, 3
    .space 4080
    .word 0x304000, 4
    .space 4080
    .word 0x305000, 5
    .space 4080
    .word 0x306000, 6
    .space 4080
    .word 0x307000, 7
    .space 4080
    .word 0x308000, 8
    .space 4080
    .word 0x309000, 9
    .space 4080
    .word 0x30a000, 10
    .space 4080
    .word 0x30b000, 11
    .space 4080
    .word 0x30c000, 12
    .space 4080
    .word 0x30d000, 13
    .space 4080
    .word 0x30e000, 14
    .space 4080
    .word 0x30f000, 15
    .space 4080
    .word 0, 16
