; saxpy.s — y[i] = a*x[i] + y[i] over 4096 doubles.
; Streaming kernel: prefetch-friendly; SST adds little here.
; Run: asm_playground file=examples/kernels/saxpy.s preset=sst2
    li   x5, 0x200000       ; x[]
    li   x6, 0x210000       ; y[]
    li   x7, 4096           ; n
    li   x8, 4613937818241073152 ; bits of 3.0
    li   x10, 0
loop:
    ld   x11, 0(x5)
    ld   x12, 0(x6)
    fmul x11, x11, x8
    fadd x12, x12, x11
    st   x12, 0(x6)
    addi x5, x5, 8
    addi x6, x6, 8
    addi x10, x10, 1
    bne  x10, x7, loop
    li   x30, 0x1f0000
    st   x12, 0(x30)
    halt
    .data 0x200000
    .space 32768
    .data 0x210000
    .space 32768
