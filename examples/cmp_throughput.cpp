/**
 * @file
 * CMP throughput demo: the chip-level argument for SST. Builds chips of
 * 1..N cores sharing an L2 and DRAM, runs a transaction workload per
 * core, and reports aggregate throughput plus an equal-silicon
 * comparison between SST and out-of-order chips.
 *
 * Usage: cmp_throughput [cores=8] [preset=sst2] [length_scale=0.2]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "power/model.hh"
#include "sim/cmp.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace sst;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    setVerbose(false);
    unsigned max_cores =
        static_cast<unsigned>(cfg.getUint("cores", 8));
    std::string preset = cfg.getString("preset", "sst2");

    std::vector<Workload> wls;
    for (unsigned i = 0; i < max_cores; ++i) {
        WorkloadParams p;
        p.lengthScale = cfg.getDouble("length_scale", 0.2);
        p.seed = 42 + i;
        wls.push_back(makeOltpMix(p));
    }

    Table t("aggregate throughput, " + preset + " cores, shared L2+DRAM");
    t.setHeader({"cores", "aggregate IPC", "per-core IPC (avg)",
                 "scaling efficiency"});
    double solo = 0;
    for (unsigned n = 1; n <= max_cores; n *= 2) {
        std::vector<const Program *> progs;
        for (unsigned i = 0; i < n; ++i)
            progs.push_back(&wls[i].program);
        Cmp cmp(makePreset(preset), progs);
        CmpResult r = cmp.run();
        fatal_if(!r.finished, "CMP run did not finish");
        if (n == 1)
            solo = r.aggregateIpc;
        double per_core = r.aggregateIpc / n;
        t.addRow({std::to_string(n), Table::num(r.aggregateIpc, 3),
                  Table::num(per_core, 3),
                  Table::num(100.0 * r.aggregateIpc / (solo * n), 1)
                      + "%"});
    }
    t.setCaption("scaling efficiency < 100% = shared L2 capacity and "
                 "DRAM bandwidth contention.");
    t.print();
    return 0;
}
