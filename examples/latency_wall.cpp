/**
 * @file
 * Latency wall: how each core philosophy ages as DRAM gets (relatively)
 * slower — the trend that motivated SST. Sweeps the DRAM base latency
 * and prints IPC for the in-order baseline, hardware scout, SST and a
 * big out-of-order core on a memory-bound workload.
 *
 * Usage: latency_wall [workload=hash_join] [length_scale=0.5]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace sst;

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    setVerbose(false);

    WorkloadParams wp;
    wp.lengthScale = cfg.getDouble("length_scale", 0.5);
    Workload wl =
        makeWorkload(cfg.getString("workload", "hash_join"), wp);

    const std::vector<unsigned> latencies = {60, 120, 240, 480, 800};
    const std::vector<std::string> presets = {"inorder", "scout",
                                              "sst4", "ooo-large"};

    Table t("IPC vs DRAM base latency on " + wl.name);
    std::vector<std::string> header = {"latency (cycles)"};
    for (const auto &p : presets)
        header.push_back(p);
    t.setHeader(header);

    for (unsigned lat : latencies) {
        std::vector<std::string> row = {std::to_string(lat)};
        for (const auto &p : presets) {
            MachineConfig c = makePreset(p);
            c.mem.dram.baseLatency = lat;
            Machine machine(c, wl.program);
            RunResult r = machine.run();
            row.push_back(Table::num(r.ipc, 3));
        }
        t.addRow(row);
    }
    t.setCaption("SST holds IPC as latency grows by deferring the "
                 "dependence cone and overlapping more misses; the "
                 "fixed-window OoO core cannot.");
    t.print();
    return 0;
}
