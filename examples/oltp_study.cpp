/**
 * @file
 * OLTP study: a deeper walk through one commercial-style workload —
 * the scenario the ROCK paper's introduction motivates. Runs the
 * oltp_mix transaction kernel on every machine preset, then drills
 * into the SST core's internal behaviour: checkpoints, deferred queue,
 * replay traffic, rollback reasons and memory-level parallelism.
 *
 * Usage: oltp_study [length_scale=1.0] [seed=42] [zipf-ish overrides]
 */

#include <cstdio>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

double
statOf(const RunResult &r, const std::string &suffix)
{
    for (const auto &kv : r.stats)
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            return kv.second;
    return 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    setVerbose(false);

    WorkloadParams wp;
    wp.seed = cfg.getUint("seed", 42);
    wp.lengthScale = cfg.getDouble("length_scale", 1.0);
    Workload wl = makeOltpMix(wp);

    std::printf("OLTP transaction kernel: %llu-ish dynamic insts; "
                "Zipf-skewed row popularity; read-modify-write per txn\n",
                static_cast<unsigned long long>(wl.approxDynInsts));

    // --- 1. every machine on the same transactions ---
    Table t("oltp_mix across machine presets");
    t.setHeader({"preset", "cycles", "IPC", "speedup", "L1D miss%",
                 "MLP", "bpred miss%"});
    double base_cycles = 0;
    for (const auto &preset : presetNames()) {
        RunResult r = runOn(preset, wl.program);
        if (preset == "inorder")
            base_cycles = static_cast<double>(r.cycles);
        t.addRow({preset, std::to_string(r.cycles),
                  Table::num(r.ipc, 3),
                  Table::num(base_cycles / double(r.cycles), 2),
                  Table::num(100 * r.l1dMissRate, 1),
                  Table::num(r.meanDemandMlp, 2),
                  Table::num(100 * r.mispredictRate, 2)});
    }
    t.print();

    // --- 2. inside the SST core ---
    RunResult sst = runOn("sst4", wl.program);
    Table inner("inside sst4 on oltp_mix");
    inner.setHeader({"metric", "value", "per 1k insts"});
    auto row = [&](const char *name, const char *suffix) {
        double v = statOf(sst, suffix);
        inner.addRow({name, Table::num(v, 0),
                      Table::num(v * 1000.0 / double(sst.insts), 2)});
    };
    row("checkpoints taken", ".checkpoints_taken");
    row("epochs committed", ".epochs_committed");
    row("instructions deferred", ".deferred_insts");
    row("DQ entries replayed", ".replayed_insts");
    row("re-deferred at replay", ".redeferred_insts");
    row("speculative loads", ".spec_loads");
    row("rollback: deferred branch", ".fail_branch");
    row("rollback: memory conflict", ".fail_mem");
    row("insts discarded by rollback", ".discarded_insts");
    row("DQ-full stall cycles", ".dq_full_stalls");
    row("SSQ-full stall cycles", ".ssq_full_stalls");
    inner.print();

    std::printf("\nReading: the ahead strand executed %llu loads "
                "speculatively and parked %.0f%% of instructions in the "
                "DQ;\nreplay retired them at an average of %.2f deferred "
                "insts per epoch.\n",
                static_cast<unsigned long long>(
                    statOf(sst, ".spec_loads")),
                100.0 * statOf(sst, ".deferred_insts")
                    / double(sst.insts),
                statOf(sst, ".deferred_insts")
                    / std::max(1.0, statOf(sst, ".epochs_committed")));
    return 0;
}
