/**
 * @file
 * Quickstart: build a workload, run it on the in-order baseline and on
 * an SST core, and compare. Demonstrates the three layers of the public
 * API: workload generation, machine presets, and the run harness.
 *
 * Usage: quickstart [workload=oltp_mix] [preset=sst4] [key=value ...]
 */

#include <cstdio>
#include <string>

#include "common/config.hh"
#include "common/table.hh"
#include "func/executor.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    sst::Config cfg;
    cfg.parseArgs(argc, argv);
    std::string workload_name = cfg.getString("workload", "oltp_mix");
    std::string preset_name = cfg.getString("preset", "sst4");

    // 1. Generate a deterministic synthetic workload.
    sst::WorkloadParams wp;
    wp.seed = cfg.getUint("seed", 42);
    wp.lengthScale = cfg.getDouble("length_scale", 1.0);
    sst::Workload wl = sst::makeWorkload(workload_name, wp);
    std::printf("workload %s (%s): %zu static insts, ~%llu dynamic\n",
                wl.name.c_str(), wl.category.c_str(),
                static_cast<size_t>(wl.program.size()),
                static_cast<unsigned long long>(wl.approxDynInsts));

    // 2. Golden functional run (also gives the reference final state).
    sst::MemoryImage golden_mem;
    golden_mem.loadSegments(wl.program);
    sst::Executor golden(wl.program, golden_mem);
    sst::ArchState golden_state;
    std::uint64_t dyn = golden.run(golden_state, 1'000'000'000ULL);
    std::printf("functional: %llu dynamic instructions\n",
                static_cast<unsigned long long>(dyn));

    // 3. Timing runs.
    sst::Table table("quickstart: " + wl.name);
    table.setHeader({"machine", "cycles", "insts", "IPC",
                     "L1D miss%", "MLP", "arch state"});
    for (const std::string &preset : {std::string("inorder"),
                                      preset_name}) {
        sst::Machine machine(sst::makePreset(preset), wl.program);
        sst::RunResult r = machine.run();
        bool arch_ok =
            machine.core().archState().regsEqual(golden_state)
            && machine.image().contentEquals(golden_mem);
        table.addRow({preset, std::to_string(r.cycles),
                      std::to_string(r.insts), sst::Table::num(r.ipc, 3),
                      sst::Table::num(100 * r.l1dMissRate, 1),
                      sst::Table::num(r.meanDemandMlp, 2),
                      arch_ok ? "MATCH" : "MISMATCH"});
        if (!arch_ok) {
            std::printf("ARCH STATE MISMATCH on %s!\n", preset.c_str());
        }
    }
    table.print();
    return 0;
}
