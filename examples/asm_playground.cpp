/**
 * @file
 * Assembly playground: write a kernel in the sstsim ISA (inline below
 * or from a file), run it on any machine preset, and inspect the
 * disassembly, final registers and core statistics. The fastest way to
 * build intuition for when SST's deferral machinery wins.
 *
 * Usage: asm_playground [preset=sst2] [file=path.s] [dump_stats=false]
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "func/executor.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"

using namespace sst;

namespace
{

/** Default kernel: independent misses under a dependent reduction. */
const char *kDefaultSource = R"(
    ; Walk 32 lines spaced 4 KB apart (every load misses), summing a
    ; payload. The address stream is independent -> SST overlaps all of
    ; the misses; the in-order baseline eats them one by one.
    li   x1, 0x400000
    li   x7, 32
    li   x9, 0
loop:
    ld   x2, 0(x1)       ; independent miss
    add  x9, x9, x2      ; dependent use -> deferred under SST
    addi x1, x1, 4096
    addi x7, x7, -1
    bne  x7, x0, loop
    li   x30, 0x1f0000
    st   x9, 0(x30)
    halt
    .data 0x400000
)";

std::string
withData(std::string src)
{
    for (int i = 0; i < 32; ++i) {
        src += "    .word " + std::to_string(i + 1) + "\n";
        if (i != 31)
            src += "    .space 4088\n";
    }
    return src;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    setVerbose(false);
    std::string preset = cfg.getString("preset", "sst2");

    std::string source;
    std::string path = cfg.getString("file", "");
    if (!path.empty()) {
        std::ifstream in(path);
        fatal_if(!in, "cannot open '%s'", path.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        source = ss.str();
    } else {
        source = withData(kDefaultSource);
    }

    Program prog = assemble(source, "playground");
    std::printf("%s\n", prog.listing().c_str());

    // Golden functional run for reference.
    MemoryImage golden_mem;
    golden_mem.loadSegments(prog);
    Executor golden(prog, golden_mem);
    ArchState golden_state;
    std::uint64_t insts = golden.run(golden_state, 100'000'000ULL);
    fatal_if(!golden_state.halted, "program did not halt functionally");

    bool do_trace = cfg.getBool("trace", false);
    for (const std::string &p : {std::string("inorder"), preset}) {
        Machine machine(makePreset(p), prog);
        if (do_trace && p == preset) {
            std::printf("--- pipeline event trace (%s) ---\n",
                        p.c_str());
            machine.core().setTraceSink([](const std::string &line) {
                std::printf("  %s\n", line.c_str());
            });
        }
        RunResult r = machine.run();
        bool ok = machine.core().archState().regsEqual(golden_state);
        std::printf("%-10s %8llu cycles  IPC %.3f  MLP %.2f  [%s]\n",
                    p.c_str(),
                    static_cast<unsigned long long>(r.cycles), r.ipc,
                    r.meanDemandMlp, ok ? "arch ok" : "ARCH MISMATCH");
        if (cfg.getBool("dump_stats", false))
            std::printf("%s", machine.core().stats().dump().c_str());
    }

    std::printf("\nfinal registers (non-zero):\n");
    for (unsigned r = 1; r < numArchRegs; ++r)
        if (golden_state.reg(static_cast<RegId>(r)))
            std::printf("  x%-2u = %llu (0x%llx)\n", r,
                        static_cast<unsigned long long>(
                            golden_state.reg(static_cast<RegId>(r))),
                        static_cast<unsigned long long>(
                            golden_state.reg(static_cast<RegId>(r))));
    std::printf("dynamic instructions: %llu\n",
                static_cast<unsigned long long>(insts));
    return 0;
}
