/**
 * @file
 * F18 — parallel CMP tick-engine scaling (infrastructure bench).
 *
 * Runs the same chips at -j {1, 2, 4, 8} and measures simulator
 * wall-clock, asserting along the way that every run is byte-identical
 * to the -j1 baseline (the engine's determinism contract — scaling
 * that changed a single stat byte would be worthless). Two chips:
 *
 *  - rock16 x spinlock_counter: the coherent 16-core flagship. The
 *    sync quantum is the minimum coherence latency, so this is the
 *    hard case: cores must rendezvous every few cycles, and the
 *    speedup shows what the TickGate + overlay design keeps despite
 *    that.
 *  - sst2 x 8 cores x hash_join (salted): independent address spaces,
 *    long quanta — near-embarrassingly parallel, the scaling ceiling.
 *
 * Usage: bench_f18_parallel_cmp [out.json]
 *        (default bench_f18_parallel_cmp.json)
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "sim/cmp.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

struct ScaleRun
{
    unsigned workers = 0;
    double seconds = 0;
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    std::vector<std::uint8_t> snap;
};

struct ChipCase
{
    std::string label;
    MachineConfig cfg;
    std::vector<Workload> workloads; ///< storage for the programs
    std::vector<const Program *> programs;
};

ChipCase
makeRock16Case()
{
    ChipCase c;
    c.label = "rock16/spinlock_counter";
    c.cfg = makePreset("rock16");
    WorkloadParams wp = benchWorkloadParams();
    c.workloads =
        makeSharedWorkload("spinlock_counter", c.cfg.cmpCores, wp);
    for (const Workload &w : c.workloads)
        c.programs.push_back(&w.program);
    return c;
}

ChipCase
makeSaltedCase()
{
    ChipCase c;
    c.label = "sst2x8/hash_join";
    c.cfg = makePreset("sst2");
    WorkloadParams wp = benchWorkloadParams();
    c.workloads.push_back(makeWorkload("hash_join", wp));
    for (unsigned i = 0; i < 8; ++i)
        c.programs.push_back(&c.workloads[0].program);
    return c;
}

ScaleRun
runAt(const ChipCase &c, unsigned workers)
{
    MachineConfig cfg = c.cfg;
    cfg.cmpWorkers = workers;
    Cmp cmp(cfg, c.programs);
    const auto t0 = std::chrono::steady_clock::now();
    CmpResult r = cmp.run();
    const auto t1 = std::chrono::steady_clock::now();
    fatal_if(!r.finished, "%s at -j%u did not finish", c.label.c_str(),
             workers);
    ScaleRun out;
    out.workers = workers;
    out.seconds = std::chrono::duration<double>(t1 - t0).count();
    out.cycles = r.cycles;
    out.insts = r.totalInsts;
    out.snap = cmp.snapshot();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("F18", "parallel CMP tick-engine scaling (byte-identical)");
    setVerbose(false);
    const std::string json_path =
        argc > 1 ? argv[1] : "bench_f18_parallel_cmp.json";
    const std::vector<unsigned> jays = {1, 2, 4, 8};
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("host hardware threads: %u\n", hw);
    if (hw < jays.back())
        std::printf("NOTE: fewer hardware threads than the largest -j; "
                    "wall-clock speedups below are oversubscribed and "
                    "NOT representative — only the byte-identity checks "
                    "are meaningful on this host.\n");

    std::vector<ChipCase> cases;
    cases.push_back(makeRock16Case());
    cases.push_back(makeSaltedCase());

    std::string json = "[\n";
    std::vector<std::vector<std::string>> csv;
    double rock16Speedup8 = 0;
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
        const ChipCase &c = cases[ci];
        std::vector<ScaleRun> runs;
        for (unsigned j : jays)
            runs.push_back(runAt(c, j));
        const ScaleRun &base = runs.front();
        Table t(c.label + " (" + std::to_string(c.programs.size())
                + " cores, " + std::to_string(base.cycles) + " cycles)");
        t.setHeader({"-j", "wall s", "speedup", "identical"});
        for (std::size_t i = 0; i < runs.size(); ++i) {
            const ScaleRun &r = runs[i];
            const bool same = r.snap == base.snap && r.cycles == base.cycles
                              && r.insts == base.insts;
            fatal_if(!same, "%s at -j%u is NOT byte-identical to -j1",
                     c.label.c_str(), r.workers);
            const double speedup = base.seconds / r.seconds;
            if (c.label.rfind("rock16", 0) == 0 && r.workers == 8)
                rock16Speedup8 = speedup;
            t.addRow({std::to_string(r.workers), Table::num(r.seconds, 3),
                      Table::num(speedup, 2) + "x", same ? "yes" : "NO"});
            csv.push_back({c.label, std::to_string(r.workers),
                           Table::num(r.seconds, 4),
                           Table::num(speedup, 3)});
            char buf[320];
            std::snprintf(buf, sizeof buf,
                          "  {\"chip\": \"%s\", \"workers\": %u, "
                          "\"host_hw_threads\": %u, "
                          "\"wall_seconds\": %.4f, \"speedup\": %.3f, "
                          "\"cycles\": %llu, \"byte_identical\": true}%s\n",
                          c.label.c_str(), r.workers, hw, r.seconds,
                          speedup,
                          static_cast<unsigned long long>(r.cycles),
                          ci + 1 < cases.size() || i + 1 < runs.size()
                              ? ","
                              : "");
            json += buf;
        }
        t.setCaption("every row's snapshot is compared byte-for-byte "
                     "against the -j1 run; a mismatch aborts the bench.");
        t.print();
    }
    json += "]\n";

    emitCsv("f18_parallel_cmp", {"chip", "workers", "wall_s", "speedup"},
            csv);
    std::ofstream out(json_path);
    fatal_if(!out, "cannot write %s", json_path.c_str());
    out << json;
    std::printf("\nwrote %s\n", json_path.c_str());
    std::printf("HEADLINE: rock16 -j8 speedup = %.2fx (byte-identical, "
                "%u hw threads)\n",
                rock16Speedup8, hw);
    return 0;
}
