/**
 * @file
 * F13 — hardware prefetching vs speculative threading.
 *
 * A classic question the paper's reviewers would ask: how much of
 * scout/SST's gain could a plain prefetcher deliver? Compares the
 * in-order core with no / next-line / stride prefetching against scout
 * and SST (which run with the default next-line prefetcher, as in every
 * other figure). Expected shape: prefetchers close the gap on regular
 * streams, but cannot touch the irregular (hash/graph/OLTP) misses that
 * SST's ahead strand covers by actually computing the addresses.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

struct Variant
{
    std::string preset;
    const char *label;
    void (*apply)(MachineConfig &);
};

const Variant kVariants[] = {
    {"inorder", "inorder+nopf",
     [](MachineConfig &c) { c.mem.dataPrefetch.enabled = false; }},
    {"inorder", "inorder+nextline", [](MachineConfig &) {}},
    {"inorder", "inorder+stride",
     [](MachineConfig &c) {
         c.mem.dataPrefetch.mode = PrefetchMode::Stride;
         c.mem.dataPrefetch.degree = 4;
     }},
    {"scout", "scout", [](MachineConfig &) {}},
    {"sst4", "sst4", [](MachineConfig &) {}},
};

} // namespace

int
main()
{
    banner("F13", "prefetching vs speculative threading (IPC)");
    setVerbose(false);

    const std::vector<std::string> workloads = {
        "stream", "hash_join", "graph_scan", "oltp_mix",
        "pointer_chase"};
    WorkloadSet set;

    Table t("IPC by miss-coverage mechanism");
    std::vector<std::string> header = {"workload"};
    for (const auto &v : kVariants)
        header.push_back(v.label);
    t.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);
        std::vector<std::string> row = {wname};
        std::vector<std::string> csv_row = {wname};
        for (const auto &v : kVariants) {
            RunResult r = runConfigured(v.preset, wl, v.apply);
            row.push_back(Table::num(r.ipc, 3));
            csv_row.push_back(Table::num(r.ipc, 4));
        }
        t.addRow(row);
        csv.push_back(csv_row);
    }
    t.setCaption("prefetchers need an address pattern; the ahead strand "
                 "just computes the addresses.");
    t.print();

    std::vector<std::string> csv_header = {"workload"};
    for (const auto &v : kVariants)
        csv_header.push_back(v.label);
    emitCsv("f13_prefetch", csv_header, csv);
    return 0;
}
