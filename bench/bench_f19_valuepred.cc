/**
 * @file
 * F19 — load-value prediction in the ahead strand (extension).
 *
 * Without value prediction an NA-consuming dependence chain behind a
 * deferred miss stalls the ahead strand (or defers transitively) until
 * the fill arrives. With core.value_pred=last|stride the ahead strand
 * keeps executing on a confidence-gated predicted value and the DQ
 * replay verifies the guess against the real fill — a wrong guess
 * costs a rollback (value_pred_waste in the CPI stack), a right one
 * converts deferred-stall cycles into overlapped work (value_pred).
 *
 * Expected shape: stride-friendly pointer-walking and scan kernels
 * convert a visible slice of their replay/deferral cycles; the CPI
 * stack's value_pred bucket accounts the converted cycles, and the
 * Pareto table shows SST+VP moving toward (sometimes past) the bigger
 * OoO cores at a fraction of their checkpoint/window cost.
 *
 * Usage: bench_f19_valuepred [out.json] (default bench_f19_valuepred.json)
 */

#include <cstdio>
#include <fstream>

#include "bench_util.hh"
#include "trace/cpistack.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

struct VpRun
{
    Cycle cycles = 0;
    double ipc = 0;
    double predictions = 0;
    double correct = 0;
    double rollbacks = 0;
    double vpCycles = 0;    ///< CpiCat::ValuePred (converted)
    double wasteCycles = 0; ///< CpiCat::ValuePredWaste (squashed)
};

VpRun
toRun(const RunResult &r)
{
    VpRun out;
    out.cycles = r.cycles;
    out.ipc = r.ipc;
    out.predictions = statOf(r, ".vp_predictions");
    out.correct = statOf(r, ".vp_correct");
    out.rollbacks = statOf(r, ".fail_vpred");
    out.vpCycles = statOf(r, ".cpi_stack.value_pred");
    out.wasteCycles = statOf(r, ".cpi_stack.value_pred_waste");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("F19", "load-value prediction in the SST ahead strand");
    setVerbose(false);
    const std::string json_path =
        argc > 1 ? argv[1] : "bench_f19_valuepred.json";

    const std::vector<std::string> modes = {"off", "last", "stride"};
    const std::vector<std::string> workloads = {
        "list_walk", "pointer_chase", "stream", "column_scan",
        "hash_join", "btree_lookup"};
    const std::string preset = "sst4";

    WorkloadSet set;
    for (const auto &w : workloads)
        set.get(w); // pre-populate: forEachIndex reads it concurrently

    // Row-major [workload][mode]; the last two columns are the OoO
    // comparators for the Pareto framing.
    std::vector<VpRun> runs(workloads.size() * modes.size());
    std::vector<Cycle> oooSmall(workloads.size()),
        oooLarge(workloads.size());
    forEachIndex(workloads.size() * (modes.size() + 2),
                 [&](std::size_t i) {
                     std::size_t w = i / (modes.size() + 2);
                     std::size_t m = i % (modes.size() + 2);
                     const Workload &wl = set.get(workloads[w]);
                     if (m < modes.size()) {
                         runs[w * modes.size() + m] =
                             toRun(runConfigured(
                                 preset, wl, [&](MachineConfig &cfg) {
                                     cfg.core.valuePred = modes[m];
                                 }));
                     } else if (m == modes.size()) {
                         oooSmall[w] = runPreset("ooo-small", wl).cycles;
                     } else {
                         oooLarge[w] = runPreset("ooo-large", wl).cycles;
                     }
                 });

    Table t(preset + " with core.value_pred=off|last|stride");
    t.setHeader({"workload", "off cyc", "last cyc", "stride cyc",
                 "stride speedup", "accuracy", "vp cyc", "waste cyc",
                 "squashes"});
    std::vector<std::vector<std::string>> csv;
    std::vector<double> speedups;
    std::string json = "[\n";
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const VpRun &off = runs[w * modes.size() + 0];
        const VpRun &last = runs[w * modes.size() + 1];
        const VpRun &stride = runs[w * modes.size() + 2];
        double speedup = static_cast<double>(off.cycles)
                         / static_cast<double>(stride.cycles);
        speedups.push_back(speedup);
        double acc = stride.predictions
                         ? 100.0 * stride.correct / stride.predictions
                         : 0.0;
        t.addRow({workloads[w], std::to_string(off.cycles),
                  std::to_string(last.cycles),
                  std::to_string(stride.cycles),
                  Table::num(speedup, 3) + "x",
                  Table::num(acc, 1) + "%",
                  Table::num(stride.vpCycles, 0),
                  Table::num(stride.wasteCycles, 0),
                  Table::num(stride.rollbacks, 0)});
        csv.push_back({workloads[w], std::to_string(off.cycles),
                       std::to_string(last.cycles),
                       std::to_string(stride.cycles),
                       Table::num(speedup, 4)});
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "  {\"workload\": \"%s\", \"preset\": \"%s\",\n"
            "   \"off_cycles\": %llu, \"last_cycles\": %llu, "
            "\"stride_cycles\": %llu,\n"
            "   \"stride_speedup\": %.4f, \"vp_accuracy\": %.4f,\n"
            "   \"vp_predictions\": %.0f, \"vp_correct\": %.0f, "
            "\"vp_squashes\": %.0f,\n"
            "   \"value_pred_cycles\": %.0f, "
            "\"value_pred_waste_cycles\": %.0f,\n"
            "   \"ooo_small_cycles\": %llu, "
            "\"ooo_large_cycles\": %llu}%s\n",
            workloads[w].c_str(), preset.c_str(),
            static_cast<unsigned long long>(off.cycles),
            static_cast<unsigned long long>(last.cycles),
            static_cast<unsigned long long>(stride.cycles), speedup,
            acc / 100.0, stride.predictions, stride.correct,
            stride.rollbacks, stride.vpCycles, stride.wasteCycles,
            static_cast<unsigned long long>(oooSmall[w]),
            static_cast<unsigned long long>(oooLarge[w]),
            w + 1 < workloads.size() ? "," : "");
        json += buf;
    }
    json += "]\n";
    t.setCaption("vp cyc = committed speculation cycles that ran on a "
                 "predicted value (converted deferral stalls); waste "
                 "cyc = cycles squashed by a wrong guess.");
    t.print();

    Table pareto("Pareto framing: cycles vs the OoO comparators");
    pareto.setHeader({"workload", "sst4+stride", "ooo-small",
                      "ooo-large", "vs ooo-large"});
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        const VpRun &stride = runs[w * modes.size() + 2];
        pareto.addRow(
            {workloads[w], std::to_string(stride.cycles),
             std::to_string(oooSmall[w]), std::to_string(oooLarge[w]),
             Table::num(static_cast<double>(oooLarge[w])
                            / static_cast<double>(stride.cycles),
                        3)
                 + "x"});
    }
    pareto.print();

    emitCsv("f19_valuepred",
            {"workload", "off_cycles", "last_cycles", "stride_cycles",
             "speedup"},
            csv);

    std::ofstream out(json_path);
    fatal_if(!out, "cannot write %s", json_path.c_str());
    out << json;
    std::printf("\nwrote %s\n", json_path.c_str());
    std::printf("HEADLINE: geomean stride-VP speedup on %s = %.3fx\n",
                preset.c_str(), geomean(speedups));
    return 0;
}
