/**
 * @file
 * F9 — CMP throughput: the reason ROCK exists.
 *
 * Part 1: aggregate IPC of 1..16 cores sharing one L2 + DRAM, per core
 * type (bandwidth contention bends the curves).
 * Part 2: area-equalised chips — under a fixed core-area budget, the
 * cheaper SST core buys more cores than ooo-large; total chip
 * throughput is the paper's real selling point.
 */

#include <cstdio>

#include "bench_util.hh"
#include "power/model.hh"
#include "sim/cmp.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

/** Build n same-kind workloads with distinct seeds. */
std::vector<Workload>
buildWorkloads(unsigned n)
{
    std::vector<Workload> out;
    for (unsigned i = 0; i < n; ++i) {
        WorkloadParams p = benchWorkloadParams();
        p.lengthScale *= 0.15; // CMP runs n programs; keep each short
        p.seed = 42 + i;
        out.push_back(makeWorkload("oltp_mix", p));
    }
    return out;
}

CmpResult
runCmp(const std::string &preset, const std::vector<Workload> &wls,
       unsigned n)
{
    std::vector<const Program *> progs;
    for (unsigned i = 0; i < n; ++i)
        progs.push_back(&wls[i].program);
    Cmp cmp(makePreset(preset), progs);
    CmpResult r = cmp.run();
    fatal_if(!r.finished, "CMP %s x%u did not finish", preset.c_str(),
             n);
    return r;
}

/** Per-core area of a preset under the proxy model. */
double
coreArea(const std::string &preset, const std::vector<Workload> &wls)
{
    Machine machine(makePreset(preset), wls[0].program);
    machine.run();
    return estimatePower(machine.core()).coreArea;
}

} // namespace

int
main()
{
    banner("F9", "CMP throughput scaling and area-equalised chips");
    setVerbose(false);

    const std::vector<unsigned> core_counts = {1, 2, 4, 8, 16};
    const std::vector<std::string> presets = {"inorder", "sst2",
                                              "ooo-large"};
    std::vector<Workload> wls = buildWorkloads(16);

    Table t("aggregate IPC, oltp_mix per core, shared L2 + DRAM");
    std::vector<std::string> header = {"cores"};
    for (const auto &p : presets)
        header.push_back(p);
    t.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    std::map<std::string, std::map<unsigned, double>> thr;
    for (unsigned n : core_counts) {
        std::vector<std::string> row = {std::to_string(n)};
        std::vector<std::string> csv_row = {std::to_string(n)};
        for (const auto &p : presets) {
            CmpResult r = runCmp(p, wls, n);
            thr[p][n] = r.aggregateIpc;
            row.push_back(Table::num(r.aggregateIpc, 3));
            csv_row.push_back(Table::num(r.aggregateIpc, 4));
        }
        t.addRow(row);
        csv.push_back(csv_row);
    }
    t.print();
    emitCsv("f9_cmp", header, csv);

    // Part 2: area-equalised chips.
    double area_sst = coreArea("sst2", wls);
    double area_ooo = coreArea("ooo-large", wls);
    double budget = 16.0 * area_sst; // a "16 SST cores" die
    unsigned n_sst = 16;
    unsigned n_ooo = std::max(
        1u, static_cast<unsigned>(budget / area_ooo));
    n_ooo = std::min(n_ooo, 16u);

    Table eq("area-equalised chip throughput (budget = 16 SST cores)");
    eq.setHeader({"chip", "cores", "core area", "chip core-area",
                  "aggregate IPC"});
    CmpResult r_sst = runCmp("sst2", wls, n_sst);
    CmpResult r_ooo = runCmp("ooo-large", wls, n_ooo);
    eq.addRow({"SST-2 chip", std::to_string(n_sst),
               Table::num(area_sst, 2), Table::num(n_sst * area_sst, 1),
               Table::num(r_sst.aggregateIpc, 3)});
    eq.addRow({"OoO-large chip", std::to_string(n_ooo),
               Table::num(area_ooo, 2), Table::num(n_ooo * area_ooo, 1),
               Table::num(r_ooo.aggregateIpc, 3)});
    eq.setCaption("equal silicon, different core counts: the CMP "
                  "argument for SST.");
    eq.print();
    std::printf("\nHEADLINE: equal-area chip throughput SST/OoO = "
                "%.2fx\n",
                r_sst.aggregateIpc / r_ooo.aggregateIpc);
    return 0;
}
