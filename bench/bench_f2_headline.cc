/**
 * @file
 * F2 — the headline figure: per-thread speedup over the in-order
 * baseline for scout, execute-ahead, SST-2/4 and the two OoO cores,
 * across all workloads.
 *
 * Paper claim (abstract): "Simulations of certain SST implementations
 * show 18% better per-thread performance on commercial benchmarks than
 * larger and higher-powered out-of-order cores." The check here is the
 * SHAPE: SST's commercial-class geomean should exceed ooo-large's by a
 * double-digit percentage, while ooo-large keeps its advantage on the
 * ILP-rich compute class.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F2", "per-thread speedup over the in-order baseline");
    setVerbose(false);

    // "sst2-l2t" = sst2 with the L2-miss-only trigger (the F12 ablation
    // winner) — the abstract's "certain SST implementations".
    const std::vector<std::string> presets = {
        "scout",     "ea",        "sst2",     "sst2-l2t",
        "sst4",      "ooo-small", "ooo-large", "ooo-huge"};
    WorkloadSet set;

    auto run_variant = [](const std::string &preset, const Workload &wl) {
        if (preset == "sst2-l2t")
            return runConfigured("sst2", wl, [](MachineConfig &c) {
                c.core.deferOnL2MissOnly = true;
            });
        return runPreset(preset, wl);
    };

    Table t("speedup vs in-order (higher is better)");
    std::vector<std::string> header = {"workload", "class"};
    for (const auto &p : presets)
        header.push_back(p);
    t.setHeader(header);

    std::map<std::string, std::vector<double>> commercial, compute;
    std::vector<std::vector<std::string>> csv;

    // One slot per workload; rows compute independently (opt into
    // parallelism with SST_BENCH_JOBS), tables assemble serially below.
    const std::vector<std::string> workloads = allWorkloadNames();
    std::vector<std::vector<double>> speedups(workloads.size());
    for (const auto &wname : workloads)
        set.get(wname); // pre-populate: the cache is read-only below
    forEachIndex(workloads.size(), [&](std::size_t i) {
        const Workload &wl = set.get(workloads[i]);
        RunResult base = runPreset("inorder", wl);
        for (const auto &p : presets) {
            RunResult r = run_variant(p, wl);
            speedups[i].push_back(static_cast<double>(base.cycles)
                                  / static_cast<double>(r.cycles));
        }
    });

    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const std::string &wname = workloads[i];
        const Workload &wl = set.get(wname);
        std::vector<std::string> row = {wname, wl.category};
        std::vector<std::string> csv_row = {wname};
        for (std::size_t k = 0; k < presets.size(); ++k) {
            double speedup = speedups[i][k];
            row.push_back(Table::num(speedup, 2));
            csv_row.push_back(Table::num(speedup, 4));
            (wl.category == "commercial" ? commercial
                                         : compute)[presets[k]]
                .push_back(speedup);
        }
        t.addRow(row);
        csv.push_back(csv_row);
    }

    auto geo_row = [&](const char *label,
                       std::map<std::string, std::vector<double>> &m) {
        std::vector<std::string> row = {label, ""};
        for (const auto &p : presets)
            row.push_back(Table::num(geomean(m[p]), 2));
        t.addRow(row);
    };
    geo_row("GEOMEAN commercial", commercial);
    geo_row("GEOMEAN compute", compute);
    t.print();

    std::vector<std::string> csv_header = {"workload"};
    for (const auto &p : presets)
        csv_header.push_back(p);
    emitCsv("f2_speedup", csv_header, csv);

    // Headline comparison.
    double sst2 = geomean(commercial["sst2"]);
    double sst2_l2t = geomean(commercial["sst2-l2t"]);
    double sst4 = geomean(commercial["sst4"]);
    double ooo = geomean(commercial["ooo-large"]);
    double best_sst = std::max({sst2, sst2_l2t, sst4});
    std::printf("\nHEADLINE: commercial geomean — sst2=%.3f "
                "sst2-l2t=%.3f sst4=%.3f ooo-large=%.3f\n",
                sst2, sst2_l2t, sst4, ooo);
    std::printf("HEADLINE: best SST vs larger OoO = %+.1f%% "
                "(paper: ~+18%%)\n",
                100.0 * (best_sst / ooo - 1.0));
    double sst_compute = geomean(compute["sst4"]);
    double ooo_compute = geomean(compute["ooo-large"]);
    std::printf("SHAPE: on compute, ooo-large vs sst4 = %+.1f%% "
                "(paper: OoO keeps the ILP crown)\n",
                100.0 * (ooo_compute / sst_compute - 1.0));
    return 0;
}
