/**
 * @file
 * F16 — graceful degradation under injected faults.
 *
 * Sweeps the fault-injection rate (clean, 1e-5, 1e-4 per demand fill;
 * delays are injected at 10x the drop rate) across every workload on
 * sst4 and reports the IPC retained relative to the clean run plus the
 * recovery counters. Expected shape: IPC degrades smoothly with the
 * fault rate — never a cliff, never a hang — and the watchdog only has
 * to intervene at the highest rate, when a dropped fill can stall an
 * epoch past its patience.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

RunResult
runWithFaults(const Workload &wl, double rate)
{
    return runConfigured("sst4", wl, [&](MachineConfig &cfg) {
        cfg.mem.fault.seed = 7;
        cfg.mem.fault.dropFillRate = rate;
        cfg.mem.fault.delayFillRate = 10 * rate;
    });
}

} // namespace

int
main()
{
    banner("F16", "IPC under fault injection (chaos sweep, sst4)");
    setVerbose(false);

    const std::vector<double> rates = {1e-5, 1e-4};

    WorkloadSet set;
    Table t("fault-rate sweep");
    t.setHeader({"workload", "clean IPC", "IPC@1e-5", "IPC@1e-4",
                 "retained%", "injected", "recoveries"});

    std::vector<std::vector<std::string>> csv;
    std::vector<double> retained;
    for (const auto &wname : allWorkloadNames()) {
        const Workload &wl = set.get(wname);
        RunResult clean = runWithFaults(wl, 0.0);

        std::vector<RunResult> runs;
        for (double rate : rates)
            runs.push_back(runWithFaults(wl, rate));
        const RunResult &worst = runs.back();

        double keep = clean.ipc > 0 ? 100.0 * worst.ipc / clean.ipc : 0;
        double injected = statOf(worst, "fault.injected");
        double recoveries = statOf(worst, "watchdog.recoveries");
        retained.push_back(keep / 100.0);

        t.addRow({wname, Table::num(clean.ipc, 4),
                  Table::num(runs[0].ipc, 4), Table::num(worst.ipc, 4),
                  Table::num(keep, 1), Table::num(injected, 0),
                  Table::num(recoveries, 0)});
        csv.push_back({wname, Table::num(clean.ipc, 4),
                       Table::num(runs[0].ipc, 4),
                       Table::num(worst.ipc, 4), Table::num(injected, 0),
                       Table::num(recoveries, 0)});
    }
    t.setCaption("retained% = IPC at the 1e-4 fault rate relative to the "
                 "clean run; every run still matches golden execution.");
    t.print();
    std::printf("geomean IPC retained at 1e-4: %.1f%%\n",
                100.0 * geomean(retained));

    emitCsv("f16_chaos",
            {"workload", "ipc_clean", "ipc_1e5", "ipc_1e4", "injected",
             "recoveries"},
            csv);
    return 0;
}
