/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench prints (a) a human-readable table and (b) a CSV block
 * bracketed by BEGIN_CSV/END_CSV for plotting. Scale all run lengths
 * with the SST_BENCH_SCALE environment variable (default 1.0), and opt
 * into parallel execution of independent simulations with
 * SST_BENCH_JOBS (default 1 = serial; 0 = one thread per core).
 */

#ifndef SSTSIM_BENCH_BENCH_UTIL_HH
#define SSTSIM_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "exp/threadpool.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

namespace sst::bench
{

/** Run-length multiplier from SST_BENCH_SCALE (default 1). */
inline double
benchScale()
{
    if (const char *env = std::getenv("SST_BENCH_SCALE"))
        return std::max(0.01, std::atof(env));
    return 1.0;
}

/** Standard workload parameters for benches. */
inline WorkloadParams
benchWorkloadParams()
{
    WorkloadParams p;
    p.lengthScale = 0.5 * benchScale();
    return p;
}

/** Build and cache workloads by name. */
class WorkloadSet
{
  public:
    explicit WorkloadSet(WorkloadParams params = benchWorkloadParams())
        : params_(params)
    {}

    const Workload &
    get(const std::string &name)
    {
        auto it = cache_.find(name);
        if (it == cache_.end())
            it = cache_.emplace(name, makeWorkload(name, params_)).first;
        return it->second;
    }

  private:
    WorkloadParams params_;
    std::map<std::string, Workload> cache_;
};

/** Worker threads for parallel bench sections, from SST_BENCH_JOBS
 *  (default 1 = serial; 0 = one per hardware thread). */
inline unsigned
benchJobs()
{
    if (const char *env = std::getenv("SST_BENCH_JOBS")) {
        long n = std::atol(env);
        if (n <= 0)
            return exp::ThreadPool::defaultWorkers();
        return static_cast<unsigned>(n);
    }
    return 1;
}

/**
 * Run fn(i) for every i in [0, n) — serially by default, or on a
 * work-stealing pool when SST_BENCH_JOBS asks for more than one
 * worker. Each index must be independent: write results into
 * pre-sized slots keyed by i, print only after this returns, and keep
 * any shared WorkloadSet read-only (pre-populate it first). Results
 * are identical either way; only wall-clock changes.
 */
template <typename Fn>
inline void
forEachIndex(std::size_t n, Fn &&fn)
{
    unsigned jobs = benchJobs();
    if (jobs <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    exp::ThreadPool pool(jobs);
    exp::parallelFor(pool, n, fn);
}

/** Geometric mean of a non-empty vector. */
inline double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(std::max(x, 1e-12));
    return std::exp(acc / static_cast<double>(v.size()));
}

/** Run one preset (with optional config mutation) on one workload. */
template <typename Mutator>
RunResult
runConfigured(const std::string &preset, const Workload &wl,
              Mutator &&mutate)
{
    MachineConfig cfg = makePreset(preset);
    mutate(cfg);
    Machine machine(cfg, wl.program);
    RunResult r = machine.run();
    fatal_if(!r.finished, "%s on %s did not finish", preset.c_str(),
             wl.name.c_str());
    return r;
}

inline RunResult
runPreset(const std::string &preset, const Workload &wl)
{
    return runConfigured(preset, wl, [](MachineConfig &) {});
}

/** Fetch a stat by suffix from a RunResult. */
inline double
statOf(const RunResult &r, const std::string &suffix)
{
    for (const auto &kv : r.stats)
        if (kv.first.size() >= suffix.size()
            && kv.first.compare(kv.first.size() - suffix.size(),
                                suffix.size(), suffix)
                   == 0)
            return kv.second;
    return 0.0;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &id, const std::string &what)
{
    std::printf("\n##########################################################"
                "############\n");
    std::printf("## %s — %s\n", id.c_str(), what.c_str());
    std::printf("## (shape reproduction; absolute numbers are from this "
                "simulator,\n##  not the paper's testbed)\n");
    std::printf("############################################################"
                "##########\n");
}

} // namespace sst::bench

#endif // SSTSIM_BENCH_BENCH_UTIL_HH
