/**
 * @file
 * F11 — branch handling under deferral.
 *
 * A branch whose operands are NA cannot be resolved by the ahead
 * strand; it is predicted and only verified at replay, where a wrong
 * guess costs a full rollback. SST therefore leans on predictor quality
 * harder than a conventional pipeline. Expected shape: SST's speedup
 * over in-order grows with predictor quality on branchy workloads, and
 * the deferred-branch fail rate falls.
 *
 * Usage: bench_f11_branches [out.json] (default bench_f11_branches.json)
 */

#include <cstdio>
#include <fstream>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main(int argc, char **argv)
{
    banner("F11", "SST sensitivity to branch predictor quality");
    setVerbose(false);
    const std::string json_path =
        argc > 1 ? argv[1] : "bench_f11_branches.json";

    const std::vector<std::string> predictors = {"static", "bimodal",
                                                 "gshare", "tournament"};
    const std::vector<std::string> workloads = {
        "btree_lookup", "oltp_mix", "sorted_merge", "hash_join"};
    WorkloadSet set;

    Table t("sst4 speedup vs (same-predictor) in-order");
    std::vector<std::string> header = {"workload"};
    for (const auto &p : predictors)
        header.push_back(p);
    t.setHeader(header);

    Table fails("deferred-branch rollbacks per 100k insts");
    fails.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    std::string json = "[\n";
    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);
        std::vector<std::string> row = {wname};
        std::vector<std::string> frow = {wname};
        std::vector<std::string> csv_row = {wname};
        for (const auto &pred : predictors) {
            auto with_pred = [&pred](MachineConfig &m) {
                m.core.predictor = pred;
            };
            RunResult base = runConfigured("inorder", wl, with_pred);
            RunResult r = runConfigured("sst4", wl, with_pred);
            double speedup = static_cast<double>(base.cycles)
                             / static_cast<double>(r.cycles);
            row.push_back(Table::num(speedup, 2));
            csv_row.push_back(Table::num(speedup, 4));
            double fb = statOf(r, ".fail_branch") * 100000.0
                        / static_cast<double>(r.insts);
            frow.push_back(Table::num(fb, 1));
            char buf[256];
            std::snprintf(
                buf, sizeof buf,
                "  {\"workload\": \"%s\", \"predictor\": \"%s\", "
                "\"speedup\": %.4f, \"fail_branch_per_100k\": %.2f}%s\n",
                wname.c_str(), pred.c_str(), speedup, fb,
                wname == workloads.back() && pred == predictors.back()
                    ? ""
                    : ",");
            json += buf;
        }
        t.addRow(row);
        fails.addRow(frow);
        csv.push_back(csv_row);
    }
    json += "]\n";
    t.print();
    fails.setCaption("btree_lookup's branches are data-random: no "
                     "predictor can save those rollbacks.");
    fails.print();

    std::vector<std::string> csv_header = {"workload"};
    for (const auto &p : predictors)
        csv_header.push_back(p);
    emitCsv("f11_branches", csv_header, csv);

    std::ofstream out(json_path);
    fatal_if(!out, "cannot write %s", json_path.c_str());
    out << json;
    std::printf("\nwrote %s\n", json_path.c_str());
    return 0;
}
