/**
 * @file
 * B3 — checkpoint-warmed sampling accuracy and speedup (infrastructure
 * bench).
 *
 * For each preset × long-form workload: run the full detailed
 * simulation once (ground truth + wall-clock baseline), build the
 * warm-state region snapshot library with one profiling pass, then
 * serve a sampled estimate entirely from the library and compare.
 * Asserts that every estimate lands within the wider of its own 95%
 * confidence interval and a modest relative band of the full-run IPC,
 * and reports the marginal speedup (full detailed wall-clock over
 * library-served wall-clock) — the cost a sweep pays per *additional*
 * point after the library exists, which is what "billion-instruction
 * sweeps start instantly" cashes out to. The one-time profiling cost
 * is reported alongside so nothing hides in the setup.
 *
 * Usage: bench_b3_profile [out.json]   (default bench_b3_profile.json)
 * Scale run lengths with SST_BENCH_SCALE (default 1.0). The >= 50x
 * marginal-speedup assertion only arms at full scale — scaled-down
 * smoke runs amortise too little work to clear it honestly.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/profile.hh"
#include "sim/sampling.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

struct CaseResult
{
    std::string preset;
    std::string workload;
    std::uint64_t insts = 0;
    double ipcFull = 0;
    double ipcSampled = 0;
    double ci95 = 0;
    std::size_t windows = 0;
    double fullSeconds = 0;
    double profileSeconds = 0;
    double sampledSeconds = 0;
    double speedup = 0;
    bool withinBand = false;
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    banner("B3", "checkpoint-warmed sampling: accuracy vs speedup");
    setVerbose(false);
    const std::string json_path =
        argc > 1 ? argv[1] : "bench_b3_profile.json";
    const double scale = benchScale();
    const bool fullScale = scale >= 1.0;

    const std::vector<std::string> presets = {"sst2", "sst4",
                                              "ooo-large"};
    const std::vector<std::string> workloads = {"oltp_mix", "hash_join",
                                                "graph_scan"};
    WorkloadParams wp;
    wp.lengthScale = 192.0 * scale; // long-form: sampling's home turf
    WorkloadSet set(wp);

    // The estimate must land within the wider of its own 95% CI and
    // this relative band. The CI alone is the honest yardstick but can
    // collapse on very uniform workloads; the band keeps the assert
    // meaningful there (same 35% envelope the sampling tests use).
    const double kBand = 0.35;
    const double kMinSpeedup = 50.0;

    std::vector<CaseResult> results;
    for (const auto &preset : presets) {
        for (const auto &wl : workloads) {
            const Workload &w = set.get(wl);
            MachineConfig mc = makePreset(preset);

            CaseResult r;
            r.preset = preset;
            r.workload = wl;

            double t0 = now();
            RunResult full = runOn(preset, w.program);
            r.fullSeconds = now() - t0;
            fatal_if(!full.finished, "%s/%s full run did not finish",
                     preset.c_str(), wl.c_str());
            r.ipcFull = full.ipc;
            r.insts = full.insts;

            ProfileParams pp;
            pp.regionInsts = profileRegionHint(w.approxDynInsts);
            pp.maxRegions = 8;
            t0 = now();
            ProfileLibrary lib =
                buildProfileLibrary(mc, w.program, pp, 1);
            r.profileSeconds = now() - t0;

            SampleParams sp;
            sp.detailInsts = 5'000;
            sp.maxSamples = 5; // top-weight representatives
            t0 = now();
            SampledResult s =
                runSampledFromLibrary(mc, w.program, lib, sp);
            r.sampledSeconds = now() - t0;
            r.ipcSampled = s.ipc;
            r.ci95 = s.ipcCi95();
            r.windows = s.windowIpc.size();
            r.speedup = r.sampledSeconds > 0
                            ? r.fullSeconds / r.sampledSeconds
                            : 0;

            const double err = std::abs(r.ipcSampled - r.ipcFull);
            r.withinBand =
                err <= std::max(r.ci95, kBand * r.ipcFull);
            results.push_back(r);
        }
    }

    Table t("checkpoint-warmed sampling (" + std::to_string(presets.size())
            + " presets x " + std::to_string(workloads.size())
            + " workloads, 5 windows x 5k insts)");
    t.setHeader({"preset", "workload", "insts", "ipc full", "ipc est",
                 "ci95", "full s", "profile s", "est s", "speedup"});
    std::string json = "[\n";
    std::vector<std::vector<std::string>> csv;
    double geo = 0, worstErr = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        t.addRow({r.preset, r.workload, std::to_string(r.insts),
                  Table::num(r.ipcFull, 4), Table::num(r.ipcSampled, 4),
                  Table::num(r.ci95, 4), Table::num(r.fullSeconds, 3),
                  Table::num(r.profileSeconds, 3),
                  Table::num(r.sampledSeconds, 4),
                  Table::num(r.speedup, 1) + "x"});
        csv.push_back({r.preset, r.workload, Table::num(r.ipcFull, 5),
                       Table::num(r.ipcSampled, 5), Table::num(r.ci95, 5),
                       Table::num(r.fullSeconds, 4),
                       Table::num(r.sampledSeconds, 5),
                       Table::num(r.speedup, 2)});
        geo += std::log(std::max(r.speedup, 1e-9));
        worstErr = std::max(worstErr,
                            std::abs(r.ipcSampled - r.ipcFull)
                                / r.ipcFull);
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "  {\"preset\": \"%s\", \"workload\": \"%s\", "
            "\"insts\": %llu, \"ipc_full\": %.6f, "
            "\"ipc_sampled\": %.6f, \"ipc_ci95\": %.6f, "
            "\"windows\": %zu, \"full_seconds\": %.4f, "
            "\"profile_seconds\": %.4f, \"sampled_seconds\": %.5f, "
            "\"speedup\": %.2f, \"within_band\": true}%s\n",
            r.preset.c_str(), r.workload.c_str(),
            static_cast<unsigned long long>(r.insts), r.ipcFull,
            r.ipcSampled, r.ci95, r.windows, r.fullSeconds,
            r.profileSeconds, r.sampledSeconds, r.speedup,
            i + 1 < results.size() ? "," : "");
        json += buf;
    }
    json += "]\n";
    t.setCaption("speedup = full detailed wall-clock / library-served "
                 "sampled wall-clock (the marginal per-point cost; the "
                 "one-time profiling pass is the 'profile s' column).");
    t.print();

    // Assert after the table so a failing run still shows its numbers.
    for (const CaseResult &r : results) {
        fatal_if(!r.withinBand,
                 "%s/%s sampled IPC %.4f vs full %.4f is outside both "
                 "the 95%% CI (%.4f) and the %.0f%% band",
                 r.preset.c_str(), r.workload.c_str(), r.ipcSampled,
                 r.ipcFull, r.ci95, kBand * 100);
        if (fullScale)
            fatal_if(r.speedup < kMinSpeedup,
                     "%s/%s marginal speedup %.1fx is below the %.0fx "
                     "floor",
                     r.preset.c_str(), r.workload.c_str(), r.speedup,
                     kMinSpeedup);
    }

    emitCsv("b3_profile",
            {"preset", "workload", "ipc_full", "ipc_sampled", "ci95",
             "full_s", "sampled_s", "speedup"},
            csv);
    std::ofstream out(json_path);
    fatal_if(!out, "cannot write %s", json_path.c_str());
    out << json;
    std::printf("\nwrote %s\n", json_path.c_str());
    std::printf("HEADLINE: geomean marginal speedup = %.1fx, worst IPC "
                "error = %.1f%% (%zu cases%s)\n",
                std::exp(geo / results.size()), worstErr * 100,
                results.size(),
                fullScale ? "" : ", scaled — speedup floor disarmed");
    return 0;
}
