/**
 * @file
 * F14 — thread-level vs memory-level parallelism from one core
 * (extension).
 *
 * A ROCK core's second strand can either run a second thread (CMT) or
 * accelerate the first one (SST). This bench runs both organisations
 * over the same silicon and the same memory system:
 *
 *   - inorder:  one thread, baseline
 *   - cmt2:     two threads on the dual-context core (aggregate IPC,
 *               and per-thread completion time)
 *   - sst2:     one thread using both strands
 *
 * Expected shape: CMT wins aggregate throughput on miss-bound code
 * (idle slots absorb a second thread), SST wins single-thread latency;
 * on compute-bound code CMT's aggregate advantage shrinks to the
 * pipeline-sharing limit.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/smt.hh"
#include "sim/cmp.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

struct CmtResult
{
    double aggregateIpc;
    Cycle thread0Cycles;
};

CmtResult
runCmt(const Workload &w0, const Workload &w1)
{
    MachineConfig cfg = makePreset("inorder");
    MemorySystem memsys(cfg.mem);
    MemoryImage m0, m1;
    m0.loadSegments(w0.program);
    m1.loadSegments(w1.program);
    CorePort &port = memsys.addCore();
    CoreParams params = cfg.core;
    params.name = "cmt";
    SmtCore core(params,
                 std::array<const Program *, 2>{&w0.program, &w1.program},
                 std::array<MemoryImage *, 2>{&m0, &m1}, port);
    Cycle t0_done = 0;
    while (!core.halted() && core.cycles() < 500'000'000ULL) {
        core.tick();
        if (t0_done == 0 && core.threadHalted(0))
            t0_done = core.cycles();
    }
    fatal_if(!core.halted(), "CMT run did not finish");
    return CmtResult{core.aggregateIpc(), t0_done};
}

} // namespace

int
main()
{
    banner("F14", "CMT (2 threads) vs SST (1 fast thread), same core");
    setVerbose(false);

    const std::vector<std::string> workloads = {
        "oltp_mix", "hash_join", "graph_scan", "compute_kernel"};

    Table t("throughput and latency per organisation");
    t.setHeader({"workload", "inorder IPC", "cmt2 agg IPC",
                 "sst2 IPC", "cmt2 T0 cycles", "sst2 cycles",
                 "latency win (sst/cmt)"});

    std::vector<std::vector<std::string>> csv;
    for (const auto &wname : workloads) {
        WorkloadParams wp = benchWorkloadParams();
        Workload w0 = makeWorkload(wname, wp);
        wp.seed = 1234; // an independent co-runner of the same kind
        Workload w1 = makeWorkload(wname, wp);

        RunResult base = runPreset("inorder", w0);
        RunResult sst = runPreset("sst2", w0);
        CmtResult cmt = runCmt(w0, w1);

        double latency_win = static_cast<double>(cmt.thread0Cycles)
                             / static_cast<double>(sst.cycles);
        t.addRow({wname, Table::num(base.ipc, 3),
                  Table::num(cmt.aggregateIpc, 3),
                  Table::num(sst.ipc, 3),
                  std::to_string(cmt.thread0Cycles),
                  std::to_string(sst.cycles),
                  Table::num(latency_win, 2) + "x"});
        csv.push_back({wname, Table::num(base.ipc, 4),
                       Table::num(cmt.aggregateIpc, 4),
                       Table::num(sst.ipc, 4),
                       Table::num(latency_win, 3)});
    }
    t.setCaption("cmt2 = two copies of the workload on the dual-context "
                 "core; T0 cycles = first thread's completion time.");
    t.print();

    emitCsv("f14_cmt",
            {"workload", "inorder_ipc", "cmt2_agg_ipc", "sst2_ipc",
             "sst_latency_win"},
            csv);

    // Part 2: the full ROCK chip. Sixteen SST cores over one coherent
    // shared 2 MiB L2 (the rock16 preset, lock elision on) running the
    // shared-memory workloads — chip-level throughput where the
    // threads genuinely communicate instead of being salted apart.
    Table chip("rock16 full chip: 16 coherent SST cores");
    chip.setHeader({"shared workload", "cycles", "aggregate IPC"});
    std::vector<std::vector<std::string>> chip_csv;
    for (const auto &wname : sharedWorkloadNames()) {
        WorkloadParams wp = benchWorkloadParams();
        wp.lengthScale *= 0.2; // 16 contending threads; keep each short
        std::vector<Workload> wls = makeSharedWorkload(wname, 16, wp);
        std::vector<const Program *> progs;
        for (const Workload &w : wls)
            progs.push_back(&w.program);
        Cmp cmp(makePreset("rock16"), progs);
        CmpResult r = cmp.run();
        fatal_if(!r.finished, "rock16 %s did not finish",
                 wname.c_str());
        chip.addRow({wname, std::to_string(r.cycles),
                     Table::num(r.aggregateIpc, 3)});
        chip_csv.push_back({wname, std::to_string(r.cycles),
                            Table::num(r.aggregateIpc, 4)});
    }
    chip.print();
    emitCsv("f14_rock16", {"workload", "cycles", "aggregate_ipc"},
            chip_csv);
    return 0;
}
