/**
 * @file
 * T8 — area- and power-efficiency table.
 *
 * The abstract's second claim: SST reaches its performance while
 * "eliminating the need for complex and power-inefficient structures
 * such as register renaming logic, reorder buffers, memory
 * disambiguation buffers, and large issue windows". Expected shape:
 * SST's perf/area and perf/W beat both OoO cores, with absolute
 * commercial performance at or above ooo-large.
 */

#include <cstdio>

#include "bench_util.hh"
#include "power/model.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("T8", "performance, area and power efficiency per core");
    setVerbose(false);

    const std::vector<std::string> presets = {
        "inorder", "scout",     "ea",        "sst2",    "sst4",
        "ooo-small", "ooo-large", "ooo-huge"};
    WorkloadSet set;

    struct Agg
    {
        std::vector<double> ipc;
        double area = 0;
        double power = 0;
        int n = 0;
    };
    std::map<std::string, Agg> agg;

    for (const auto &wname : commercialWorkloadNames()) {
        const Workload &wl = set.get(wname);
        for (const auto &p : presets) {
            MachineConfig cfg = makePreset(p);
            Machine machine(cfg, wl.program);
            RunResult r = machine.run();
            fatal_if(!r.finished, "%s did not finish", p.c_str());
            PowerEstimate pe = estimatePower(machine.core());
            Agg &a = agg[p];
            a.ipc.push_back(r.ipc);
            a.area = pe.coreArea; // config-determined, same every run
            a.power += pe.avgPower();
            ++a.n;
        }
    }

    Table t("commercial-aggregate efficiency (area/power in model "
            "units)");
    t.setHeader({"preset", "IPC(geo)", "area", "avg power", "perf/area",
                 "perf/W", "norm perf/W"});
    std::vector<std::vector<std::string>> csv;
    double inorder_ppw = 0;
    {
        const Agg &a = agg.at("inorder");
        inorder_ppw = geomean(a.ipc) / (a.power / a.n);
    }
    for (const auto &p : presets) {
        const Agg &a = agg.at(p);
        double ipc = geomean(a.ipc);
        double power = a.power / a.n;
        double ppa = ipc / a.area;
        double ppw = ipc / power;
        t.addRow({p, Table::num(ipc, 3), Table::num(a.area, 2),
                  Table::num(power, 3), Table::num(ppa, 4),
                  Table::num(ppw, 3),
                  Table::num(ppw / inorder_ppw, 2)});
        csv.push_back({p, Table::num(ipc, 4), Table::num(a.area, 3),
                       Table::num(power, 4), Table::num(ppa, 5),
                       Table::num(ppw, 4)});
    }
    t.setCaption("area breakdown: see the itemised table below.");
    t.print();

    Table items("per-structure area breakdown");
    items.setHeader({"preset", "structure", "area"});
    for (const auto &p : {std::string("sst2"), std::string("ooo-large")}) {
        WorkloadParams wp = benchWorkloadParams();
        wp.lengthScale *= 0.1;
        Workload wl = makeWorkload("oltp_mix", wp);
        Machine machine(makePreset(p), wl.program);
        machine.run();
        PowerEstimate pe = estimatePower(machine.core());
        for (const auto &kv : pe.areaItems)
            items.addRow({p, kv.first, Table::num(kv.second, 2)});
    }
    items.print();

    emitCsv("t8_efficiency",
            {"preset", "ipc", "area", "power", "perf_per_area",
             "perf_per_watt"},
            csv);
    return 0;
}
