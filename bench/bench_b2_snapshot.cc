/**
 * @file
 * B2 — snapshot and state-hash throughput (google-benchmark).
 *
 * Not a paper figure: sizes the cost of the checkpoint machinery so
 * users can pick snap_every / diff --stride sensibly. Reports
 * serialized image size and MB/s for whole-machine snapshot(), the
 * cost of a full restore(), and stateHash() rate — the per-compare
 * cost of the lockstep differ.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

Workload &
cachedWorkload()
{
    static Workload wl = [] {
        WorkloadParams p;
        p.lengthScale = bench::benchScale();
        return makeWorkload("oltp_mix", p);
    }();
    return wl;
}

/** One sst4 machine advanced into steady state, so caches, predictors
 *  and stats hold representative (non-trivial) content. */
Machine &
warmMachine()
{
    static Machine machine(makePreset("sst4"), cachedWorkload().program);
    static bool warmed = [] {
        machine.stepTo(20'000);
        return true;
    }();
    (void)warmed;
    return machine;
}

void
BM_Snapshot(benchmark::State &state)
{
    Machine &machine = warmMachine();
    std::size_t bytes = 0;
    for (auto _ : state) {
        std::vector<std::uint8_t> image = machine.snapshot();
        bytes = image.size();
        benchmark::DoNotOptimize(image.data());
    }
    state.counters["image_bytes"] = static_cast<double>(bytes);
    state.counters["snap_bytes_per_s"] = benchmark::Counter(
        static_cast<double>(bytes) * state.iterations(),
        benchmark::Counter::kIsRate);
}

void
BM_Restore(benchmark::State &state)
{
    Machine &machine = warmMachine();
    std::vector<std::uint8_t> image = machine.snapshot();
    Machine target(makePreset("sst4"), cachedWorkload().program);
    for (auto _ : state) {
        target.restore(image);
        benchmark::DoNotOptimize(target.core().cycles());
    }
}

void
BM_StateHash(benchmark::State &state)
{
    Machine &machine = warmMachine();
    for (auto _ : state) {
        std::uint64_t h = machine.stateHash();
        benchmark::DoNotOptimize(h);
    }
    state.counters["hashes_per_s"] = benchmark::Counter(
        static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_Snapshot)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Restore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StateHash)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
