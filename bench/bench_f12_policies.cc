/**
 * @file
 * F12 — ablation of SST policy choices (DESIGN.md design-space knobs):
 *
 *  1. trigger policy: defer on any L1 miss (aggressive, the paper's
 *     default) vs only on L2 misses (cheap L2 hits get scoreboarded);
 *  2. deferred-branch throttling: unlimited prediction vs stalling the
 *     ahead strand after N unverified branches (bounds rollback waste);
 *  3. conflict tracking granularity: idealised byte-exact log vs
 *     realistic per-L1-line s-bits (false sharing aborts).
 *
 * Expected shape: (1) L1-trigger wins when L2 hits are still long
 * relative to the pipeline; (2) mild throttling helps rollback-bound
 * workloads and hurts MLP-bound ones; (3) line-granular tracking costs
 * little because real conflicts are rare.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

struct Policy
{
    const char *name;
    void (*apply)(MachineConfig &);
};

const Policy kPolicies[] = {
    {"baseline", [](MachineConfig &) {}},
    {"l2-miss-trigger",
     [](MachineConfig &c) { c.core.deferOnL2MissOnly = true; }},
    {"throttle-br=1",
     [](MachineConfig &c) { c.core.maxDeferredBranches = 1; }},
    {"throttle-br=4",
     [](MachineConfig &c) { c.core.maxDeferredBranches = 4; }},
    {"line-conflicts",
     [](MachineConfig &c) { c.core.lineGranularConflicts = true; }},
};

} // namespace

int
main()
{
    banner("F12", "SST policy ablations (speedup vs in-order)");
    setVerbose(false);

    WorkloadSet set;
    Table t("sst4 policy variants");
    std::vector<std::string> header = {"workload"};
    for (const auto &p : kPolicies)
        header.push_back(p.name);
    t.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    std::map<std::string, std::vector<double>> agg;
    for (const auto &wname : allWorkloadNames()) {
        const Workload &wl = set.get(wname);
        RunResult base = runPreset("inorder", wl);
        std::vector<std::string> row = {wname};
        std::vector<std::string> csv_row = {wname};
        for (const auto &p : kPolicies) {
            RunResult r = runConfigured("sst4", wl, p.apply);
            double speedup = static_cast<double>(base.cycles)
                             / static_cast<double>(r.cycles);
            row.push_back(Table::num(speedup, 2));
            csv_row.push_back(Table::num(speedup, 4));
            agg[p.name].push_back(speedup);
        }
        t.addRow(row);
        csv.push_back(csv_row);
    }
    std::vector<std::string> row = {"GEOMEAN"};
    for (const auto &p : kPolicies)
        row.push_back(Table::num(geomean(agg[p.name]), 2));
    t.addRow(row);
    t.print();

    std::vector<std::string> csv_header = {"workload"};
    for (const auto &p : kPolicies)
        csv_header.push_back(p.name);
    emitCsv("f12_policies", csv_header, csv);
    return 0;
}
