/**
 * @file
 * F15 — TLB misses as deferral triggers (extension).
 *
 * The paper lists TLB misses among the long-latency events SST defers
 * on. With translation modelling enabled, every page walk behaves like
 * a miss: the in-order core serialises walks, SST overlaps them (and
 * the walk of the *next* page starts from the ahead strand long before
 * the architectural access arrives). Sweeps DTLB reach on the
 * page-hungry workloads. Measured shape (see EXPERIMENTS.md): SST's
 * advantage is intact under moderate pressure, but extreme thrash
 * turns every load into a deferral trigger, saturates the DQ and
 * collapses it — a boundary condition on the technique.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F15", "sensitivity to data-TLB reach");
    setVerbose(false);

    const std::vector<unsigned> tlb_entries = {0, 256, 64, 16};
    const std::vector<std::string> workloads = {"hash_join", "oltp_mix",
                                                "graph_scan"};
    WorkloadSet set;

    Table t("sst4 speedup vs in-order under TLB pressure");
    std::vector<std::string> header = {"workload"};
    for (unsigned e : tlb_entries)
        header.push_back(e == 0 ? "no-tlb" : "dtlb=" + std::to_string(e));
    t.setHeader(header);

    Table walks("page walks per 1k insts (in-order core)");
    walks.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);
        std::vector<std::string> row = {wname};
        std::vector<std::string> wrow = {wname};
        std::vector<std::string> csv_row = {wname};
        for (unsigned e : tlb_entries) {
            auto with_tlb = [e](MachineConfig &c) {
                c.mem.dtlb.entries = e;
            };
            RunResult base = runConfigured("inorder", wl, with_tlb);
            RunResult r = runConfigured("sst4", wl, with_tlb);
            double speedup = static_cast<double>(base.cycles)
                             / static_cast<double>(r.cycles);
            row.push_back(Table::num(speedup, 2));
            csv_row.push_back(Table::num(speedup, 4));
            double pw = statOf(base, "dtlb.misses") * 1000.0
                        / static_cast<double>(base.insts);
            wrow.push_back(Table::num(pw, 1));
        }
        t.addRow(row);
        walks.addRow(wrow);
        csv.push_back(csv_row);
    }
    t.print();
    walks.print();

    std::vector<std::string> csv_header = {"workload"};
    for (unsigned e : tlb_entries)
        csv_header.push_back("tlb" + std::to_string(e));
    emitCsv("f15_tlb", csv_header, csv);
    return 0;
}
