/**
 * @file
 * F10 — fail-speculation breakdown.
 *
 * Every way an SST epoch can die, per workload: deferred-branch
 * mispredicts, deferred-jump target mispredicts, memory disambiguation
 * conflicts — plus the stall (not fail) events: DQ full, SSQ full,
 * unpredictable NA jumps. Expected shape: branch fails dominate on
 * data-dependent-branch workloads (btree, oltp, merge); conflicts are
 * rare everywhere.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F10", "why speculation fails (per 100k retired insts)");
    setVerbose(false);

    WorkloadSet set;
    Table t("sst4 rollback and stall profile");
    t.setHeader({"workload", "ckpts", "commits", "fail.branch",
                 "fail.jump", "fail.mem", "discarded%", "dq stall/1k",
                 "ssq stall/1k"});

    std::vector<std::vector<std::string>> csv;
    for (const auto &wname : allWorkloadNames()) {
        const Workload &wl = set.get(wname);
        RunResult r = runPreset("sst4", wl);
        double per100k = 100000.0 / static_cast<double>(r.insts);
        double ckpts = statOf(r, ".checkpoints_taken");
        double commits = statOf(r, ".epochs_committed");
        double fb = statOf(r, ".fail_branch") * per100k;
        double fj = statOf(r, ".fail_jump") * per100k;
        double fm = statOf(r, ".fail_mem") * per100k;
        double discarded = 100.0 * statOf(r, ".discarded_insts")
                           / (statOf(r, ".discarded_insts")
                              + static_cast<double>(r.insts));
        double dq = statOf(r, ".dq_full_stalls") * 1000.0
                    / static_cast<double>(r.insts);
        double ssq = statOf(r, ".ssq_full_stalls") * 1000.0
                     / static_cast<double>(r.insts);
        t.addRow({wname, Table::num(ckpts, 0), Table::num(commits, 0),
                  Table::num(fb, 1), Table::num(fj, 1),
                  Table::num(fm, 2), Table::num(discarded, 1),
                  Table::num(dq, 1), Table::num(ssq, 1)});
        csv.push_back({wname, Table::num(fb, 3), Table::num(fj, 3),
                       Table::num(fm, 3), Table::num(discarded, 3)});
    }
    t.setCaption("discarded% = speculative instructions thrown away by "
                 "rollbacks, relative to all executed.");
    t.print();

    emitCsv("f10_failures",
            {"workload", "fail_branch", "fail_jump", "fail_mem",
             "discarded_pct"},
            csv);
    return 0;
}
