/**
 * @file
 * B1 — where the cycles go: CPI stacks per core model.
 *
 * Decomposes each model's cycles-per-instruction into the stall
 * categories its pipeline accounts (committing, operand-use stalls,
 * front-end stalls, structural stalls, SST-specific stalls and wasted
 * rollback work). Not a paper figure, but the analysis view that makes
 * F2's speedups legible: the in-order baseline drowns in use-stalls on
 * commercial code; SST converts them into overlapped misses at the
 * price of some rollback waste.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("B1", "CPI stacks (cycles per 1k retired instructions)");
    setVerbose(false);

    const std::vector<std::string> workloads = {"oltp_mix", "hash_join",
                                                "compute_kernel"};
    WorkloadSet set;

    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);

        Table t("B1: " + wname);
        t.setHeader({"preset", "CPI", "use-stall/1k", "fetch-stall/1k",
                     "dq-full/1k", "ssq-full/1k", "discarded insts/1k",
                     "rollbacks/1k"});
        for (const std::string &p :
             {std::string("inorder"), std::string("scout"),
              std::string("sst2"), std::string("sst4")}) {
            RunResult r = runPreset(p, wl);
            double per1k = 1000.0 / static_cast<double>(r.insts);
            double cpi = static_cast<double>(r.cycles)
                         / static_cast<double>(r.insts);
            double use = p == "inorder"
                             ? statOf(r, ".stall_use_cycles") * per1k
                             : statOf(r, ".ahead_stall_use") * per1k;
            double fetch = statOf(r, ".stall_fetch_cycles") * per1k;
            double dq = statOf(r, ".dq_full_stalls") * per1k;
            double ssq = statOf(r, ".ssq_full_stalls") * per1k;
            double disc = statOf(r, ".discarded_insts") * per1k;
            double rb = (statOf(r, ".fail_branch")
                         + statOf(r, ".fail_jump")
                         + statOf(r, ".fail_mem")
                         + statOf(r, ".scout_ends"))
                        * per1k;
            t.addRow({p, Table::num(cpi, 2), Table::num(use, 1),
                      Table::num(fetch, 1), Table::num(dq, 1),
                      Table::num(ssq, 1), Table::num(disc, 1),
                      Table::num(rb, 2)});
        }
        t.print();
    }
    return 0;
}
