/**
 * @file
 * B1 — where the cycles go: CPI stacks per core model.
 *
 * Decomposes each model's cycles-per-instruction with the shared
 * trace::CpiStack attribution (src/trace/cpistack.hh): every cycle is
 * charged to exactly one category, so the columns sum to the CPI
 * column. Not a paper figure, but the analysis view that makes F2's
 * speedups legible: the in-order baseline drowns in use-stalls on
 * commercial code; SST converts them into overlapped replay cycles at
 * the price of some rollback-discard waste.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("B1", "CPI stacks (cycles per 1k retired instructions)");
    setVerbose(false);

    const std::vector<std::string> workloads = {"oltp_mix", "hash_join",
                                                "compute_kernel"};
    WorkloadSet set;

    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);

        Table t("B1: " + wname);
        t.setHeader({"preset", "CPI", "base/1k", "use-stall/1k",
                     "fetch/1k", "dq-full/1k", "ssq-full/1k",
                     "replay/1k", "discard/1k", "rollbacks/1k"});
        for (const std::string &p :
             {std::string("inorder"), std::string("scout"),
              std::string("sst2"), std::string("sst4")}) {
            RunResult r = runPreset(p, wl);
            double per1k = 1000.0 / static_cast<double>(r.insts);
            double cpi = static_cast<double>(r.cycles)
                         / static_cast<double>(r.insts);
            double base = statOf(r, ".cpi_stack.base") * per1k;
            double use = statOf(r, ".cpi_stack.use_stall") * per1k;
            double fetch = statOf(r, ".cpi_stack.fetch") * per1k;
            double dq = statOf(r, ".cpi_stack.dq_full") * per1k;
            double ssq = statOf(r, ".cpi_stack.ssq_full") * per1k;
            double replay = statOf(r, ".cpi_stack.replay") * per1k;
            double disc =
                statOf(r, ".cpi_stack.rollback_discard") * per1k;
            double rb = (statOf(r, ".fail_branch")
                         + statOf(r, ".fail_jump")
                         + statOf(r, ".fail_mem")
                         + statOf(r, ".scout_ends"))
                        * per1k;
            t.addRow({p, Table::num(cpi, 2), Table::num(base, 1),
                      Table::num(use, 1), Table::num(fetch, 1),
                      Table::num(dq, 1), Table::num(ssq, 1),
                      Table::num(replay, 1), Table::num(disc, 1),
                      Table::num(rb, 2)});
        }
        t.print();
    }
    return 0;
}
