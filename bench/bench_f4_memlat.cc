/**
 * @file
 * F4 — sensitivity to memory latency.
 *
 * The paper positions SST as a memory-wall response: the longer the
 * miss, the more work the ahead strand can overlap. Expected shape:
 * SST's speedup over in-order (and its edge over OoO, whose window is
 * fixed) grows with DRAM latency.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F4", "speedup vs in-order as DRAM latency grows");
    setVerbose(false);

    const std::vector<unsigned> latencies = {60, 120, 240, 480, 800};
    const std::vector<std::string> presets = {"scout", "sst4",
                                              "ooo-large"};
    const std::vector<std::string> workloads = {"hash_join", "oltp_mix",
                                                "compute_kernel"};
    WorkloadSet set;

    std::vector<std::vector<std::string>> csv;
    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);
        Table t("F4: " + wname + " — speedup vs in-order");
        std::vector<std::string> header = {"dram_base_latency"};
        for (const auto &p : presets)
            header.push_back(p);
        t.setHeader(header);
        for (unsigned lat : latencies) {
            auto with_lat = [lat](MachineConfig &c) {
                c.mem.dram.baseLatency = lat;
            };
            RunResult base = runConfigured("inorder", wl, with_lat);
            std::vector<std::string> row = {std::to_string(lat)};
            std::vector<std::string> csv_row = {wname,
                                                std::to_string(lat)};
            for (const auto &p : presets) {
                RunResult r = runConfigured(p, wl, with_lat);
                double speedup = static_cast<double>(base.cycles)
                                 / static_cast<double>(r.cycles);
                row.push_back(Table::num(speedup, 2));
                csv_row.push_back(Table::num(speedup, 4));
            }
            t.addRow(row);
            csv.push_back(csv_row);
        }
        t.print();
    }

    std::vector<std::string> csv_header = {"workload", "latency"};
    for (const auto &p : presets)
        csv_header.push_back(p);
    emitCsv("f4_memlat", csv_header, csv);
    return 0;
}
