/**
 * @file
 * B0 — simulator engine throughput (google-benchmark).
 *
 * Not a paper figure: measures how many simulated instructions per
 * host-second each core model achieves, so users can size experiments.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "sim/cmp.hh"
#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

Workload &
cachedWorkload()
{
    // Long enough that steady-state simulation dominates per-run
    // bookkeeping; SST_BENCH_SCALE still shrinks it for smoke runs.
    static Workload wl = [] {
        WorkloadParams p;
        p.lengthScale = bench::benchScale();
        return makeWorkload("oltp_mix", p);
    }();
    return wl;
}

void
runModel(benchmark::State &state, const char *preset)
{
    Workload &wl = cachedWorkload();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        // Machine construction (dominated by loading the workload's
        // memory image) is setup, not simulation: keep it out of the
        // timed region so sim_insts_per_s measures the run loop.
        state.PauseTiming();
        Machine machine(makePreset(preset), wl.program);
        state.ResumeTiming();
        RunResult r = machine.run();
        insts += r.insts;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_InOrder(benchmark::State &state)
{
    runModel(state, "inorder");
}

void
BM_Scout(benchmark::State &state)
{
    runModel(state, "scout");
}

void
BM_Sst2(benchmark::State &state)
{
    runModel(state, "sst2");
}

void
BM_Sst4(benchmark::State &state)
{
    runModel(state, "sst4");
}

void
BM_OooLarge(benchmark::State &state)
{
    runModel(state, "ooo-large");
}

/** Four cores over a shared L2/DRAM — exercises the CMP lockstep loop,
 *  whose skip window is the min over all cores' wake cycles. */
void
BM_Cmp4xInOrder(benchmark::State &state)
{
    Workload &wl = cachedWorkload();
    std::vector<const Program *> programs(4, &wl.program);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Cmp cmp(makePreset("inorder"), programs);
        state.ResumeTiming();
        CmpResult r = cmp.run();
        insts += r.totalInsts;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_FunctionalOnly(benchmark::State &state)
{
    Workload &wl = cachedWorkload();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        state.PauseTiming();
        MemoryImage mem;
        mem.loadSegments(wl.program);
        Executor exec(wl.program, mem);
        ArchState st;
        state.ResumeTiming();
        insts += exec.run(st, 100'000'000ULL);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_FunctionalOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InOrder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scout)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sst2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sst4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OooLarge)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Cmp4xInOrder)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
