/**
 * @file
 * B0 — simulator engine throughput (google-benchmark).
 *
 * Not a paper figure: measures how many simulated instructions per
 * host-second each core model achieves, so users can size experiments.
 */

#include <benchmark/benchmark.h>

#include "sim/machine.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

Workload &
cachedWorkload()
{
    static Workload wl = [] {
        WorkloadParams p;
        p.lengthScale = 0.1;
        return makeWorkload("oltp_mix", p);
    }();
    return wl;
}

void
runModel(benchmark::State &state, const char *preset)
{
    Workload &wl = cachedWorkload();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        Machine machine(makePreset(preset), wl.program);
        RunResult r = machine.run();
        insts += r.insts;
        benchmark::DoNotOptimize(r.cycles);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

void
BM_InOrder(benchmark::State &state)
{
    runModel(state, "inorder");
}

void
BM_Scout(benchmark::State &state)
{
    runModel(state, "scout");
}

void
BM_Sst4(benchmark::State &state)
{
    runModel(state, "sst4");
}

void
BM_OooLarge(benchmark::State &state)
{
    runModel(state, "ooo-large");
}

void
BM_FunctionalOnly(benchmark::State &state)
{
    Workload &wl = cachedWorkload();
    std::uint64_t insts = 0;
    for (auto _ : state) {
        MemoryImage mem;
        mem.loadSegments(wl.program);
        Executor exec(wl.program, mem);
        ArchState st;
        insts += exec.run(st, 100'000'000ULL);
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}

} // namespace

BENCHMARK(BM_FunctionalOnly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InOrder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Scout)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sst4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OooLarge)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
