/**
 * @file
 * F6 — deferred-queue size sweep.
 *
 * The DQ bounds how many miss-dependent instructions the ahead strand
 * can park; when it fills, the strand stalls and SST degrades toward
 * stall-on-use. Expected shape: performance climbs with DQ size and
 * saturates once the queue covers the dependence cone of outstanding
 * misses; dq-full stall cycles fall correspondingly.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F6", "SST sensitivity to deferred-queue capacity");
    setVerbose(false);

    const std::vector<unsigned> sizes = {8, 16, 32, 64, 128, 256};
    WorkloadSet set;

    std::vector<std::vector<std::string>> csv;
    Table t("speedup vs in-order by DQ size (sst4)");
    std::vector<std::string> header = {"workload"};
    for (unsigned s : sizes)
        header.push_back("dq=" + std::to_string(s));
    t.setHeader(header);

    Table stalls("dq-full stall cycles per 1k insts");
    stalls.setHeader(header);

    std::map<unsigned, std::vector<double>> agg;
    for (const auto &wname : commercialWorkloadNames()) {
        const Workload &wl = set.get(wname);
        RunResult base = runPreset("inorder", wl);
        std::vector<std::string> row = {wname};
        std::vector<std::string> srow = {wname};
        std::vector<std::string> csv_row = {wname};
        for (unsigned s : sizes) {
            RunResult r = runConfigured("sst4", wl, [s](MachineConfig &m) {
                m.core.dqEntries = s;
            });
            double speedup = static_cast<double>(base.cycles)
                             / static_cast<double>(r.cycles);
            row.push_back(Table::num(speedup, 2));
            csv_row.push_back(Table::num(speedup, 4));
            agg[s].push_back(speedup);
            double stall = statOf(r, ".dq_full_stalls") * 1000.0
                           / static_cast<double>(r.insts);
            srow.push_back(Table::num(stall, 1));
        }
        t.addRow(row);
        stalls.addRow(srow);
        csv.push_back(csv_row);
    }
    std::vector<std::string> row = {"GEOMEAN"};
    for (unsigned s : sizes)
        row.push_back(Table::num(geomean(agg[s]), 2));
    t.addRow(row);
    t.print();
    stalls.print();

    std::vector<std::string> csv_header = {"workload"};
    for (unsigned s : sizes)
        csv_header.push_back("dq" + std::to_string(s));
    emitCsv("f6_dq", csv_header, csv);
    return 0;
}
