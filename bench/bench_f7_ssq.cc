/**
 * @file
 * F7 — speculative store queue sweep + lazy disambiguation cost.
 *
 * The SSQ holds every speculative store (plus reservations for deferred
 * ones) until its epoch commits; exhaustion stalls the ahead strand.
 * The second table prices lazy disambiguation: conflict rollbacks per
 * 100k instructions. Expected shape: store-heavy workloads need tens of
 * entries; conflicts stay rare.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F7", "SSQ capacity sweep and disambiguation conflicts");
    setVerbose(false);

    const std::vector<unsigned> sizes = {4, 8, 16, 32, 64};
    const std::vector<std::string> workloads = {"oltp_mix", "stream",
                                                "sorted_merge",
                                                "graph_scan"};
    WorkloadSet set;

    Table t("speedup vs in-order by SSQ size (sst4)");
    std::vector<std::string> header = {"workload"};
    for (unsigned s : sizes)
        header.push_back("ssq=" + std::to_string(s));
    t.setHeader(header);

    Table stalls("ssq-full stall cycles per 1k insts / mem-conflict "
                 "rollbacks per 100k insts");
    stalls.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);
        RunResult base = runPreset("inorder", wl);
        std::vector<std::string> row = {wname};
        std::vector<std::string> srow = {wname};
        std::vector<std::string> csv_row = {wname};
        for (unsigned s : sizes) {
            RunResult r = runConfigured("sst4", wl, [s](MachineConfig &m) {
                m.core.ssqEntries = s;
            });
            double speedup = static_cast<double>(base.cycles)
                             / static_cast<double>(r.cycles);
            row.push_back(Table::num(speedup, 2));
            csv_row.push_back(Table::num(speedup, 4));
            double stall = statOf(r, ".ssq_full_stalls") * 1000.0
                           / static_cast<double>(r.insts);
            double conflicts = statOf(r, ".fail_mem") * 100000.0
                               / static_cast<double>(r.insts);
            srow.push_back(Table::num(stall, 1) + " / "
                           + Table::num(conflicts, 2));
        }
        t.addRow(row);
        stalls.addRow(srow);
        csv.push_back(csv_row);
    }
    t.print();
    stalls.print();

    std::vector<std::string> csv_header = {"workload"};
    for (unsigned s : sizes)
        csv_header.push_back("ssq" + std::to_string(s));
    emitCsv("f7_ssq", csv_header, csv);
    return 0;
}
