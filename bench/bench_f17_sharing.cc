/**
 * @file
 * F17 — speculative lock elision on shared-memory workloads
 * (extension).
 *
 * The coherent CMP runs each shared workload twice on the same
 * silicon: conventional locking (every acquire swaps the lock line,
 * invalidating all other cores) vs speculative lock elision (the
 * acquire of a free lock opens an SST speculation region instead; the
 * critical section publishes atomically through the SSQ at commit, and
 * the lock line never leaves its free value, so non-conflicting
 * critical sections overlap).
 *
 * Expected shape: the read-mostly table and the randomly-spread
 * counter gain the most (critical sections rarely conflict, so elision
 * removes the lock line's ping-pong); the producer/consumer ring gains
 * the least (its critical sections genuinely conflict on head/tail, so
 * elided regions abort and fall back). The CPI stack attributes the
 * win: the Coherence bucket shrinks by roughly the cycles the elided
 * run saves.
 *
 * Usage: bench_f17_sharing [out.json]   (default bench_f17_sharing.json)
 */

#include <cstdio>
#include <fstream>

#include "bench_util.hh"
#include "sim/cmp.hh"
#include "trace/cpistack.hh"

using namespace sst;
using namespace sst::bench;

namespace
{

struct SharingRun
{
    Cycle cycles = 0;
    double aggIpc = 0;
    double cohCycles = 0;  ///< summed CpiCat::Coherence over all cores
    double totalCycles = 0; ///< summed per-core cycles (CPI-stack base)
    double elisions = 0;
    double commits = 0;
    double aborts = 0;
};

double
sumStat(Cmp &cmp, unsigned cores, const std::string &suffix)
{
    double total = 0;
    for (unsigned i = 0; i < cores; ++i)
        for (const auto &kv : cmp.core(i).stats().flatten())
            if (kv.first.size() >= suffix.size()
                && kv.first.compare(kv.first.size() - suffix.size(),
                                    suffix.size(), suffix)
                       == 0)
                total += kv.second;
    return total;
}

SharingRun
runShared(const std::string &name, unsigned cores, bool elide)
{
    WorkloadParams wp = benchWorkloadParams();
    wp.lengthScale *= 0.4; // n cores contend; keep each thread short
    std::vector<Workload> wls = makeSharedWorkload(name, cores, wp);
    std::vector<const Program *> progs;
    for (const Workload &w : wls)
        progs.push_back(&w.program);

    MachineConfig cfg = makePreset("sst2");
    cfg.mem.coh.enabled = true;
    cfg.core.elideLocks = elide;
    Cmp cmp(cfg, progs);
    CmpResult r = cmp.run();
    fatal_if(!r.finished, "%s x%u (%s) did not finish", name.c_str(),
             cores, elide ? "sle" : "base");

    SharingRun out;
    out.cycles = r.cycles;
    out.aggIpc = r.aggregateIpc;
    for (unsigned i = 0; i < cores; ++i) {
        out.cohCycles += static_cast<double>(
            cmp.core(i).cpiStack().value(trace::CpiCat::Coherence));
        out.totalCycles +=
            static_cast<double>(cmp.core(i).cpiStack().total());
    }
    out.elisions = sumStat(cmp, cores, ".sle_elisions");
    out.commits = sumStat(cmp, cores, ".sle_commits");
    out.aborts = sumStat(cmp, cores, ".sle_aborts");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    banner("F17", "speculative lock elision vs conventional locking");
    setVerbose(false);
    const std::string json_path =
        argc > 1 ? argv[1] : "bench_f17_sharing.json";
    const unsigned cores = 4;

    Table t("coherent 4-core CMP (sst2), locking vs elision");
    t.setHeader({"workload", "base cycles", "sle cycles", "speedup",
                 "elisions", "commits", "aborts", "base coh%",
                 "sle coh%"});

    std::vector<std::string> names = sharedWorkloadNames();
    std::vector<SharingRun> base(names.size()), sle(names.size());
    forEachIndex(names.size() * 2, [&](std::size_t i) {
        if (i < names.size())
            base[i] = runShared(names[i], cores, false);
        else
            sle[i - names.size()] =
                runShared(names[i - names.size()], cores, true);
    });

    std::vector<double> speedups;
    std::vector<std::vector<std::string>> csv;
    std::string json = "[\n";
    for (std::size_t i = 0; i < names.size(); ++i) {
        double speedup = static_cast<double>(base[i].cycles)
                         / static_cast<double>(sle[i].cycles);
        speedups.push_back(speedup);
        double base_coh = 100.0 * base[i].cohCycles
                          / std::max(base[i].totalCycles, 1.0);
        double sle_coh = 100.0 * sle[i].cohCycles
                         / std::max(sle[i].totalCycles, 1.0);
        t.addRow({names[i], std::to_string(base[i].cycles),
                  std::to_string(sle[i].cycles),
                  Table::num(speedup, 3) + "x",
                  Table::num(sle[i].elisions, 0),
                  Table::num(sle[i].commits, 0),
                  Table::num(sle[i].aborts, 0),
                  Table::num(base_coh, 1), Table::num(sle_coh, 1)});
        csv.push_back({names[i], std::to_string(base[i].cycles),
                       std::to_string(sle[i].cycles),
                       Table::num(speedup, 4)});
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "  {\"workload\": \"%s\", \"cores\": %u,\n"
            "   \"base_cycles\": %llu, \"sle_cycles\": %llu,\n"
            "   \"speedup\": %.4f,\n"
            "   \"base_agg_ipc\": %.4f, \"sle_agg_ipc\": %.4f,\n"
            "   \"sle_elisions\": %.0f, \"sle_commits\": %.0f, "
            "\"sle_aborts\": %.0f,\n"
            "   \"base_coherence_cycles\": %.0f, "
            "\"sle_coherence_cycles\": %.0f}%s\n",
            names[i].c_str(), cores,
            static_cast<unsigned long long>(base[i].cycles),
            static_cast<unsigned long long>(sle[i].cycles), speedup,
            base[i].aggIpc, sle[i].aggIpc, sle[i].elisions,
            sle[i].commits, sle[i].aborts, base[i].cohCycles,
            sle[i].cohCycles, i + 1 < names.size() ? "," : "");
        json += buf;
    }
    json += "]\n";
    t.setCaption("coh% = share of all core cycles the CPI stack "
                 "attributes to coherence stalls; elision's win shows "
                 "up as that bucket shrinking.");
    t.print();
    emitCsv("f17_sharing",
            {"workload", "base_cycles", "sle_cycles", "speedup"}, csv);

    std::ofstream out(json_path);
    fatal_if(!out, "cannot write %s", json_path.c_str());
    out << json;
    std::printf("\nwrote %s\n", json_path.c_str());
    std::printf("HEADLINE: geomean SLE speedup = %.3fx\n",
                geomean(speedups));
    return 0;
}
