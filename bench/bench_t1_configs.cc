/**
 * @file
 * T1 — simulated machine configurations (the paper's methodology
 * table). Prints every preset's core and memory parameters so each
 * figure's experimental setup is self-documenting.
 */

#include <cstdio>

#include "bench_util.hh"
#include "power/model.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("T1", "simulated machine configurations");

    Table t("machine configurations");
    t.setHeader({"preset", "model", "width", "ckpts", "DQ", "SSQ", "ROB",
                 "IQ", "LSQ", "predictor"});
    for (const auto &name : presetNames()) {
        MachineConfig c = makePreset(name);
        bool is_sst = c.model == "sst";
        bool is_ooo = c.model == "ooo";
        t.addRow({name, c.model, std::to_string(c.core.fetchWidth),
                  is_sst ? std::to_string(c.core.checkpoints) : "-",
                  is_sst && !c.core.discardSpecWork
                      ? std::to_string(c.core.dqEntries)
                      : "-",
                  is_sst ? std::to_string(c.core.ssqEntries) : "-",
                  is_ooo ? std::to_string(c.core.robEntries) : "-",
                  is_ooo ? std::to_string(c.core.issueQueueEntries) : "-",
                  is_ooo ? std::to_string(c.core.lsqEntries) : "-",
                  c.core.predictor});
    }
    t.setCaption("scout = SST hardware with speculative work discarded "
                 "(runahead prefetcher).");
    t.print();

    MachineConfig base = makePreset("inorder");
    Table m("shared memory hierarchy");
    m.setHeader({"component", "parameters"});
    auto cache_row = [&](const CacheParams &c) {
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "%llu KB, %u-way, %u B lines, %u-cycle hit",
                      static_cast<unsigned long long>(c.sizeBytes / 1024),
                      c.assoc, c.lineBytes, c.hitLatency);
        return std::string(buf);
    };
    m.addRow({"L1I", cache_row(base.mem.l1i)});
    m.addRow({"L1D", cache_row(base.mem.l1d)});
    m.addRow({"L2 (shared)", cache_row(base.mem.l2)});
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%u banks, %u-cycle base + %u CAS (+%u row miss), "
                  "%u-cycle channel/line",
                  base.mem.dram.banks, base.mem.dram.baseLatency,
                  base.mem.dram.tCas, base.mem.dram.tRcdRp,
                  base.mem.dram.channelCycles);
    m.addRow({"DRAM", buf});
    m.addRow({"MSHRs/core", std::to_string(base.mem.l1MshrEntries)});
    m.print();

    Table w("workloads");
    w.setHeader({"name", "class", "~dyn insts (scale=1)"});
    for (const auto &name : allWorkloadNames()) {
        Workload wl = makeWorkload(name);
        w.addRow({wl.name, wl.category,
                  std::to_string(wl.approxDynInsts)});
    }
    w.print();
    return 0;
}
