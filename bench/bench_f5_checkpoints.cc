/**
 * @file
 * F5 — checkpoint-count ablation (1, 2, 4, 8).
 *
 * More checkpoints let the behind strand commit epoch i while the ahead
 * strand speculates in epochs i+1..k, and bound how much work one
 * rollback destroys. Expected shape: diminishing returns past ~2-4 (the
 * ROCK chip shipped with 2).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F5", "SST speedup vs in-order as checkpoint count varies");
    setVerbose(false);

    const std::vector<unsigned> counts = {1, 2, 4, 8};
    WorkloadSet set;

    Table t("speedup vs in-order by checkpoint count");
    std::vector<std::string> header = {"workload"};
    for (unsigned c : counts)
        header.push_back("ckpt=" + std::to_string(c));
    t.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    std::map<unsigned, std::vector<double>> agg;
    for (const auto &wname : commercialWorkloadNames()) {
        const Workload &wl = set.get(wname);
        RunResult base = runPreset("inorder", wl);
        std::vector<std::string> row = {wname};
        std::vector<std::string> csv_row = {wname};
        for (unsigned c : counts) {
            RunResult r = runConfigured("sst4", wl, [c](MachineConfig &m) {
                m.core.checkpoints = c;
            });
            double speedup = static_cast<double>(base.cycles)
                             / static_cast<double>(r.cycles);
            row.push_back(Table::num(speedup, 2));
            csv_row.push_back(Table::num(speedup, 4));
            agg[c].push_back(speedup);
        }
        t.addRow(row);
        csv.push_back(csv_row);
    }
    std::vector<std::string> row = {"GEOMEAN"};
    for (unsigned c : counts)
        row.push_back(Table::num(geomean(agg[c]), 2));
    t.addRow(row);
    t.print();

    std::vector<std::string> csv_header = {"workload"};
    for (unsigned c : counts)
        csv_header.push_back("ckpt" + std::to_string(c));
    emitCsv("f5_checkpoints", csv_header, csv);
    return 0;
}
