/**
 * @file
 * F3 — where the win comes from: memory-level parallelism.
 *
 * SST's ahead strand keeps issuing independent misses while the paper's
 * baseline stalls; the achieved demand-MLP (outstanding demand misses
 * when a new one is issued) is the mechanism behind F2. Expected shape:
 * MLP(sst) >> MLP(inorder) on independent-miss workloads; everyone's
 * MLP ~1 on the dependent pointer chase.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace sst;
using namespace sst::bench;

int
main()
{
    banner("F3", "achieved memory-level parallelism per core model");
    setVerbose(false);

    const std::vector<std::string> presets = {"inorder", "scout", "ea",
                                              "sst4", "ooo-small",
                                              "ooo-large"};
    const std::vector<std::string> workloads = {
        "pointer_chase", "hash_join", "oltp_mix", "graph_scan"};
    WorkloadSet set;

    Table t("mean demand MLP (higher = more overlapped misses)");
    std::vector<std::string> header = {"workload"};
    for (const auto &p : presets)
        header.push_back(p);
    t.setHeader(header);

    std::vector<std::vector<std::string>> csv;
    for (const auto &wname : workloads) {
        const Workload &wl = set.get(wname);
        std::vector<std::string> row = {wname};
        std::vector<std::string> csv_row = {wname};
        for (const auto &p : presets) {
            RunResult r = runPreset(p, wl);
            row.push_back(Table::num(r.meanDemandMlp, 2));
            csv_row.push_back(Table::num(r.meanDemandMlp, 3));
        }
        t.addRow(row);
        csv.push_back(csv_row);
    }
    t.setCaption("pointer_chase is a dependent chain: no model can "
                 "overlap its misses.");
    t.print();

    std::vector<std::string> csv_header = {"workload"};
    for (const auto &p : presets)
        csv_header.push_back(p);
    emitCsv("f3_mlp", csv_header, csv);
    return 0;
}
