/**
 * @file
 * sstsim — the general-purpose command-line driver.
 *
 * Runs any workload (built-in generator or an assembly file) on any
 * machine preset with arbitrary config overrides, verifies the result
 * against the golden functional executor, and reports statistics as
 * text or JSON.
 *
 * Examples:
 *   sstsim workload=hash_join preset=sst2
 *   sstsim workload=oltp_mix preset=ooo-large mem.dram_base_latency=480
 *   sstsim asm=kernel.s preset=scout stats=full
 *   sstsim workload=graph_scan preset=sst4 json=true
 *   sstsim workload=oltp_mix preset=sst2 sample=true length_scale=4
 *
 * Keys:
 *   workload=<name>        built-in generator (see workload=list)
 *   asm=<path>             assemble and run a .s file instead
 *   preset=<name>          machine preset (see preset=list)
 *   seed, length_scale, footprint_scale   workload generator knobs
 *   core.* / mem.*         machine overrides (see sim/presets.hh)
 *   stats=none|summary|full   reporting depth (default summary)
 *   json=true              machine-readable stats to stdout
 *   sample=true [detail= skip=]  sampled instead of full simulation
 *   trace=true             pipeline event trace to stderr
 *   max_cycles=<n>         simulation budget
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "func/executor.hh"
#include "isa/assembler.hh"
#include "sim/machine.hh"
#include "sim/sampling.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

void
listAndExit()
{
    std::printf("workloads:");
    for (const auto &w : allWorkloadNames())
        std::printf(" %s", w.c_str());
    std::printf("\npresets:");
    for (const auto &p : presetNames())
        std::printf(" %s", p.c_str());
    std::printf("\n");
    std::exit(0);
}

Program
loadProgram(const Config &cfg, std::string &category)
{
    std::string asm_path = cfg.getString("asm", "");
    if (!asm_path.empty()) {
        std::ifstream in(asm_path);
        fatal_if(!in, "cannot open '%s'", asm_path.c_str());
        std::stringstream ss;
        ss << in.rdbuf();
        category = "user";
        return assemble(ss.str(), asm_path);
    }
    std::string name = cfg.getString("workload", "oltp_mix");
    if (name == "list")
        listAndExit();
    WorkloadParams wp;
    wp.seed = cfg.getUint("seed", 42);
    wp.lengthScale = cfg.getDouble("length_scale", 1.0);
    wp.footprintScale = cfg.getDouble("footprint_scale", 1.0);
    Workload wl = makeWorkload(name, wp);
    category = wl.category;
    return std::move(wl.program);
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    cfg.parseArgs(argc, argv);
    setVerbose(false);

    if (cfg.getString("preset", "") == "list")
        listAndExit();

    std::string category;
    Program program = loadProgram(cfg, category);

    MachineConfig mc = makePreset(cfg.getString("preset", "sst2"));
    applyOverrides(mc, cfg);

    if (cfg.getBool("sample", false)) {
        SampleParams sp;
        sp.detailInsts = cfg.getUint("detail", 20000);
        sp.skipInsts = cfg.getUint("skip", 80000);
        SampledResult r = runSampled(mc, program, sp);
        std::printf("sampled: preset=%s workload=%s ipc=%.4f "
                    "windows=%zu stddev=%.4f detail=%llu skip=%llu%s\n",
                    mc.presetName.c_str(), program.name().c_str(), r.ipc,
                    r.windowIpc.size(), r.ipcStddev(),
                    static_cast<unsigned long long>(r.detailedInsts),
                    static_cast<unsigned long long>(r.skippedInsts),
                    r.reachedEnd ? "" : " (budget)");
        return 0;
    }

    // Golden reference.
    MemoryImage golden_mem;
    golden_mem.loadSegments(program);
    Executor golden(program, golden_mem);
    ArchState golden_state;
    std::uint64_t golden_insts = golden.run(golden_state, 2'000'000'000ULL);
    fatal_if(!golden_state.halted, "program does not halt functionally");

    Machine machine(mc, program);
    if (cfg.getBool("trace", false))
        machine.core().setTraceSink([](const std::string &line) {
            std::fprintf(stderr, "%s\n", line.c_str());
        });
    RunResult r = machine.run(cfg.getUint("max_cycles", 500'000'000ULL));
    fatal_if(!r.finished, "simulation exceeded max_cycles");

    bool arch_ok = machine.core().archState().regsEqual(golden_state)
                   && machine.image().contentEquals(golden_mem)
                   && r.insts == golden_insts;

    if (cfg.getBool("json", false)) {
        std::fputs(machine.core().stats().dumpJson().c_str(), stdout);
        return arch_ok ? 0 : 2;
    }

    std::string stats_depth = cfg.getString("stats", "summary");
    Table t("sstsim: " + program.name() + " (" + category + ") on "
            + mc.presetName);
    t.setHeader({"metric", "value"});
    t.addRow({"cycles", std::to_string(r.cycles)});
    t.addRow({"instructions", std::to_string(r.insts)});
    t.addRow({"IPC", Table::num(r.ipc, 4)});
    t.addRow({"L1D miss rate", Table::num(100 * r.l1dMissRate, 2) + "%"});
    t.addRow({"demand MLP", Table::num(r.meanDemandMlp, 2)});
    t.addRow({"mispredict rate",
              Table::num(100 * r.mispredictRate, 2) + "%"});
    t.addRow({"arch state vs golden", arch_ok ? "MATCH" : "MISMATCH"});
    if (stats_depth != "none")
        t.print();
    if (stats_depth == "full")
        std::fputs(machine.core().stats().dump().c_str(), stdout);

    return arch_ok ? 0 : 2;
}
