/**
 * @file
 * sstsim — the general-purpose command-line driver.
 *
 * Runs any workload (built-in generator or an assembly file) on any
 * machine preset with arbitrary config overrides, verifies the result
 * against the golden functional executor, and reports statistics as
 * text or JSON.
 *
 * Examples:
 *   sstsim workload=hash_join preset=sst2
 *   sstsim workload=oltp_mix preset=ooo-large mem.dram_base_latency=480
 *   sstsim asm=kernel.s preset=scout stats=full
 *   sstsim workload=graph_scan preset=sst4 json=true
 *   sstsim workload=oltp_mix preset=sst2 sample=true length_scale=4
 *   sstsim workload=hash_join preset=sst4 fault.drop_fill_rate=1e-4 \
 *          fault.seed=7
 *   sstsim sweep examples/sweep_headline.cfg -j 8 --json out.json
 *
 * Keys:
 *   workload=<name>        built-in generator (see workload=list)
 *   asm=<path>             assemble and run a .s file instead
 *   preset=<name>          machine preset (see preset=list)
 *   seed, length_scale, footprint_scale   workload generator knobs
 *   core.* / mem.*         machine overrides (see sim/presets.hh)
 *   fault.*                fault injection (see fault/fault.hh)
 *   watchdog.*             livelock watchdog (see sim/presets.hh)
 *   stats=none|summary|full   reporting depth (default summary)
 *   json=true              machine-readable stats to stdout
 *   sample=true [detail= skip=]  sampled instead of full simulation
 *   profile_cache=<dir> [regions= region_insts=]  serve sampled runs
 *                          from a checkpoint-warmed snapshot library
 *                          (sim/profile.hh); built on first use,
 *                          reused by every later matching run
 *   warm_start=<n>         warm-start a full detailed run from the
 *                          library member nearest instruction n
 *   trace=true             pipeline event trace to stderr
 *   max_cycles=<n>         simulation budget
 *   snap_every=<n> [snap_out=<file>]  periodic machine snapshots
 *   resume=<file>          restore a snapshot before running
 *
 * Profile mode (checkpoint-warmed sampling, sim/profile.hh):
 *   sstsim profile <preset> <workload> [--cache DIR] [--regions N]
 *                  [--region-insts N] [key=value...]
 * fast-forwards the workload once, selects representative regions
 * (SimPoint-style basic-block-vector clustering; --regions 0 keeps
 * every fixed-stride region) and drops warm-state snapshots of each
 * into DIR, keyed by preset/model/workload/fingerprint/config so
 * sampled sweeps and warm_start= runs start instantly from them.
 *
 * Sweep mode (parallel experiment runner, src/exp):
 *   sstsim sweep <manifest> [-j N] [--json FILE] [--verify] [--quiet]
 *                [--resume DIR] [--snap-every N] [--profile-cache DIR]
 * runs the manifest's config x workload x seed matrix on a
 * work-stealing thread pool and reports aggregate tables plus an
 * optional structured JSON document. Per-job records are bit-identical
 * for every -j (see docs/INTERNALS.md, "The experiment runner").
 * --resume skips jobs whose record artifact already exists in DIR and
 * restarts in-flight jobs from their last machine checkpoint.
 * --distributed N runs the same sweep as a crash-safe service instead:
 * a broker leases jobs to N supervised worker *processes* (respawned
 * if they die, retried with backoff, quarantined if poisonous) with
 * byte-identical aggregate output (docs/INTERNALS.md, "The experiment
 * service").
 *
 * Service mode (sharded experiment service, src/svc):
 *   sstsim serve <manifest> --socket PATH --artifacts DIR [--workers N]
 *   sstsim work --socket PATH [--name NAME]
 * splits the broker and workers across processes: serve owns the
 * manifest and leases jobs over a Unix socket; any number of work
 * processes join, run jobs, stream records back and heartbeat their
 * leases. Workers may join or die mid-sweep.
 *
 * Diff mode (lockstep divergence search, src/snap):
 *   sstsim diff <preset> <workload> [--stride N] [--out PREFIX]
 *               [--a-fastfwd 0|1] [--b-fastfwd 0|1]
 *               [--inject-cycle N] [--inject-addr A]
 *               [a:key=value | b:key=value | key=value ...]
 * builds two machines that should behave identically (bare key=value
 * applies to both sides; "a:"/"b:" prefixes apply to one), runs them in
 * lockstep comparing full-state hashes, and bisects to the exact first
 * divergent cycle, dumping both sides' snapshots there. The default
 * sides compare fast-forwarding on (A) vs off (B) — the self-check that
 * stall-skipping is invisible. --inject-cycle flips one bit of side B's
 * memory at that cycle (differ self-test).
 *
 * Trace mode (structured event capture, src/trace):
 *   sstsim trace <preset> <workload> [--out FILE] [--cpistack]
 *                [--validate] [key=value...]
 * runs the workload with the event ring attached, writes a Chrome
 * trace_event JSON (load it in chrome://tracing or ui.perfetto.dev)
 * and optionally prints the CPI-stack attribution table. The CPI
 * categories are asserted to sum to the cycle count.
 *
 * CMP mode (shared-memory chip multiprocessor, src/sim/cmp.*):
 *   sstsim cmp <preset> <shared-workload> [--json] [-j N] [key=value...]
 * builds one program per core of a shared-memory workload
 * (spinlock_counter, producer_consumer, shared_table), runs them on a
 * coherent chip (e.g. preset=rock16, or any preset with coh.enabled=
 * true and cmp.cores=N) and reports per-core and aggregate IPC.
 * Without coherence the cores run salted disjoint address spaces and
 * the "shared" data is private per core — useful only as a baseline.
 *
 * Exit codes: 0 success, 2 architectural mismatch vs golden, 3 cycle
 * budget exhausted, 4 livelock declared by the watchdog, 5 state
 * divergence found by diff mode, 6 sweep finished with quarantined
 * jobs, 7 experiment-service infrastructure failure (socket lost,
 * worker pool exhausted), 64 bad usage (unknown/malformed key),
 * 65 bad input (config value, asm, workload).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "branch/predictor.hh"
#include "branch/valuepred.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/result.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "exp/json.hh"
#include "exp/runner.hh"
#include "exp/sweep.hh"
#include "exp/threadpool.hh"
#include "func/executor.hh"
#include "isa/assembler.hh"
#include "sim/cmp.hh"
#include "sim/machine.hh"
#include "sim/profile.hh"
#include "sim/sampling.hh"
#include "snap/diff.hh"
#include "snap/snap.hh"
#include "svc/server.hh"
#include "svc/worker.hh"
#include "trace/chrome.hh"
#include "trace/cpistack.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

using namespace sst;

namespace
{

/** Keys consumed by this driver itself (not machine configuration). */
const std::vector<std::string> &
driverKeys()
{
    static const std::vector<std::string> keys = {
        "workload", "asm",    "preset", "seed",   "length_scale",
        "footprint_scale",    "stats",  "json",   "sample",
        "detail",   "skip",   "trace",  "max_cycles",
        "snap_every", "snap_out", "resume",
        "profile_cache", "regions", "region_insts", "warm_start",
    };
    return keys;
}

int
fail(const Error &error)
{
    std::fprintf(stderr, "sstsim: %s\n", error.message.c_str());
    return error.exitCode;
}

void
listAndExit()
{
    std::printf("workloads:");
    for (const auto &w : allWorkloadNames())
        std::printf(" %s", w.c_str());
    std::printf("\nshared workloads (sstsim cmp):");
    for (const auto &w : sharedWorkloadNames())
        std::printf(" %s", w.c_str());
    std::printf("\npresets:");
    for (const auto &p : presetNames())
        std::printf(" %s", p.c_str());
    std::printf("\n");
    std::exit(exit_code::ok);
}

/** Reject unknown keys with a nearest-match suggestion. */
Result<void>
validateKeys(const Config &cfg)
{
    std::vector<std::string> known = driverKeys();
    for (const auto &k : machineConfigKeys())
        known.push_back(k);
    for (const auto &kv : cfg.items()) {
        if (std::find(known.begin(), known.end(), kv.first)
            != known.end())
            continue;
        std::string msg = "unknown config key '" + kv.first + "'";
        std::string near = closestMatch(kv.first, known);
        if (!near.empty())
            msg += "; did you mean '" + near + "'?";
        msg += " (workload=list / preset=list show run targets)";
        return Error{msg, exit_code::usage};
    }
    // Enumerated values get the same treatment as keys: reject with a
    // nearest-match suggestion and the usage exit code, before any
    // machine is built.
    auto checkEnum = [&](const char *key,
                         const std::vector<std::string> &values,
                         const char *what) -> Result<void> {
        std::string v = cfg.getString(key, "");
        if (v.empty()
            || std::find(values.begin(), values.end(), v)
                   != values.end())
            return {};
        std::string msg = std::string("unknown ") + what + " '" + v
                          + "' for " + key;
        std::string near = closestMatch(v, values);
        if (!near.empty())
            msg += "; did you mean '" + near + "'?";
        msg += " (known:";
        for (const auto &name : values)
            msg += " " + name;
        msg += ")";
        return Error{msg, exit_code::usage};
    };
    if (auto r = checkEnum("core.predictor", predictorNames(),
                           "branch predictor");
        !r.ok())
        return r;
    if (auto r = checkEnum("core.value_pred", valuePredNames(),
                           "value predictor");
        !r.ok())
        return r;
    return {};
}

Result<Program>
loadProgram(const Config &cfg, std::string &category)
{
    std::string asm_path = cfg.getString("asm", "");
    if (!asm_path.empty()) {
        std::ifstream in(asm_path);
        if (!in)
            return Error{"cannot open '" + asm_path + "'",
                         exit_code::badInput};
        std::stringstream ss;
        ss << in.rdbuf();
        category = "user";
        return tryAssemble(ss.str(), asm_path);
    }
    std::string name = cfg.getString("workload", "oltp_mix");
    if (name == "list")
        listAndExit();
    auto names = allWorkloadNames();
    if (std::find(names.begin(), names.end(), name) == names.end()) {
        auto shared = sharedWorkloadNames();
        if (std::find(shared.begin(), shared.end(), name)
            != shared.end())
            return Error{"'" + name
                             + "' is a shared-memory workload; run it "
                               "with 'sstsim cmp <preset> " + name
                             + "'",
                         exit_code::usage};
        std::string msg = "unknown workload '" + name + "'";
        std::string near = closestMatch(name, names);
        if (!near.empty())
            msg += "; did you mean '" + near + "'?";
        msg += " (workload=list shows all)";
        return Error{msg, exit_code::usage};
    }
    WorkloadParams wp;
    wp.seed = cfg.getUint("seed", 42);
    wp.lengthScale = cfg.getDouble("length_scale", 1.0);
    wp.footprintScale = cfg.getDouble("footprint_scale", 1.0);
    Workload wl = makeWorkload(name, wp);
    category = wl.category;
    return std::move(wl.program);
}

/**
 * `sstsim sweep <manifest> [-j N] [--json FILE] [--verify] [--quiet]`
 * — expand the manifest and run its jobs on the parallel runner.
 */
/** Parse a positive integer CLI operand or die with usage. */
Result<std::uint64_t>
parseCount(const char *flag, const char *text, bool allowZero = false)
{
    char *end = nullptr;
    unsigned long long n = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || (!allowZero && n == 0))
        return Error{std::string("bad ") + flag + " value '" + text
                         + "' (want a positive integer)",
                     exit_code::usage};
    return static_cast<std::uint64_t>(n);
}

int
sweepMain(int argc, char **argv)
{
    std::string manifest;
    std::string jsonPath;
    std::string artifactDir;
    std::string socketPath;
    std::string profileCache;
    std::uint64_t snapEvery = 0;
    unsigned jobs = 1;
    unsigned distributed = 0;
    bool quiet = false;
    bool forceVerify = false;
    svc::BrokerOptions brokerOpts;
    std::vector<std::string> workerArgs;

    // Service flags that take one integer operand and are forwarded /
    // applied verbatim; parsed generically to keep the loop readable.
    auto uintFlag = [&](const std::string &arg, int &i,
                        std::uint64_t &out, bool allowZero = false) {
        if (i + 1 >= argc)
            return Result<bool>(
                Error{arg + " needs a value", exit_code::usage});
        auto n = parseCount(arg.c_str(), argv[++i], allowZero);
        if (!n.ok())
            return Result<bool>(n.error());
        out = n.value();
        return Result<bool>(true);
    };

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        std::uint64_t tmp = 0;
        if (arg == "--distributed") {
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            distributed = static_cast<unsigned>(tmp);
        } else if (arg == "--socket") {
            if (++i >= argc)
                return fail(Error{"--socket needs a path",
                                  exit_code::usage});
            socketPath = argv[i];
        } else if (arg == "--lease-timeout-ms") {
            if (auto r = uintFlag(arg, i, brokerOpts.leaseTimeoutMs);
                !r.ok())
                return fail(r.error());
        } else if (arg == "--max-attempts") {
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            brokerOpts.maxAttempts = static_cast<unsigned>(tmp);
        } else if (arg == "--backoff-base-ms") {
            if (auto r = uintFlag(arg, i, brokerOpts.backoffBaseMs);
                !r.ok())
                return fail(r.error());
        } else if (arg == "--backoff-max-ms") {
            if (auto r = uintFlag(arg, i, brokerOpts.backoffMaxMs);
                !r.ok())
                return fail(r.error());
        } else if (arg == "--chaos-kill-cycle"
                   || arg == "--chaos-kill-attempt"
                   || arg == "--chaos-stall-cycle"
                   || arg == "--chaos-stall-ms"
                   || arg == "--chaos-stall-attempt"
                   || arg == "--heartbeat-ms") {
            // Validated here, executed by the spawned workers.
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            workerArgs.push_back(arg);
            workerArgs.push_back(argv[i]);
        } else if (arg == "--resume") {
            if (++i >= argc)
                return fail(Error{"--resume needs an artifact directory",
                                  exit_code::usage});
            artifactDir = argv[i];
        } else if (arg == "--snap-every") {
            if (++i >= argc)
                return fail(Error{"--snap-every needs a cycle count",
                                  exit_code::usage});
            char *end = nullptr;
            unsigned long long n = std::strtoull(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || n == 0)
                return fail(Error{"bad --snap-every value '"
                                      + std::string(argv[i])
                                      + "' (want a positive cycle "
                                        "count)",
                                  exit_code::usage});
            snapEvery = n;
        } else if (arg == "-j") {
            if (++i >= argc)
                return fail(Error{"-j needs a thread count",
                                  exit_code::usage});
            char *end = nullptr;
            unsigned long n = std::strtoul(argv[i], &end, 10);
            if (end == argv[i] || *end != '\0' || n == 0)
                return fail(Error{"bad -j value '"
                                      + std::string(argv[i])
                                      + "' (want a positive integer)",
                                  exit_code::usage});
            jobs = static_cast<unsigned>(n);
        } else if (arg.rfind("-j", 0) == 0 && arg.size() > 2) {
            return fail(Error{"write '-j N' with a space",
                              exit_code::usage});
        } else if (arg == "--json") {
            if (++i >= argc)
                return fail(Error{"--json needs an output path",
                                  exit_code::usage});
            jsonPath = argv[i];
        } else if (arg == "--profile-cache") {
            if (++i >= argc)
                return fail(Error{"--profile-cache needs a directory",
                                  exit_code::usage});
            profileCache = argv[i];
        } else if (arg == "--verify") {
            forceVerify = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return fail(Error{"unknown sweep option '" + arg
                                  + "' (know -j, --json, --verify, "
                                    "--quiet, --resume, --snap-every, "
                                    "--profile-cache, "
                                    "--distributed, --socket, "
                                    "--lease-timeout-ms, "
                                    "--max-attempts, --backoff-base-ms, "
                                    "--backoff-max-ms, --chaos-*)",
                              exit_code::usage});
        } else if (manifest.empty()) {
            manifest = arg;
        } else {
            return fail(Error{"more than one manifest given ('"
                                  + manifest + "' and '" + arg + "')",
                              exit_code::usage});
        }
    }
    if (manifest.empty())
        return fail(Error{"usage: sstsim sweep <manifest> [-j N] "
                          "[--json FILE] [--verify] [--quiet] "
                          "[--resume DIR] [--snap-every N]",
                          exit_code::usage});
    if (snapEvery && artifactDir.empty())
        return fail(Error{"--snap-every needs --resume DIR (the "
                          "checkpoints live in the artifact directory)",
                          exit_code::usage});

    auto parsed = exp::SweepSpec::parseFile(manifest);
    if (!parsed.ok())
        return fail(parsed.error());
    exp::SweepSpec spec = parsed.take();

    if (distributed) {
        // The broker ships the manifest *text* to workers, which
        // re-parse it locally; CLI-side spec mutations would silently
        // not propagate, so verify must come from the manifest.
        if (forceVerify)
            return fail(
                Error{"--verify cannot combine with --distributed; "
                      "set 'sweep.verify = true' in the manifest",
                      exit_code::usage});
        if (!profileCache.empty())
            return fail(
                Error{"--profile-cache cannot combine with "
                      "--distributed; workers share "
                      "'<artifacts>/profile-cache' by default (or set "
                      "'sweep.profile_cache' in the manifest)",
                      exit_code::usage});
        if (artifactDir.empty())
            return fail(Error{"--distributed needs --resume DIR (the "
                              "workers share artifacts there)",
                              exit_code::usage});
        std::ifstream in(manifest);
        std::stringstream ss;
        ss << in.rdbuf();

        svc::ServeOptions so;
        so.socketPath = socketPath.empty()
                            ? artifactDir + "/broker.sock"
                            : socketPath;
        so.artifactDir = artifactDir;
        so.snapEvery = snapEvery;
        so.resume = true;
        so.spawnWorkers = distributed;
        so.workerArgs = workerArgs;
        so.jsonPath = jsonPath;
        so.quiet = quiet;
        so.broker = brokerOpts;
        if (!quiet)
            std::printf("sweep '%s': %zu jobs distributed over %u "
                        "workers (socket %s)\n",
                        spec.name.c_str(), spec.jobCount(), distributed,
                        so.socketPath.c_str());
        return svc::serveSweep(spec, ss.str(), so);
    }
    if (forceVerify) {
        if (spec.sample)
            return fail(Error{"--verify cannot combine with a sampled "
                              "sweep (sweep.sample estimates IPC, it "
                              "does not reproduce the golden final "
                              "state)",
                              exit_code::usage});
        spec.verifyGolden = true;
    }

    exp::SweepRunOptions options;
    options.jobs = jobs ? jobs : exp::ThreadPool::defaultWorkers();
    options.artifactDir = artifactDir;
    options.snapEvery = snapEvery;
    options.resume = !artifactDir.empty();
    options.profileCache = profileCache;

    if (!quiet)
        std::printf("sweep '%s': %zu points x %zu presets = %zu jobs "
                    "on %u threads%s\n",
                    spec.name.c_str(), spec.pointCount(),
                    spec.presets.size(), spec.jobCount(), options.jobs,
                    spec.verifyGolden ? " (golden verify on)" : "");

    exp::ResultSink sink(spec.jobCount());
    std::size_t total = spec.jobCount();
    if (!quiet)
        sink.setOnRecord([total, done = std::size_t{0}](
                             const exp::JobOutcome &out) mutable {
            // Completion order, so lines vary run to run; the records
            // themselves are index-keyed and deterministic.
            ++done;
            std::string status =
                !out.ran ? "ERROR"
                : out.result.finished
                    ? "ipc=" + Table::num(out.result.ipc, 4)
                    : degradeReasonName(out.result.degrade);
            std::fprintf(stderr, "[%zu/%zu] #%zu %s/%s %s\n", done,
                         total, out.spec.index, out.spec.preset.c_str(),
                         out.spec.workload.c_str(), status.c_str());
        });

    int code = exp::runSweep(spec, options, sink);

    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out)
            return fail(Error{"cannot write '" + jsonPath + "'",
                              exit_code::badInput});
        out << exp::sweepJson(spec, sink);
        if (!quiet)
            std::printf("wrote %s (%zu records)\n", jsonPath.c_str(),
                        sink.outcomes().size());
    }

    if (!quiet) {
        exp::aggregateTable(spec, sink).print();
        if (!spec.baseline.empty())
            exp::baselineTable(spec, sink).print();
        for (const auto &out : sink.outcomes())
            if (!out.ran)
                std::fprintf(stderr, "sweep: job #%zu (%s/%s): %s\n",
                             out.spec.index, out.spec.preset.c_str(),
                             out.spec.workload.c_str(),
                             out.error.c_str());
    }
    return code;
}

/**
 * `sstsim serve <manifest> --socket PATH --artifacts DIR
 *  [--snap-every N] [--json FILE] [--workers N] [--lease-timeout-ms N]
 *  [--max-attempts N] [--backoff-base-ms N] [--backoff-max-ms N]
 *  [--quiet]`
 * — run the sweep broker: lease the manifest's jobs to workers
 * (`sstsim work`) over a Unix socket. --workers N additionally spawns
 * and supervises N local workers (like sweep --distributed N).
 */
int
serveMain(int argc, char **argv)
{
    std::string manifest;
    svc::ServeOptions so;
    std::uint64_t tmp = 0;

    auto uintFlag = [&](const std::string &arg, int &i,
                        std::uint64_t &out) {
        if (i + 1 >= argc)
            return Result<bool>(
                Error{arg + " needs a value", exit_code::usage});
        auto n = parseCount(arg.c_str(), argv[++i]);
        if (!n.ok())
            return Result<bool>(n.error());
        out = n.value();
        return Result<bool>(true);
    };

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--socket" || arg == "--artifacts"
            || arg == "--json") {
            if (++i >= argc)
                return fail(
                    Error{arg + " needs a path", exit_code::usage});
            (arg == "--socket"      ? so.socketPath
             : arg == "--artifacts" ? so.artifactDir
                                    : so.jsonPath) = argv[i];
        } else if (arg == "--snap-every") {
            if (auto r = uintFlag(arg, i, so.snapEvery); !r.ok())
                return fail(r.error());
        } else if (arg == "--workers") {
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            so.spawnWorkers = static_cast<unsigned>(tmp);
        } else if (arg == "--lease-timeout-ms") {
            if (auto r = uintFlag(arg, i, so.broker.leaseTimeoutMs);
                !r.ok())
                return fail(r.error());
        } else if (arg == "--max-attempts") {
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            so.broker.maxAttempts = static_cast<unsigned>(tmp);
        } else if (arg == "--backoff-base-ms") {
            if (auto r = uintFlag(arg, i, so.broker.backoffBaseMs);
                !r.ok())
                return fail(r.error());
        } else if (arg == "--backoff-max-ms") {
            if (auto r = uintFlag(arg, i, so.broker.backoffMaxMs);
                !r.ok())
                return fail(r.error());
        } else if (arg == "--quiet") {
            so.quiet = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return fail(Error{"unknown serve option '" + arg + "'",
                              exit_code::usage});
        } else if (manifest.empty()) {
            manifest = arg;
        } else {
            return fail(Error{"more than one manifest given",
                              exit_code::usage});
        }
    }
    if (manifest.empty() || so.socketPath.empty()
        || so.artifactDir.empty())
        return fail(Error{"usage: sstsim serve <manifest> --socket "
                          "PATH --artifacts DIR [--workers N] "
                          "[--snap-every N] [--json FILE] [--quiet] "
                          "[--lease-timeout-ms N] [--max-attempts N] "
                          "[--backoff-base-ms N] [--backoff-max-ms N]",
                          exit_code::usage});

    std::ifstream in(manifest);
    if (!in)
        return fail(Error{"cannot open '" + manifest + "'",
                          exit_code::badInput});
    std::stringstream ss;
    ss << in.rdbuf();
    auto parsed = exp::SweepSpec::parse(ss.str(), manifest);
    if (!parsed.ok())
        return fail(parsed.error());
    return svc::serveSweep(parsed.value(), ss.str(), so);
}

/**
 * `sstsim work --socket PATH [--name NAME] [--heartbeat-ms N]
 *  [--chaos-kill-cycle N] [--chaos-kill-attempt N]
 *  [--chaos-stall-cycle N] [--chaos-stall-ms N]
 *  [--chaos-stall-attempt N]`
 * — join a running broker as one worker process. The chaos flags
 * deterministically kill/stall this worker at a simulated cycle of a
 * leased job (test hooks; see fault/chaos.hh).
 */
int
workMain(int argc, char **argv)
{
    svc::WorkerOptions wo;
    std::uint64_t tmp = 0;

    auto uintFlag = [&](const std::string &arg, int &i,
                        std::uint64_t &out) {
        if (i + 1 >= argc)
            return Result<bool>(
                Error{arg + " needs a value", exit_code::usage});
        auto n = parseCount(arg.c_str(), argv[++i]);
        if (!n.ok())
            return Result<bool>(n.error());
        out = n.value();
        return Result<bool>(true);
    };

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--socket" || arg == "--name") {
            if (++i >= argc)
                return fail(
                    Error{arg + " needs a value", exit_code::usage});
            (arg == "--socket" ? wo.socketPath : wo.name) = argv[i];
        } else if (arg == "--heartbeat-ms") {
            if (auto r = uintFlag(arg, i, wo.heartbeatMs); !r.ok())
                return fail(r.error());
        } else if (arg == "--chaos-kill-cycle") {
            if (auto r = uintFlag(arg, i, wo.chaosKillCycle); !r.ok())
                return fail(r.error());
        } else if (arg == "--chaos-kill-attempt") {
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            wo.chaosKillAttempt = static_cast<unsigned>(tmp);
        } else if (arg == "--chaos-stall-cycle") {
            if (auto r = uintFlag(arg, i, wo.chaosStallCycle); !r.ok())
                return fail(r.error());
        } else if (arg == "--chaos-stall-ms") {
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            wo.chaosStallMs = static_cast<unsigned>(tmp);
        } else if (arg == "--chaos-stall-attempt") {
            if (auto r = uintFlag(arg, i, tmp); !r.ok())
                return fail(r.error());
            wo.chaosStallAttempt = static_cast<unsigned>(tmp);
        } else {
            return fail(Error{"unknown work option '" + arg
                                  + "' (usage: sstsim work --socket "
                                    "PATH [--name NAME] "
                                    "[--heartbeat-ms N] [--chaos-*])",
                              exit_code::usage});
        }
    }
    if (wo.socketPath.empty())
        return fail(Error{"usage: sstsim work --socket PATH "
                          "[--name NAME] [--heartbeat-ms N] [--chaos-*]",
                          exit_code::usage});
    return svc::runWorker(wo);
}

/**
 * `sstsim cmp <preset> <shared-workload> [--json] [-j N]
 * [key=value...]` — -j runs the tick engine on N worker threads
 * (byte-identical results at any N; cmp.workers=N is the same knob).
 * run a shared-memory workload on a chip multiprocessor. The core
 * count comes from cmp.cores (falling back to the preset's size, then
 * 2). No golden check: a multi-threaded outcome is interleaving-
 * dependent, so correctness lives in tests/test_coherence.cc instead.
 */
int
cmpMain(int argc, char **argv)
{
    std::string preset_name;
    std::string workload_name;
    bool json = false;
    Config cfg;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json") {
            json = true;
        } else if (arg == "-j" || arg == "--jobs") {
            if (++i >= argc)
                return fail(Error{arg + " needs a worker count",
                                  exit_code::usage});
            auto n = parseCount("-j", argv[i]);
            if (!n.ok())
                return fail(n.error());
            if (n.value() > kMaxCmpWorkers)
                return fail(Error{
                    "-j " + std::to_string(n.value())
                        + " exceeds the worker cap of "
                        + std::to_string(kMaxCmpWorkers),
                    exit_code::usage});
            cfg.set("cmp.workers", std::to_string(n.value()));
        } else if (!arg.empty() && arg[0] == '-') {
            return fail(Error{"unknown cmp option '" + arg
                                  + "' (know --json, -j N)",
                              exit_code::usage});
        } else if (arg.find('=') != std::string::npos) {
            auto parsed = cfg.tryParseAssignment(argv[i]);
            if (!parsed.ok())
                return fail(parsed.error());
        } else if (preset_name.empty()) {
            preset_name = arg;
        } else if (workload_name.empty()) {
            workload_name = arg;
        } else {
            return fail(Error{"unexpected argument '" + arg + "'",
                              exit_code::usage});
        }
    }
    if (preset_name.empty() || workload_name.empty())
        return fail(Error{"usage: sstsim cmp <preset> "
                          "<shared-workload> [--json] [-j N] "
                          "[key=value...]",
                          exit_code::usage});
    if (auto valid = validateKeys(cfg); !valid.ok())
        return fail(valid.error());

    auto names = sharedWorkloadNames();
    if (std::find(names.begin(), names.end(), workload_name)
        == names.end()) {
        std::string msg = "unknown shared workload '" + workload_name
                          + "'";
        std::string near = closestMatch(workload_name, names);
        if (!near.empty())
            msg += "; did you mean '" + near + "'?";
        return fail(Error{msg, exit_code::usage});
    }

    auto preset = trapFatal([&] { return makePreset(preset_name); },
                            exit_code::usage);
    if (!preset.ok()) {
        Error e = preset.error();
        std::string near = closestMatch(preset_name, presetNames());
        if (!near.empty())
            e.message += "; did you mean '" + near + "'?";
        e.message += " (preset=list shows all)";
        return fail(e);
    }
    MachineConfig mc = preset.take();
    if (auto applied = trapFatal([&] { applyOverrides(mc, cfg); });
        !applied.ok())
        return fail(applied.error());
    // Shared workloads only make sense over shared memory: coherence
    // defaults ON here whatever the preset says (an explicit
    // coh.enabled=false still wins, and salts the cores apart).
    if (!cfg.has("coh.enabled"))
        mc.mem.coh.enabled = true;
    json = json || cfg.getBool("json", false);
    unsigned cores = mc.cmpCores ? mc.cmpCores : 2;

    WorkloadParams wp;
    wp.seed = cfg.getUint("seed", 42);
    wp.lengthScale = cfg.getDouble("length_scale", 1.0);
    wp.footprintScale = cfg.getDouble("footprint_scale", 1.0);
    auto built = trapFatal(
        [&] { return makeSharedWorkload(workload_name, cores, wp); },
        exit_code::usage);
    if (!built.ok())
        return fail(built.error());
    std::vector<Workload> workloads = built.take();
    std::vector<const Program *> programs;
    for (const Workload &w : workloads)
        programs.push_back(&w.program);

    auto run = trapFatal([&] {
        Cmp cmp(mc, programs);
        return cmp.run(cfg.getUint("max_cycles", 500'000'000ULL));
    });
    if (!run.ok())
        return fail(run.error());
    CmpResult r = run.take();

    if (json) {
        std::printf("{\"preset\": \"%s\", \"workload\": \"%s\", "
                    "\"cores\": %u, \"coherent\": %s, \"cycles\": %llu, "
                    "\"insts\": %llu, \"aggregate_ipc\": %.6f, "
                    "\"finished\": %s, \"per_core_ipc\": [",
                    mc.presetName.c_str(), workload_name.c_str(),
                    r.cores, mc.mem.coh.enabled ? "true" : "false",
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(r.totalInsts),
                    r.aggregateIpc, r.finished ? "true" : "false");
        for (std::size_t i = 0; i < r.perCoreIpc.size(); ++i)
            std::printf("%s%.6f", i ? ", " : "", r.perCoreIpc[i]);
        std::printf("]}\n");
    } else {
        Table t("sstsim cmp: " + workload_name + " on " + mc.presetName
                + (mc.mem.coh.enabled ? " (coherent)" : " (salted)"));
        t.setHeader({"metric", "value"});
        t.addRow({"cores", std::to_string(r.cores)});
        t.addRow({"cycles", std::to_string(r.cycles)});
        t.addRow({"instructions", std::to_string(r.totalInsts)});
        t.addRow({"aggregate IPC", Table::num(r.aggregateIpc, 4)});
        for (std::size_t i = 0; i < r.perCoreIpc.size(); ++i)
            t.addRow({"core" + std::to_string(i) + " IPC",
                      Table::num(r.perCoreIpc[i], 4)});
        t.addRow({"finished", r.finished ? "yes"
                                         : degradeReasonName(r.degrade)});
        t.print();
    }
    if (!r.finished)
        return r.degrade == DegradeReason::Livelock
                   ? exit_code::livelock
                   : exit_code::cycleBudget;
    return exit_code::ok;
}

/**
 * `sstsim trace <preset> <workload> [--out FILE] [--cpistack]
 * [--validate] [key=value...]` — run with the structured event ring
 * attached and export a Chrome trace_event JSON.
 */
int
traceMain(int argc, char **argv)
{
    std::string preset_name;
    std::string workload_name;
    std::string out_path = "trace.json";
    bool cpistack = false;
    bool validate = false;
    Config cfg;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--out") {
            if (++i >= argc)
                return fail(Error{"--out needs a file path",
                                  exit_code::usage});
            out_path = argv[i];
        } else if (arg == "--cpistack") {
            cpistack = true;
        } else if (arg == "--validate") {
            validate = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return fail(Error{"unknown trace option '" + arg
                                  + "' (know --out, --cpistack, "
                                    "--validate)",
                              exit_code::usage});
        } else if (arg.find('=') != std::string::npos) {
            auto parsed = cfg.tryParseAssignment(argv[i]);
            if (!parsed.ok())
                return fail(parsed.error());
        } else if (preset_name.empty()) {
            preset_name = arg;
        } else if (workload_name.empty()) {
            workload_name = arg;
        } else {
            return fail(Error{"unexpected argument '" + arg + "'",
                              exit_code::usage});
        }
    }
    if (preset_name.empty() || workload_name.empty())
        return fail(Error{"usage: sstsim trace <preset> <workload> "
                          "[--out FILE] [--cpistack] [--validate] "
                          "[key=value...]",
                          exit_code::usage});
    if (auto valid = validateKeys(cfg); !valid.ok())
        return fail(valid.error());

    std::string category;
    Config load_cfg = cfg;
    load_cfg.set("workload", workload_name);
    auto loaded = loadProgram(load_cfg, category);
    if (!loaded.ok())
        return fail(loaded.error());
    Program program = loaded.take();

    auto preset = trapFatal([&] { return makePreset(preset_name); },
                            exit_code::usage);
    if (!preset.ok()) {
        Error e = preset.error();
        std::string near = closestMatch(preset_name, presetNames());
        if (!near.empty())
            e.message += "; did you mean '" + near + "'?";
        e.message += " (preset=list shows all)";
        return fail(e);
    }
    MachineConfig mc = preset.take();
    if (auto applied = trapFatal([&] { applyOverrides(mc, cfg); });
        !applied.ok())
        return fail(applied.error());

    trace::TraceBuffer buf;
    Machine machine(mc, program);
    machine.attachTraceBuffer(&buf);
    RunResult r = machine.run(cfg.getUint("max_cycles", 500'000'000ULL));
    if (!r.finished) {
        std::fprintf(stderr,
                     "sstsim trace: run degraded (%s) after %llu "
                     "cycles\n",
                     degradeReasonName(r.degrade),
                     static_cast<unsigned long long>(r.cycles));
        return r.degrade == DegradeReason::Livelock
                   ? exit_code::livelock
                   : exit_code::cycleBudget;
    }

    // The attribution invariant: every cycle charged exactly once.
    trace::CpiStack &stack = machine.core().cpiStack();
    std::uint64_t total = stack.total();
    std::uint64_t cycles = r.cycles;
    double rel_err =
        cycles ? std::abs(static_cast<double>(total)
                          - static_cast<double>(cycles))
                     / static_cast<double>(cycles)
               : 0.0;
    if (rel_err > 0.001) {
        std::fprintf(stderr,
                     "sstsim trace: CPI stack sums to %llu but the run "
                     "took %llu cycles (off by %.3f%%)\n",
                     static_cast<unsigned long long>(total),
                     static_cast<unsigned long long>(cycles),
                     100 * rel_err);
        return exit_code::archMismatch;
    }

    std::string doc = trace::chromeTraceJson(
        mc.core.name + " (" + machine.core().model() + ")", buf);
    std::ofstream out(out_path);
    if (!out)
        return fail(Error{"cannot write '" + out_path + "'",
                          exit_code::badInput});
    out << doc;
    out.close();

    if (validate) {
        auto parsed = exp::Json::parse(doc);
        if (!parsed.ok())
            return fail(Error{"exported trace is not valid JSON: "
                                  + parsed.error().message,
                              exit_code::archMismatch});
        const exp::Json &root = parsed.take();
        if (!root.isObject() || !root.find("traceEvents")
            || !(*root.find("traceEvents")).isArray())
            return fail(Error{"exported trace lacks a traceEvents "
                              "array",
                              exit_code::archMismatch});
    }

#if !SST_TRACE
    std::fprintf(stderr,
                 "sstsim trace: note: built with SST_TRACE=OFF — event "
                 "recording is compiled out (the trace has no events; "
                 "CPI attribution is still exact)\n");
#endif

    std::printf("trace: %s/%s %llu cycles, %llu events (%llu dropped) "
                "-> %s\n",
                mc.presetName.c_str(), program.name().c_str(),
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(buf.recorded()),
                static_cast<unsigned long long>(buf.dropped()),
                out_path.c_str());

    if (cpistack) {
        Table t("CPI stack: " + program.name() + " on "
                + mc.presetName);
        t.setHeader({"category", "cycles", "CPI", "share"});
        double insts = static_cast<double>(r.insts);
        for (std::size_t i = 0; i < trace::numCpiCats; ++i) {
            auto cat = static_cast<trace::CpiCat>(i);
            std::uint64_t v = stack.value(cat);
            if (v == 0)
                continue;
            t.addRow({trace::cpiCatName(cat), std::to_string(v),
                      insts ? Table::num(static_cast<double>(v) / insts,
                                         4)
                            : "-",
                      cycles ? Table::num(100.0
                                              * static_cast<double>(v)
                                              / static_cast<double>(
                                                  cycles),
                                          1)
                                   + "%"
                             : "-"});
        }
        t.addRow({"total", std::to_string(total),
                  insts ? Table::num(static_cast<double>(total) / insts,
                                     4)
                        : "-",
                  "100.0%"});
        t.print();
    }
    return exit_code::ok;
}

/**
 * `sstsim diff <preset> <workload> [--stride N] [--max-cycles N]
 * [--out PREFIX] [--a-fastfwd 0|1] [--b-fastfwd 0|1]
 * [--inject-cycle N] [--inject-addr A] [a:k=v | b:k=v | k=v ...]`
 * — lockstep state-hash comparison of two machines that should behave
 * identically; bisects to the first divergent cycle.
 */
int
diffMain(int argc, char **argv)
{
    std::string preset_name;
    std::string workload_name;
    snap::DiffOptions opt;
    opt.maxCycles = 20'000'000;
    opt.outPrefix = "diff";
    Config shared, onlyA, onlyB;

    auto uintArg = [&](int &i, const char *what,
                       std::uint64_t &out) -> Result<void> {
        if (++i >= argc)
            return Error{std::string(what) + " needs a value",
                         exit_code::usage};
        char *end = nullptr;
        unsigned long long n = std::strtoull(argv[i], &end, 10);
        if (end == argv[i] || *end != '\0')
            return Error{std::string("bad ") + what + " value '"
                             + argv[i] + "'",
                         exit_code::usage};
        out = n;
        return {};
    };

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        Result<void> parsed = {};
        std::uint64_t n = 0;
        if (arg == "--stride") {
            if (parsed = uintArg(i, "--stride", n); parsed.ok()) {
                if (n == 0)
                    return fail(Error{"--stride must be positive",
                                      exit_code::usage});
                opt.stride = n;
            }
        } else if (arg == "--max-cycles") {
            if (parsed = uintArg(i, "--max-cycles", n); parsed.ok())
                opt.maxCycles = n;
        } else if (arg == "--inject-cycle") {
            if (parsed = uintArg(i, "--inject-cycle", n); parsed.ok())
                opt.injectCycle = n;
        } else if (arg == "--inject-addr") {
            if (parsed = uintArg(i, "--inject-addr", n); parsed.ok())
                opt.injectAddr = n;
        } else if (arg == "--a-fastfwd") {
            if (parsed = uintArg(i, "--a-fastfwd", n); parsed.ok())
                opt.fastfwdA = n != 0;
        } else if (arg == "--b-fastfwd") {
            if (parsed = uintArg(i, "--b-fastfwd", n); parsed.ok())
                opt.fastfwdB = n != 0;
        } else if (arg == "--out") {
            if (++i >= argc)
                return fail(Error{"--out needs a path prefix",
                                  exit_code::usage});
            opt.outPrefix = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            return fail(Error{"unknown diff option '" + arg
                                  + "' (know --stride, --max-cycles, "
                                    "--out, --a-fastfwd, --b-fastfwd, "
                                    "--inject-cycle, --inject-addr)",
                              exit_code::usage});
        } else if (arg.find('=') != std::string::npos) {
            Config *target = &shared;
            std::string assignment = arg;
            if (arg.rfind("a:", 0) == 0) {
                target = &onlyA;
                assignment = arg.substr(2);
            } else if (arg.rfind("b:", 0) == 0) {
                target = &onlyB;
                assignment = arg.substr(2);
            }
            if (auto p = target->tryParseAssignment(assignment); !p.ok())
                return fail(p.error());
        } else if (preset_name.empty()) {
            preset_name = arg;
        } else if (workload_name.empty()) {
            workload_name = arg;
        } else {
            return fail(Error{"unexpected argument '" + arg + "'",
                              exit_code::usage});
        }
        if (!parsed.ok())
            return fail(parsed.error());
    }
    if (preset_name.empty() || workload_name.empty())
        return fail(Error{"usage: sstsim diff <preset> <workload> "
                          "[--stride N] [--max-cycles N] [--out PREFIX] "
                          "[--a-fastfwd 0|1] [--b-fastfwd 0|1] "
                          "[--inject-cycle N] [--inject-addr A] "
                          "[a:k=v | b:k=v | k=v ...]",
                          exit_code::usage});

    std::string category;
    Config load_cfg = shared;
    load_cfg.set("workload", workload_name);
    auto loaded = loadProgram(load_cfg, category);
    if (!loaded.ok())
        return fail(loaded.error());
    Program program = loaded.take();

    auto makeSide = [&](const Config &side) {
        return trapFatal(
            [&] {
                MachineConfig mc = makePreset(preset_name);
                Config cfg = shared;
                for (const auto &kv : side.items())
                    cfg.set(kv.first, kv.second);
                applyOverrides(mc, cfg);
                return mc;
            },
            exit_code::usage);
    };
    auto mcA = makeSide(onlyA);
    if (!mcA.ok())
        return fail(mcA.error());
    auto mcB = makeSide(onlyB);
    if (!mcB.ok())
        return fail(mcB.error());

    Machine a(mcA.take(), program);
    Machine b(mcB.take(), program);
    snap::DiffReport rep = snap::diffMachines(a, b, opt);

    if (!rep.diverged) {
        std::printf("diff: %s/%s no divergence over %llu cycles "
                    "(%llu compare points, A %s at %llu, B %s at "
                    "%llu)\n",
                    preset_name.c_str(), program.name().c_str(),
                    static_cast<unsigned long long>(
                        std::max(rep.cyclesA, rep.cyclesB)),
                    static_cast<unsigned long long>(rep.comparedPoints),
                    rep.finishedA ? "halted" : "stopped",
                    static_cast<unsigned long long>(rep.cyclesA),
                    rep.finishedB ? "halted" : "stopped",
                    static_cast<unsigned long long>(rep.cyclesB));
        return exit_code::ok;
    }

    std::printf("diff: %s/%s DIVERGED at cycle %llu "
                "(hash A %016llx != B %016llx)\n",
                preset_name.c_str(), program.name().c_str(),
                static_cast<unsigned long long>(rep.firstDivergentCycle),
                static_cast<unsigned long long>(rep.hashA),
                static_cast<unsigned long long>(rep.hashB));
    if (!rep.snapA.empty())
        std::printf("diff: snapshots dumped: %s %s\n", rep.snapA.c_str(),
                    rep.snapB.c_str());
    return exit_code::diverged;
}

/**
 * `sstsim profile <preset> <workload> [--cache DIR] [--regions N]
 * [--region-insts N] [key=value ...]` — fast-forward the workload once
 * and build (or refresh) its warm-state region snapshot library, so
 * later sampled or warm_start= runs of the same identity start
 * instantly. With --cache the library is persisted under DIR (the
 * entry sampled sweeps and warm_start= look up); without it the pass
 * just reports what it would snapshot.
 */
int
profileMain(int argc, char **argv)
{
    std::string preset_name;
    std::string workload_name;
    std::string cacheDir;
    ProfileParams pp;
    Config cfg;

    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--cache") {
            if (++i >= argc)
                return fail(Error{"--cache needs a directory",
                                  exit_code::usage});
            cacheDir = argv[i];
        } else if (arg == "--regions") {
            if (++i >= argc)
                return fail(Error{"--regions needs a value",
                                  exit_code::usage});
            auto n = parseCount("--regions", argv[i], true);
            if (!n.ok())
                return fail(n.error());
            pp.maxRegions = static_cast<unsigned>(n.value());
        } else if (arg == "--region-insts") {
            if (++i >= argc)
                return fail(Error{"--region-insts needs a value",
                                  exit_code::usage});
            auto n = parseCount("--region-insts", argv[i]);
            if (!n.ok())
                return fail(n.error());
            pp.regionInsts = n.value();
        } else if (!arg.empty() && arg[0] == '-') {
            return fail(Error{"unknown profile option '" + arg
                                  + "' (know --cache, --regions, "
                                    "--region-insts)",
                              exit_code::usage});
        } else if (arg.find('=') != std::string::npos) {
            if (auto p = cfg.tryParseAssignment(arg); !p.ok())
                return fail(p.error());
        } else if (preset_name.empty()) {
            preset_name = arg;
        } else if (workload_name.empty()) {
            workload_name = arg;
        } else {
            return fail(Error{"unexpected argument '" + arg + "'",
                              exit_code::usage});
        }
    }
    if (preset_name.empty() || workload_name.empty())
        return fail(Error{"usage: sstsim profile <preset> <workload> "
                          "[--cache DIR] [--regions N] "
                          "[--region-insts N] [key=value ...]",
                          exit_code::usage});

    std::string category;
    Config load_cfg = cfg;
    load_cfg.set("workload", workload_name);
    auto loaded = loadProgram(load_cfg, category);
    if (!loaded.ok())
        return fail(loaded.error());
    Program program = loaded.take();

    auto made = trapFatal(
        [&] {
            MachineConfig mc = makePreset(preset_name);
            applyOverrides(mc, cfg);
            return mc;
        },
        exit_code::usage);
    if (!made.ok()) {
        Error e = made.error();
        std::string near = closestMatch(preset_name, presetNames());
        if (!near.empty())
            e.message += "; did you mean '" + near + "'?";
        return fail(e);
    }
    MachineConfig mc = made.take();

    if (pp.regionInsts == 0) {
        // Resolve the auto stride here (it is part of the cache key):
        // one functional counting pass, then the same hint sampled
        // sweeps use.
        MemoryImage countMem;
        countMem.loadSegments(program);
        Executor counter(program, countMem);
        ArchState countState;
        std::uint64_t n = counter.run(countState, pp.maxInsts);
        if (!countState.halted)
            return fail(Error{"program does not halt functionally "
                              "within the profiling budget",
                              exit_code::badInput});
        pp.regionInsts = profileRegionHint(n);
    }

    std::uint64_t configHash = memConfigHash(mc, cfg);
    auto built =
        ensureProfileLibrary(mc, program, pp, cacheDir, configHash);
    if (!built.ok())
        return fail(built.error());
    const ProfileLibrary &lib = built.value();

    std::size_t selected = 0;
    for (const auto &r : lib.regions)
        if (r.selected)
            ++selected;
    std::printf("profile: preset=%s workload=%s insts=%llu "
                "regions=%zu selected=%zu stride=%llu warm=%llu/%llu\n",
                mc.presetName.c_str(), program.name().c_str(),
                static_cast<unsigned long long>(lib.totalInsts),
                lib.regions.size(), selected,
                static_cast<unsigned long long>(lib.regionInsts),
                static_cast<unsigned long long>(lib.warmHits),
                static_cast<unsigned long long>(lib.warmAccesses));
    if (!cacheDir.empty())
        std::printf("profile: library cached under '%s'\n",
                    profileCacheDir(cacheDir, mc, program, pp,
                                    configHash)
                        .c_str());
    else
        std::printf("profile: no --cache given; library built in "
                    "memory and discarded\n");
    return exit_code::ok;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && std::string(argv[1]) == "profile")
        return profileMain(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "sweep")
        return sweepMain(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "serve")
        return serveMain(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "work")
        return workMain(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "cmp")
        return cmpMain(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "trace")
        return traceMain(argc, argv);
    if (argc >= 2 && std::string(argv[1]) == "diff")
        return diffMain(argc, argv);

    Config cfg;
    for (int i = 1; i < argc; ++i) {
        auto parsed = cfg.tryParseAssignment(argv[i]);
        if (!parsed.ok())
            return fail(parsed.error());
    }
    setVerbose(false);

    std::string preset_name = cfg.getString("preset", "sst2");
    if (preset_name == "list")
        listAndExit();

    if (auto valid = validateKeys(cfg); !valid.ok())
        return fail(valid.error());

    std::string category;
    auto loaded = loadProgram(cfg, category);
    if (!loaded.ok())
        return fail(loaded.error());
    Program program = loaded.take();

    auto preset = trapFatal([&] { return makePreset(preset_name); },
                            exit_code::usage);
    if (!preset.ok()) {
        Error e = preset.error();
        std::string near = closestMatch(preset_name, presetNames());
        if (!near.empty())
            e.message += "; did you mean '" + near + "'?";
        e.message += " (preset=list shows all)";
        return fail(e);
    }
    MachineConfig mc = preset.take();
    if (auto applied =
            trapFatal([&] { applyOverrides(mc, cfg); });
        !applied.ok())
        return fail(applied.error());

    if (cfg.getBool("sample", false)) {
        SampleParams sp;
        sp.detailInsts = cfg.getUint("detail", 20000);
        sp.skipInsts = cfg.getUint("skip", 80000);
        std::string cacheDir = cfg.getString("profile_cache", "");
        std::uint64_t regionInsts = cfg.getUint("region_insts", 0);
        bool fromLibrary = !cacheDir.empty() || regionInsts != 0;

        SampledResult r;
        if (fromLibrary) {
            // Serve the windows from a checkpoint-warmed snapshot
            // library instead of fast-forwarding from cycle 0.
            ProfileParams pp;
            pp.maxRegions = static_cast<unsigned>(
                cfg.getUint("regions", 8));
            if (regionInsts) {
                pp.regionInsts = regionInsts;
            } else {
                MemoryImage countMem;
                countMem.loadSegments(program);
                Executor counter(program, countMem);
                ArchState countState;
                std::uint64_t n =
                    counter.run(countState, 2'000'000'000ULL);
                if (!countState.halted)
                    return fail(
                        Error{"program does not halt functionally",
                              exit_code::badInput});
                pp.regionInsts = profileRegionHint(n);
            }
            std::uint64_t configHash = memConfigHash(mc, cfg);
            auto library = ensureProfileLibrary(mc, program, pp,
                                                cacheDir, configHash);
            if (!library.ok())
                return fail(library.error());
            auto sampled = trapFatal([&] {
                return runSampledFromLibrary(mc, program,
                                             library.value(), sp);
            });
            if (!sampled.ok())
                return fail(sampled.error());
            r = sampled.take();
        } else {
            r = runSampled(mc, program, sp);
        }

        if (cfg.getBool("json", false)) {
            std::string j = "{\"mode\":\"sampled\"";
            j += ",\"preset\":\"" + jsonEscape(mc.presetName) + '"';
            j += ",\"workload\":\"" + jsonEscape(program.name()) + '"';
            j += std::string(",\"from_library\":")
                 + (fromLibrary ? "true" : "false");
            j += ",\"ipc\":" + jsonNumber(r.ipc);
            j += ",\"windows\":" + std::to_string(r.windowIpc.size());
            j += ",\"ipc_stddev\":" + jsonNumber(r.ipcStddev());
            j += ",\"ipc_ci95\":" + jsonNumber(r.ipcCi95());
            j += ",\"detailed_insts\":"
                 + std::to_string(r.detailedInsts);
            j += ",\"skipped_insts\":" + std::to_string(r.skippedInsts);
            j += ",\"warm_accesses\":" + std::to_string(r.warmAccesses);
            j += ",\"warm_hits\":" + std::to_string(r.warmHits);
            j += std::string(",\"reached_end\":")
                 + (r.reachedEnd ? "true" : "false");
            j += "}\n";
            std::fputs(j.c_str(), stdout);
            return exit_code::ok;
        }
        std::printf("sampled: preset=%s workload=%s ipc=%.4f "
                    "windows=%zu stddev=%.4f ci95=%.4f warm=%llu/%llu "
                    "detail=%llu skip=%llu%s%s\n",
                    mc.presetName.c_str(), program.name().c_str(), r.ipc,
                    r.windowIpc.size(), r.ipcStddev(), r.ipcCi95(),
                    static_cast<unsigned long long>(r.warmHits),
                    static_cast<unsigned long long>(r.warmAccesses),
                    static_cast<unsigned long long>(r.detailedInsts),
                    static_cast<unsigned long long>(r.skippedInsts),
                    fromLibrary ? " (library)" : "",
                    r.reachedEnd ? "" : " (budget)");
        return exit_code::ok;
    }

    // Golden reference.
    MemoryImage golden_mem;
    golden_mem.loadSegments(program);
    Executor golden(program, golden_mem);
    ArchState golden_state;
    std::uint64_t golden_insts = golden.run(golden_state, 2'000'000'000ULL);
    if (!golden_state.halted)
        return fail(Error{"program does not halt functionally",
                          exit_code::badInput});

    Machine machine(mc, program);
    if (cfg.getBool("trace", false))
        machine.core().setTraceSink([](const std::string &line) {
            std::fprintf(stderr, "%s\n", line.c_str());
        });

    std::string resume_path = cfg.getString("resume", "");
    if (!resume_path.empty() && !cfg.getString("warm_start", "").empty())
        return fail(Error{"warm_start= cannot combine with resume= "
                          "(both pick the starting state)",
                          exit_code::usage});
    if (!resume_path.empty()) {
        auto restored = machine.restoreFromFile(resume_path);
        if (!restored.ok())
            return fail(restored.error());
        std::fprintf(stderr, "sstsim: resumed from '%s' at cycle %llu\n",
                     resume_path.c_str(),
                     static_cast<unsigned long long>(
                         machine.core().cycles()));
    }

    // warm_start=N: skip the program's first N-ish instructions by
    // restoring the profile-library member nearest below N (building
    // the library on first use). The golden cross-check still holds —
    // the warm prefix ran on the same golden executor — with the
    // retired-instruction count adjusted by the member's offset.
    std::uint64_t warmSkipped = 0;
    std::string warm_key = cfg.getString("warm_start", "");
    if (!warm_key.empty()) {
        auto target = parseCount("warm_start", warm_key.c_str(), true);
        if (!target.ok())
            return fail(target.error());
        ProfileParams pp;
        pp.maxRegions =
            static_cast<unsigned>(cfg.getUint("regions", 8));
        pp.regionInsts = cfg.getUint("region_insts", 0);
        if (pp.regionInsts == 0)
            pp.regionInsts = profileRegionHint(golden_insts);
        auto library = ensureProfileLibrary(
            mc, program, pp, cfg.getString("profile_cache", ""),
            memConfigHash(mc, cfg));
        if (!library.ok())
            return fail(library.error());
        auto warmed = warmStartMachine(machine, library.value(),
                                       target.value(), &warmSkipped);
        if (!warmed.ok())
            return fail(warmed.error());
        std::fprintf(stderr,
                     "sstsim: warm-started at instruction %llu "
                     "(cycle %llu) from the profile library\n",
                     static_cast<unsigned long long>(warmSkipped),
                     static_cast<unsigned long long>(
                         machine.core().cycles()));
    }
    SnapPolicy snap;
    snap.everyCycles = cfg.getUint("snap_every", 0);
    snap.path = cfg.getString("snap_out", "sstsim.snap");

    RunResult r = machine.run(cfg.getUint("max_cycles", 500'000'000ULL),
                              snap);
    if (!r.finished) {
        std::fprintf(stderr,
                     "sstsim: run degraded (%s) after %llu cycles, "
                     "%llu insts retired\n",
                     degradeReasonName(r.degrade),
                     static_cast<unsigned long long>(r.cycles),
                     static_cast<unsigned long long>(r.insts));
        return r.degrade == DegradeReason::Livelock
                   ? exit_code::livelock
                   : exit_code::cycleBudget;
    }

    bool arch_ok = machine.core().archState().regsEqual(golden_state)
                   && machine.image().contentEquals(golden_mem)
                   && r.insts == golden_insts - warmSkipped;

    if (cfg.getBool("json", false)) {
        std::fputs(machine.core().stats().dumpJson().c_str(), stdout);
        return arch_ok ? exit_code::ok : exit_code::archMismatch;
    }

    auto run_stat = [&](const char *key) {
        auto it = r.stats.find(key);
        return it == r.stats.end() ? 0.0 : it->second;
    };

    std::string stats_depth = cfg.getString("stats", "summary");
    Table t("sstsim: " + program.name() + " (" + category + ") on "
            + mc.presetName);
    t.setHeader({"metric", "value"});
    t.addRow({"cycles", std::to_string(r.cycles)});
    t.addRow({"instructions", std::to_string(r.insts)});
    t.addRow({"IPC", Table::num(r.ipc, 4)});
    t.addRow({"L1D miss rate", Table::num(100 * r.l1dMissRate, 2) + "%"});
    t.addRow({"demand MLP", Table::num(r.meanDemandMlp, 2)});
    t.addRow({"mispredict rate",
              Table::num(100 * r.mispredictRate, 2) + "%"});
    if (machine.memsys().faults().enabled()) {
        t.addRow({"faults injected",
                  std::to_string(static_cast<std::uint64_t>(
                      run_stat("fault.injected")))});
        t.addRow({"watchdog recoveries",
                  std::to_string(static_cast<std::uint64_t>(
                      run_stat("watchdog.recoveries")))});
    }
    t.addRow({"arch state vs golden", arch_ok ? "MATCH" : "MISMATCH"});
    if (stats_depth != "none")
        t.print();
    if (stats_depth == "full")
        std::fputs(machine.core().stats().dump().c_str(), stdout);
    if (!arch_ok)
        std::fprintf(stderr, "sstsim: architectural state diverged from "
                             "the golden executor\n");

    return arch_ok ? exit_code::ok : exit_code::archMismatch;
}
