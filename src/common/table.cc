#include "common/table.hh"

#include <cstdio>

#include "common/logging.hh"

namespace sst
{

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    panic_if(!header_.empty() && row.size() != header_.size(),
             "table '%s': row has %zu cells, header has %zu",
             title_.c_str(), row.size(), header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t i = 0; i < header_.size(); ++i)
        widths[i] = header_[i].size();
    for (const auto &row : rows_)
        for (size_t i = 0; i < row.size(); ++i)
            if (i < widths.size() && row[i].size() > widths[i])
                widths[i] = row[i].size();

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line = "| ";
        for (size_t i = 0; i < row.size(); ++i) {
            line += row[i];
            line.append(widths[i] - row[i].size(), ' ');
            line += " | ";
        }
        if (!line.empty())
            line.pop_back();
        line += "\n";
        return line;
    };

    std::string out = "\n== " + title_ + " ==\n";
    out += renderRow(header_);
    std::string rule = "|";
    for (size_t w : widths)
        rule += std::string(w + 2, '-') + "|";
    out += rule + "\n";
    for (const auto &row : rows_)
        out += renderRow(row);
    if (!caption_.empty())
        out += caption_ + "\n";
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

void
emitCsv(const std::string &tag, const std::vector<std::string> &header,
        const std::vector<std::vector<std::string>> &rows)
{
    std::printf("BEGIN_CSV %s\n", tag.c_str());
    for (size_t i = 0; i < header.size(); ++i)
        std::printf("%s%s", header[i].c_str(),
                    i + 1 < header.size() ? "," : "\n");
    for (const auto &row : rows)
        for (size_t i = 0; i < row.size(); ++i)
            std::printf("%s%s", row[i].c_str(),
                        i + 1 < row.size() ? "," : "\n");
    std::printf("END_CSV %s\n", tag.c_str());
    std::fflush(stdout);
}

} // namespace sst
