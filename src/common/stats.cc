#include "common/stats.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace sst
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // JSON has no inf/nan literals; formulas with a zero denominator
    // must still produce a parseable document.
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

std::string
Scalar::toJson() const
{
    return std::to_string(value_);
}

std::string
Distribution::toJson() const
{
    std::string out = "{\"count\":" + std::to_string(count_)
                      + ",\"sum\":" + std::to_string(sum_)
                      + ",\"mean\":" + jsonNumber(mean())
                      + ",\"max\":" + std::to_string(maxSample_)
                      + ",\"bucket_width\":" + std::to_string(width_)
                      + ",\"buckets\":[";
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (i)
            out += ',';
        out += std::to_string(buckets_[i]);
    }
    out += "],\"overflow\":" + std::to_string(overflow_) + "}";
    return out;
}

void
Distribution::init(std::uint64_t max, unsigned buckets)
{
    panic_if(buckets == 0, "Distribution needs at least one bucket");
    buckets_.assign(buckets, 0);
    // Ceiling division: truncation would leave the top of [0, max)
    // spilling into overflow (e.g. max=100, buckets=8 covered only
    // [0, 96) with width 12).
    width_ = (max + buckets - 1) / buckets;
    if (width_ == 0)
        width_ = 1;
}

void
Distribution::sample(std::uint64_t v)
{
    ++count_;
    sum_ += v;
    if (v > maxSample_)
        maxSample_ = v;
    if (buckets_.empty()) {
        ++overflow_;
        return;
    }
    std::uint64_t idx = v / width_;
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[idx];
}

void
Distribution::sample(std::uint64_t v, std::uint64_t n)
{
    if (n == 0)
        return;
    count_ += n;
    sum_ += v * n;
    if (v > maxSample_)
        maxSample_ = v;
    if (buckets_.empty()) {
        overflow_ += n;
        return;
    }
    std::uint64_t idx = v / width_;
    if (idx >= buckets_.size())
        overflow_ += n;
    else
        buckets_[idx] += n;
}

double
Distribution::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    count_ = sum_ = overflow_ = maxSample_ = 0;
}

StatGroup::~StatGroup()
{
    for (auto *s : scalars_)
        delete s;
    for (auto *d : dists_)
        delete d;
}

Scalar &
StatGroup::addScalar(const std::string &name, const std::string &desc)
{
    auto *entry = new NamedScalar{name, desc, Scalar{}};
    scalars_.push_back(entry);
    return entry->stat;
}

Distribution &
StatGroup::addDist(const std::string &name, const std::string &desc,
                   std::uint64_t max, unsigned buckets)
{
    auto *entry = new NamedDist{name, desc, Distribution{}};
    entry->stat.init(max, buckets);
    dists_.push_back(entry);
    return entry->stat;
}

void
StatGroup::addFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    formulas_.push_back(NamedFormula{name, desc, std::move(fn)});
}

void
StatGroup::addChild(StatGroup &child)
{
    // Idempotent: re-attaching (e.g. a CorePort shared by successive
    // sampled cores) must not duplicate the subtree.
    for (const auto *c : children_)
        if (c == &child)
            return;
    children_.push_back(&child);
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    std::string out;
    char buf[256];
    for (const auto *s : scalars_) {
        std::snprintf(buf, sizeof(buf), "%-48s %14llu  # %s\n",
                      (full + "." + s->name).c_str(),
                      static_cast<unsigned long long>(s->stat.value()),
                      s->desc.c_str());
        out += buf;
    }
    for (const auto &f : formulas_) {
        std::snprintf(buf, sizeof(buf), "%-48s %14.4f  # %s\n",
                      (full + "." + f.name).c_str(), f.fn(),
                      f.desc.c_str());
        out += buf;
    }
    for (const auto *d : dists_) {
        std::snprintf(buf, sizeof(buf),
                      "%-48s mean=%.2f max=%llu n=%llu  # %s\n",
                      (full + "." + d->name).c_str(), d->stat.mean(),
                      static_cast<unsigned long long>(d->stat.maxSample()),
                      static_cast<unsigned long long>(d->stat.count()),
                      d->desc.c_str());
        out += buf;
    }
    for (const auto *c : children_)
        out += c->dump(full);
    return out;
}

std::string
StatGroup::dumpJson() const
{
    std::string out = "{\n";
    bool first = true;
    char buf[64];
    for (const auto &kv : flatten()) {
        if (!first)
            out += ",\n";
        first = false;
        std::snprintf(buf, sizeof(buf), "%.6g", kv.second);
        out += "  \"" + kv.first + "\": " + buf;
    }
    out += "\n}\n";
    return out;
}

std::string
StatGroup::toJson() const
{
    std::string out = "{";
    bool first = true;
    auto key = [&](const std::string &name) {
        if (!first)
            out += ',';
        first = false;
        out += '"' + jsonEscape(name) + "\":";
    };
    for (const auto *s : scalars_) {
        key(s->name);
        out += s->stat.toJson();
    }
    for (const auto &f : formulas_) {
        key(f.name);
        out += jsonNumber(f.fn());
    }
    for (const auto *d : dists_) {
        key(d->name);
        out += d->stat.toJson();
    }
    for (const auto *c : children_) {
        key(c->name());
        out += c->toJson();
    }
    out += "}";
    return out;
}

std::map<std::string, double>
StatGroup::flatten(const std::string &prefix) const
{
    std::string full = prefix.empty() ? name_ : prefix + "." + name_;
    std::map<std::string, double> out;
    for (const auto *s : scalars_)
        out[full + "." + s->name] = static_cast<double>(s->stat.value());
    for (const auto &f : formulas_)
        out[full + "." + f.name] = f.fn();
    for (const auto *d : dists_)
        out[full + "." + d->name + ".mean"] = d->stat.mean();
    for (const auto *c : children_) {
        auto sub = c->flatten(full);
        out.insert(sub.begin(), sub.end());
    }
    return out;
}

void
StatGroup::reset()
{
    for (auto *s : scalars_)
        s->stat.reset();
    for (auto *d : dists_)
        d->stat.reset();
    for (auto *c : children_)
        c->reset();
}

} // namespace sst
