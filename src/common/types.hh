/**
 * @file
 * Fundamental scalar types shared by every sstsim library.
 */

#ifndef SSTSIM_COMMON_TYPES_HH
#define SSTSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace sst
{

/** Byte address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle (monotonic, starts at 0). */
using Cycle = std::uint64_t;

/** Architectural register index (x0..x31). */
using RegId = std::uint8_t;

/** Dynamic instruction sequence number (commit order). */
using SeqNum = std::uint64_t;

/** Number of architectural integer registers. x0 is hardwired to zero. */
constexpr unsigned numArchRegs = 32;

/** Sentinel for "no cycle" / "not scheduled". */
constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no address". */
constexpr Addr invalidAddr = std::numeric_limits<Addr>::max();

} // namespace sst

#endif // SSTSIM_COMMON_TYPES_HH
