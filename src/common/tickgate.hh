/**
 * @file
 * Synchronization primitives for the deterministic parallel CMP tick
 * engine (src/sim/cmp.cc).
 *
 * The engine runs each core's ticks on a sharded worker thread but
 * must keep every touch of *shared* simulator state (L2/DRAM timing,
 * the coherence directory, the fault RNG, the atomic journal) in the
 * exact order the sequential loop would produce: cycle-major, core-id
 * minor. TickGate encodes that order directly: a shared-state op by
 * core i at local cycle t may proceed only when every lower-numbered
 * core has finished cycle t and every higher-numbered core has
 * finished cycle t-1 — i.e. when (t, i) is the lexicographic minimum
 * over all cores still short of that point. At most one core satisfies
 * its condition at a time, so the gated sections are mutually
 * exclusive *and* totally ordered identically at any worker count,
 * without a lock.
 *
 * Deadlock freedom requires the workers to advance their owned cores
 * cycle-lockstep in ascending core id (never running one owned core
 * ahead while a lower-id owned core lags), which the engine's quantum
 * loop guarantees.
 */

#ifndef SSTSIM_COMMON_TICKGATE_HH
#define SSTSIM_COMMON_TICKGATE_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/types.hh"

namespace sst
{

/** Spins before yielding in the engine's wait loops. Busy-waiting only
 *  pays when the thread we wait on is actually running on another
 *  CPU; on an oversubscribed (or single-CPU) host the right move is
 *  to surrender the timeslice almost immediately. Purely a wall-clock
 *  heuristic — spin counts can never change simulation results. */
inline unsigned
spinBudget(unsigned parties)
{
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1)
        return 1;
    return hw >= parties ? 4096 : 256;
}

/** Orders shared-state operations in (cycle, coreId) sequence. */
class TickGate
{
  public:
    explicit TickGate(unsigned cores)
        : slots_(cores), spinBudget_(spinBudget(cores))
    {
        for (auto &s : slots_)
            s.completed.store(0, std::memory_order_relaxed);
    }

    /**
     * Publish that core @p i has fully finished every cycle < @p cycle
     * (it will issue no further shared-state op stamped earlier).
     * Monotonic; release so a waiter that observes it also observes
     * the core's shared-state writes.
     */
    void completeThrough(unsigned i, Cycle cycle)
    {
        slots_[i].completed.store(cycle, std::memory_order_release);
    }

    /**
     * Block until a shared-state op by core @p i at cycle @p now is
     * next in the global (cycle, coreId) order. Re-entering during the
     * same tick is cheap: once satisfied the condition stays satisfied
     * (completed counters are monotonic).
     */
    void enter(unsigned i, Cycle now) const
    {
        for (unsigned j = 0; j < slots_.size(); ++j) {
            if (j == i)
                continue;
            const Cycle need = j < i ? now + 1 : now;
            if (slots_[j].completed.load(std::memory_order_acquire)
                >= need)
                continue;
            unsigned spins = 0;
            while (slots_[j].completed.load(std::memory_order_acquire)
                   < need)
                if (++spins > spinBudget_) {
                    std::this_thread::yield();
                    spins = 0;
                }
        }
    }

  private:
    struct alignas(64) Slot
    {
        /** Count of fully completed cycles: value c means every cycle
         *  < c is done. */
        std::atomic<Cycle> completed{0};
    };

    std::vector<Slot> slots_;
    const unsigned spinBudget_;
};

/**
 * Sense-reversing spin barrier whose last arriver runs a serial phase
 * (queue drains, stop checks) before releasing the others.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties)
        : parties_(parties), spinBudget_(spinBudget(parties))
    {
    }

    /**
     * @return true for exactly one caller per round — the last to
     * arrive, which must run the serial phase and then release(). All
     * other callers return false only after release().
     */
    bool arrive()
    {
        const std::uint64_t gen =
            generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1
            == parties_)
            return true;
        unsigned spins = 0;
        while (generation_.load(std::memory_order_acquire) == gen)
            if (++spins > spinBudget_) {
                std::this_thread::yield();
                spins = 0;
            }
        return false;
    }

    /** Open the barrier (serial-phase owner only). */
    void release()
    {
        arrived_.store(0, std::memory_order_relaxed);
        generation_.fetch_add(1, std::memory_order_acq_rel);
    }

  private:
    const unsigned parties_;
    const unsigned spinBudget_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<std::uint64_t> generation_{0};
};

} // namespace sst

#endif // SSTSIM_COMMON_TICKGATE_HH
