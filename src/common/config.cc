#include "common/config.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace sst
{

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, const char *value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, int value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = def;
        return def;
    }
    return it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = std::to_string(def);
        return def;
    }
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '%s': '%s' is not an integer", key.c_str(),
             it->second.c_str());
    return v;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = std::to_string(def);
        return def;
    }
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '%s': '%s' is not an unsigned integer",
             key.c_str(), it->second.c_str());
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = std::to_string(def);
        return def;
    }
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key '%s': '%s' is not a number", key.c_str(),
             it->second.c_str());
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = def ? "true" : "false";
        return def;
    }
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean", key.c_str(), s.c_str());
}

void
Config::parseAssignment(const std::string &text)
{
    auto eq = text.find('=');
    fatal_if(eq == std::string::npos || eq == 0,
             "expected key=value, got '%s'", text.c_str());
    set(text.substr(0, eq), text.substr(eq + 1));
}

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        parseAssignment(argv[i]);
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other.values_)
        values_[kv.first] = kv.second;
}

std::vector<std::pair<std::string, std::string>>
Config::items() const
{
    std::map<std::string, std::string> all = defaults_;
    for (const auto &kv : values_)
        all[kv.first] = kv.second;
    return {all.begin(), all.end()};
}

std::string
Config::dump() const
{
    std::string out;
    for (const auto &kv : items()) {
        out += kv.first;
        out += " = ";
        out += kv.second;
        out += '\n';
    }
    return out;
}

} // namespace sst
