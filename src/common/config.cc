#include "common/config.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace sst
{

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, const char *value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, int value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = def;
        return def;
    }
    return it->second;
}

Result<std::int64_t>
Config::tryGetInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = std::to_string(def);
        return def;
    }
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        return Error{log_detail::format(
            "config key '%s': '%s' is not an integer", key.c_str(),
            it->second.c_str())};
    return v;
}

Result<std::uint64_t>
Config::tryGetUint(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = std::to_string(def);
        return def;
    }
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        return Error{log_detail::format(
            "config key '%s': '%s' is not an unsigned integer",
            key.c_str(), it->second.c_str())};
    return v;
}

Result<double>
Config::tryGetDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = std::to_string(def);
        return def;
    }
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        return Error{log_detail::format(
            "config key '%s': '%s' is not a number", key.c_str(),
            it->second.c_str())};
    return v;
}

Result<bool>
Config::tryGetBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end()) {
        defaults_[key] = def ? "true" : "false";
        return def;
    }
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    return Error{log_detail::format(
        "config key '%s': '%s' is not a boolean", key.c_str(), s.c_str())};
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto r = tryGetInt(key, def);
    fatal_if(!r.ok(), "%s", r.error().message.c_str());
    return r.value();
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    auto r = tryGetUint(key, def);
    fatal_if(!r.ok(), "%s", r.error().message.c_str());
    return r.value();
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto r = tryGetDouble(key, def);
    fatal_if(!r.ok(), "%s", r.error().message.c_str());
    return r.value();
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto r = tryGetBool(key, def);
    fatal_if(!r.ok(), "%s", r.error().message.c_str());
    return r.value();
}

Result<void>
Config::tryParseAssignment(const std::string &text)
{
    auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return Error{log_detail::format("expected key=value, got '%s'",
                                        text.c_str()),
                     exit_code::usage};
    set(text.substr(0, eq), text.substr(eq + 1));
    return {};
}

void
Config::parseAssignment(const std::string &text)
{
    auto r = tryParseAssignment(text);
    fatal_if(!r.ok(), "%s", r.error().message.c_str());
}

void
Config::parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        parseAssignment(argv[i]);
}

void
Config::merge(const Config &other)
{
    for (const auto &kv : other.values_)
        values_[kv.first] = kv.second;
}

std::vector<std::pair<std::string, std::string>>
Config::items() const
{
    std::map<std::string, std::string> all = defaults_;
    for (const auto &kv : values_)
        all[kv.first] = kv.second;
    return {all.begin(), all.end()};
}

unsigned
editDistance(const std::string &a, const std::string &b)
{
    // One-row dynamic program; strings here are short config keys.
    std::vector<unsigned> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = static_cast<unsigned>(j);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        unsigned diag = row[0];
        row[0] = static_cast<unsigned>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            unsigned subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            diag = row[j];
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
        }
    }
    return row[b.size()];
}

std::string
closestMatch(const std::string &needle,
             const std::vector<std::string> &candidates,
             unsigned maxDistance)
{
    std::string best;
    unsigned best_d = maxDistance + 1;
    for (const auto &c : candidates) {
        unsigned d = editDistance(needle, c);
        if (d < best_d) {
            best_d = d;
            best = c;
        }
    }
    return best;
}

std::string
Config::dump() const
{
    std::string out;
    for (const auto &kv : items()) {
        out += kv.first;
        out += " = ";
        out += kv.second;
        out += '\n';
    }
    return out;
}

} // namespace sst
