/**
 * @file
 * Error and status reporting, following the gem5 panic/fatal convention:
 * panic() for simulator bugs (should never happen), fatal() for user
 * errors (bad configuration), warn()/inform() for status.
 */

#ifndef SSTSIM_COMMON_LOGGING_HH
#define SSTSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

namespace sst
{

/**
 * Thrown by fatal() instead of exiting the process while an ErrorTrap
 * is active, so callers can convert user errors into Result values
 * (see common/result.hh).
 */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : msg_(std::move(msg)) {}
    const char *what() const noexcept override { return msg_.c_str(); }
    const std::string &message() const { return msg_; }

  private:
    std::string msg_;
};

/**
 * RAII scope during which fatal() throws FatalError instead of calling
 * exit(1). Nests; panic() is unaffected (simulator bugs still abort).
 */
class ErrorTrap
{
  public:
    ErrorTrap();
    ~ErrorTrap();
    ErrorTrap(const ErrorTrap &) = delete;
    ErrorTrap &operator=(const ErrorTrap &) = delete;
};

class LogCapture;
namespace log_detail
{
/** Append one finished line to the active capture (internal). */
void captureAppend(LogCapture &capture, const std::string &line);
} // namespace log_detail

/**
 * RAII scope that redirects this thread's warn()/inform() output into a
 * private buffer instead of the process-global stderr/stdout streams.
 *
 * The parallel experiment runner wraps every job in a LogCapture so
 * concurrent simulations cannot interleave their diagnostics; the job's
 * captured text travels with its result record. Threads without an
 * active capture still write to the shared streams, which are guarded
 * by a mutex (messages may interleave between threads but never within
 * one line). Nests per thread: the innermost capture wins.
 */
class LogCapture
{
  public:
    LogCapture();
    ~LogCapture();
    LogCapture(const LogCapture &) = delete;
    LogCapture &operator=(const LogCapture &) = delete;

    /** Everything captured so far ("warn: ...\n" / "info: ...\n"). */
    const std::string &text() const { return text_; }

    /** Move the captured text out (capture continues empty). */
    std::string take() { return std::move(text_); }

  private:
    friend void log_detail::captureAppend(LogCapture &capture,
                                          const std::string &line);
    std::string text_;
    LogCapture *prev_;
};

namespace log_detail
{

[[noreturn]] void terminatePanic(const std::string &msg, const char *file,
                                 int line);
[[noreturn]] void terminateFatal(const std::string &msg);
void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace log_detail

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool on);
bool verbose();

} // namespace sst

/**
 * Abort with a message. Use for conditions that indicate a simulator bug,
 * never a user mistake.
 */
#define panic(...)                                                          \
    ::sst::log_detail::terminatePanic(                                      \
        ::sst::log_detail::format(__VA_ARGS__), __FILE__, __LINE__)

/** Exit(1) with a message. Use for user errors (bad config, bad input). */
#define fatal(...)                                                          \
    ::sst::log_detail::terminateFatal(::sst::log_detail::format(__VA_ARGS__))

/** panic() when a condition that must hold does not. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

/** fatal() when a user-facing precondition is violated. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

/** Non-fatal warning to stderr. */
#define warn(...)                                                           \
    ::sst::log_detail::emitWarn(::sst::log_detail::format(__VA_ARGS__))

/** Informational message to stdout (suppressed when not verbose). */
#define inform(...)                                                         \
    ::sst::log_detail::emitInform(::sst::log_detail::format(__VA_ARGS__))

#endif // SSTSIM_COMMON_LOGGING_HH
