/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Every bench
 * binary prints its paper-figure data through Table so the output format
 * is uniform and machine-greppable.
 */

#ifndef SSTSIM_COMMON_TABLE_HH
#define SSTSIM_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace sst
{

/** Column-aligned text table with a title and optional caption. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row. Must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p decimals digits. */
    static std::string num(double v, int decimals = 2);

    /** Free-form caption printed under the table. */
    void setCaption(std::string caption) { caption_ = std::move(caption); }

    /** Render to a string (also used by print()). */
    std::string render() const;

    /** Print to stdout. */
    void print() const;

  private:
    std::string title_;
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Emit a CSV block bracketed by BEGIN/END markers so plotting scripts can
 * extract a figure's series from bench output.
 */
void emitCsv(const std::string &tag,
             const std::vector<std::string> &header,
             const std::vector<std::vector<std::string>> &rows);

} // namespace sst

#endif // SSTSIM_COMMON_TABLE_HH
