/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in sstsim (workload data layouts, random
 * replacement, fuzz tests) flows through Rng so that runs are exactly
 * reproducible from a 64-bit seed. The generator is xoshiro256** seeded
 * via SplitMix64, which is the reference seeding procedure.
 */

#ifndef SSTSIM_COMMON_RNG_HH
#define SSTSIM_COMMON_RNG_HH

#include <cstdint>

namespace sst
{

/** Self-contained xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eedbeefULL) { reseed(seed); }

    /** Reset the stream to the state derived from @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire reduction. @p bound>0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return real() < p; }

    /**
     * Zipf-distributed index in [0, n) with skew @p s (s=0 is uniform).
     * Uses rejection-inversion; suitable for hot/cold key popularity in
     * the OLTP-style workload generators.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

  private:
    std::uint64_t state_[4];
};

} // namespace sst

#endif // SSTSIM_COMMON_RNG_HH
