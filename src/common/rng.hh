/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in sstsim (workload data layouts, random
 * replacement, fuzz tests) flows through Rng so that runs are exactly
 * reproducible from a 64-bit seed. The generator is xoshiro256** seeded
 * via SplitMix64, which is the reference seeding procedure.
 */

#ifndef SSTSIM_COMMON_RNG_HH
#define SSTSIM_COMMON_RNG_HH

#include <cstdint>

namespace sst
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * One SplitMix64 step: advances @p state and returns the next output.
 * This is the reference seeding generator; exposed so that seed
 * derivation (below) and Rng::reseed share one implementation.
 */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Derive the seed for child stream @p index from @p base.
 *
 * Scheme (the per-job seeding contract for parallel sweeps): the child
 * seed is the second SplitMix64 output of the state
 *
 *     base + (index + 1) * 0x9e3779b97f4a7c15   (golden-ratio stride)
 *
 * Two SplitMix64 outputs fully mix the 64-bit state, so children of the
 * same base are statistically independent of each other and of the base
 * stream itself, while remaining a pure O(1) function of (base, index).
 * Every parallel job MUST seed its private Rng / FaultInjector /
 * workload generator this way rather than sharing or splitting a live
 * Rng: a shared generator would make the stream depend on job scheduling
 * order, breaking the "-j N is bit-identical to -j 1" guarantee.
 *
 * Distinct consumers deriving from the same base MUST carve out
 * disjoint index subspaces (e.g. the sweep expander uses even indices
 * for fault streams and odd ones for workload streams): two consumers
 * passing the same (base, index) get the identical seed, silently
 * correlating streams that the contract promises are independent.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t index);

/** Self-contained xoshiro256** generator. */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eedbeefULL) { reseed(seed); }

    /** Reset the stream to the state derived from @p seed. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire reduction. @p bound>0. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p) { return real() < p; }

    /**
     * Zipf-distributed index in [0, n) with skew @p s (s=0 is uniform).
     * Uses rejection-inversion; suitable for hot/cold key popularity in
     * the OLTP-style workload generators.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Serialize the generator state mid-stream (defined in src/snap/). */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::uint64_t state_[4];
};

} // namespace sst

#endif // SSTSIM_COMMON_RNG_HH
