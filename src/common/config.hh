/**
 * @file
 * Flat key/value configuration store with typed accessors.
 *
 * Keys are dotted strings ("l1d.size_kb", "core.fetch_width"). Values are
 * stored as strings and converted on read; a read with a default records
 * the default so that dump() shows the full effective configuration.
 */

#ifndef SSTSIM_COMMON_CONFIG_HH
#define SSTSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.hh"

namespace sst
{

/** Mutable configuration dictionary. */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key from a string value. */
    void set(const std::string &key, const std::string &value);
    /** Without this overload a string literal would bind to the bool
     *  overload (pointer conversion outranks user-defined). */
    void set(const std::string &key, const char *value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, int value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** @return true when @p key has been set or defaulted. */
    bool has(const std::string &key) const;

    /**
     * Typed getters. The @p def value is returned (and recorded) when the
     * key is absent; a malformed stored value is a user error (fatal).
     */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Recoverable variants of the typed getters: a malformed stored
     * value yields an Error instead of exiting. The fatal getters above
     * are thin wrappers over these.
     */
    Result<std::int64_t> tryGetInt(const std::string &key,
                                   std::int64_t def) const;
    Result<std::uint64_t> tryGetUint(const std::string &key,
                                     std::uint64_t def) const;
    Result<double> tryGetDouble(const std::string &key, double def) const;
    Result<bool> tryGetBool(const std::string &key, bool def) const;

    /**
     * Parse one "key=value" assignment (as accepted on example/bench
     * command lines). Malformed input is fatal.
     */
    void parseAssignment(const std::string &text);

    /** Recoverable parseAssignment: malformed input yields an Error. */
    Result<void> tryParseAssignment(const std::string &text);

    /** Parse argv-style overrides; non-assignments are fatal. */
    void parseArgs(int argc, char **argv);

    /** Merge @p other into this config, overwriting duplicates. */
    void merge(const Config &other);

    /** All key/value pairs in key order (effective config). */
    std::vector<std::pair<std::string, std::string>> items() const;

    /** Render the effective config as "key = value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, std::string> values_;
    /** Defaults observed through getters, for dump() completeness. */
    mutable std::map<std::string, std::string> defaults_;
};

/** Levenshtein edit distance (for nearest-key suggestions). */
unsigned editDistance(const std::string &a, const std::string &b);

/**
 * The candidate closest to @p needle by edit distance, or "" when
 * @p candidates is empty or nothing comes within @p maxDistance edits.
 */
std::string closestMatch(const std::string &needle,
                         const std::vector<std::string> &candidates,
                         unsigned maxDistance = 6);

} // namespace sst

#endif // SSTSIM_COMMON_CONFIG_HH
