#include "common/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace sst
{

namespace
{
bool verboseFlag = true;
thread_local int errorTrapDepth = 0;
} // namespace

ErrorTrap::ErrorTrap()
{
    ++errorTrapDepth;
}

ErrorTrap::~ErrorTrap()
{
    --errorTrapDepth;
}

void
setVerbose(bool on)
{
    verboseFlag = on;
}

bool
verbose()
{
    return verboseFlag;
}

namespace log_detail
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

void
terminatePanic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
terminateFatal(const std::string &msg)
{
    if (errorTrapDepth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
emitWarn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
emitInform(const std::string &msg)
{
    if (verboseFlag)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace sst
