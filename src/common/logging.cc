#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace sst
{

namespace
{
std::atomic<bool> verboseFlag{true};
thread_local int errorTrapDepth = 0;
/** Innermost active capture on this thread (null: shared streams). */
thread_local LogCapture *activeCapture = nullptr;
/** Serialises the shared stderr/stdout path only; captured output is
 *  thread-private and never takes this lock. */
std::mutex &
streamMutex()
{
    static std::mutex m;
    return m;
}
} // namespace

ErrorTrap::ErrorTrap()
{
    ++errorTrapDepth;
}

ErrorTrap::~ErrorTrap()
{
    --errorTrapDepth;
}

LogCapture::LogCapture() : prev_(activeCapture)
{
    activeCapture = this;
}

LogCapture::~LogCapture()
{
    activeCapture = prev_;
}

void
setVerbose(bool on)
{
    verboseFlag = on;
}

bool
verbose()
{
    return verboseFlag;
}

namespace log_detail
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, ap2);
        out.resize(static_cast<size_t>(n));
    }
    va_end(ap2);
    return out;
}

void
terminatePanic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
terminateFatal(const std::string &msg)
{
    if (errorTrapDepth > 0)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
captureAppend(LogCapture &capture, const std::string &line)
{
    capture.text_ += line;
}

void
emitWarn(const std::string &msg)
{
    if (activeCapture) {
        captureAppend(*activeCapture, "warn: " + msg + "\n");
        return;
    }
    std::lock_guard<std::mutex> lock(streamMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
emitInform(const std::string &msg)
{
    if (!verboseFlag.load(std::memory_order_relaxed))
        return;
    if (activeCapture) {
        captureAppend(*activeCapture, "info: " + msg + "\n");
        return;
    }
    std::lock_guard<std::mutex> lock(streamMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace log_detail
} // namespace sst
