#include "common/rng.hh"

#include <cmath>

namespace sst
{

namespace
{

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t state = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
    splitmix64(state);
    return splitmix64(state);
}

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's nearly-divisionless method (64x64 -> 128 multiply).
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (hi <= lo)
        return lo;
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    if (s <= 0.0)
        return below(n);
    // Rejection-inversion sampling (Hormann & Derflinger).
    const double nd = static_cast<double>(n);
    auto h = [s](double x) {
        return s == 1.0 ? std::log(x) : std::pow(x, 1.0 - s) / (1.0 - s);
    };
    auto hInv = [s](double x) {
        return s == 1.0 ? std::exp(x)
                        : std::pow((1.0 - s) * x, 1.0 / (1.0 - s));
    };
    const double hx0 = h(0.5) - std::pow(1.0, -s);
    const double hn = h(nd + 0.5);
    for (int tries = 0; tries < 64; ++tries) {
        double u = hx0 + real() * (hn - hx0);
        double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        double kd = static_cast<double>(k);
        if (u >= h(kd + 0.5) - std::pow(kd, -s))
            return k - 1;
    }
    return below(n);
}

} // namespace sst
