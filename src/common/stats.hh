/**
 * @file
 * Minimal statistics package in the spirit of gem5's Stats:: layer.
 *
 * A StatGroup owns named Scalar counters, Distributions (fixed-bucket
 * histograms) and Formulas (lazily evaluated ratios of other stats).
 * Groups nest; dump() renders "group.sub.stat value # desc" lines.
 */

#ifndef SSTSIM_COMMON_STATS_HH
#define SSTSIM_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace sst
{

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Render @p v as the shortest decimal string that parses back to the
 * same double (tries %.15g, %.16g, %.17g). Deterministic, so identical
 * stat values always serialise to identical bytes — the property the
 * sweep runner's "-j N matches -j 1" contract rests on.
 */
std::string jsonNumber(double v);

/** A simple saturating-free 64-bit event counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** JSON value (a decimal integer). */
    std::string toJson() const;

  private:
    std::uint64_t value_ = 0;
};

/**
 * Fixed-bucket histogram over [0, max); samples >= max land in the
 * overflow bucket. Tracks sum/count so mean() is exact even when samples
 * overflow the bucketed range.
 */
class Distribution
{
  public:
    Distribution() = default;

    /** Configure @p buckets equal-width buckets over [0, max). */
    void init(std::uint64_t max, unsigned buckets);

    void sample(std::uint64_t v);

    /** Record @p v as @p n identical samples in O(1) — exactly
     *  equivalent to calling sample(v) n times (fast-forwarded stall
     *  windows re-sample a frozen occupancy every cycle). */
    void sample(std::uint64_t v, std::uint64_t n);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t maxSample() const { return maxSample_; }
    double mean() const;
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucketWidth() const { return width_; }
    void reset();

    /** JSON object: count/sum/mean/max/bucket_width/buckets/overflow. */
    std::string toJson() const;

    /** Serialize counts only; bucket geometry must already match (it is
     *  configuration, re-established by init()). Defined in src/snap/. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::vector<std::uint64_t> buckets_;
    /** 0 until init(): an uninitialised distribution reports
     *  bucket_width 0 and an empty bucket array. */
    std::uint64_t width_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t maxSample_ = 0;
};

/**
 * Named collection of statistics. Cores and memory components each hold
 * one; the System aggregates them for reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter; the group keeps a non-owning pointer. */
    Scalar &addScalar(const std::string &name, const std::string &desc);

    /** Register a distribution. */
    Distribution &addDist(const std::string &name, const std::string &desc,
                          std::uint64_t max, unsigned buckets);

    /** Register a lazily evaluated derived value. */
    void addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> fn);

    /** Attach a child group (non-owning). */
    void addChild(StatGroup &child);

    const std::string &name() const { return name_; }

    /** Render all stats (recursively) as text lines. */
    std::string dump(const std::string &prefix = "") const;

    /** Render all stats (recursively) as a flat JSON object whose keys
     *  are the dotted stat names. */
    std::string dumpJson() const;

    /**
     * Render this group (recursively) as a structured JSON object. Keys
     * are stat/child names within the group: scalars and formulas map to
     * numbers, distributions to objects (see Distribution::toJson), and
     * child groups nest. Emission order is registration order (scalars,
     * formulas, distributions, children), which is deterministic, so two
     * identical runs serialise byte-identically. Stat names are unique
     * within a group by construction.
     */
    std::string toJson() const;

    /** Flat name->value view of scalars and formulas (for tests). */
    std::map<std::string, double> flatten(const std::string &prefix
                                          = "") const;

    /** Zero all scalars and distributions (recursively). */
    void reset();

    /**
     * Serialize all scalar and distribution *values* (recursively, with
     * names for validation); formulas are derived and skipped. load()
     * requires an identically shaped tree — stats layout is part of the
     * snapshot format, guarded by snap::formatVersion. Defined in
     * src/snap/ so the common library does not depend on snap.
     */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct NamedScalar
    {
        std::string name;
        std::string desc;
        Scalar stat;
    };
    struct NamedDist
    {
        std::string name;
        std::string desc;
        Distribution stat;
    };
    struct NamedFormula
    {
        std::string name;
        std::string desc;
        std::function<double()> fn;
    };

    std::string name_;
    // Deques-by-proxy: deque-like stability is required because callers
    // keep references; std::deque keeps references valid across growth.
    std::vector<NamedScalar *> scalars_;
    std::vector<NamedDist *> dists_;
    std::vector<NamedFormula> formulas_;
    std::vector<StatGroup *> children_;

  public:
    ~StatGroup();
};

} // namespace sst

#endif // SSTSIM_COMMON_STATS_HH
