/**
 * @file
 * Recoverable error handling: Result<T> and fatal-error trapping.
 *
 * Historically every user-facing error (bad config value, assembler
 * syntax error, unknown preset) went through fatal(), which exits the
 * process. That is fine for one-shot bench binaries but wrong for a
 * driver that wants to print a diagnostic, suggest a fix and return a
 * distinct exit code. Result<T> is the recoverable path: operations
 * that can fail on user input return Result and the caller decides.
 *
 * trapFatal() bridges the two worlds: it runs a callable with fatal()
 * rerouted to throw (see ErrorTrap in logging.hh) and converts the
 * outcome into a Result, so deep call trees that still use fatal_if()
 * internally become recoverable at the boundary without threading
 * error codes through every layer.
 */

#ifndef SSTSIM_COMMON_RESULT_HH
#define SSTSIM_COMMON_RESULT_HH

#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace sst
{

/** Conventional process exit codes reported by the CLI tools. */
namespace exit_code
{
constexpr int ok = 0;
constexpr int archMismatch = 2; ///< timing model diverged from golden
constexpr int cycleBudget = 3;  ///< simulation exceeded max_cycles
constexpr int livelock = 4;     ///< watchdog gave up on forward progress
constexpr int diverged = 5;     ///< `sstsim diff` found a state divergence
constexpr int quarantine = 6;   ///< sweep finished with quarantined jobs
constexpr int svcFailure = 7;   ///< experiment-service socket/protocol loss
constexpr int usage = 64;       ///< malformed/unknown command-line key
constexpr int badInput = 65;    ///< bad config value / program input
} // namespace exit_code

/** A user-facing failure: message plus suggested process exit code. */
struct Error
{
    std::string message;
    int exitCode = exit_code::badInput;
};

/** Value-or-error return type for operations that can fail on input. */
template <typename T>
class [[nodiscard]] Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Error error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** Only valid when ok(); misuse is a simulator bug. */
    T &value()
    {
        panic_if(!ok(), "Result::value() on error: %s",
                 error_.message.c_str());
        return *value_;
    }
    const T &value() const
    {
        panic_if(!ok(), "Result::value() on error: %s",
                 error_.message.c_str());
        return *value_;
    }
    T take()
    {
        panic_if(!ok(), "Result::take() on error: %s",
                 error_.message.c_str());
        return std::move(*value_);
    }

    /** Only valid when !ok(). */
    const Error &error() const
    {
        panic_if(ok(), "Result::error() on success");
        return error_;
    }

  private:
    std::optional<T> value_;
    Error error_;
};

/** Success-or-error, for operations with no payload. */
template <>
class [[nodiscard]] Result<void>
{
  public:
    Result() = default;
    Result(Error error) : error_(std::move(error)) {}

    bool ok() const { return !error_.has_value(); }
    explicit operator bool() const { return ok(); }

    const Error &error() const
    {
        panic_if(ok(), "Result::error() on success");
        return *error_;
    }

  private:
    std::optional<Error> error_;
};

/**
 * Run @p fn with fatal() rerouted to a catchable FatalError and return
 * the outcome as a Result. @p exitCode is attached to any error.
 */
template <typename F>
auto
trapFatal(F &&fn, int exitCode = exit_code::badInput)
    -> Result<std::invoke_result_t<F>>
{
    ErrorTrap trap;
    try {
        if constexpr (std::is_void_v<std::invoke_result_t<F>>) {
            fn();
            return {};
        } else {
            return fn();
        }
    } catch (const FatalError &e) {
        return Error{e.message(), exitCode};
    }
}

} // namespace sst

#endif // SSTSIM_COMMON_RESULT_HH
