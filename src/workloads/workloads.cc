#include "workloads/workloads.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "isa/builder.hh"

namespace sst
{

namespace
{

// Shared data-layout constants. Code sits at Program::codeBase()
// (0x100000); all workload data lives above dataBase.
constexpr Addr resultAddr = 0x1f0000;
constexpr Addr dataBase = 0x200000;

/** Round to the nearest power of two, at least @p floor. */
std::uint64_t
scalePow2(std::uint64_t base, double scale, std::uint64_t floor)
{
    double target = static_cast<double>(base) * scale;
    std::uint64_t v = floor;
    while (static_cast<double>(v) * 1.5 < target)
        v <<= 1;
    return v;
}

std::uint64_t
scaleCount(std::uint64_t base, double scale)
{
    auto v = static_cast<std::uint64_t>(
        static_cast<double>(base) * scale);
    return std::max<std::uint64_t>(v, 16);
}

/** xorshift64 in registers: x ^= x<<13; x ^= x>>7; x ^= x<<17. */
void
emitXorshift(Builder &b, RegId x, RegId tmp)
{
    b.slli(tmp, x, 13).xor_(x, x, tmp);
    b.srli(tmp, x, 7).xor_(x, x, tmp);
    b.slli(tmp, x, 17).xor_(x, x, tmp);
}

/** Store the checksum register to resultAddr and halt. */
void
emitEpilogue(Builder &b, RegId checksum)
{
    b.li(30, static_cast<std::int64_t>(resultAddr));
    b.st(checksum, 30, 0);
    b.halt();
}

/** A double in [1, 2) as raw bits (well-behaved FP data). */
std::uint64_t
safeDoubleBits(Rng &rng)
{
    return 0x3ff0000000000000ULL | (rng.next() >> 12);
}

// --- shared-memory workloads ---------------------------------------

// Layout: spinlocks live at dataBase, one per 64 B line so lock and
// data traffic never false-share; shared payload starts one page up.
constexpr Addr lockBase = dataBase;
constexpr Addr sharedBase = dataBase + 4096;

/** Store core @p core's checksum to its private result slot and halt. */
void
emitSharedEpilogue(Builder &b, RegId checksum, unsigned core)
{
    b.li(30, static_cast<std::int64_t>(resultAddr + core * 8ULL));
    b.st(checksum, 30, 0);
    b.halt();
}

/**
 * Spin until the lock at (lockReg) is taken: rd gets the old value, 0
 * means we own it. The held token is core+1, so a memory dump shows
 * who owns each lock. The spin retires an instruction per attempt,
 * which keeps the livelock watchdog quiet under heavy contention.
 */
void
emitAcquire(Builder &b, RegId lockReg, RegId token, RegId old,
            const std::string &label)
{
    b.label(label);
    b.amoswap(old, token, lockReg, 0);
    b.bne(old, 0, label);
}

/** Release = plain store of 0 (the SLE release idiom). */
void
emitRelease(Builder &b, RegId lockReg)
{
    b.st(0, lockReg, 0);
}

Workload
makeSpinlockCounter(unsigned core, unsigned cores,
                    const WorkloadParams &params)
{
    (void)cores;
    Rng coreRng(params.seed + 21 + core * 1000);
    const std::uint64_t slots =
        scalePow2(64, params.footprintScale, 8); // 8 lines by default
    const std::uint64_t iters = scaleCount(2000, params.lengthScale);
    const Addr ctrBase = sharedBase;

    Builder b("spinlock_counter.c" + std::to_string(core));
    b.li(5, static_cast<std::int64_t>(lockBase));
    b.li(6, static_cast<std::int64_t>(ctrBase));
    b.li(7, static_cast<std::int64_t>(iters));
    b.li(9, 0); // checksum
    b.li(10, static_cast<std::int64_t>(coreRng.next() | 1)); // prng
    b.li(20, static_cast<std::int64_t>(core + 1));           // token
    b.li(21, static_cast<std::int64_t>(slots - 1));          // mask
    b.label("loop");
    emitXorshift(b, 10, 31);
    b.and_(11, 10, 21);
    b.slli(11, 11, 3);
    b.add(11, 11, 6); // &counters[prng & mask]
    emitAcquire(b, 5, 20, 12, "acquire");
    b.ld(13, 11, 0); // critical section: counters[slot]++
    b.addi(13, 13, 1);
    b.st(13, 11, 0);
    b.add(9, 9, 13);
    emitRelease(b, 5);
    b.addi(7, 7, -1);
    b.bne(7, 0, "loop");
    emitSharedEpilogue(b, 9, core);
    // Identical init image from every core: lock free, counters zero.
    b.words(lockBase, {0});
    b.words(ctrBase, std::vector<std::uint64_t>(slots, 0));

    Workload w;
    w.name = "spinlock_counter";
    w.category = "shared";
    w.approxDynInsts = iters * 14;
    w.program = b.finish();
    return w;
}

Workload
makeProducerConsumer(unsigned core, unsigned cores,
                     const WorkloadParams &params)
{
    fatal_if(cores < 2 || cores % 2 != 0,
             "producer_consumer needs an even core count, got %u", cores);
    Rng coreRng(params.seed + 22 + core * 1000);
    const std::uint64_t items = scaleCount(1500, params.lengthScale);
    const unsigned capacity = 16; // ring entries (power of two)

    // Ring k (cores 2k and 2k+1): lock on its own line, head/tail in
    // one control line, then the entry buffer.
    const unsigned ring = core / 2;
    const Addr lockAddr = lockBase + ring * 64ULL;
    const Addr ctlAddr = sharedBase + ring * 4096ULL; // head@0 tail@8
    const Addr bufAddr = ctlAddr + 64;

    const bool producer = core % 2 == 0;
    Builder b(std::string(producer ? "producer" : "consumer") + ".c"
              + std::to_string(core));
    b.li(5, static_cast<std::int64_t>(lockAddr));
    b.li(6, static_cast<std::int64_t>(ctlAddr));
    b.li(8, static_cast<std::int64_t>(bufAddr));
    b.li(7, static_cast<std::int64_t>(items));
    b.li(9, 0); // checksum
    b.li(10, static_cast<std::int64_t>(coreRng.next() | 1)); // prng
    b.li(20, static_cast<std::int64_t>(core + 1));           // token
    b.li(21, capacity);
    b.li(22, capacity - 1); // index mask
    if (producer) {
        b.label("loop");
        emitXorshift(b, 10, 31); // the item to publish
        emitAcquire(b, 5, 20, 12, "acquire");
        b.ld(13, 6, 0); // head
        b.ld(14, 6, 8); // tail
        b.sub(15, 13, 14);
        b.bgeu(15, 21, "full");
        b.and_(16, 13, 22);
        b.slli(16, 16, 3);
        b.add(16, 16, 8);
        b.st(10, 16, 0); // buf[head & mask] = item
        b.addi(13, 13, 1);
        b.st(13, 6, 0); // publish head
        emitRelease(b, 5);
        b.add(9, 9, 10);
        b.addi(7, 7, -1);
        b.bne(7, 0, "loop");
        b.j("done");
        // Ring full: drop the lock and wait on the head/tail counters
        // themselves before retrying.  Spinning on the lock instead
        // would livelock — the deterministic round-robin tick and the
        // fixed coherence latencies can phase-lock so the waiter's
        // amoswap always samples the lock held.
        b.label("full");
        emitRelease(b, 5);
        b.label("wait");
        b.ld(13, 6, 0);
        b.ld(14, 6, 8);
        b.sub(15, 13, 14);
        b.bgeu(15, 21, "wait");
        b.j("acquire");
        b.label("done");
    } else {
        b.label("loop");
        emitAcquire(b, 5, 20, 12, "acquire");
        b.ld(13, 6, 0); // head
        b.ld(14, 6, 8); // tail
        b.beq(13, 14, "empty");
        b.and_(16, 14, 22);
        b.slli(16, 16, 3);
        b.add(16, 16, 8);
        b.ld(17, 16, 0); // take buf[tail & mask]
        b.addi(14, 14, 1);
        b.st(14, 6, 8); // publish tail
        emitRelease(b, 5);
        b.add(9, 9, 17);
        b.addi(7, 7, -1);
        b.bne(7, 0, "loop");
        b.j("done");
        b.label("empty");
        emitRelease(b, 5); // see the producer's "full" path
        b.label("wait");
        b.ld(13, 6, 0);
        b.ld(14, 6, 8);
        b.beq(13, 14, "wait");
        b.j("acquire");
        b.label("done");
    }
    emitSharedEpilogue(b, 9, core);
    // Identical init image: all rings' locks free, heads/tails zero,
    // buffers zero. Every core emits the full layout for every ring.
    for (unsigned r = 0; r < cores / 2; ++r) {
        b.words(lockBase + r * 64ULL, {0});
        b.words(sharedBase + r * 4096ULL,
                std::vector<std::uint64_t>(8 + capacity, 0));
    }

    Workload w;
    w.name = "producer_consumer";
    w.category = "shared";
    w.approxDynInsts = items * 17;
    w.program = b.finish();
    return w;
}

Workload
makeSharedTable(unsigned core, unsigned cores,
                const WorkloadParams &params)
{
    (void)cores;
    // Table contents are drawn from a seed-only stream so every core
    // emits a byte-identical init image.
    Rng dataRng(params.seed + 23);
    Rng coreRng(params.seed + 24 + core * 1000);
    const std::uint64_t entries =
        scalePow2(512, params.footprintScale, 64);
    const std::uint64_t iters = scaleCount(2500, params.lengthScale);
    const Addr tableBase = sharedBase;

    std::vector<std::uint64_t> table(entries);
    for (auto &v : table)
        v = dataRng.next() & 0xffff;

    Builder b("shared_table.c" + std::to_string(core));
    b.li(5, static_cast<std::int64_t>(lockBase));
    b.li(6, static_cast<std::int64_t>(tableBase));
    b.li(7, static_cast<std::int64_t>(iters));
    b.li(9, 0); // checksum
    b.li(10, static_cast<std::int64_t>(coreRng.next() | 1)); // prng
    b.li(20, static_cast<std::int64_t>(core + 1));           // token
    b.li(21, static_cast<std::int64_t>(entries - 1));        // mask
    b.label("loop");
    emitXorshift(b, 10, 31);
    b.and_(11, 10, 21);
    b.slli(11, 11, 3);
    b.add(11, 11, 6); // &table[prng & mask]
    emitAcquire(b, 5, 20, 12, "acquire");
    b.ld(13, 11, 0); // lookup (the common case: read-only section)
    b.add(9, 9, 13);
    b.andi(14, 10, 15);
    b.bne(14, 0, "release"); // ~1/16 of sections also update
    b.addi(13, 13, 1);
    b.st(13, 11, 0);
    b.label("release");
    emitRelease(b, 5);
    b.addi(7, 7, -1);
    b.bne(7, 0, "loop");
    emitSharedEpilogue(b, 9, core);
    b.words(lockBase, {0});
    b.words(tableBase, table);

    Workload w;
    w.name = "shared_table";
    w.category = "shared";
    w.approxDynInsts = iters * 14;
    w.program = b.finish();
    return w;
}

} // namespace

Workload
makePointerChase(const WorkloadParams &params)
{
    Rng rng(params.seed);
    const std::uint64_t nodes = scalePow2(1 << 16, params.footprintScale,
                                          1 << 10); // 64 B per node
    const std::uint64_t steps = scaleCount(20000, params.lengthScale);

    // Sattolo's algorithm: one random cycle through all nodes, so the
    // traversal never short-circuits and defeats spatial prefetching.
    std::vector<std::uint64_t> perm(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        perm[i] = i;
    for (std::uint64_t i = nodes - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i)]);

    std::vector<std::uint64_t> image(nodes * 8, 0);
    for (std::uint64_t i = 0; i < nodes; ++i) {
        image[i * 8] = dataBase + perm[i] * 64;
        image[i * 8 + 1] = rng.next();
    }

    Builder b("pointer_chase");
    b.li(5, static_cast<std::int64_t>(dataBase)); // current node
    b.li(6, 0);                                   // checksum
    b.li(7, static_cast<std::int64_t>(steps));    // steps left
    b.label("loop");
    b.ld(8, 5, 8);       // payload
    b.add(6, 6, 8);
    b.ld(5, 5, 0);       // next pointer: the dependent miss chain
    b.addi(7, 7, -1);
    b.bne(7, 0, "loop");
    emitEpilogue(b, 6);
    b.words(dataBase, image);

    Workload w;
    w.name = "pointer_chase";
    w.category = "commercial";
    w.approxDynInsts = steps * 5;
    w.program = b.finish();
    return w;
}

Workload
makeListWalk(const WorkloadParams &params)
{
    Rng rng(params.seed + 11);
    // Allocation-order linked list: node i lives at i * 5 lines, so
    // the next pointers form an arithmetic sequence (what a bump
    // allocator produces) while the 5-line stride stays outside the
    // next-line prefetcher's reach. The address chain is serially
    // dependent like pointer_chase, but the link *values* are
    // stride-predictable — the case load-value prediction converts.
    // ~1/32 of the links splice forward over a random run of nodes (a
    // freelist reuse), so a confident value predictor still pays for
    // occasional wrong guesses. Splices only ever skip ahead: a
    // backward link would close a short deterministic cycle and
    // collapse the working set.
    constexpr std::uint64_t nodeBytes = 5 * 64;
    const std::uint64_t nodes =
        scalePow2(1 << 15, params.footprintScale, 1 << 10);
    const std::uint64_t steps = scaleCount(20000, params.lengthScale);

    constexpr std::uint64_t nodeWords = nodeBytes / 8;
    std::vector<std::uint64_t> image(nodes * nodeWords, 0);
    for (std::uint64_t i = 0; i < nodes; ++i) {
        std::uint64_t skip = rng.below(32) == 0 ? 1 + rng.below(63) : 0;
        std::uint64_t next = (i + 1 + skip) % nodes;
        image[i * nodeWords] = dataBase + next * nodeBytes;
        image[i * nodeWords + 1] = rng.next();
    }

    Builder b("list_walk");
    b.li(5, static_cast<std::int64_t>(dataBase)); // current node
    b.li(6, 0);                                   // checksum
    b.li(7, static_cast<std::int64_t>(steps));    // steps left
    b.label("loop");
    b.ld(8, 5, 8); // payload
    b.add(6, 6, 8);
    b.ld(5, 5, 0); // next link: dependent, but value-predictable
    b.addi(7, 7, -1);
    b.bne(7, 0, "loop");
    emitEpilogue(b, 6);
    b.words(dataBase, image);

    Workload w;
    w.name = "list_walk";
    w.category = "commercial";
    w.approxDynInsts = steps * 5;
    w.program = b.finish();
    return w;
}

Workload
makeHashJoin(const WorkloadParams &params)
{
    Rng rng(params.seed + 1);
    const std::uint64_t entries =
        scalePow2(1 << 19, params.footprintScale, 1 << 12); // 8 B each
    const std::uint64_t probes = scaleCount(8000, params.lengthScale);

    std::vector<std::uint64_t> table(entries);
    for (auto &v : table)
        v = rng.next();

    Builder b("hash_join");
    b.li(5, static_cast<std::int64_t>(rng.next() | 1)); // prng state
    b.li(6, static_cast<std::int64_t>(dataBase));       // table base
    b.li(7, static_cast<std::int64_t>(probes));
    b.li(9, 0);                                         // checksum
    b.li(10, static_cast<std::int64_t>(entries - 1));   // mask
    b.label("loop");
    emitXorshift(b, 5, 31);
    b.and_(11, 5, 10);
    b.slli(11, 11, 3);
    b.add(11, 11, 6);
    b.ld(12, 11, 0);   // independent random probe: MLP fuel
    b.add(9, 9, 12);
    b.addi(7, 7, -1);
    b.bne(7, 0, "loop");
    emitEpilogue(b, 9);
    b.words(dataBase, table);

    Workload w;
    w.name = "hash_join";
    w.category = "commercial";
    w.approxDynInsts = probes * 13;
    w.program = b.finish();
    return w;
}

Workload
makeBtreeLookup(const WorkloadParams &params)
{
    Rng rng(params.seed + 2);
    const std::uint64_t keys =
        scalePow2(1 << 19, params.footprintScale, 1 << 12);
    const std::uint64_t lookups = scaleCount(700, params.lengthScale);

    std::vector<std::uint64_t> sorted(keys);
    for (auto &v : sorted)
        v = rng.next();
    std::sort(sorted.begin(), sorted.end());

    Builder b("btree_lookup");
    b.li(5, static_cast<std::int64_t>(rng.next() | 1)); // key prng
    b.li(6, static_cast<std::int64_t>(dataBase));
    b.li(7, static_cast<std::int64_t>(lookups));
    b.li(9, 0); // checksum
    b.li(10, static_cast<std::int64_t>(keys)); // array length
    b.label("outer");
    emitXorshift(b, 5, 31);
    b.addi(11, 0, 0);    // lo = 0
    b.addi(12, 10, 0);   // hi = keys
    b.label("inner");
    b.sub(13, 12, 11);
    b.addi(31, 0, 1);
    b.bgeu(31, 13, "inner_done"); // diff <= 1 -> done
    b.srli(13, 13, 1);
    b.add(13, 13, 11);   // mid
    b.slli(14, 13, 3);
    b.add(14, 14, 6);
    b.ld(15, 14, 0);     // dependent miss: next level of the "tree"
    b.bltu(5, 15, "go_left"); // data-dependent: ~50/50, untrainable
    b.addi(11, 13, 0);   // lo = mid
    b.j("inner");
    b.label("go_left");
    b.addi(12, 13, 0);   // hi = mid
    b.j("inner");
    b.label("inner_done");
    b.slli(14, 11, 3);
    b.add(14, 14, 6);
    b.ld(15, 14, 0);
    b.add(9, 9, 15);
    b.addi(7, 7, -1);
    b.bne(7, 0, "outer");
    emitEpilogue(b, 9);
    b.words(dataBase, sorted);

    Workload w;
    w.name = "btree_lookup";
    w.category = "commercial";
    // ~log2(keys) inner iterations of ~10 instructions per lookup.
    w.approxDynInsts =
        lookups * (10 * std::bit_width(keys) + 12);
    w.program = b.finish();
    return w;
}

Workload
makeOltpMix(const WorkloadParams &params)
{
    Rng rng(params.seed + 3);
    const std::uint64_t rows =
        scalePow2(1 << 16, params.footprintScale, 1 << 10); // 64 B rows
    const std::uint64_t txns = scaleCount(3500, params.lengthScale);

    const Addr rowBase = dataBase;
    const Addr tapeBase = dataBase + rows * 64 + 4096;

    std::vector<std::uint64_t> rowImage(rows * 8);
    for (auto &v : rowImage)
        v = rng.next() & 0xffff; // bounded fields keep sums tame
    // Zipf-popular row ids emulate OLTP key skew.
    std::vector<std::uint64_t> tape(txns);
    for (auto &t : tape)
        t = rng.zipf(rows, 0.8);

    Builder b("oltp_mix");
    b.li(5, static_cast<std::int64_t>(tapeBase));
    b.li(6, static_cast<std::int64_t>(rowBase));
    b.li(7, static_cast<std::int64_t>(txns));
    b.li(9, 0);
    b.label("txn");
    b.ld(10, 5, 0);      // next row id from the input tape
    b.addi(5, 5, 8);
    b.slli(11, 10, 6);
    b.add(11, 11, 6);    // row address (skewed-random)
    b.ld(12, 11, 0);     // row fetch: the DRAM miss
    b.ld(13, 11, 8);     // same-line field reads
    b.ld(14, 11, 16);
    b.add(12, 12, 13);
    b.add(12, 12, 14);
    b.add(9, 9, 12);
    b.ld(15, 11, 24);    // read-modify-write of a row counter
    b.addi(15, 15, 1);
    b.st(15, 11, 24);
    b.andi(16, 12, 7);   // "balance check": data-dependent branch
    b.beq(16, 0, "skip");
    b.addi(9, 9, 1);
    b.label("skip");
    b.addi(7, 7, -1);
    b.bne(7, 0, "txn");
    emitEpilogue(b, 9);
    b.words(rowBase, rowImage);
    b.words(tapeBase, tape);

    Workload w;
    w.name = "oltp_mix";
    w.category = "commercial";
    w.approxDynInsts = txns * 19;
    w.program = b.finish();
    return w;
}

Workload
makeGraphScan(const WorkloadParams &params)
{
    Rng rng(params.seed + 4);
    const std::uint64_t values =
        scalePow2(1 << 19, params.footprintScale, 1 << 12);
    const std::uint64_t nodes = scaleCount(1100, params.lengthScale);
    const unsigned maxDegree = 12;

    std::vector<std::uint64_t> offsets(nodes + 1);
    std::vector<std::uint64_t> edges;
    offsets[0] = 0;
    for (std::uint64_t n = 0; n < nodes; ++n) {
        unsigned deg = 4 + static_cast<unsigned>(rng.below(maxDegree - 3));
        for (unsigned e = 0; e < deg; ++e)
            edges.push_back(rng.below(values));
        offsets[n + 1] = edges.size();
    }
    std::vector<std::uint64_t> valueImage(values);
    for (auto &v : valueImage)
        v = rng.next() & 0xffffff;

    const Addr offBase = dataBase;
    const Addr edgeBase = offBase + (nodes + 1) * 8 + 4096;
    const Addr valBase = edgeBase + edges.size() * 8 + 4096;

    Builder b("graph_scan");
    b.li(5, static_cast<std::int64_t>(offBase));
    b.li(6, static_cast<std::int64_t>(edgeBase));
    b.li(8, static_cast<std::int64_t>(valBase));
    b.li(9, 0);
    b.li(7, static_cast<std::int64_t>(nodes));
    b.li(10, 0); // node index
    b.label("outer");
    b.slli(11, 10, 3);
    b.add(11, 11, 5);
    b.ld(12, 11, 0); // edge range [start, end): sequential accesses
    b.ld(13, 11, 8);
    b.label("inner");
    b.bgeu(12, 13, "inner_done");
    b.slli(14, 12, 3);
    b.add(14, 14, 6);
    b.ld(15, 14, 0); // edge target (sequential)
    b.slli(15, 15, 3);
    b.add(15, 15, 8);
    b.ld(16, 15, 0); // gather from the value array: random, independent
    b.add(9, 9, 16);
    b.addi(12, 12, 1);
    b.j("inner");
    b.label("inner_done");
    b.addi(10, 10, 1);
    b.bne(10, 7, "outer");
    emitEpilogue(b, 9);
    b.words(offBase, offsets);
    b.words(edgeBase, edges);
    b.words(valBase, valueImage);

    Workload w;
    w.name = "graph_scan";
    w.category = "commercial";
    w.approxDynInsts = nodes * (8 + 8 * 9);
    w.program = b.finish();
    return w;
}

Workload
makeStream(const WorkloadParams &params)
{
    Rng rng(params.seed + 5);
    const std::uint64_t len =
        scalePow2(1 << 15, params.footprintScale, 1 << 10);
    const std::uint64_t iters =
        std::min<std::uint64_t>(len, scaleCount(28000, params.lengthScale));

    std::vector<std::uint64_t> bArr(len);
    std::vector<std::uint64_t> cArr(len);
    for (std::uint64_t i = 0; i < len; ++i) {
        bArr[i] = safeDoubleBits(rng);
        cArr[i] = safeDoubleBits(rng);
    }

    const Addr aBase = dataBase;
    const Addr bBase = aBase + len * 8 + 4096;
    const Addr cBase = bBase + len * 8 + 4096;

    Builder b("stream");
    b.li(5, static_cast<std::int64_t>(aBase));
    b.li(6, static_cast<std::int64_t>(bBase));
    b.li(7, static_cast<std::int64_t>(cBase));
    b.li(8, static_cast<std::int64_t>(iters));
    b.li(9, static_cast<std::int64_t>(
                std::bit_cast<std::uint64_t>(3.0))); // scale factor
    b.li(10, 0);
    b.label("loop");
    b.ld(11, 6, 0);
    b.ld(12, 7, 0);
    b.fmul(12, 12, 9);
    b.fadd(11, 11, 12);
    b.st(11, 5, 0); // a[i] = b[i] + 3.0 * c[i]
    b.addi(5, 5, 8);
    b.addi(6, 6, 8);
    b.addi(7, 7, 8);
    b.addi(10, 10, 1);
    b.bne(10, 8, "loop");
    emitEpilogue(b, 11);
    b.words(bBase, bArr);
    b.words(cBase, cArr);

    Workload w;
    w.name = "stream";
    w.category = "compute";
    w.approxDynInsts = iters * 10;
    w.program = b.finish();
    return w;
}

Workload
makeComputeKernel(const WorkloadParams &params)
{
    Rng rng(params.seed + 6);
    const std::uint64_t tableWords = 512; // 4 KB: stays L1-resident
    const std::uint64_t iters = scaleCount(12000, params.lengthScale);

    std::vector<std::uint64_t> table(tableWords);
    for (auto &v : table)
        v = rng.next() & 0xffff;

    Builder b("compute_kernel");
    for (RegId r = 10; r <= 13; ++r)
        b.li(r, static_cast<std::int64_t>(safeDoubleBits(rng)));
    b.li(14, static_cast<std::int64_t>(
                 std::bit_cast<std::uint64_t>(0.5))); // contraction coef
    b.li(15, static_cast<std::int64_t>(
                 std::bit_cast<std::uint64_t>(1.25)));
    b.li(5, static_cast<std::int64_t>(dataBase));
    b.li(7, static_cast<std::int64_t>(iters));
    b.li(9, 0);
    b.label("loop");
    // Four independent contraction chains: x = 0.5*x + 1.25. High ILP,
    // no memory pressure: the regime where wide OoO wins.
    for (RegId r = 10; r <= 13; ++r) {
        b.fmul(r, r, 14);
        b.fadd(r, r, 15);
    }
    b.andi(16, 7, 511);
    b.slli(16, 16, 3);
    b.add(16, 16, 5);
    b.ld(17, 16, 0); // L1-resident table lookup
    b.add(9, 9, 17);
    b.addi(7, 7, -1);
    b.bne(7, 0, "loop");
    for (RegId r = 10; r <= 13; ++r)
        b.xor_(9, 9, r);
    emitEpilogue(b, 9);
    b.words(dataBase, table);

    Workload w;
    w.name = "compute_kernel";
    w.category = "compute";
    w.approxDynInsts = iters * 15;
    w.program = b.finish();
    return w;
}

Workload
makeSortedMerge(const WorkloadParams &params)
{
    Rng rng(params.seed + 7);
    const std::uint64_t len =
        scalePow2(1 << 13, params.footprintScale, 1 << 8);
    const std::uint64_t maxSteps = scaleCount(8000, params.lengthScale);

    std::vector<std::uint64_t> a(len);
    std::vector<std::uint64_t> bv(len);
    for (auto &v : a)
        v = rng.next();
    for (auto &v : bv)
        v = rng.next();
    std::sort(a.begin(), a.end());
    std::sort(bv.begin(), bv.end());

    const Addr aBase = dataBase;
    const Addr bBase = aBase + len * 8 + 4096;
    const Addr outBase = bBase + len * 8 + 4096;

    Builder b("sorted_merge");
    b.li(5, static_cast<std::int64_t>(aBase));
    b.li(6, static_cast<std::int64_t>(bBase));
    b.li(7, static_cast<std::int64_t>(outBase));
    b.li(10, static_cast<std::int64_t>(aBase + len * 8));
    b.li(11, static_cast<std::int64_t>(bBase + len * 8));
    b.li(9, 0);
    b.li(14, static_cast<std::int64_t>(maxSteps));
    b.label("loop");
    b.beq(14, 0, "done"); // step budget exhausted
    b.addi(14, 14, -1);
    b.bgeu(5, 10, "done"); // either input exhausted ends the merge
    b.bgeu(6, 11, "done");
    b.ld(12, 5, 0);
    b.ld(13, 6, 0);
    b.bltu(12, 13, "take_a"); // ~50/50 data-dependent branch
    b.st(13, 7, 0);
    b.add(9, 9, 13);
    b.addi(6, 6, 8);
    b.j("cont");
    b.label("take_a");
    b.st(12, 7, 0);
    b.add(9, 9, 12);
    b.addi(5, 5, 8);
    b.label("cont");
    b.addi(7, 7, 8);
    b.j("loop");
    b.label("done");
    emitEpilogue(b, 9);
    b.words(aBase, a);
    b.words(bBase, bv);

    Workload w;
    w.name = "sorted_merge";
    w.category = "compute";
    w.approxDynInsts = std::min(len, maxSteps) * 13;
    w.program = b.finish();
    return w;
}

Workload
makeColumnScan(const WorkloadParams &params)
{
    Rng rng(params.seed + 8);
    const std::uint64_t colLen =
        scalePow2(1 << 19, params.footprintScale, 1 << 12); // 8 B each
    const std::uint64_t scanned =
        std::min<std::uint64_t>(colLen,
                                scaleCount(24000, params.lengthScale));

    std::vector<std::uint64_t> column(colLen);
    for (auto &v : column)
        v = rng.next() & 0xffffffff;

    Builder b("column_scan");
    b.li(5, static_cast<std::int64_t>(dataBase));
    b.li(6, static_cast<std::int64_t>(scanned));
    b.li(7, 0);  // index
    b.li(9, 0);  // sum of selected values
    b.li(10, 0); // match count
    b.label("loop");
    b.ld(11, 5, 0); // sequential column read (DRAM streaming)
    b.andi(12, 11, 3);
    b.bne(12, 0, "skip"); // ~25% selectivity, data-dependent
    b.add(9, 9, 11);
    b.addi(10, 10, 1);
    b.label("skip");
    b.addi(5, 5, 8);
    b.addi(7, 7, 1);
    b.bne(7, 6, "loop");
    b.add(9, 9, 10);
    emitEpilogue(b, 9);
    b.words(dataBase, column);

    Workload w;
    w.name = "column_scan";
    w.category = "commercial";
    w.approxDynInsts = scanned * 8;
    w.program = b.finish();
    return w;
}

Workload
makeMatrixBlocked(const WorkloadParams &params)
{
    Rng rng(params.seed + 9);
    // N scales with the cube root of lengthScale (work is N^3).
    double scaled = 24.0 * std::cbrt(std::max(0.01, params.lengthScale));
    const std::uint64_t n = std::min<std::uint64_t>(
        64, std::max<std::uint64_t>(8,
                                    static_cast<std::uint64_t>(scaled)));

    std::vector<std::uint64_t> a(n * n);
    std::vector<std::uint64_t> bm(n * n);
    for (auto &v : a)
        v = safeDoubleBits(rng);
    for (auto &v : bm)
        v = safeDoubleBits(rng);

    const Addr aBase = dataBase;
    const Addr bBase = aBase + n * n * 8 + 4096;
    const Addr cBase = bBase + n * n * 8 + 4096;

    Builder b("matrix_blocked");
    b.li(5, static_cast<std::int64_t>(aBase));
    b.li(6, static_cast<std::int64_t>(bBase));
    b.li(7, static_cast<std::int64_t>(cBase));
    b.li(13, static_cast<std::int64_t>(n));
    b.li(9, 0);  // checksum
    b.li(10, 0); // i
    b.label("iloop");
    b.li(11, 0); // j
    b.mul(15, 10, 13); // row base of A (elements)
    b.slli(15, 15, 3);
    b.add(15, 15, 5);
    b.label("jloop");
    b.li(20, 0); // accumulator (+0.0 bits)
    b.li(12, 0); // k
    b.label("kloop");
    b.slli(16, 12, 3);
    b.add(16, 16, 15);
    b.ld(17, 16, 0); // A[i][k]: unit stride, L1-friendly
    b.mul(18, 12, 13);
    b.add(18, 18, 11);
    b.slli(18, 18, 3);
    b.add(18, 18, 6);
    b.ld(19, 18, 0); // B[k][j]: stride N*8
    b.fmul(17, 17, 19);
    b.fadd(20, 20, 17);
    b.addi(12, 12, 1);
    b.bne(12, 13, "kloop");
    b.mul(21, 10, 13);
    b.add(21, 21, 11);
    b.slli(21, 21, 3);
    b.add(21, 21, 7);
    b.st(20, 21, 0); // C[i][j]
    b.xor_(9, 9, 20);
    b.addi(11, 11, 1);
    b.bne(11, 13, "jloop");
    b.addi(10, 10, 1);
    b.bne(10, 13, "iloop");
    emitEpilogue(b, 9);
    b.words(aBase, a);
    b.words(bBase, bm);

    Workload w;
    w.name = "matrix_blocked";
    w.category = "compute";
    w.approxDynInsts = n * n * n * 11;
    w.program = b.finish();
    return w;
}

std::vector<std::string>
allWorkloadNames()
{
    return {"pointer_chase", "list_walk",      "hash_join",
            "btree_lookup",  "oltp_mix",       "graph_scan",
            "column_scan",   "stream",         "compute_kernel",
            "sorted_merge",  "matrix_blocked"};
}

std::vector<std::string>
commercialWorkloadNames()
{
    return {"pointer_chase", "list_walk", "hash_join", "btree_lookup",
            "oltp_mix", "graph_scan", "column_scan"};
}

std::vector<std::string>
computeWorkloadNames()
{
    return {"stream", "compute_kernel", "sorted_merge",
            "matrix_blocked"};
}

Workload
makeWorkload(const std::string &name, const WorkloadParams &params)
{
    if (name == "pointer_chase")
        return makePointerChase(params);
    if (name == "list_walk")
        return makeListWalk(params);
    if (name == "hash_join")
        return makeHashJoin(params);
    if (name == "btree_lookup")
        return makeBtreeLookup(params);
    if (name == "oltp_mix")
        return makeOltpMix(params);
    if (name == "graph_scan")
        return makeGraphScan(params);
    if (name == "stream")
        return makeStream(params);
    if (name == "compute_kernel")
        return makeComputeKernel(params);
    if (name == "sorted_merge")
        return makeSortedMerge(params);
    if (name == "column_scan")
        return makeColumnScan(params);
    if (name == "matrix_blocked")
        return makeMatrixBlocked(params);
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
sharedWorkloadNames()
{
    return {"spinlock_counter", "producer_consumer", "shared_table"};
}

std::vector<Workload>
makeSharedWorkload(const std::string &name, unsigned cores,
                   const WorkloadParams &params)
{
    fatal_if(cores == 0, "shared workload needs at least one core");
    std::vector<Workload> out;
    out.reserve(cores);
    for (unsigned core = 0; core < cores; ++core) {
        if (name == "spinlock_counter")
            out.push_back(makeSpinlockCounter(core, cores, params));
        else if (name == "producer_consumer")
            out.push_back(makeProducerConsumer(core, cores, params));
        else if (name == "shared_table")
            out.push_back(makeSharedTable(core, cores, params));
        else
            fatal("unknown shared workload '%s'", name.c_str());
    }
    return out;
}

} // namespace sst
