/**
 * @file
 * Workload generators.
 *
 * The paper evaluates SST on commercial benchmarks (OLTP/ERP-class:
 * large working sets, pointer-dependent misses, data-dependent
 * branches, low ILP) against SPEC-class compute codes. Those suites are
 * proprietary, so each generator below synthesises a kernel with the
 * same first-order behaviour — the properties SST actually responds to:
 * L2-resident vs DRAM-resident footprints, independent vs dependent
 * miss chains, and predictable vs data-dependent control flow.
 *
 * Every generator is deterministic in its seed and produces a complete
 * Program (code + initial data image) in the sstsim ISA.
 *
 * | name           | class      | memory behaviour        | control    |
 * |----------------|------------|-------------------------|------------|
 * | pointer_chase  | commercial | dependent DRAM misses   | trivial    |
 * | list_walk      | commercial | dependent misses, value-|            |
 * |                |            | predictable next links  | trivial    |
 * | hash_join      | commercial | independent DRAM misses | trivial    |
 * | btree_lookup   | commercial | dependent misses        | data-dep   |
 * | oltp_mix       | commercial | independent misses + upd| mixed      |
 * | graph_scan     | commercial | seq + random misses     | loop-dep   |
 * | stream         | compute    | sequential, prefetches  | trivial    |
 * | compute_kernel | compute    | L1-resident             | trivial    |
 * | sorted_merge   | compute    | sequential              | data-dep   |
 * | column_scan    | commercial | sequential + predicate  | data-dep   |
 * | matrix_blocked | compute    | tiled, L1-friendly      | trivial    |
 *
 * Shared-memory workloads (coherent CMP only) emit one program per
 * core over a single physical image. Critical sections are guarded by
 * amoswap spinlocks (0 = free, nonzero = held; release is a plain
 * store of 0) and deliberately never re-read the lock word inside the
 * section, so they are elision-friendly (see INTERNALS.md).
 *
 * | name              | sharing behaviour                             |
 * |-------------------|-----------------------------------------------|
 * | spinlock_counter  | all cores contend one lock, bump counters     |
 * | producer_consumer | core pairs move items through a locked ring   |
 * | shared_table      | read-mostly lookups, ~1/16 updates, one lock  |
 */

#ifndef SSTSIM_WORKLOADS_WORKLOADS_HH
#define SSTSIM_WORKLOADS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace sst
{

/** Generator knobs. Defaults give runs of a few hundred K instructions
 *  with working sets that miss a 2 MB L2 where the class demands it. */
struct WorkloadParams
{
    std::uint64_t seed = 42;
    /** Working-set scale: 1.0 = the class's default footprint. */
    double footprintScale = 1.0;
    /** Run-length scale: 1.0 = the default iteration count. */
    double lengthScale = 1.0;
};

/** A generated workload plus its metadata. */
struct Workload
{
    std::string name;
    /** "commercial" or "compute" — drives the paper's aggregates. */
    std::string category;
    Program program;
    /** Approximate dynamic instruction count at lengthScale=1. */
    std::uint64_t approxDynInsts = 0;
};

Workload makePointerChase(const WorkloadParams &params = {});
Workload makeHashJoin(const WorkloadParams &params = {});
Workload makeBtreeLookup(const WorkloadParams &params = {});
Workload makeOltpMix(const WorkloadParams &params = {});
Workload makeGraphScan(const WorkloadParams &params = {});
Workload makeStream(const WorkloadParams &params = {});
Workload makeComputeKernel(const WorkloadParams &params = {});
Workload makeSortedMerge(const WorkloadParams &params = {});
Workload makeColumnScan(const WorkloadParams &params = {});
Workload makeMatrixBlocked(const WorkloadParams &params = {});

/** All workload names in canonical bench order. */
std::vector<std::string> allWorkloadNames();
/** Names in the "commercial" class (the paper's headline aggregate). */
std::vector<std::string> commercialWorkloadNames();
/** Names in the "compute" class. */
std::vector<std::string> computeWorkloadNames();

/** Build a workload by name; unknown names are fatal. */
Workload makeWorkload(const std::string &name,
                      const WorkloadParams &params = {});

/**
 * Build a shared-memory workload: one program per core, all loading
 * identical initial data into one shared image. Core @c k writes its
 * checksum to a disjoint result slot (resultAddr + 8k). Per-core PRNG
 * streams are seeded from (params.seed, core), so a given (name, cores,
 * seed) triple is fully deterministic. "producer_consumer" requires an
 * even core count; the others accept any count >= 1.
 */
std::vector<Workload> makeSharedWorkload(const std::string &name,
                                         unsigned cores,
                                         const WorkloadParams &params = {});

/** All shared-memory workload names in canonical bench order. */
std::vector<std::string> sharedWorkloadNames();

} // namespace sst

#endif // SSTSIM_WORKLOADS_WORKLOADS_HH
