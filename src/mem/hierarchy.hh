/**
 * @file
 * Memory hierarchy wiring: per-core L1I/L1D + MSHRs + prefetcher in
 * front of a shared L2 and banked DRAM.
 *
 * Timing discipline is "fill at request, ready later": a miss installs
 * its line immediately with a readyCycle equal to the fill's completion
 * time, so later accesses to the same line observe hit-under-fill
 * semantics without an event queue. Bandwidth is modelled with
 * busy-until state on the L2 port and the DRAM channel.
 */

#ifndef SSTSIM_MEM_HIERARCHY_HH
#define SSTSIM_MEM_HIERARCHY_HH

#include <memory>
#include <unordered_set>
#include <vector>

#include "coh/coh.hh"
#include "common/stats.hh"
#include "common/tickgate.hh"
#include "common/types.hh"
#include "fault/fault.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/mshr.hh"
#include "mem/prefetcher.hh"
#include "mem/req.hh"
#include "mem/tlb.hh"

namespace sst
{

/** Full hierarchy configuration. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 32 * 1024, 4, 64, 2, ReplPolicy::Lru};
    CacheParams l1d{"l1d", 32 * 1024, 4, 64, 3, ReplPolicy::Lru};
    CacheParams l2{"l2", 2 * 1024 * 1024, 8, 64, 20, ReplPolicy::Lru};
    DramParams dram{};
    unsigned l1MshrEntries = 16;
    unsigned l2PortCycles = 4;
    PrefetcherParams dataPrefetch{};
    PrefetcherParams instPrefetch{true, 1, 1};
    /** Data TLB; entries=0 (the default) disables translation
     *  modelling. When enabled, a TLB miss reports as a non-hit with
     *  the page-walk latency folded in — which makes it an SST
     *  deferral trigger, as in the paper. */
    TlbParams dtlb{0, 4096, 120};
    /** Fault injection (chaos testing); all off by default. */
    FaultParams fault{};
    /** Coherence directory; disabled (private salted windows) by
     *  default. When enabled the CMP shares one physical address space
     *  and the directory models invalidation/intervention traffic. */
    CohParams coh{};
};

class MemorySystem;

/**
 * One core's view of the hierarchy. All core models issue their memory
 * traffic through this interface.
 */
class CorePort
{
  public:
    CorePort(MemorySystem &system, const HierarchyParams &params,
             unsigned coreId);

    /**
     * Timed access at cycle @p now. Loads/stores hit L1D; InstFetch hits
     * L1I; Prefetch allocates without blocking. A rejected result means
     * no MSHR was available (structural hazard) — the core must retry.
     */
    AccessResult access(AccessType type, Addr addr, Cycle now);

    /** True when a load of @p addr would hit settled data in L1D. */
    bool probeL1d(Addr addr) const;

    /**
     * Address salt added to every timing access. The CMP harness gives
     * each core a disjoint "physical" range so identical per-core
     * programs contend for L2 capacity without falsely sharing lines.
     */
    void setAddressSalt(Addr salt) { addressSalt_ = salt; }

    /**
     * Register the core's speculative-read-set interface. The fabric
     * asks it, on every remote functional write, whether the written
     * line is speculatively read here and must squash (null = core
     * model without speculation; nothing to squash).
     */
    void setCohClient(CohClient *client) { cohClient_ = client; }
    CohClient *cohClient() const { return cohClient_; }

    /** Demand misses in flight (for MLP accounting). */
    unsigned outstandingDemand(Cycle now)
    {
        mshrs_.expire(now);
        return mshrs_.outstandingDemand(now);
    }

    const MshrFile &mshrs() const { return mshrs_; }
    const Tlb &dtlb() const { return dtlb_; }
    Cache &l1d() { return l1d_; }
    Cache &l1i() { return l1i_; }

    /**
     * Earliest pending completion on this port strictly after @p now —
     * the min over in-flight MSHR fills and TLB walks — or invalidCycle
     * when nothing is outstanding. A wake-cycle probe for tests and
     * diagnostics: a stalled core's own nextWakeCycle() already carries
     * the fill it waits on via the access result, so the run loops do
     * not clamp skips with this (fills nobody waits for — e.g.
     * prefetches — must not truncate a skip).
     */
    Cycle nextWakeCycle(Cycle now) const
    {
        Cycle mshr = mshrs_.earliestCompletion(now);
        Cycle walk = dtlb_.earliestWalkCompletion(now);
        return mshr < walk ? mshr : walk;
    }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /** The shared fault injector (chaos hooks; disabled by default). */
    FaultInjector &faults();

    /** Invalidate both L1s (between benchmark phases). */
    void flush();

    /** Serialize caches/MSHRs/TLB/prefetchers + the prefetched-line set
     *  (sorted, so equal state encodes to equal bytes). The stats tree
     *  is serialized by the owning Machine, not here. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    friend class MemorySystem;

    AccessResult dataAccess(AccessType type, Addr addr, Cycle now);
    AccessResult instAccess(Addr addr, Cycle now);
    void issuePrefetches(Cache &cache, Prefetcher &pf, Addr lineAddr,
                         bool wasMiss, Cycle now);

    /** A remote write took this core's copy of @p line: drop it from
     *  L1D, poison any in-flight fill, and remember the theft so the
     *  re-miss is attributed to coherence. */
    void applyInvalidate(Addr line);

    /** Under the parallel engine: block until an op by this core at
     *  cycle @p now is next in the global (cycle, coreId) order. No-op
     *  without a gate, and cheap when re-entered within one tick. */
    void ordered(Cycle now) const
    {
        if (gate_)
            gate_->enter(coreId_, now);
    }

    /** This core's last store left it the exclusive directory owner of
     *  @p line; until that changes, further owner stores are silent
     *  directory no-ops and can skip the gate + lookup entirely. */
    void noteStoreOwnership(Addr line) { ownedStoreLines_.insert(line); }
    /** A remote access demoted this core's exclusive ownership. */
    void dropStoreOwnership(Addr line) { ownedStoreLines_.erase(line); }

    MemorySystem &system_;
    unsigned coreId_;
    Addr addressSalt_ = 0;
    StatGroup stats_;
    Cache l1i_;
    Cache l1d_;
    MshrFile mshrs_;
    Tlb dtlb_;
    Prefetcher dataPf_;
    Prefetcher instPf_;
    /** Lines brought in by prefetch and not yet demanded. */
    std::unordered_set<Addr> prefetchedLines_;
    CohClient *cohClient_ = nullptr;
    /** Lines lost to remote writes; cleared on the next local access
     *  (which reports coh=true so the stall lands in the coherence
     *  CPI bucket). */
    std::unordered_set<Addr> cohInvalidatedLines_;
    /** Lines this core exclusively owns after storing to them (a
     *  conservative mirror of the directory's owner records, kept so
     *  the hot private-store path never touches shared state). Part of
     *  the serialized port state: resumed runs must skip exactly the
     *  same directory lookups as uninterrupted ones. */
    std::unordered_set<Addr> ownedStoreLines_;
    /** Installed by MemorySystem::beginEngineRun during parallel CMP
     *  runs; null otherwise. */
    const TickGate *gate_ = nullptr;
    /** Gate every access (fault injection armed: each access may draw
     *  from the shared RNG even on an L1 hit). */
    bool gateAll_ = false;
    Scalar &cohInvalidationsSeen_;
};

/** Shared L2 + DRAM; owns the per-core ports. */
class MemorySystem
{
  public:
    explicit MemorySystem(const HierarchyParams &params);

    /** Create the port for the next core. Stable address. */
    CorePort &addCore();

    const HierarchyParams &params() const { return params_; }
    unsigned lineBytes() const { return params_.l2.lineBytes; }
    Cache &l2() { return l2_; }
    Dram &dram() { return dram_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    FaultInjector &faults() { return faults_; }

    /** Invalidate all caches and drain DRAM state. */
    void flushAll();

    /** True when the CMP runs one shared address space with the
     *  directory arbitrating line ownership. */
    bool coherent() const { return params_.coh.enabled; }
    Directory &directory() { return directory_; }

    /** The core whose tick is in progress: functional writes observed
     *  while it runs are its writes (self-invalidation is skipped). */
    void setActiveCore(unsigned core) { activeCore_ = core; }

    /**
     * A functional write of @p size bytes at @p addr just landed in the
     * shared MemoryImage (fired by its write observer during the active
     * core's tick). Squashes every *other* core whose speculative read
     * set covers a written line — the requester-wins conflict rule that
     * keeps committed regions serializable.
     */
    void onFunctionalWrite(Addr addr, unsigned size);

    /**
     * Directory lookup for an access by @p core to @p line, applying
     * any invalidations to the victim cores' L1s/MSHRs and tracing the
     * traffic. @return the coherence action; the caller folds
     * .latency into the access's ready time.
     */
    CohAction coherenceAccess(Addr line, unsigned core, bool isStore,
                              Cycle now);

    /** Core @p core silently dropped @p line from its L1D. */
    void noteEvict(Addr line, unsigned core);

    /**
     * Enter parallel-engine mode: install @p gate on every port so
     * shared-state touches order themselves in (cycle, coreId)
     * sequence, and (when coherent) defer cross-core invalidation
     * delivery into a queue drained at quantum barriers. @p gateAll
     * forces a gate on every access (needed once fault injection is
     * armed, because any access may then draw from the shared RNG).
     */
    void beginEngineRun(const TickGate *gate, bool gateAll);
    void endEngineRun();

    /** True while invalidation delivery is deferred to barriers. */
    bool cohDeferred() const { return deferCoh_; }

    /**
     * Serial barrier phase: deliver every deferred invalidation and
     * ownership downgrade in the (cycle, coreId) order it was queued.
     */
    void drainDeferredCoh();

    /** Route coherence trace events into @p buf (null detaches). */
    void setTraceBuffer(trace::TraceBuffer *buf) { traceBuf_ = buf; }

    /** Serialize L2/DRAM/fault-RNG/port-arbiter state plus every
     *  registered core port (ports must already exist: configuration,
     *  including core count, is re-created before load). */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    friend class CorePort;

    /**
     * L1-miss path: arbitrate for the L2 port, probe L2, on L2 miss go
     * to DRAM and fill L2. @return data-ready cycle; sets @p l2Hit.
     */
    Cycle accessL2(Addr lineAddr, Cycle now, bool &l2Hit);

    /** Account an L1 dirty-eviction writeback into L2. */
    void writebackToL2(Addr lineAddr, Cycle now);

    /** Drop @p line from @p victim's L1/MSHRs with a trace event at
     *  @p cycle (shared by the inline and deferred delivery paths). */
    void deliverInvalidate(Addr line, unsigned victim, Cycle cycle);

    /** One deferred cross-core coherence effect. */
    struct DeferredCoh
    {
        Addr line;
        std::uint32_t victim;
        Cycle cycle;
        /** true: invalidate the victim's copy; false: the victim only
         *  loses exclusive-ownership (a remote load shared the line). */
        bool invalidate;
    };

    HierarchyParams params_;
    StatGroup stats_;
    Cache l2_;
    Dram dram_;
    FaultInjector faults_;
    Directory directory_;
    Cycle l2PortFree_ = 0;
    Scalar &l2PortStall_;
    Scalar &cohSquashes_;
    unsigned activeCore_ = 0;
    trace::TraceBuffer *traceBuf_ = nullptr;
    bool deferCoh_ = false;
    std::vector<DeferredCoh> cohQueue_;
    std::vector<std::unique_ptr<CorePort>> ports_;
};

} // namespace sst

#endif // SSTSIM_MEM_HIERARCHY_HH
