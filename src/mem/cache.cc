#include "mem/cache.hh"

#include <bit>

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

Cache::Cache(const CacheParams &params, StatGroup &parentStats)
    : params_(params),
      lineMask_(params.lineBytes - 1),
      numSets_(0),
      lineShift_(0),
      rng_(0xcac4e + std::hash<std::string>{}(params.name)),
      stats_(params.name),
      accesses_(stats_.addScalar("accesses", "total probes")),
      hits_(stats_.addScalar("hits", "probe hits")),
      misses_(stats_.addScalar("misses", "probe misses")),
      evictions_(stats_.addScalar("evictions", "valid lines replaced")),
      writebacks_(stats_.addScalar("writebacks", "dirty lines replaced"))
{
    fatal_if(!std::has_single_bit(
                 static_cast<std::uint64_t>(params.lineBytes)),
             "%s: line size %u not a power of two", params.name.c_str(),
             params.lineBytes);
    fatal_if(params.assoc == 0, "%s: zero associativity",
             params.name.c_str());
    std::uint64_t numLines = params.sizeBytes / params.lineBytes;
    fatal_if(numLines == 0 || numLines % params.assoc != 0,
             "%s: size/assoc/line geometry invalid", params.name.c_str());
    numSets_ = static_cast<unsigned>(numLines / params.assoc);
    fatal_if(!std::has_single_bit(static_cast<std::uint64_t>(numSets_)),
             "%s: set count %u not a power of two", params.name.c_str(),
             numSets_);
    lineShift_ = static_cast<unsigned>(std::countr_zero(
        static_cast<std::uint64_t>(params.lineBytes)));
    lines_.resize(numLines);
    mruWay_.assign(numSets_, 0);

    stats_.addFormula("miss_rate", "misses / accesses", [this] {
        auto a = accesses_.value();
        return a ? static_cast<double>(misses_.value())
                       / static_cast<double>(a)
                 : 0.0;
    });

    parentStats.addChild(stats_);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> lineShift_) & (numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    unsigned set = setIndex(addr);
    Addr tag = tagOf(addr);
    unsigned hint = mruWay_[set];
    {
        Line &line = lines_[set * params_.assoc + hint];
        if (line.valid && line.tag == tag)
            return &line;
    }
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (w == hint)
            continue;
        Line &line = lines_[set * params_.assoc + w];
        if (line.valid && line.tag == tag) {
            mruWay_[set] = w;
            return &line;
        }
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

Cache::LookupResult
Cache::access(Addr addr, bool isStore, Cycle now)
{
    ++accesses_;
    Line *line = findLine(addr);
    LookupResult res;
    if (line) {
        ++hits_;
        res.hit = true;
        Cycle settled = now + params_.hitLatency;
        res.readyCycle = std::max(settled, line->readyCycle);
        line->lastUse = ++useCounter_;
        line->nruRef = true;
        if (isStore)
            line->dirty = true;
    } else {
        ++misses_;
    }
    return res;
}

bool
Cache::contains(Addr addr) const
{
    return findLine(addr) != nullptr;
}

unsigned
Cache::victimWay(unsigned set)
{
    // Prefer an invalid way.
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (!lines_[set * params_.assoc + w].valid)
            return w;

    switch (params_.policy) {
      case ReplPolicy::Random:
        return static_cast<unsigned>(rng_.below(params_.assoc));
      case ReplPolicy::Nru: {
        for (int pass = 0; pass < 2; ++pass) {
            for (unsigned w = 0; w < params_.assoc; ++w) {
                Line &line = lines_[set * params_.assoc + w];
                if (!line.nruRef)
                    return w;
            }
            // All referenced: clear and retry.
            for (unsigned w = 0; w < params_.assoc; ++w)
                lines_[set * params_.assoc + w].nruRef = false;
        }
        return 0;
      }
      case ReplPolicy::Lru:
      default: {
        unsigned victim = 0;
        std::uint64_t oldest = ~std::uint64_t{0};
        for (unsigned w = 0; w < params_.assoc; ++w) {
            Line &line = lines_[set * params_.assoc + w];
            if (line.lastUse < oldest) {
                oldest = line.lastUse;
                victim = w;
            }
        }
        return victim;
      }
    }
}

Eviction
Cache::fill(Addr addr, Cycle fillReady, bool dirty)
{
#if SST_TRACE
    if (traceBuf_)
        traceBuf_->record(trace::TraceEvent{
            fillReady, lineAddr(addr), 0, traceLevel_,
            trace::TraceKind::Fill, trace::TraceStrand::Mem});
#endif
    // Refill of a present line (e.g. prefetch completing after a demand
    // fill): just update state.
    if (Line *line = findLine(addr)) {
        line->readyCycle = std::min(line->readyCycle, fillReady);
        line->dirty = line->dirty || dirty;
        return Eviction{};
    }

    unsigned set = setIndex(addr);
    unsigned way = victimWay(set);
    mruWay_[set] = way;
    Line &line = lines_[set * params_.assoc + way];

    Eviction ev;
    if (line.valid) {
        ev.valid = true;
        ev.dirty = line.dirty;
        ev.lineAddr = line.tag << lineShift_;
        ++evictions_;
        if (line.dirty)
            ++writebacks_;
    }

    line.valid = true;
    line.dirty = dirty;
    line.nruRef = true;
    line.tag = tagOf(addr);
    line.lastUse = ++useCounter_;
    line.readyCycle = fillReady;
    return ev;
}

void
Cache::invalidate(Addr addr)
{
    if (Line *line = findLine(addr))
        line->valid = false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
}


void
Cache::save(snap::Writer &w) const
{
    w.tag("cache");
    w.u32(static_cast<std::uint32_t>(lines_.size()));
    for (const Line &l : lines_) {
        w.b(l.valid);
        w.b(l.dirty);
        w.b(l.nruRef);
        w.u64(l.tag);
        w.u64(l.lastUse);
        w.u64(l.readyCycle);
    }
    w.u32(static_cast<std::uint32_t>(mruWay_.size()));
    for (std::uint32_t way : mruWay_)
        w.u32(way);
    w.u64(useCounter_);
    rng_.save(w);
}

void
Cache::load(snap::Reader &r)
{
    r.tag("cache");
    std::uint32_t n = r.u32();
    fatal_if(n != lines_.size(),
             "snapshot: cache '%s' has %u lines, expected %zu "
             "(configuration mismatch)",
             params_.name.c_str(), n, lines_.size());
    for (Line &l : lines_) {
        l.valid = r.b();
        l.dirty = r.b();
        l.nruRef = r.b();
        l.tag = r.u64();
        l.lastUse = r.u64();
        l.readyCycle = r.u64();
    }
    std::uint32_t m = r.u32();
    fatal_if(m != mruWay_.size(),
             "snapshot: cache '%s' has %u sets, expected %zu "
             "(configuration mismatch)",
             params_.name.c_str(), m, mruWay_.size());
    for (std::uint32_t &way : mruWay_)
        way = r.u32();
    useCounter_ = r.u64();
    rng_.load(r);
}

} // namespace sst
