/**
 * @file
 * Tagged sequential (next-N-line) prefetcher.
 *
 * The baseline in-order core relies on this for streaming workloads;
 * for SST the execute-ahead strand itself is the dominant "prefetcher",
 * and bench_f3 quantifies the difference.
 */

#ifndef SSTSIM_MEM_PREFETCHER_HH
#define SSTSIM_MEM_PREFETCHER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sst
{

/** Prefetch address-generation policy. */
enum class PrefetchMode
{
    NextLine, ///< tagged sequential next-N-lines
    Stride    ///< global stride detector (catches non-unit strides)
};

/** Prefetcher tuning knobs. */
struct PrefetcherParams
{
    bool enabled = true;
    unsigned degree = 2;   ///< lines fetched ahead per trigger
    unsigned distance = 1; ///< first prefetched line is +distance
    PrefetchMode mode = PrefetchMode::NextLine;
};

/** Next-line prefetch address generator (policy only; no timing). */
class Prefetcher
{
  public:
    Prefetcher(const PrefetcherParams &params, unsigned lineBytes,
               const std::string &name, StatGroup &parentStats);

    /**
     * Called on every demand miss (and on hits to previously prefetched
     * lines, which re-arm the stream). @return line addresses to
     * prefetch.
     */
    std::vector<Addr> onAccess(Addr lineAddr, bool miss);

    /** Stats hooks driven by the hierarchy. */
    void noteIssued() { ++issued_; }
    void noteUseful() { ++useful_; }

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::vector<Addr> nextLineTargets(Addr lineAddr, bool miss);
    std::vector<Addr> strideTargets(Addr lineAddr, bool miss);

    PrefetcherParams params_;
    unsigned lineBytes_;
    Addr lastTrigger_ = invalidAddr;
    /** Stride-mode state: per-4KB-region tracking so interleaved
     *  streams (a[i], b[i], c[i]) each train their own entry. */
    struct StrideEntry
    {
        Addr regionTag = invalidAddr;
        Addr lastAddr = 0;
        std::int64_t delta = 0;
        unsigned confidence = 0;
    };
    std::vector<StrideEntry> strideTable_;

    StatGroup stats_;
    Scalar &issued_;
    Scalar &useful_;
};

} // namespace sst

#endif // SSTSIM_MEM_PREFETCHER_HH
