/**
 * @file
 * Memory request classification shared across the hierarchy.
 */

#ifndef SSTSIM_MEM_REQ_HH
#define SSTSIM_MEM_REQ_HH

#include "common/types.hh"

namespace sst
{

/** Who is asking and why; drives stats and prefetch policy. */
enum class AccessType
{
    InstFetch,
    Load,
    Store,
    Prefetch
};

/** Result of a timed access through the hierarchy. */
struct AccessResult
{
    /** Cycle at which the data is usable by the pipeline. */
    Cycle readyCycle = 0;
    /** True when the request was rejected for lack of an MSHR. */
    bool rejected = false;
    /** Earliest cycle at which a retry could be accepted. */
    Cycle retryCycle = 0;
    /** Hit classification for stats/deferral decisions. */
    bool l1Hit = false;
    bool l2Hit = false;
    /** True when coherence traffic shaped this access: the latency
     *  includes invalidation/intervention/upgrade delay, or the miss
     *  itself was caused by a remote invalidation. */
    bool coh = false;
    /** True when the L1 lookup missed (the SST deferral trigger). */
    bool l1Miss() const { return !l1Hit; }
};

} // namespace sst

#endif // SSTSIM_MEM_REQ_HH
