#include "mem/dram.hh"

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

Dram::Dram(const DramParams &params, StatGroup &parentStats)
    : params_(params),
      banks_(params.banks),
      stats_(params.name),
      reads_(stats_.addScalar("reads", "line reads")),
      writes_(stats_.addScalar("writes", "line writebacks")),
      rowHits_(stats_.addScalar("row_hits", "open-row column accesses")),
      rowMisses_(stats_.addScalar("row_misses",
                                  "activate+precharge accesses")),
      channelStallCycles_(stats_.addScalar(
          "channel_stall_cycles", "cycles requests waited on the channel")),
      latency_(stats_.addDist("latency", "end-to-end access latency",
                              2048, 32))
{
    fatal_if(params.banks == 0, "dram needs at least one bank");
    stats_.addFormula("row_hit_rate", "row hits / accesses", [this] {
        auto total = rowHits_.value() + rowMisses_.value();
        return total ? static_cast<double>(rowHits_.value())
                           / static_cast<double>(total)
                     : 0.0;
    });
    parentStats.addChild(stats_);
}

Cycle
Dram::access(Addr lineAddr, Cycle now, bool isWrite)
{
    if (isWrite)
        ++writes_;
    else
        ++reads_;

    Addr row = lineAddr / params_.rowBytes;
    Bank &bank = banks_[row % params_.banks];

    Cycle start = std::max(now + params_.baseLatency, bank.busyUntil);

    unsigned deviceLat;
    if (bank.openRow == row) {
        ++rowHits_;
        deviceLat = params_.tCas;
    } else {
        ++rowMisses_;
        deviceLat = params_.tRcdRp + params_.tCas;
        bank.openRow = row;
    }

    Cycle dataReady = start + deviceLat;
    // Serialise the transfer on the shared channel.
    Cycle xferStart = std::max(dataReady, channelFree_);
    channelStallCycles_ += xferStart - dataReady;
    Cycle done = xferStart + params_.channelCycles;
    channelFree_ = done;
    bank.busyUntil = dataReady;

    latency_.sample(done - now);
#if SST_TRACE
    if (traceBuf_)
        traceBuf_->record(trace::TraceEvent{
            done, lineAddr, 0, 3, trace::TraceKind::Fill,
            trace::TraceStrand::Mem});
#endif
    return done;
}

void
Dram::drain()
{
    for (auto &bank : banks_)
        bank = Bank{};
    channelFree_ = 0;
}


void
Dram::save(snap::Writer &w) const
{
    w.tag("dram");
    w.u32(static_cast<std::uint32_t>(banks_.size()));
    for (const Bank &b : banks_) {
        w.u64(b.busyUntil);
        w.u64(b.openRow);
    }
    w.u64(channelFree_);
}

void
Dram::load(snap::Reader &r)
{
    r.tag("dram");
    std::uint32_t n = r.u32();
    fatal_if(n != banks_.size(),
             "snapshot: DRAM has %u banks, expected %zu "
             "(configuration mismatch)",
             n, banks_.size());
    for (Bank &b : banks_) {
        b.busyUntil = r.u64();
        b.openRow = r.u64();
    }
    channelFree_ = r.u64();
}

} // namespace sst
