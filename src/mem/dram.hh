/**
 * @file
 * Banked main-memory model ("DRAM-lite").
 *
 * Captures the three first-order effects that matter to SST: a long base
 * latency, bank-level parallelism that bounds MLP, and row-buffer
 * locality. The model is analytic (no event queue): each access computes
 * its completion time from per-bank busy-until state and a shared
 * channel that serialises data transfers.
 */

#ifndef SSTSIM_MEM_DRAM_HH
#define SSTSIM_MEM_DRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace sst
{

/** Timing/geometry parameters (all in core cycles). */
struct DramParams
{
    std::string name = "dram";
    unsigned banks = 16;
    unsigned rowBytes = 4096;
    /** Fixed controller + interconnect latency added to every access. */
    unsigned baseLatency = 240;
    unsigned tCas = 30;        ///< column access, row already open
    unsigned tRcdRp = 60;      ///< precharge + activate on a row miss
    unsigned channelCycles = 8; ///< channel occupancy per 64B transfer
};

/** The memory controller + devices. */
class Dram
{
  public:
    Dram(const DramParams &params, StatGroup &parentStats);

    const DramParams &params() const { return params_; }

    /**
     * Issue a line read/write beginning no earlier than @p now.
     * @return the cycle the data transfer completes.
     */
    Cycle access(Addr lineAddr, Cycle now, bool isWrite);

    /** Reset bank/channel state (not stats). */
    void drain();

    /** Emit a Fill event (level 3) per access into @p buf. */
    void setTrace(trace::TraceBuffer *buf) { traceBuf_ = buf; }

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct Bank
    {
        Cycle busyUntil = 0;
        Addr openRow = invalidAddr;
    };

    DramParams params_;
    std::vector<Bank> banks_;
    Cycle channelFree_ = 0;

    StatGroup stats_;
    Scalar &reads_;
    Scalar &writes_;
    Scalar &rowHits_;
    Scalar &rowMisses_;
    Scalar &channelStallCycles_;
    Distribution &latency_;

    trace::TraceBuffer *traceBuf_ = nullptr;
};

} // namespace sst

#endif // SSTSIM_MEM_DRAM_HH
