/**
 * @file
 * Miss Status Holding Register file: bounds per-core outstanding misses
 * and merges secondary misses to an in-flight line. MSHR count is the
 * hardware limit on the memory-level parallelism a core can expose —
 * the resource SST's execute-ahead strand is designed to saturate.
 */

#ifndef SSTSIM_MEM_MSHR_HH
#define SSTSIM_MEM_MSHR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sst
{

/** Fixed-capacity MSHR file. */
class MshrFile
{
  public:
    MshrFile(const std::string &name, unsigned entries,
             StatGroup &parentStats);

    unsigned capacity() const { return capacity_; }

    /** Drop entries whose fills completed at or before @p now. */
    void expire(Cycle now);

    /** @return completion cycle of an in-flight fill of @p lineAddr,
     *  or invalidCycle when the line has no pending miss. */
    Cycle pendingCompletion(Addr lineAddr) const;

    /** @return true when no entry is free (after expire(now)). */
    bool full(Cycle now);

    /** Earliest cycle at which an entry will free up (full file only). */
    Cycle earliestFree() const;

    /** Earliest fill completion strictly after @p now, or invalidCycle
     *  when nothing is in flight (wake-cycle probe; entries expire
     *  lazily, so stale completions are skipped rather than trusted). */
    Cycle earliestCompletion(Cycle now) const
    {
        Cycle best = invalidCycle;
        for (const auto &e : entries_)
            if (e.completion > now && e.completion < best)
                best = e.completion;
        return best;
    }

    /**
     * Allocate an entry for @p lineAddr completing at @p completion.
     * Caller must ensure !full(). @p isDemand distinguishes demand misses
     * from prefetches for the MLP statistics.
     */
    void allocate(Addr lineAddr, Cycle completion, bool isDemand,
                  Cycle now);

    /** Demand misses currently outstanding at @p now (MLP sample). */
    unsigned outstandingDemand(Cycle now) const;

    /** All entries (tests). */
    struct Entry
    {
        Addr lineAddr = invalidAddr;
        Cycle completion = invalidCycle;
        bool demand = false;
    };
    const std::vector<Entry> &entries() const { return entries_; }

    /** Clear all entries (rollback/flush). */
    void reset();

    /**
     * Coherence poison: a remote write invalidated @p lineAddr while a
     * fill was in flight. The entry keeps its completion time (it still
     * occupies the file and frees on schedule) but stops matching
     * lookups, so the next access re-misses and re-requests the line.
     */
    void invalidate(Addr lineAddr);

    /** Mean observed demand-MLP (computed from allocation samples). */
    double meanDemandMlp() const { return mlp_.mean(); }
    const Distribution &mlpDist() const { return mlp_; }

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    unsigned capacity_;
    std::vector<Entry> entries_;

    StatGroup stats_;
    Scalar &allocations_;
    Scalar &merges_;
    Scalar &rejections_;
    Distribution &mlp_;

  public:
    /** Record a merge (secondary miss) for stats. */
    void noteMerge() { ++merges_; }
    /** Record a rejection (structural stall) for stats. */
    void noteRejection() { ++rejections_; }
};

} // namespace sst

#endif // SSTSIM_MEM_MSHR_HH
