#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/logging.hh"
#include "snap/snap.hh"
#include "trace/trace.hh"

namespace sst
{

CorePort::CorePort(MemorySystem &system, const HierarchyParams &params,
                   unsigned coreId)
    : system_(system),
      coreId_(coreId),
      stats_("core" + std::to_string(coreId) + "_mem"),
      l1i_(params.l1i, stats_),
      l1d_(params.l1d, stats_),
      mshrs_("l1_mshrs", params.l1MshrEntries, stats_),
      dtlb_(params.dtlb, "dtlb", stats_),
      dataPf_(params.dataPrefetch, params.l1d.lineBytes, "l1d_pf", stats_),
      instPf_(params.instPrefetch, params.l1i.lineBytes, "l1i_pf", stats_),
      cohInvalidationsSeen_(stats_.addScalar(
          "coh_invalidations", "L1D lines lost to remote writes"))
{
}

FaultInjector &
CorePort::faults()
{
    return system_.faults();
}

AccessResult
CorePort::access(AccessType type, Addr addr, Cycle now)
{
    addr += addressSalt_;
    // With fault injection armed even an L1 hit draws from the shared
    // RNG (tlbPressure below), so the whole access must be ordered.
    if (gateAll_)
        ordered(now);
    if (type == AccessType::InstFetch)
        return instAccess(addr, now);
    return dataAccess(type, addr, now);
}

bool
CorePort::probeL1d(Addr addr) const
{
    return l1d_.contains(addr + addressSalt_);
}

AccessResult
CorePort::dataAccess(AccessType type, Addr addr, Cycle now)
{
    AccessResult res;
    Addr line = l1d_.lineAddr(addr);
    bool isStore = type == AccessType::Store;

    // Translate first: a page walk serialises before the data access
    // and turns the whole access into a long-latency (deferrable)
    // event.
    Tlb::LookupResult xlat{true, now};
    if (dtlb_.enabled() && type != AccessType::Prefetch)
        xlat = dtlb_.access(addr, now);
    if (type != AccessType::Prefetch) {
        Cycle walk = system_.faults().tlbPressure(
            system_.params().dtlb.walkLatency);
        if (walk != 0) {
            xlat.hit = false;
            xlat.readyCycle = std::max(xlat.readyCycle, now + walk);
        }
    }

    const bool coherent = system_.coherent();
    auto hit = l1d_.access(addr, isStore, now);
    if (hit.hit) {
        res.readyCycle = std::max(hit.readyCycle, xlat.readyCycle);
        if (coherent && isStore
            && ownedStoreLines_.count(line) == 0) {
            // A store hit may still owe the directory an upgrade (the
            // line can be shared) or an intervention/invalidate (a
            // remote owner the L1 doesn't know about can't exist — the
            // owner's write would have invalidated us — so this is the
            // S->M path). Stores to a line this core already owns
            // exclusively are silent directory no-ops and skip the
            // lookup (and, under the parallel engine, the gate) — the
            // common private-data case.
            ordered(now);
            CohAction act =
                system_.coherenceAccess(line, coreId_, true, now);
            noteStoreOwnership(line);
            if (act.latency != 0) {
                res.readyCycle =
                    std::max(res.readyCycle, now + act.latency);
                res.coh = true;
            }
        }
        // A line still being filled (or a page still being walked) is
        // architecturally a merged miss: the pipeline sees the full
        // latency, and SST treats it as a deferral trigger just like a
        // fresh miss.
        res.l1Hit = xlat.hit
                    && hit.readyCycle <= now + l1d_.params().hitLatency;
        if (res.l1Hit && prefetchedLines_.erase(line)) {
            dataPf_.noteUseful();
            issuePrefetches(l1d_, dataPf_, line, false, now);
        }
        return res;
    }

    // L1 miss. Merge with an in-flight MSHR if one covers this line.
    mshrs_.expire(now);
    Cycle pending = mshrs_.pendingCompletion(line);
    if (pending != invalidCycle) {
        mshrs_.noteMerge();
        res.readyCycle = std::max(pending, xlat.readyCycle);
        if (coherent && isStore
            && ownedStoreLines_.count(line) == 0) {
            // A store merging into a load's fill still needs ownership.
            ordered(now);
            CohAction act =
                system_.coherenceAccess(line, coreId_, true, now);
            noteStoreOwnership(line);
            if (act.latency != 0) {
                res.readyCycle =
                    std::max(res.readyCycle, pending + act.latency);
                res.coh = true;
            }
        }
        return res;
    }

    if (mshrs_.full(now)) {
        mshrs_.noteRejection();
        res.rejected = true;
        res.retryCycle = mshrs_.earliestFree();
        panic_if(res.retryCycle == invalidCycle,
                 "full MSHR file with no completion time");
        return res;
    }
    if (system_.faults().mshrPressure()) {
        // Injected pressure spike: structurally identical to a full
        // file, but the entry frees "immediately" — the core's retry
        // path absorbs it next cycle.
        mshrs_.noteRejection();
        res.rejected = true;
        res.retryCycle = now + 1;
        return res;
    }

    ordered(now); // miss path: shared L2/DRAM timing + directory
    bool l2Hit = false;
    Cycle dataReady = system_.accessL2(line, now, l2Hit);
    dataReady = system_.faults().perturbFill(now, dataReady);
    if (coherent) {
        CohAction act =
            system_.coherenceAccess(line, coreId_, isStore, now);
        if (isStore)
            noteStoreOwnership(line);
        if (act.latency != 0) {
            dataReady += act.latency;
            res.coh = true;
        }
        // A miss on a line a remote writer stole is a coherence miss
        // even when the steal itself was latency-free here.
        if (cohInvalidatedLines_.erase(line))
            res.coh = true;
    }
    res.l2Hit = l2Hit;
    res.readyCycle = std::max(dataReady, xlat.readyCycle);

    mshrs_.allocate(line, dataReady, type != AccessType::Prefetch, now);
    auto ev = l1d_.fill(addr, dataReady, isStore);
    if (ev.valid && ev.dirty)
        system_.writebackToL2(ev.lineAddr, now);
    if (ev.valid && coherent) {
        system_.noteEvict(ev.lineAddr, coreId_);
        dropStoreOwnership(ev.lineAddr);
    }
    if (type == AccessType::Prefetch)
        prefetchedLines_.insert(line);
    else
        issuePrefetches(l1d_, dataPf_, line, true, now);
    return res;
}

AccessResult
CorePort::instAccess(Addr addr, Cycle now)
{
    AccessResult res;
    Addr line = l1i_.lineAddr(addr);

    auto hit = l1i_.access(addr, false, now);
    if (hit.hit) {
        res.readyCycle = hit.readyCycle;
        res.l1Hit = hit.readyCycle <= now + l1i_.params().hitLatency;
        return res;
    }

    mshrs_.expire(now);
    Cycle pending = mshrs_.pendingCompletion(line);
    if (pending != invalidCycle) {
        mshrs_.noteMerge();
        res.readyCycle = pending;
        return res;
    }
    if (mshrs_.full(now)) {
        mshrs_.noteRejection();
        res.rejected = true;
        res.retryCycle = mshrs_.earliestFree();
        return res;
    }
    if (system_.faults().mshrPressure()) {
        mshrs_.noteRejection();
        res.rejected = true;
        res.retryCycle = now + 1;
        return res;
    }

    ordered(now); // instruction miss path reaches the shared L2
    bool l2Hit = false;
    Cycle dataReady = system_.accessL2(line, now, l2Hit);
    dataReady = system_.faults().perturbFill(now, dataReady);
    res.l2Hit = l2Hit;
    res.readyCycle = dataReady;
    mshrs_.allocate(line, dataReady, true, now);
    auto ev = l1i_.fill(addr, dataReady, false);
    panic_if(ev.valid && ev.dirty, "dirty line in the I-cache");
    issuePrefetches(l1i_, instPf_, line, true, now);
    return res;
}

void
CorePort::issuePrefetches(Cache &cache, Prefetcher &pf, Addr lineAddr,
                          bool wasMiss, Cycle now)
{
    for (Addr target : pf.onAccess(lineAddr, wasMiss)) {
        if (cache.contains(target))
            continue;
        mshrs_.expire(now);
        if (mshrs_.pendingCompletion(target) != invalidCycle)
            continue;
        if (mshrs_.full(now))
            break; // never stall the pipeline for a prefetch
        ordered(now); // prefetches go to the shared L2
        bool l2Hit = false;
        Cycle ready = system_.accessL2(target, now, l2Hit);
        bool dataSide = &cache == &l1d_;
        if (dataSide && system_.coherent()) {
            // Prefetches register as readers so a later remote write
            // invalidates the prefetched copy like any other.
            CohAction act =
                system_.coherenceAccess(target, coreId_, false, now);
            ready += act.latency;
        }
        mshrs_.allocate(target, ready, false, now);
        auto ev = cache.fill(target, ready, false);
        if (ev.valid && ev.dirty)
            system_.writebackToL2(ev.lineAddr, now);
        if (ev.valid && dataSide && system_.coherent()) {
            system_.noteEvict(ev.lineAddr, coreId_);
            dropStoreOwnership(ev.lineAddr);
        }
        pf.noteIssued();
        if (dataSide)
            prefetchedLines_.insert(target);
    }
}

void
CorePort::flush()
{
    l1i_.flush();
    l1d_.flush();
    dtlb_.flush();
    mshrs_.reset();
    prefetchedLines_.clear();
    cohInvalidatedLines_.clear();
    ownedStoreLines_.clear();
    if (system_.coherent())
        system_.directory().dropCore(coreId_);
}

void
CorePort::applyInvalidate(Addr line)
{
    l1d_.invalidate(line);
    mshrs_.invalidate(line);
    prefetchedLines_.erase(line);
    ownedStoreLines_.erase(line);
    cohInvalidatedLines_.insert(line);
    ++cohInvalidationsSeen_;
}

MemorySystem::MemorySystem(const HierarchyParams &params)
    : params_(params),
      stats_("memsys"),
      l2_(params.l2, stats_),
      dram_(params.dram, stats_),
      faults_(params.fault, stats_),
      directory_(params.coh),
      l2PortStall_(stats_.addScalar("l2_port_stall_cycles",
                                    "cycles requests queued on L2 port")),
      cohSquashes_(stats_.addScalar(
          "coh_squashes",
          "speculative regions squashed by remote writes"))
{
    fatal_if(params.l1i.lineBytes != params.l2.lineBytes
                 || params.l1d.lineBytes != params.l2.lineBytes,
             "all cache levels must share one line size");
}

CorePort &
MemorySystem::addCore()
{
    ports_.push_back(std::make_unique<CorePort>(
        *this, params_, static_cast<unsigned>(ports_.size())));
    CorePort &port = *ports_.back();
    stats_.addChild(port.stats());
    return port;
}

Cycle
MemorySystem::accessL2(Addr lineAddr, Cycle now, bool &l2Hit)
{
    // Arbitrate for the shared L2 port.
    Cycle start = std::max(now, l2PortFree_);
    l2PortStall_ += start - now;
    l2PortFree_ = start + params_.l2PortCycles;

    auto hit = l2_.access(lineAddr, false, start);
    if (hit.hit) {
        l2Hit = hit.readyCycle <= start + params_.l2.hitLatency;
        return hit.readyCycle;
    }

    l2Hit = false;
    Cycle done = dram_.access(lineAddr, start + params_.l2.hitLatency,
                              false);
    auto ev = l2_.fill(lineAddr, done, false);
    if (ev.valid && ev.dirty)
        dram_.access(ev.lineAddr, now, true);
    return done;
}

void
MemorySystem::writebackToL2(Addr lineAddr, Cycle now)
{
    Cycle start = std::max(now, l2PortFree_);
    l2PortFree_ = start + params_.l2PortCycles;
    // Install/mark dirty; if L2 already evicted the line this re-fills
    // it dirty, which is the writeback-allocate behaviour we model.
    auto ev = l2_.fill(lineAddr, start, true);
    if (ev.valid && ev.dirty)
        dram_.access(ev.lineAddr, start, true);
}

void
MemorySystem::deliverInvalidate(Addr line, unsigned victim, Cycle cycle)
{
    ports_[victim]->applyInvalidate(line);
    if (traceBuf_) {
        trace::TraceEvent ev;
        ev.cycle = cycle;
        ev.pc = line;
        ev.arg = victim;
        ev.kind = trace::TraceKind::CohInvalidate;
        ev.strand = trace::TraceStrand::Mem;
        traceBuf_->record(ev);
    }
}

CohAction
MemorySystem::coherenceAccess(Addr line, unsigned core, bool isStore,
                              Cycle now)
{
    // Remember the previous exclusive owner: if this access demotes
    // it (remote load sharing the line), its port's owned-store hint
    // must be dropped so its next store goes back to the directory.
    const int prevOwner = directory_.lineState(line).owner;
    CohAction act = directory_.onAccess(line, core, isStore);
    if (act.invalidateMask != 0) {
        for (unsigned v = 0; v < ports_.size(); ++v) {
            if (((act.invalidateMask >> v) & 1) == 0)
                continue;
            if (deferCoh_)
                cohQueue_.push_back(DeferredCoh{line, v, now, true});
            else
                deliverInvalidate(line, v, now);
        }
    }
    if (prevOwner >= 0 && prevOwner != static_cast<int>(core)
        && ((act.invalidateMask >> prevOwner) & 1) == 0) {
        const auto owner = static_cast<unsigned>(prevOwner);
        if (deferCoh_)
            cohQueue_.push_back(DeferredCoh{line, owner, now, false});
        else
            ports_[owner]->dropStoreOwnership(line);
    }
    if (traceBuf_ && (act.upgrade || act.intervention)) {
        trace::TraceEvent ev;
        ev.cycle = now;
        ev.pc = line;
        ev.arg = core;
        ev.kind = act.upgrade ? trace::TraceKind::CohUpgrade
                              : trace::TraceKind::CohIntervention;
        ev.strand = trace::TraceStrand::Mem;
        traceBuf_->record(ev);
    }
    return act;
}

void
MemorySystem::beginEngineRun(const TickGate *gate, bool gateAll)
{
    for (auto &port : ports_) {
        port->gate_ = gate;
        port->gateAll_ = gateAll;
    }
    deferCoh_ = coherent();
}

void
MemorySystem::endEngineRun()
{
    panic_if(!cohQueue_.empty(),
             "engine run ended with undelivered coherence effects");
    for (auto &port : ports_) {
        port->gate_ = nullptr;
        port->gateAll_ = false;
    }
    deferCoh_ = false;
}

void
MemorySystem::drainDeferredCoh()
{
    for (const DeferredCoh &d : cohQueue_) {
        if (d.invalidate)
            deliverInvalidate(d.line, d.victim, d.cycle);
        else
            ports_[d.victim]->dropStoreOwnership(d.line);
    }
    cohQueue_.clear();
}

void
MemorySystem::noteEvict(Addr line, unsigned core)
{
    directory_.onEvict(line, core);
}

void
MemorySystem::onFunctionalWrite(Addr addr, unsigned size)
{
    if (!coherent() || ports_.size() < 2)
        return;
    const Addr mask = ~static_cast<Addr>(lineBytes() - 1);
    const Addr first = addr & mask;
    const Addr last = (addr + (size ? size - 1 : 0)) & mask;
    for (Addr line = first;; line += lineBytes()) {
        for (unsigned c = 0; c < ports_.size(); ++c) {
            if (c == activeCore_)
                continue;
            CohClient *client = ports_[c]->cohClient();
            if (client && client->specReadsLine(line)) {
                client->cohSquash();
                ++cohSquashes_;
            }
        }
        if (line == last)
            break;
    }
}

void
MemorySystem::flushAll()
{
    l2_.flush();
    dram_.drain();
    l2PortFree_ = 0;
    for (auto &port : ports_)
        port->flush();
}

void
CorePort::save(snap::Writer &w) const
{
    w.tag("coreport");
    w.u32(coreId_);
    w.u64(addressSalt_);
    l1i_.save(w);
    l1d_.save(w);
    mshrs_.save(w);
    dtlb_.save(w);
    dataPf_.save(w);
    instPf_.save(w);
    std::vector<Addr> lines(prefetchedLines_.begin(),
                            prefetchedLines_.end());
    std::sort(lines.begin(), lines.end());
    w.u64(lines.size());
    for (Addr line : lines)
        w.u64(line);
    std::vector<Addr> stolen(cohInvalidatedLines_.begin(),
                             cohInvalidatedLines_.end());
    std::sort(stolen.begin(), stolen.end());
    w.u64(stolen.size());
    for (Addr line : stolen)
        w.u64(line);
    // The owned-store hint is behavioural state: a resumed run must
    // skip exactly the directory lookups the uninterrupted run skips.
    std::vector<Addr> owned(ownedStoreLines_.begin(),
                            ownedStoreLines_.end());
    std::sort(owned.begin(), owned.end());
    w.u64(owned.size());
    for (Addr line : owned)
        w.u64(line);
}

void
CorePort::load(snap::Reader &r)
{
    r.tag("coreport");
    std::uint32_t id = r.u32();
    fatal_if(id != coreId_,
             "snapshot: core port %u where %u expected "
             "(configuration mismatch)",
             id, coreId_);
    addressSalt_ = r.u64();
    l1i_.load(r);
    l1d_.load(r);
    mshrs_.load(r);
    dtlb_.load(r);
    dataPf_.load(r);
    instPf_.load(r);
    // These sets scale with the workload footprint (one entry per
    // touched line); reserving up front avoids incremental rehashing,
    // which dominated warm-window restore on large-footprint members.
    prefetchedLines_.clear();
    std::uint64_t n = r.u64();
    prefetchedLines_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        prefetchedLines_.insert(r.u64());
    cohInvalidatedLines_.clear();
    std::uint64_t ns = r.u64();
    cohInvalidatedLines_.reserve(ns);
    for (std::uint64_t i = 0; i < ns; ++i)
        cohInvalidatedLines_.insert(r.u64());
    ownedStoreLines_.clear();
    std::uint64_t no = r.u64();
    ownedStoreLines_.reserve(no);
    for (std::uint64_t i = 0; i < no; ++i)
        ownedStoreLines_.insert(r.u64());
}

void
MemorySystem::save(snap::Writer &w) const
{
    w.tag("memsys");
    l2_.save(w);
    dram_.save(w);
    faults_.save(w);
    w.u64(l2PortFree_);
    w.u32(static_cast<std::uint32_t>(ports_.size()));
    for (const auto &port : ports_)
        port->save(w);
    directory_.save(w);
}

void
MemorySystem::load(snap::Reader &r)
{
    r.tag("memsys");
    l2_.load(r);
    dram_.load(r);
    faults_.load(r);
    l2PortFree_ = r.u64();
    std::uint32_t n = r.u32();
    fatal_if(n != ports_.size(),
             "snapshot: %u core ports where %zu expected "
             "(configuration mismatch)",
             n, ports_.size());
    for (auto &port : ports_)
        port->load(r);
    directory_.load(r);
}

} // namespace sst
