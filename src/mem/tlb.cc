#include "mem/tlb.hh"

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

Tlb::Tlb(const TlbParams &params, const std::string &name,
         StatGroup &parentStats)
    : params_(params),
      stats_(name),
      hits_(stats_.addScalar("hits", "translation hits")),
      misses_(stats_.addScalar("misses", "page walks"))
{
    stats_.addFormula("miss_rate", "misses / accesses", [this] {
        auto total = hits_.value() + misses_.value();
        return total ? static_cast<double>(misses_.value())
                           / static_cast<double>(total)
                     : 0.0;
    });
    parentStats.addChild(stats_);
    entries_.reserve(params_.entries);
}

Tlb::LookupResult
Tlb::access(Addr addr, Cycle now)
{
    LookupResult res;
    if (!enabled())
        return res;

    Addr page = pageOf(addr);
    for (auto &e : entries_) {
        if (e.page != page)
            continue;
        e.lastUse = ++useCounter_;
        if (e.walkReady > now) {
            // Walk still in flight: report as a miss-in-progress.
            res.hit = false;
            res.readyCycle = e.walkReady;
            return res;
        }
        ++hits_;
        res.hit = true;
        res.readyCycle = now;
        return res;
    }

    // Miss: start a walk, install the entry with its completion time,
    // evicting the least-recently-touched translation when full.
    ++misses_;
    res.hit = false;
    res.readyCycle = now + params_.walkLatency;
    Entry fresh{page, ++useCounter_, res.readyCycle};
    if (entries_.size() < params_.entries) {
        entries_.push_back(fresh);
    } else {
        Entry *victim = &entries_.front();
        for (auto &e : entries_)
            if (e.lastUse < victim->lastUse)
                victim = &e;
        *victim = fresh;
    }
    return res;
}

void
Tlb::flush()
{
    entries_.clear();
}

Cycle
Tlb::earliestWalkCompletion(Cycle now) const
{
    Cycle best = invalidCycle;
    for (const auto &e : entries_)
        if (e.walkReady > now && e.walkReady < best)
            best = e.walkReady;
    return best;
}


void
Tlb::save(snap::Writer &w) const
{
    w.tag("tlb");
    w.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.u64(e.page);
        w.u64(e.lastUse);
        w.u64(e.walkReady);
    }
    w.u64(useCounter_);
}

void
Tlb::load(snap::Reader &r)
{
    r.tag("tlb");
    std::uint32_t n = r.u32();
    fatal_if(n != entries_.size(),
             "snapshot: TLB has %u entries, expected %zu "
             "(configuration mismatch)",
             n, entries_.size());
    for (Entry &e : entries_) {
        e.page = r.u64();
        e.lastUse = r.u64();
        e.walkReady = r.u64();
    }
    useCounter_ = r.u64();
}

} // namespace sst
