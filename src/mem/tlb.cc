#include "mem/tlb.hh"

#include "common/logging.hh"

namespace sst
{

Tlb::Tlb(const TlbParams &params, const std::string &name,
         StatGroup &parentStats)
    : params_(params),
      stats_(name),
      hits_(stats_.addScalar("hits", "translation hits")),
      misses_(stats_.addScalar("misses", "page walks"))
{
    stats_.addFormula("miss_rate", "misses / accesses", [this] {
        auto total = hits_.value() + misses_.value();
        return total ? static_cast<double>(misses_.value())
                           / static_cast<double>(total)
                     : 0.0;
    });
    parentStats.addChild(stats_);
}

Tlb::LookupResult
Tlb::access(Addr addr, Cycle now)
{
    LookupResult res;
    if (!enabled())
        return res;

    Addr page = pageOf(addr);
    auto it = map_.find(page);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        auto walk = walkReady_.find(page);
        if (walk != walkReady_.end()) {
            if (walk->second > now) {
                // Walk still in flight: report as a miss-in-progress.
                res.hit = false;
                res.readyCycle = walk->second;
                return res;
            }
            walkReady_.erase(walk);
        }
        ++hits_;
        res.hit = true;
        res.readyCycle = now;
        return res;
    }

    // Miss: start a walk, install the entry with its completion time.
    ++misses_;
    res.hit = false;
    res.readyCycle = now + params_.walkLatency;
    lru_.push_front(page);
    map_[page] = lru_.begin();
    walkReady_[page] = res.readyCycle;
    if (lru_.size() > params_.entries) {
        Addr victim = lru_.back();
        lru_.pop_back();
        map_.erase(victim);
        walkReady_.erase(victim);
    }
    return res;
}

void
Tlb::flush()
{
    lru_.clear();
    map_.clear();
    walkReady_.clear();
}

} // namespace sst
