#include "mem/prefetcher.hh"
#include "snap/snap.hh"

namespace sst
{

Prefetcher::Prefetcher(const PrefetcherParams &params, unsigned lineBytes,
                       const std::string &name, StatGroup &parentStats)
    : params_(params),
      lineBytes_(lineBytes),
      stats_(name),
      issued_(stats_.addScalar("issued", "prefetches issued")),
      useful_(stats_.addScalar("useful",
                               "demand hits on prefetched lines"))
{
    stats_.addFormula("accuracy", "useful / issued", [this] {
        auto i = issued_.value();
        return i ? static_cast<double>(useful_.value())
                       / static_cast<double>(i)
                 : 0.0;
    });
    parentStats.addChild(stats_);
}

std::vector<Addr>
Prefetcher::onAccess(Addr lineAddr, bool miss)
{
    if (!params_.enabled)
        return {};
    return params_.mode == PrefetchMode::Stride
               ? strideTargets(lineAddr, miss)
               : nextLineTargets(lineAddr, miss);
}

std::vector<Addr>
Prefetcher::nextLineTargets(Addr lineAddr, bool miss)
{
    std::vector<Addr> out;
    if (!miss && lineAddr != lastTrigger_)
        return out;
    lastTrigger_ = lineAddr;
    for (unsigned i = 0; i < params_.degree; ++i)
        out.push_back(lineAddr
                      + static_cast<Addr>(params_.distance + i)
                            * lineBytes_);
    return out;
}

std::vector<Addr>
Prefetcher::strideTargets(Addr lineAddr, bool miss)
{
    std::vector<Addr> out;
    if (!miss && lineAddr != lastTrigger_)
        return out;
    lastTrigger_ = lineAddr;

    if (strideTable_.empty())
        strideTable_.resize(64);
    // Streams that march through memory cross region boundaries; tag by
    // a coarse 64 KB region so one stream keeps hitting its own entry.
    Addr region = lineAddr >> 16;
    // Mix the tag bits before indexing: power-of-two-spaced arrays
    // would otherwise alias to one entry.
    Addr idx = (region ^ (region >> 6) ^ (region >> 12))
               % strideTable_.size();
    StrideEntry &e = strideTable_[idx];
    if (e.regionTag != region) {
        e.regionTag = region;
        e.lastAddr = lineAddr;
        e.delta = 0;
        e.confidence = 0;
        return out;
    }

    std::int64_t delta = static_cast<std::int64_t>(lineAddr)
                         - static_cast<std::int64_t>(e.lastAddr);
    if (delta != 0 && delta == e.delta) {
        if (e.confidence < 4)
            ++e.confidence;
    } else if (delta != 0) {
        e.delta = delta;
        e.confidence = 1;
    }
    e.lastAddr = lineAddr;

    if (e.confidence >= 2) {
        for (unsigned i = 0; i < params_.degree; ++i) {
            std::int64_t target =
                static_cast<std::int64_t>(lineAddr)
                + e.delta
                      * static_cast<std::int64_t>(params_.distance + i);
            if (target > 0)
                out.push_back(static_cast<Addr>(target));
        }
    }
    return out;
}


void
Prefetcher::save(snap::Writer &w) const
{
    w.tag("prefetcher");
    w.u64(lastTrigger_);
    w.u32(static_cast<std::uint32_t>(strideTable_.size()));
    for (const StrideEntry &e : strideTable_) {
        w.u64(e.regionTag);
        w.u64(e.lastAddr);
        w.i64(e.delta);
        w.u32(e.confidence);
    }
}

void
Prefetcher::load(snap::Reader &r)
{
    r.tag("prefetcher");
    lastTrigger_ = r.u64();
    std::uint32_t n = r.u32();
    fatal_if(n != strideTable_.size(),
             "snapshot: stride table has %u entries, expected %zu "
             "(configuration mismatch)",
             n, strideTable_.size());
    for (StrideEntry &e : strideTable_) {
        e.regionTag = r.u64();
        e.lastAddr = r.u64();
        e.delta = r.i64();
        e.confidence = r.u32();
    }
}

} // namespace sst
