#include "mem/mshr.hh"

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

MshrFile::MshrFile(const std::string &name, unsigned entries,
                   StatGroup &parentStats)
    : capacity_(entries),
      stats_(name),
      allocations_(stats_.addScalar("allocations", "primary misses")),
      merges_(stats_.addScalar("merges", "secondary misses merged")),
      rejections_(stats_.addScalar("rejections",
                                   "requests rejected when full")),
      mlp_(stats_.addDist("demand_mlp",
                          "outstanding demand misses at each new miss",
                          64, 32))
{
    fatal_if(entries == 0, "MSHR file needs at least one entry");
    parentStats.addChild(stats_);
}

void
MshrFile::expire(Cycle now)
{
    std::erase_if(entries_,
                  [now](const Entry &e) { return e.completion <= now; });
}

Cycle
MshrFile::pendingCompletion(Addr lineAddr) const
{
    for (const auto &e : entries_)
        if (e.lineAddr == lineAddr)
            return e.completion;
    return invalidCycle;
}

bool
MshrFile::full(Cycle now)
{
    expire(now);
    return entries_.size() >= capacity_;
}

Cycle
MshrFile::earliestFree() const
{
    Cycle best = invalidCycle;
    for (const auto &e : entries_)
        best = std::min(best, e.completion);
    return best;
}

void
MshrFile::allocate(Addr lineAddr, Cycle completion, bool isDemand,
                   Cycle now)
{
    panic_if(entries_.size() >= capacity_, "MSHR allocate when full");
    if (isDemand)
        mlp_.sample(outstandingDemand(now) + 1);
    entries_.push_back(Entry{lineAddr, completion, isDemand});
    ++allocations_;
}

unsigned
MshrFile::outstandingDemand(Cycle now) const
{
    unsigned n = 0;
    for (const auto &e : entries_)
        if (e.demand && e.completion > now)
            ++n;
    return n;
}

void
MshrFile::reset()
{
    entries_.clear();
}

void
MshrFile::invalidate(Addr lineAddr)
{
    for (auto &e : entries_)
        if (e.lineAddr == lineAddr)
            e.lineAddr = invalidAddr;
}


void
MshrFile::save(snap::Writer &w) const
{
    w.tag("mshr");
    w.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.u64(e.lineAddr);
        w.u64(e.completion);
        w.b(e.demand);
    }
}

void
MshrFile::load(snap::Reader &r)
{
    r.tag("mshr");
    std::uint32_t n = r.u32();
    fatal_if(n > capacity_,
             "snapshot: %u in-flight MSHR entries exceed capacity %u "
             "(configuration mismatch)",
             n, capacity_);
    entries_.clear();
    entries_.resize(n);
    for (Entry &e : entries_) {
        e.lineAddr = r.u64();
        e.completion = r.u64();
        e.demand = r.b();
    }
}

} // namespace sst
