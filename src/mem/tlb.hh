/**
 * @file
 * Data TLB model.
 *
 * The paper lists TLB misses among the long-latency events the SST
 * core defers on. This fully-associative LRU TLB sits in front of each
 * core's L1D; a miss charges a fixed page-walk latency and (like a
 * cache miss) makes the access report as a non-hit, which is exactly
 * the condition the SST core checkpoints on.
 */

#ifndef SSTSIM_MEM_TLB_HH
#define SSTSIM_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace sst
{

/** TLB geometry and timing. */
struct TlbParams
{
    /** 0 disables translation modelling entirely. */
    unsigned entries = 64;
    unsigned pageBytes = 4096;
    /** Page-walk latency in cycles (charged on a miss). */
    unsigned walkLatency = 120;
};

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    Tlb(const TlbParams &params, const std::string &name,
        StatGroup &parentStats);

    bool enabled() const { return params_.entries != 0; }

    /** Result of a translation attempt. */
    struct LookupResult
    {
        bool hit = true;
        /** Cycle at which the translation is available. */
        Cycle readyCycle = 0;
    };

    /**
     * Translate the page of @p addr at @p now. Misses install the entry
     * immediately with the walk's completion time (walks are not
     * otherwise modelled as memory traffic).
     */
    LookupResult access(Addr addr, Cycle now);

    /** Drop all entries. */
    void flush();

    /** Earliest in-flight page-walk completion strictly after @p now,
     *  or invalidCycle when no walk is pending (wake-cycle probe). */
    Cycle earliestWalkCompletion(Cycle now) const;

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    Addr pageOf(Addr addr) const { return addr / params_.pageBytes; }

    /**
     * One cached translation. The TLB is small (tens of entries) and
     * sits on the hot path of every data access, so it is a flat array
     * scanned linearly with stamp-based LRU — no list/map node churn.
     */
    struct Entry
    {
        Addr page = invalidAddr;
        std::uint64_t lastUse = 0;
        /** In-flight walk completion (stale once <= access time). */
        Cycle walkReady = 0;
    };

    TlbParams params_;
    std::vector<Entry> entries_;
    std::uint64_t useCounter_ = 0;

    StatGroup stats_;
    Scalar &hits_;
    Scalar &misses_;
};

} // namespace sst

#endif // SSTSIM_MEM_TLB_HH
