/**
 * @file
 * Set-associative cache tag/state array with pluggable replacement.
 *
 * The cache is a timing structure only: data values live in the
 * MemoryImage; the cache decides hit/miss, tracks dirtiness for
 * writeback traffic, and supports "fill now, ready later" lines whose
 * readyCycle models an in-flight fill (hit-under-miss returns the fill's
 * completion time instead of a fresh miss).
 */

#ifndef SSTSIM_MEM_CACHE_HH
#define SSTSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace sst
{

/** Replacement policy selector. */
enum class ReplPolicy
{
    Lru,
    Random,
    Nru
};

/** Static geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    unsigned hitLatency = 3;
    ReplPolicy policy = ReplPolicy::Lru;
};

/** A line evicted by a fill. */
struct Eviction
{
    bool valid = false;
    bool dirty = false;
    Addr lineAddr = invalidAddr;
};

/** Tag/state array. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params, StatGroup &parentStats);

    const CacheParams &params() const { return params_; }

    /** Line-aligned address of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~lineMask_; }

    /** Result of a lookup. */
    struct LookupResult
    {
        bool hit = false;
        /** For hits: cycle the line's data is actually present
         *  (== now + hitLatency for settled lines; the in-flight fill's
         *  completion for lines still being filled). */
        Cycle readyCycle = 0;
    };

    /**
     * Probe for @p addr at @p now. A hit updates replacement state; a
     * store hit marks the line dirty. Misses leave the array unchanged
     * (the owner decides whether to fill).
     */
    LookupResult access(Addr addr, bool isStore, Cycle now);

    /** Probe without updating replacement state or stats. */
    bool contains(Addr addr) const;

    /**
     * Install the line holding @p addr with data arriving at
     * @p fillReady. @return the victim line (for writeback traffic).
     */
    Eviction fill(Addr addr, Cycle fillReady, bool dirty);

    /** Invalidate the line holding @p addr if present. */
    void invalidate(Addr addr);

    /** Invalidate everything (used between benchmark phases). */
    void flush();

    StatGroup &stats() { return stats_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Emit a Fill event for every line install into @p buf, tagged with
     *  this cache's @p level (1 = L1, 2 = L2). Null detaches. */
    void setTrace(trace::TraceBuffer *buf, std::uint32_t level)
    {
        traceBuf_ = buf;
        traceLevel_ = level;
    }

    /** Serialize tag/replacement state (geometry must already match;
     *  stats travel with the owning StatGroup tree). */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool nruRef = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
        Cycle readyCycle = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    unsigned victimWay(unsigned set);

    CacheParams params_;
    Addr lineMask_;
    unsigned numSets_;
    unsigned lineShift_;
    std::vector<Line> lines_; // numSets_ * assoc, row-major by set
    /** Per-set way of the last hit/fill. Cache lookups are heavily
     *  repeat-biased (fetch re-probes, load retries), so checking this
     *  way first short-circuits most associative scans. Tags are unique
     *  within a set, so probe order cannot change any result. */
    std::vector<std::uint32_t> mruWay_;
    std::uint64_t useCounter_ = 0;
    Rng rng_;

    StatGroup stats_;
    Scalar &accesses_;
    Scalar &hits_;
    Scalar &misses_;
    Scalar &evictions_;
    Scalar &writebacks_;

    trace::TraceBuffer *traceBuf_ = nullptr;
    std::uint32_t traceLevel_ = 0;
};

} // namespace sst

#endif // SSTSIM_MEM_CACHE_HH
