/**
 * @file
 * Deterministic fault injection for chaos testing the simulator.
 *
 * ROCK's architecture is built around surviving long-latency events by
 * checkpointing and replaying; this module manufactures adversarial
 * versions of those events on demand so the recovery machinery can be
 * exercised and measured. All decisions flow from one seeded Rng, so a
 * given (config, program, seed) triple injects exactly the same fault
 * sequence on every run — chaos, but reproducible chaos.
 *
 * Faults perturb *timing and resource availability only*: a dropped
 * fill arrives late, a pressured MSHR file rejects an allocation, a
 * forced abort rolls speculation back to its checkpoint. Architectural
 * results must be unchanged — every fault-injection test ends with a
 * differential check against the golden functional executor. Faults may
 * cost cycles, never correctness.
 *
 * Hook points:
 *  - CorePort demand fills (data + inst): drop (re-issued after a long
 *    timeout) or delay (fixed extra latency).
 *  - CorePort MSHR allocation: transient pressure spikes reject the
 *    request; the core's existing retry path absorbs it.
 *  - CorePort translation: pressure spikes turn a lookup into a page
 *    walk, which is an SST deferral trigger.
 *  - SstCore: forced epoch aborts (rollback at a configurable rate) and
 *    static DQ/SSQ capacity squeezes.
 */

#ifndef SSTSIM_FAULT_FAULT_HH
#define SSTSIM_FAULT_FAULT_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace sst
{

/** Fault-injection configuration (all off by default). */
struct FaultParams
{
    /** Stream seed; equal seeds give bit-identical fault sequences. */
    std::uint64_t seed = 1;

    /** P(demand fill is lost and re-issued after dropTimeout). */
    double dropFillRate = 0.0;
    /** Extra latency charged to a dropped fill's re-issue. */
    unsigned dropTimeout = 100'000;

    /** P(demand fill is delayed by delayCycles). */
    double delayFillRate = 0.0;
    unsigned delayCycles = 400;

    /** P(an MSHR allocation is rejected by a pressure spike). */
    double mshrPressureRate = 0.0;

    /** P(a data-side translation spikes into a full page walk). */
    double tlbPressureRate = 0.0;

    /** P(per speculating cycle that the SST core must abort). */
    double forceAbortRate = 0.0;

    /** Static capacity squeezes on the SST queues (entries removed). */
    unsigned dqSqueeze = 0;
    unsigned ssqSqueeze = 0;

    /**
     * Poison-job chaos hook for the experiment service: kill the host
     * process at this simulated cycle (0 = off). Honoured only when a
     * ChaosMonitor is attached to the machine (service workers do
     * this; in-process sweeps and plain runs ignore it), and excluded
     * from enabled() because it perturbs the host, not the simulation.
     * See fault/chaos.hh.
     */
    std::uint64_t chaosExitCycle = 0;

    bool
    enabled() const
    {
        return dropFillRate > 0 || delayFillRate > 0
               || mshrPressureRate > 0 || tlbPressureRate > 0
               || forceAbortRate > 0 || dqSqueeze > 0 || ssqSqueeze > 0;
    }
};

/** Seeded fault source shared by one MemorySystem and its cores. */
class FaultInjector
{
  public:
    FaultInjector(const FaultParams &params, StatGroup &parentStats);

    const FaultParams &params() const { return params_; }
    bool enabled() const { return params_.enabled(); }

    /**
     * Perturb a demand fill that would complete at @p ready. A dropped
     * fill is modelled as lost-then-re-issued: it completes only after
     * the timeout. A delayed fill is simply late.
     */
    Cycle perturbFill(Cycle now, Cycle ready);

    /** True when an MSHR allocation must be rejected this access. */
    bool mshrPressure();

    /** Extra translation latency to charge (0 = no fault). */
    Cycle tlbPressure(unsigned walkLatency);

    /** True when the SST core must force-abort its speculation now. */
    bool forceAbort();

    /** Total faults injected so far (all kinds). */
    std::uint64_t injectedCount() const { return injected_.value(); }

    StatGroup &stats() { return stats_; }

    /** Serialize the fault RNG stream (counters travel with the stats
     *  tree). */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    FaultParams params_;
    Rng rng_;

    StatGroup stats_;
    Scalar &injected_;
    Scalar &fillsDropped_;
    Scalar &fillsDelayed_;
    Scalar &mshrRejects_;
    Scalar &tlbSpikes_;
    Scalar &forcedAborts_;
};

} // namespace sst

#endif // SSTSIM_FAULT_FAULT_HH
