#include "fault/fault.hh"

#include "snap/snap.hh"

#include <algorithm>

namespace sst
{

FaultInjector::FaultInjector(const FaultParams &params,
                             StatGroup &parentStats)
    : params_(params),
      rng_(params.seed),
      stats_("fault"),
      injected_(stats_.addScalar("injected", "faults injected, all kinds")),
      fillsDropped_(stats_.addScalar("fills_dropped",
                                     "demand fills lost and re-issued "
                                     "after the drop timeout")),
      fillsDelayed_(stats_.addScalar("fills_delayed",
                                     "demand fills delayed by "
                                     "delay_cycles")),
      mshrRejects_(stats_.addScalar("mshr_rejects",
                                    "MSHR allocations rejected by "
                                    "injected pressure")),
      tlbSpikes_(stats_.addScalar("tlb_spikes",
                                  "translations forced into a full "
                                  "page walk")),
      forcedAborts_(stats_.addScalar("forced_aborts",
                                     "speculation regions aborted by "
                                     "injection"))
{
    parentStats.addChild(stats_);
}

Cycle
FaultInjector::perturbFill(Cycle now, Cycle ready)
{
    // Disarmed fault classes draw nothing, so an all-off injector
    // consumes no randomness and zero-rate classes are free.
    if (params_.dropFillRate > 0 && rng_.chance(params_.dropFillRate)) {
        ++injected_;
        ++fillsDropped_;
        return std::max(ready, now + params_.dropTimeout);
    }
    if (params_.delayFillRate > 0 && rng_.chance(params_.delayFillRate)) {
        ++injected_;
        ++fillsDelayed_;
        return ready + params_.delayCycles;
    }
    return ready;
}

bool
FaultInjector::mshrPressure()
{
    if (params_.mshrPressureRate <= 0
        || !rng_.chance(params_.mshrPressureRate))
        return false;
    ++injected_;
    ++mshrRejects_;
    return true;
}

Cycle
FaultInjector::tlbPressure(unsigned walkLatency)
{
    if (params_.tlbPressureRate <= 0
        || !rng_.chance(params_.tlbPressureRate))
        return 0;
    ++injected_;
    ++tlbSpikes_;
    return walkLatency;
}

bool
FaultInjector::forceAbort()
{
    if (params_.forceAbortRate <= 0
        || !rng_.chance(params_.forceAbortRate))
        return false;
    ++injected_;
    ++forcedAborts_;
    return true;
}

void
FaultInjector::save(snap::Writer &w) const
{
    w.tag("fault");
    rng_.save(w);
}

void
FaultInjector::load(snap::Reader &r)
{
    r.tag("fault");
    rng_.load(r);
}

} // namespace sst
