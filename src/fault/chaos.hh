/**
 * @file
 * Process-level chaos hooks for the experiment service.
 *
 * The fault injector (fault.hh) perturbs the *simulated* machine; this
 * monitor perturbs the *host process running it*, so the service's
 * crash-recovery machinery (lease timeouts, checkpoint re-lease,
 * poison-job quarantine) can be exercised deterministically. A worker
 * arms the monitor before running a job; the Machine run loop calls
 * observe() every iteration, and at the scheduled simulated cycle the
 * monitor either kills the process (modelling a crashed/SIGKILLed
 * worker) or stalls it while muting heartbeats (modelling a hung one).
 *
 * Keying chaos to a simulated cycle rather than wall clock is what
 * makes service chaos tests reproducible: the job state at the kill is
 * a pure function of (manifest, job, cycle), so a resumed sweep can be
 * byte-compared against an uninterrupted one.
 *
 * The `fault.chaos_exit_cycle` machine-config key feeds the same
 * monitor: it travels with a job's config, so *every* attempt of that
 * job kills its worker — a poison job. It is honoured only where a
 * monitor is attached (service workers); in-process sweeps and plain
 * runs ignore it, so a poison manifest cannot kill the broker.
 */

#ifndef SSTSIM_FAULT_CHAOS_HH
#define SSTSIM_FAULT_CHAOS_HH

#include <atomic>
#include <csignal>
#include <cstdint>

#include "common/types.hh"

namespace sst
{

/** What to do to the host process, and at which simulated cycle. */
struct ChaosParams
{
    /** raise(exitSignal) at the first observed cycle >= this (0 = off). */
    Cycle exitAtCycle = 0;
    int exitSignal = SIGKILL;

    /** Sleep stallMs (wall clock) once at this cycle and mute
     *  heartbeats for the rest of the job (0 = off). */
    Cycle stallAtCycle = 0;
    unsigned stallMs = 0;
};

/**
 * Cycle-triggered process chaos plus a cross-thread progress probe.
 * observe() runs on the simulation thread; lastObserved()/muted() are
 * safe to read from the worker's heartbeat thread.
 */
class ChaosMonitor
{
  public:
    /** Clear all triggers and progress state (call per job). */
    void reset();

    /** Schedule a process kill at simulated cycle @p c. */
    void scheduleExit(Cycle c, int signal = SIGKILL);

    /** Schedule a one-shot stall of @p ms milliseconds at cycle @p c;
     *  heartbeats stay muted afterwards (the worker looks dead). */
    void scheduleStall(Cycle c, unsigned ms);

    /** Called from the run loop after every iteration. */
    void observe(Cycle now);

    /** Latest cycle seen by observe() (heartbeat payload). */
    Cycle lastObserved() const
    {
        return lastCycle_.load(std::memory_order_relaxed);
    }

    /** True once the stall fired: the worker must stop heartbeating. */
    bool muted() const
    {
        return muted_.load(std::memory_order_relaxed);
    }

  private:
    ChaosParams params_;
    bool stallFired_ = false;
    std::atomic<Cycle> lastCycle_{0};
    std::atomic<bool> muted_{false};
};

} // namespace sst

#endif // SSTSIM_FAULT_CHAOS_HH
