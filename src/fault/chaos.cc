#include "fault/chaos.hh"

#include <ctime>

#include "common/logging.hh"

namespace sst
{

void
ChaosMonitor::reset()
{
    params_ = ChaosParams{};
    stallFired_ = false;
    lastCycle_.store(0, std::memory_order_relaxed);
    muted_.store(false, std::memory_order_relaxed);
}

void
ChaosMonitor::scheduleExit(Cycle c, int signal)
{
    params_.exitAtCycle = c;
    params_.exitSignal = signal;
}

void
ChaosMonitor::scheduleStall(Cycle c, unsigned ms)
{
    params_.stallAtCycle = c;
    params_.stallMs = ms;
}

void
ChaosMonitor::observe(Cycle now)
{
    lastCycle_.store(now, std::memory_order_relaxed);
    if (params_.stallAtCycle && !stallFired_
        && now >= params_.stallAtCycle) {
        // Mute first, then hang: the heartbeat thread must fall silent
        // for the whole stall so the broker's lease timeout can fire.
        stallFired_ = true;
        muted_.store(true, std::memory_order_relaxed);
        struct timespec ts;
        ts.tv_sec = params_.stallMs / 1000;
        ts.tv_nsec = static_cast<long>(params_.stallMs % 1000) * 1'000'000;
        while (nanosleep(&ts, &ts) != 0) {
        }
    }
    if (params_.exitAtCycle && now >= params_.exitAtCycle) {
        // Modelled worker crash: no unwinding, no atexit, no flush —
        // exactly what a kill -9 mid-job looks like to the broker.
        std::raise(params_.exitSignal);
    }
}

} // namespace sst
