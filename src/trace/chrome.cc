#include "trace/chrome.hh"

#include "common/stats.hh"

namespace sst::trace
{

std::string
chromeTraceJson(const std::string &processName, const TraceBuffer &buf)
{
    std::string out = "{\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
           "\"args\":{\"name\":\""
           + jsonEscape(processName) + "\"}}";
    for (unsigned t = 0;
         t < static_cast<unsigned>(TraceStrand::NumStrands); ++t) {
        out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
               "\"tid\":"
               + std::to_string(t) + ",\"args\":{\"name\":\""
               + jsonEscape(traceStrandName(
                   static_cast<TraceStrand>(t)))
               + "\"}}";
    }
    for (const TraceEvent &ev : buf.snapshot()) {
        out += ",{\"name\":\"";
        out += traceKindName(ev.kind);
        out += "\",\"cat\":\"pipe\",\"ph\":\"X\",\"pid\":0,\"tid\":"
               + std::to_string(static_cast<unsigned>(ev.strand))
               + ",\"ts\":" + std::to_string(ev.cycle)
               + ",\"dur\":1,\"args\":{\"pc\":" + std::to_string(ev.pc)
               + ",\"seq\":" + std::to_string(ev.seq)
               + ",\"arg\":" + std::to_string(ev.arg) + "}}";
    }
    out += "],\"displayTimeUnit\":\"ns\",\"otherData\":{\"recorded\":"
           + std::to_string(buf.recorded())
           + ",\"dropped\":" + std::to_string(buf.dropped()) + "}}";
    return out;
}

} // namespace sst::trace
