/**
 * @file
 * Structured pipeline-event tracing.
 *
 * A TraceEvent is a small POD (cycle, strand, seq, pc, kind, arg)
 * recorded into a fixed-capacity per-core ring buffer. Recording is a
 * pointer check plus a struct copy — cheap enough to leave compiled in
 * by default — and the call sites in the core and memory models are
 * additionally gated by the SST_TRACE macro (CMake option SST_TRACE,
 * default ON) so a compiled-out build pays literally nothing.
 *
 * The buffer itself and the exporters (trace/chrome.hh) are always
 * compiled: with SST_TRACE=0 they simply see zero events, which keeps
 * the `sstsim trace` subcommand and its JSON contract available in
 * every build configuration.
 */

#ifndef SSTSIM_TRACE_TRACE_HH
#define SSTSIM_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"

/** Compile-time gate for the recording call sites (1 = instrumented). */
#ifndef SST_TRACE
#define SST_TRACE 1
#endif

namespace sst::snap
{
class Writer;
class Reader;
} // namespace sst::snap

namespace sst::trace
{

/** What happened. The set mirrors the SST pipeline's lifecycle plus
 *  the memory-side fill events the paper's MLP story hinges on. */
enum class TraceKind : std::uint8_t
{
    Fetch,      ///< I-fetch started a new cache line
    Exec,       ///< ahead strand executed speculatively
    Defer,      ///< instruction parked in the DQ
    Replay,     ///< behind strand executed a DQ entry
    Redefer,    ///< DQ entry missed again / operand still pending
    Trigger,    ///< L1-miss load opened a speculation region
    Checkpoint, ///< register checkpoint taken (arg = epoch id)
    Commit,     ///< architectural retirement (arg = insts or tid)
    Rollback,   ///< speculation discarded (arg = FailKind)
    SsqDrain,   ///< speculative store drained to memory at commit
    Fill,       ///< cache fill completed (arg = level 1/2/3)
    CohInvalidate,   ///< remote write invalidated a line (arg = victim)
    CohUpgrade,      ///< S->M ownership upgrade (arg = requester)
    CohIntervention, ///< dirty-owner data transfer (arg = requester)
    LockElide,       ///< SLE elided a lock acquire (arg = 1) or
                     ///< aborted back to conventional locking (arg = 0)
    NumKinds
};

/** Which lane of the machine the event belongs to. */
enum class TraceStrand : std::uint8_t
{
    Main,   ///< committed/architectural stream (and the front end)
    Ahead,  ///< SST ahead strand
    Behind, ///< SST behind (replay) strand
    Mem,    ///< cache/DRAM fill machinery
    NumStrands
};

const char *traceKindName(TraceKind kind);
const char *traceStrandName(TraceStrand strand);

/** One recorded event. Kept POD and small (32 bytes) on purpose. */
struct TraceEvent
{
    Cycle cycle = 0;
    std::uint64_t pc = 0; ///< instruction pc, or line address for Fill
    SeqNum seq = 0;       ///< sequence number when the model has one
    std::uint32_t arg = 0; ///< kind-specific (see TraceKind)
    TraceKind kind = TraceKind::Fetch;
    TraceStrand strand = TraceStrand::Main;
};

/**
 * Fixed-capacity overwrite-oldest ring. The default of 64Ki events
 * (2 MiB) holds the tail of any run; dropped() says how many older
 * events were overwritten so exporters can flag truncation instead of
 * silently pretending the trace is complete.
 */
class TraceBuffer
{
  public:
    static constexpr std::size_t defaultCapacity = std::size_t{1} << 16;

    explicit TraceBuffer(std::size_t capacity = defaultCapacity);

    void record(const TraceEvent &ev)
    {
        if (events_.size() < capacity_) {
            events_.push_back(ev);
        } else {
            events_[oldest_] = ev;
            oldest_ = (oldest_ + 1) % capacity_;
            ++dropped_;
        }
        ++recorded_;
    }

    std::size_t capacity() const { return capacity_; }
    /** Events ever recorded (including the overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }
    /** Events lost to overwrite. */
    std::uint64_t dropped() const { return dropped_; }
    std::size_t size() const { return events_.size(); }

    /** The retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    void clear();

    /** Serialize ring contents + cursors, so a restored run's trace
     *  stream continues byte-identically to an uninterrupted one. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    std::size_t capacity_;
    std::size_t oldest_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<TraceEvent> events_;
};

} // namespace sst::trace

#endif // SSTSIM_TRACE_TRACE_HH
