/**
 * @file
 * CPI-stack cycle attribution shared by all four core models.
 *
 * Every tick is charged to exactly one category, so the categories sum
 * to the core's cycle count — the invariant the trace CLI and the
 * test suite assert. The stack lives in a "cpi_stack" child StatGroup
 * of the core's stats, which means it folds automatically into
 * StatGroup::toJson() (and hence the sweep runner's per-job records)
 * and into flatten() under "<core>.cpi_stack.<category>".
 *
 * Attribution rules (see docs/INTERNALS.md, "Observability"):
 *  - base:     at least one instruction retired this cycle.
 *  - fetch:    nothing retired; the front end could not supply.
 *  - use_stall: nothing retired; an operand (or the divider) was not
 *    ready in non-speculative execution.
 *  - storebuf: nothing retired; a store found the store buffer full or
 *    the cache rejecting.
 *  - dq_full / ssq_full: SST speculating with the ahead strand blocked
 *    on a full deferred queue / speculative store queue.
 *  - replay:   all other in-speculation cycles of regions that commit
 *    (the overlapped-miss cycles the paper's win comes from).
 *  - rollback_discard: in-speculation cycles of regions later rolled
 *    back (wasted work; all of scout mode's speculation lands here).
 *  - coherence: nothing retired; the binding operand came from a load
 *    whose latency was inflated by coherence traffic (invalidation,
 *    intervention or upgrade), or from a line a remote writer stole.
 *  - value_pred: committed in-speculation cycles that ran while at
 *    least one predicted load value stood in for an unverified fill
 *    (the cycles value prediction converted from deferred stalls).
 *  - value_pred_waste: speculation cycles discarded because a
 *    predicted load value was wrong at fill verification.
 *  - other:    residual (e.g. a cycle spent performing a rollback).
 */

#ifndef SSTSIM_TRACE_CPISTACK_HH
#define SSTSIM_TRACE_CPISTACK_HH

#include <array>
#include <cstdint>

#include "common/stats.hh"

namespace sst::trace
{

/** Where a cycle went. One category per cycle, no double counting. */
enum class CpiCat : std::uint8_t
{
    Base,
    Fetch,
    UseStall,
    StoreBuf,
    DqFull,
    SsqFull,
    Replay,
    RollbackDiscard,
    Coherence,
    ValuePred,
    ValuePredWaste,
    Other,
    NumCats
};

constexpr std::size_t numCpiCats =
    static_cast<std::size_t>(CpiCat::NumCats);

const char *cpiCatName(CpiCat cat);
const char *cpiCatDesc(CpiCat cat);

/** Per-category cycle counters registered as a "cpi_stack" child of
 *  @p parent (typically a core's StatGroup). */
class CpiStack
{
  public:
    explicit CpiStack(StatGroup &parent);

    void add(CpiCat cat, std::uint64_t n = 1)
    {
        *cats_[static_cast<std::size_t>(cat)] += n;
    }

    std::uint64_t value(CpiCat cat) const
    {
        return cats_[static_cast<std::size_t>(cat)]->value();
    }

    /** Sum over all categories; equals the core's cycle count once
     *  attribution has been finalised. */
    std::uint64_t total() const;

  private:
    StatGroup group_{"cpi_stack"};
    std::array<Scalar *, numCpiCats> cats_{};
};

} // namespace sst::trace

#endif // SSTSIM_TRACE_CPISTACK_HH
