/**
 * @file
 * Chrome trace_event JSON exporter for a TraceBuffer.
 *
 * Produces the "JSON object format" chrome://tracing and Perfetto both
 * load: a traceEvents array of metadata ("M") events naming one lane
 * (tid) per strand followed by 1-cycle complete ("X") events, ts = the
 * simulated cycle. otherData carries recorded/dropped counts so a
 * wrapped ring is visible to the reader.
 */

#ifndef SSTSIM_TRACE_CHROME_HH
#define SSTSIM_TRACE_CHROME_HH

#include <string>

#include "trace/trace.hh"

namespace sst::trace
{

/** Render @p buf as a complete Chrome trace_event JSON document.
 *  @p processName labels the single pid lane (e.g. "core (sst)"). */
std::string chromeTraceJson(const std::string &processName,
                            const TraceBuffer &buf);

} // namespace sst::trace

#endif // SSTSIM_TRACE_CHROME_HH
