#include "trace/cpistack.hh"

#include "common/logging.hh"

namespace sst::trace
{

const char *
cpiCatName(CpiCat cat)
{
    switch (cat) {
      case CpiCat::Base: return "base";
      case CpiCat::Fetch: return "fetch";
      case CpiCat::UseStall: return "use_stall";
      case CpiCat::StoreBuf: return "storebuf";
      case CpiCat::DqFull: return "dq_full";
      case CpiCat::SsqFull: return "ssq_full";
      case CpiCat::Replay: return "replay";
      case CpiCat::RollbackDiscard: return "rollback_discard";
      case CpiCat::Coherence: return "coherence";
      case CpiCat::ValuePred: return "value_pred";
      case CpiCat::ValuePredWaste: return "value_pred_waste";
      case CpiCat::Other: return "other";
      case CpiCat::NumCats: break;
    }
    panic("bad CpiCat %d", static_cast<int>(cat));
}

const char *
cpiCatDesc(CpiCat cat)
{
    switch (cat) {
      case CpiCat::Base: return "cycles with >=1 retirement";
      case CpiCat::Fetch: return "cycles stalled on the front end";
      case CpiCat::UseStall:
        return "cycles stalled on operand use (non-speculative)";
      case CpiCat::StoreBuf:
        return "cycles stalled on store-side structural limits";
      case CpiCat::DqFull:
        return "speculating cycles blocked on a full DQ";
      case CpiCat::SsqFull:
        return "speculating cycles blocked on a full SSQ";
      case CpiCat::Replay:
        return "committed speculation cycles overlapping misses";
      case CpiCat::RollbackDiscard:
        return "speculation cycles discarded by rollback";
      case CpiCat::Coherence:
        return "cycles stalled on cross-core coherence traffic";
      case CpiCat::ValuePred:
        return "committed speculation cycles running on a predicted "
               "load value";
      case CpiCat::ValuePredWaste:
        return "speculation cycles discarded by a value mispredict";
      case CpiCat::Other: return "unattributed cycles";
      case CpiCat::NumCats: break;
    }
    panic("bad CpiCat %d", static_cast<int>(cat));
}

CpiStack::CpiStack(StatGroup &parent)
{
    for (std::size_t i = 0; i < numCpiCats; ++i) {
        CpiCat cat = static_cast<CpiCat>(i);
        cats_[i] = &group_.addScalar(cpiCatName(cat), cpiCatDesc(cat));
    }
    parent.addChild(group_);
}

std::uint64_t
CpiStack::total() const
{
    std::uint64_t n = 0;
    for (const Scalar *s : cats_)
        n += s->value();
    return n;
}

} // namespace sst::trace
