#include "trace/trace.hh"

#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst::trace
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Fetch: return "fetch";
      case TraceKind::Exec: return "exec";
      case TraceKind::Defer: return "defer";
      case TraceKind::Replay: return "replay";
      case TraceKind::Redefer: return "redefer";
      case TraceKind::Trigger: return "trigger";
      case TraceKind::Checkpoint: return "checkpoint";
      case TraceKind::Commit: return "commit";
      case TraceKind::Rollback: return "rollback";
      case TraceKind::SsqDrain: return "ssq_drain";
      case TraceKind::Fill: return "fill";
      case TraceKind::CohInvalidate: return "coh_invalidate";
      case TraceKind::CohUpgrade: return "coh_upgrade";
      case TraceKind::CohIntervention: return "coh_intervention";
      case TraceKind::LockElide: return "lock_elide";
      case TraceKind::NumKinds: break;
    }
    panic("bad TraceKind %d", static_cast<int>(kind));
}

const char *
traceStrandName(TraceStrand strand)
{
    switch (strand) {
      case TraceStrand::Main: return "main/commit";
      case TraceStrand::Ahead: return "ahead strand";
      case TraceStrand::Behind: return "behind strand";
      case TraceStrand::Mem: return "memory";
      case TraceStrand::NumStrands: break;
    }
    panic("bad TraceStrand %d", static_cast<int>(strand));
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    events_.reserve(capacity_ < defaultCapacity ? capacity_
                                                : defaultCapacity);
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    // oldest_ is 0 until the ring wraps, so this covers both cases.
    for (std::size_t i = 0; i < events_.size(); ++i)
        out.push_back(events_[(oldest_ + i) % events_.size()]);
    return out;
}

void
TraceBuffer::clear()
{
    events_.clear();
    oldest_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

void
TraceBuffer::save(snap::Writer &w) const
{
    w.tag("tracebuf");
    w.u64(capacity_);
    w.u64(oldest_);
    w.u64(recorded_);
    w.u64(dropped_);
    w.u64(events_.size());
    for (const TraceEvent &ev : events_) {
        w.u64(ev.cycle);
        w.u64(ev.pc);
        w.u64(ev.seq);
        w.u32(ev.arg);
        w.u8(static_cast<std::uint8_t>(ev.kind));
        w.u8(static_cast<std::uint8_t>(ev.strand));
    }
}

void
TraceBuffer::load(snap::Reader &r)
{
    r.tag("tracebuf");
    std::uint64_t cap = r.u64();
    fatal_if(cap != capacity_,
             "snapshot: trace buffer capacity %llu, expected %zu "
             "(configuration mismatch)",
             static_cast<unsigned long long>(cap), capacity_);
    oldest_ = r.u64();
    recorded_ = r.u64();
    dropped_ = r.u64();
    std::uint64_t n = r.u64();
    fatal_if(n > capacity_,
             "snapshot: trace buffer holds %llu > capacity %zu events "
             "(corrupt snapshot)",
             static_cast<unsigned long long>(n), capacity_);
    events_.clear();
    events_.resize(n);
    for (TraceEvent &ev : events_) {
        ev.cycle = r.u64();
        ev.pc = r.u64();
        ev.seq = r.u64();
        ev.arg = r.u32();
        std::uint8_t kind = r.u8();
        fatal_if(kind >= static_cast<std::uint8_t>(TraceKind::NumKinds),
                 "snapshot: bad trace kind %u (corrupt snapshot)", kind);
        ev.kind = static_cast<TraceKind>(kind);
        std::uint8_t strand = r.u8();
        fatal_if(strand >=
                     static_cast<std::uint8_t>(TraceStrand::NumStrands),
                 "snapshot: bad trace strand %u (corrupt snapshot)",
                 strand);
        ev.strand = static_cast<TraceStrand>(strand);
    }
}

} // namespace sst::trace
