#include "trace/trace.hh"

#include "common/logging.hh"

namespace sst::trace
{

const char *
traceKindName(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Fetch: return "fetch";
      case TraceKind::Exec: return "exec";
      case TraceKind::Defer: return "defer";
      case TraceKind::Replay: return "replay";
      case TraceKind::Redefer: return "redefer";
      case TraceKind::Trigger: return "trigger";
      case TraceKind::Checkpoint: return "checkpoint";
      case TraceKind::Commit: return "commit";
      case TraceKind::Rollback: return "rollback";
      case TraceKind::SsqDrain: return "ssq_drain";
      case TraceKind::Fill: return "fill";
      case TraceKind::NumKinds: break;
    }
    panic("bad TraceKind %d", static_cast<int>(kind));
}

const char *
traceStrandName(TraceStrand strand)
{
    switch (strand) {
      case TraceStrand::Main: return "main/commit";
      case TraceStrand::Ahead: return "ahead strand";
      case TraceStrand::Behind: return "behind strand";
      case TraceStrand::Mem: return "memory";
      case TraceStrand::NumStrands: break;
    }
    panic("bad TraceStrand %d", static_cast<int>(strand));
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    events_.reserve(capacity_ < defaultCapacity ? capacity_
                                                : defaultCapacity);
}

std::vector<TraceEvent>
TraceBuffer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    // oldest_ is 0 until the ring wraps, so this covers both cases.
    for (std::size_t i = 0; i < events_.size(); ++i)
        out.push_back(events_[(oldest_ + i) % events_.size()]);
    return out;
}

void
TraceBuffer::clear()
{
    events_.clear();
    oldest_ = 0;
    recorded_ = 0;
    dropped_ = 0;
}

} // namespace sst::trace
