#include "exp/threadpool.hh"

#include "common/logging.hh"

namespace sst::exp
{

unsigned
ThreadPool::defaultWorkers()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { run(i); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    // pending_ must rise before the task becomes findable: a worker
    // could otherwise pop and finish it first, driving pending_ below
    // zero and waking wait() with work still in flight.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++pending_;
    }
    Worker &w = *workers_[nextQueue_.fetch_add(1,
                                               std::memory_order_relaxed)
                          % workers_.size()];
    {
        std::lock_guard<std::mutex> lock(w.mutex);
        w.deque.push_back(std::move(task));
    }
    // signal_ rises only after the push. A worker that scanned the
    // deques before the push then sees signal_ != seen in its wait
    // predicate and rescans; bumping before the push would let it
    // read the new signal_, miss the not-yet-pushed task, and sleep
    // through the notification (lost wakeup).
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++signal_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return pending_ == 0; });
}

std::function<void()>
ThreadPool::findWork(unsigned id)
{
    // Own deque first, newest task (back): it is the cache-warm end.
    Worker &own = *workers_[id];
    {
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.deque.empty()) {
            auto task = std::move(own.deque.back());
            own.deque.pop_back();
            return task;
        }
    }
    // Steal the oldest task (front) from the first non-empty victim.
    for (std::size_t off = 1; off < workers_.size(); ++off) {
        Worker &victim = *workers_[(id + off) % workers_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.deque.empty()) {
            auto task = std::move(victim.deque.front());
            victim.deque.pop_front();
            steals_.fetch_add(1, std::memory_order_relaxed);
            return task;
        }
    }
    return nullptr;
}

void
ThreadPool::run(unsigned id)
{
    for (;;) {
        std::uint64_t seen;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            seen = signal_;
        }
        if (auto task = findWork(id)) {
            task();
            executed_.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                idleCv_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (stop_)
            return;
        // A submit between the scan above and this wait bumps signal_,
        // so the predicate fails and we rescan instead of sleeping
        // through the notification.
        workCv_.wait(lock,
                     [this, seen] { return stop_ || signal_ != seen; });
        if (stop_)
            return;
    }
}

} // namespace sst::exp
