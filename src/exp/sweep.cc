#include "exp/sweep.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/presets.hh"
#include "workloads/workloads.hh"

namespace sst::exp
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

/** Driver keys a manifest may set besides axes. */
const std::vector<std::string> &
sweepKeys()
{
    static const std::vector<std::string> keys = {
        "sweep.name",         "sweep.seed",
        "sweep.repeats",      "sweep.baseline",
        "sweep.max_cycles",   "sweep.length_scale",
        "sweep.footprint_scale", "sweep.verify",
        "sweep.sample",       "sweep.sample_detail",
        "sweep.sample_regions", "sweep.region_insts",
        "sweep.profile_cache",
        "preset",             "workload",
    };
    return keys;
}

Error
lineError(const std::string &origin, unsigned line, const std::string &msg)
{
    return Error{origin + ":" + std::to_string(line) + ": " + msg,
                 exit_code::badInput};
}

} // namespace

std::vector<std::string>
splitList(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string piece;
    std::stringstream ss(text);
    while (std::getline(ss, piece, sep)) {
        piece = trim(piece);
        if (!piece.empty())
            out.push_back(piece);
    }
    return out;
}

Result<SweepSpec>
SweepSpec::parse(const std::string &text, const std::string &origin)
{
    SweepSpec spec;
    Config driver; // sweep.* values, type-checked through Config getters

    const std::vector<std::string> machineKeys = machineConfigKeys();
    std::vector<std::string> known = sweepKeys();
    known.insert(known.end(), machineKeys.begin(), machineKeys.end());

    std::stringstream ss(text);
    std::string raw;
    unsigned lineNo = 0;
    while (std::getline(ss, raw)) {
        ++lineNo;
        std::string line = raw;
        if (auto hash = line.find('#'); hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return lineError(origin, lineNo,
                             "expected 'key = value', got '" + line + "'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            return lineError(origin, lineNo,
                             "empty key or value in '" + line + "'");

        if (std::find(known.begin(), known.end(), key) == known.end()) {
            std::string msg = "unknown manifest key '" + key + "'";
            std::string near = closestMatch(key, known);
            if (!near.empty())
                msg += "; did you mean '" + near + "'?";
            return lineError(origin, lineNo, msg);
        }

        if (key == "preset") {
            spec.presets = splitList(value, ',');
            for (const auto &p : spec.presets) {
                auto names = presetNames();
                if (std::find(names.begin(), names.end(), p)
                    == names.end()) {
                    std::string msg = "unknown preset '" + p + "'";
                    std::string near = closestMatch(p, names);
                    if (!near.empty())
                        msg += "; did you mean '" + near + "'?";
                    return lineError(origin, lineNo, msg);
                }
            }
        } else if (key == "workload") {
            spec.workloads = splitList(value, ',');
            for (const auto &w : spec.workloads) {
                auto names = allWorkloadNames();
                if (std::find(names.begin(), names.end(), w)
                    == names.end()) {
                    std::string msg = "unknown workload '" + w + "'";
                    std::string near = closestMatch(w, names);
                    if (!near.empty())
                        msg += "; did you mean '" + near + "'?";
                    return lineError(origin, lineNo, msg);
                }
            }
        } else if (key.rfind("sweep.", 0) == 0) {
            driver.set(key, value);
        } else {
            // A machine-config axis. Validate every value now by
            // applying it to a scratch preset, so a typo fails at
            // parse time with a line number instead of mid-sweep.
            std::vector<std::string> values = splitList(value, ',');
            if (values.empty())
                return lineError(origin, lineNo,
                                 "axis '" + key + "' has no values");
            for (const auto &v : values) {
                auto checked = trapFatal([&] {
                    MachineConfig scratch = makePreset("inorder");
                    Config one;
                    one.set(key, v);
                    applyOverrides(scratch, one);
                });
                if (!checked.ok())
                    return lineError(origin, lineNo,
                                     checked.error().message);
            }
            // Re-assigning an axis replaces it (last line wins), like
            // Config::set overwriting a key.
            auto it = std::find_if(spec.axes.begin(), spec.axes.end(),
                                   [&](const Axis &a) {
                                       return a.key == key;
                                   });
            if (it != spec.axes.end())
                it->values = values;
            else
                spec.axes.push_back(Axis{key, values});
            if (key == "fault.seed")
                spec.explicitFaultSeed = true;
        }
    }

    if (spec.presets.empty())
        return Error{origin + ": manifest sets no 'preset'",
                     exit_code::badInput};
    if (spec.workloads.empty())
        return Error{origin + ": manifest sets no 'workload'",
                     exit_code::badInput};

    auto driven = trapFatal([&] {
        spec.name = driver.getString("sweep.name", spec.name);
        spec.baseSeed = driver.getUint("sweep.seed", spec.baseSeed);
        spec.repeats = static_cast<unsigned>(
            driver.getUint("sweep.repeats", spec.repeats));
        spec.baseline = driver.getString("sweep.baseline", spec.baseline);
        spec.maxCycles = driver.getUint("sweep.max_cycles", spec.maxCycles);
        spec.lengthScale =
            driver.getDouble("sweep.length_scale", spec.lengthScale);
        spec.footprintScale =
            driver.getDouble("sweep.footprint_scale", spec.footprintScale);
        spec.verifyGolden = driver.getBool("sweep.verify",
                                           spec.verifyGolden);
        spec.sample = driver.getBool("sweep.sample", spec.sample);
        spec.sampleDetail =
            driver.getUint("sweep.sample_detail", spec.sampleDetail);
        spec.sampleRegions = static_cast<unsigned>(
            driver.getUint("sweep.sample_regions", spec.sampleRegions));
        spec.regionInsts =
            driver.getUint("sweep.region_insts", spec.regionInsts);
        spec.profileCache =
            driver.getString("sweep.profile_cache", spec.profileCache);
    });
    if (!driven.ok())
        return Error{origin + ": " + driven.error().message,
                     exit_code::badInput};

    if (spec.repeats == 0)
        return Error{origin + ": sweep.repeats must be >= 1",
                     exit_code::badInput};
    if (spec.sample && spec.verifyGolden)
        return Error{origin + ": sweep.sample and sweep.verify are "
                              "mutually exclusive (sampled runs estimate "
                              "IPC, they do not reproduce the golden "
                              "final state)",
                     exit_code::badInput};
    if (spec.sample && spec.sampleDetail == 0)
        return Error{origin + ": sweep.sample_detail must be >= 1",
                     exit_code::badInput};
    if (!spec.baseline.empty()
        && std::find(spec.presets.begin(), spec.presets.end(),
                     spec.baseline)
               == spec.presets.end())
        return Error{origin + ": sweep.baseline '" + spec.baseline
                         + "' is not in the preset list",
                     exit_code::badInput};
    return spec;
}

Result<SweepSpec>
SweepSpec::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Error{"cannot open sweep manifest '" + path + "'",
                     exit_code::badInput};
    std::stringstream ss;
    ss << in.rdbuf();
    return parse(ss.str(), path);
}

std::size_t
SweepSpec::pointCount() const
{
    std::size_t n = workloads.size() * repeats;
    for (const auto &axis : axes)
        n *= axis.values.size();
    return n;
}

std::vector<JobSpec>
SweepSpec::expand() const
{
    std::vector<JobSpec> jobs;
    jobs.reserve(jobCount());

    // Odometer over the axes: counter[i] indexes axes[i].values, the
    // last axis spins fastest.
    std::vector<std::size_t> counter(axes.size(), 0);
    std::size_t pointOrdinal = 0;
    const bool sweepsFaults =
        std::any_of(axes.begin(), axes.end(), [](const Axis &a) {
            return a.key.rfind("fault.", 0) == 0;
        });

    for (const auto &workload : workloads) {
        std::fill(counter.begin(), counter.end(), 0);
        for (;;) {
            std::string axisKey;
            for (std::size_t i = 0; i < axes.size(); ++i) {
                axisKey += '|';
                axisKey += axes[i].key + '=' + axes[i].values[counter[i]];
            }
            for (unsigned repeat = 0; repeat < repeats; ++repeat) {
                // Even/odd indices domain-separate the two streams:
                // with one preset, job index == point ordinal, and a
                // shared index space would seed the fault injector
                // identically to the workload generator.
                std::uint64_t workloadSeed =
                    deriveSeed(baseSeed, 2 * pointOrdinal + 1);
                for (const auto &preset : presets) {
                    JobSpec job;
                    job.index = jobs.size();
                    job.preset = preset;
                    job.workload = workload;
                    job.repeat = repeat;
                    job.jobSeed = deriveSeed(baseSeed, 2 * job.index);
                    job.workloadSeed = workloadSeed;
                    for (std::size_t i = 0; i < axes.size(); ++i)
                        job.overrides.set(axes[i].key,
                                          axes[i].values[counter[i]]);
                    if (sweepsFaults && !explicitFaultSeed)
                        job.overrides.set("fault.seed", job.jobSeed);
                    job.pointKey = workload + axisKey + "|r"
                                   + std::to_string(repeat);
                    jobs.push_back(std::move(job));
                }
                ++pointOrdinal;
            }
            // Advance the odometer; done when it wraps past axis 0
            // (immediately, when there are no axes at all).
            bool wrapped = true;
            for (std::size_t i = axes.size(); i-- > 0;) {
                if (++counter[i] < axes[i].values.size()) {
                    wrapped = false;
                    break;
                }
                counter[i] = 0;
            }
            if (wrapped)
                break;
        }
    }
    return jobs;
}

} // namespace sst::exp
