#include "exp/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "exp/json.hh"
#include "exp/threadpool.hh"
#include "fault/chaos.hh"
#include "func/executor.hh"
#include "sim/presets.hh"
#include "sim/profile.hh"
#include "snap/snap.hh"
#include "workloads/workloads.hh"

namespace sst::exp
{

namespace
{

/**
 * Per-job record schema (schema_version 1; all keys always present):
 *   index, preset, workload, repeat       job identity
 *   job_seed, workload_seed               seeding (rng.hh deriveSeed)
 *   config                               effective overrides (strings)
 *   ran, error                            did the job execute at all
 *   finished, degrade                     HALT committed / DegradeReason
 *   cycles, insts, ipc                    headline metrics
 *   l1d_miss_rate, demand_mlp, mispredict_rate
 *   sampled, windows, detailed_insts      sampled-sweep estimate shape
 *   ipc_stddev, ipc_ci95                  estimate quality
 *   warm_accesses, warm_hits              profiling-pass warming health
 *   arch_ok                               golden cross-check (or null)
 *   stats                                 full structured core stat tree
 *   fault                                 fault-injector stat tree
 *   watchdog                              recoveries/interventions
 *   log                                   captured warn()/inform() text
 */
std::string
buildRecord(const JobOutcome &out, const Config &effectiveConfig,
            const std::string &coreStatsJson,
            const std::string &faultStatsJson)
{
    const JobSpec &spec = out.spec;
    const RunResult &r = out.result;
    auto runStat = [&](const char *key) {
        auto it = r.stats.find(key);
        return it == r.stats.end() ? 0.0 : it->second;
    };

    std::string j = "{";
    j += "\"index\":" + std::to_string(spec.index);
    j += ",\"preset\":\"" + jsonEscape(spec.preset) + '"';
    j += ",\"workload\":\"" + jsonEscape(spec.workload) + '"';
    j += ",\"repeat\":" + std::to_string(spec.repeat);
    j += ",\"job_seed\":" + std::to_string(spec.jobSeed);
    j += ",\"workload_seed\":" + std::to_string(spec.workloadSeed);
    j += ",\"config\":{";
    bool first = true;
    for (const auto &kv : effectiveConfig.items()) {
        if (!first)
            j += ',';
        first = false;
        j += '"' + jsonEscape(kv.first) + "\":\"" + jsonEscape(kv.second)
             + '"';
    }
    j += "}";
    j += std::string(",\"ran\":") + (out.ran ? "true" : "false");
    j += ",\"error\":\"" + jsonEscape(out.error) + '"';
    j += std::string(",\"finished\":") + (r.finished ? "true" : "false");
    j += ",\"degrade\":\"";
    j += degradeReasonName(r.degrade);
    j += '"';
    j += ",\"cycles\":" + std::to_string(r.cycles);
    j += ",\"insts\":" + std::to_string(r.insts);
    j += ",\"ipc\":" + jsonNumber(r.ipc);
    j += ",\"l1d_miss_rate\":" + jsonNumber(r.l1dMissRate);
    j += ",\"demand_mlp\":" + jsonNumber(r.meanDemandMlp);
    j += ",\"mispredict_rate\":" + jsonNumber(r.mispredictRate);
    j += std::string(",\"sampled\":") + (out.sampled ? "true" : "false");
    j += ",\"windows\":" + std::to_string(out.windows);
    j += ",\"detailed_insts\":" + std::to_string(out.detailedInsts);
    j += ",\"ipc_stddev\":" + jsonNumber(out.ipcStddev);
    j += ",\"ipc_ci95\":" + jsonNumber(out.ipcCi95);
    j += ",\"warm_accesses\":" + std::to_string(out.warmAccesses);
    j += ",\"warm_hits\":" + std::to_string(out.warmHits);
    j += ",\"arch_ok\":";
    j += out.archVerified ? (out.archOk ? "true" : "false") : "null";
    j += ",\"stats\":" + (coreStatsJson.empty() ? "{}" : coreStatsJson);
    j += ",\"fault\":" + (faultStatsJson.empty() ? "{}" : faultStatsJson);
    j += ",\"watchdog\":{\"recoveries\":"
         + jsonNumber(runStat("watchdog.recoveries"))
         + ",\"interventions\":"
         + jsonNumber(runStat("watchdog.interventions")) + "}";
    j += ",\"log\":\"" + jsonEscape(out.log) + '"';
    j += "}";
    return j;
}

} // namespace

std::string
jobRecordPath(const std::string &dir, std::size_t index)
{
    return dir + "/job-" + std::to_string(index) + ".json";
}

std::string
jobSnapPath(const std::string &dir, std::size_t index)
{
    return dir + "/job-" + std::to_string(index) + ".snap";
}

/*
 * A stale artifact directory from a different sweep must not
 * masquerade as finished work, and a torn record from a killed worker
 * must read as "re-run this job", never crash the resume pass. Only
 * the summary fields travel back (enough for every consumer of a
 * resumed sweep: exit code, tables, JSON export via the verbatim
 * record); the flattened stats map is not reconstructed.
 */
bool
outcomeFromRecord(const JobSpec &job, const std::string &text,
                  JobOutcome &out, std::string *why)
{
    auto parsed = Json::parse(text);
    if (!parsed.ok()) {
        if (why)
            *why = "unreadable record (truncated or corrupt: "
                   + parsed.error().message + ")";
        return false;
    }
    if (!parsed.value().isObject()) {
        if (why)
            *why = "record is not a JSON object";
        return false;
    }
    const Json &j = parsed.value();
    auto num = [&](const char *key) {
        const Json *v = j.find(key);
        return v && v->kind() == Json::Kind::Number ? v->asNumber()
                                                    : 0.0;
    };
    auto str = [&](const char *key) -> std::string {
        const Json *v = j.find(key);
        return v && v->kind() == Json::Kind::String ? v->asString()
                                                    : std::string();
    };
    auto boolean = [&](const char *key) {
        const Json *v = j.find(key);
        return v && v->kind() == Json::Kind::Bool && v->asBool();
    };
    // Seeds are full 64-bit values; the JSON parser reads numbers as
    // doubles, so compare both sides after the same double rounding.
    if (static_cast<std::size_t>(num("index")) != job.index
        || str("preset") != job.preset || str("workload") != job.workload
        || num("job_seed") != static_cast<double>(job.jobSeed)
        || num("workload_seed")
               != static_cast<double>(job.workloadSeed)) {
        if (why)
            *why = "record identity does not match the manifest";
        return false;
    }

    out.spec = job;
    out.ran = boolean("ran");
    out.error = str("error");
    out.result.preset = job.preset;
    out.result.workload = job.workload;
    out.result.cycles = static_cast<Cycle>(num("cycles"));
    out.result.insts = static_cast<std::uint64_t>(num("insts"));
    out.result.ipc = num("ipc");
    out.result.l1dMissRate = num("l1d_miss_rate");
    out.result.meanDemandMlp = num("demand_mlp");
    out.result.mispredictRate = num("mispredict_rate");
    out.result.finished = boolean("finished");
    std::string degrade = str("degrade");
    out.result.degrade = degrade == "livelock" ? DegradeReason::Livelock
                         : degrade == "cycle_budget"
                             ? DegradeReason::CycleBudget
                             : DegradeReason::None;
    // A corrupt record can hold any value here; only a real bool is a
    // verification verdict (asBool() on anything else would panic).
    const Json *archOk = j.find("arch_ok");
    out.archVerified = archOk && archOk->kind() == Json::Kind::Bool;
    out.archOk = out.archVerified && archOk->asBool();
    out.sampled = boolean("sampled");
    out.windows = static_cast<std::size_t>(num("windows"));
    out.detailedInsts = static_cast<std::uint64_t>(num("detailed_insts"));
    out.ipcStddev = num("ipc_stddev");
    out.ipcCi95 = num("ipc_ci95");
    out.warmAccesses = static_cast<std::uint64_t>(num("warm_accesses"));
    out.warmHits = static_cast<std::uint64_t>(num("warm_hits"));
    out.log = str("log");
    out.recordJson = text;
    return true;
}

JobOutcome
unrunOutcome(const JobSpec &job, const std::string &error)
{
    JobOutcome out;
    out.spec = job;
    out.ran = false;
    out.error = error;
    out.recordJson = buildRecord(out, job.overrides, "", "");
    return out;
}

std::size_t
loadFinishedRecords(const std::vector<JobSpec> &jobs,
                    const std::string &artifactDir, ResultSink &sink,
                    std::vector<char> &done)
{
    panic_if(done.size() != jobs.size(),
             "done vector sized %zu for %zu jobs", done.size(),
             jobs.size());
    std::size_t resumed = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        std::ifstream in(jobRecordPath(artifactDir, jobs[i].index));
        if (!in)
            continue;
        std::stringstream ss;
        ss << in.rdbuf();
        JobOutcome out;
        std::string why;
        if (outcomeFromRecord(jobs[i], ss.str(), out, &why)) {
            done[i] = 1;
            ++resumed;
            sink.tryRecord(std::move(out));
        } else {
            warn("resume: artifact for job #%zu ignored (%s); "
                 "re-running",
                 jobs[i].index, why.c_str());
        }
    }
    return resumed;
}

void
ResultSink::record(JobOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t index = outcome.spec.index;
    panic_if(index >= outcomes_.size(),
             "job index %zu out of range (sink sized for %zu)", index,
             outcomes_.size());
    outcomes_[index] = std::move(outcome);
    present_[index] = 1;
    ++recorded_;
    if (onRecord_)
        onRecord_(outcomes_[index]);
}

bool
ResultSink::tryRecord(JobOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t index = outcome.spec.index;
    panic_if(index >= outcomes_.size(),
             "job index %zu out of range (sink sized for %zu)", index,
             outcomes_.size());
    if (present_[index])
        return false;
    outcomes_[index] = std::move(outcome);
    present_[index] = 1;
    ++recorded_;
    if (onRecord_)
        onRecord_(outcomes_[index]);
    return true;
}

bool
ResultSink::has(std::size_t index) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index < present_.size() && present_[index] != 0;
}

std::size_t
ResultSink::recorded() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorded_;
}

std::string
resolveProfileCache(const SweepSpec &spec, const SweepRunOptions &options)
{
    if (!options.profileCache.empty())
        return options.profileCache;
    if (!spec.profileCache.empty())
        return spec.profileCache;
    if (!options.artifactDir.empty())
        return options.artifactDir + "/profile-cache";
    return "";
}

JobOutcome
runJob(const SweepSpec &sweep, const JobSpec &job,
       const SweepRunOptions &options)
{
    JobOutcome out;
    out.spec = job;

    std::string coreStatsJson;
    std::string faultStatsJson;
    // Getters record defaulted keys, so after applyOverrides this
    // holds the *complete* effective machine config for the record.
    Config effective = job.overrides;

    // Capture this job's diagnostics so concurrent jobs cannot
    // interleave on stderr; the text ships inside the record.
    LogCapture capture;
    auto attempt = trapFatal([&] {
        WorkloadParams wp;
        wp.seed = job.workloadSeed;
        wp.lengthScale = sweep.lengthScale;
        wp.footprintScale = sweep.footprintScale;
        Workload wl = makeWorkload(job.workload, wp);

        MachineConfig mc = makePreset(job.preset);
        applyOverrides(mc, effective);

        if (sweep.sample) {
            // Sampled job: serve every detailed window from a
            // checkpoint-warmed profile library instead of simulating
            // the whole program. No chaos/snapshot machinery — the
            // longest phase (the profiling pass) runs at functional
            // speed and amortizes across the shared cache.
            ProfileParams pp;
            pp.regionInsts = sweep.regionInsts
                                 ? sweep.regionInsts
                                 : profileRegionHint(wl.approxDynInsts);
            pp.maxRegions = sweep.sampleRegions;
            std::uint64_t configHash = memConfigHash(mc, effective);
            auto library = ensureProfileLibrary(
                mc, wl.program, pp, resolveProfileCache(sweep, options),
                configHash);
            fatal_if(!library.ok(), "%s",
                     library.error().message.c_str());
            SampleParams sp;
            sp.detailInsts = sweep.sampleDetail;
            SampledResult s = runSampledFromLibrary(mc, wl.program,
                                                    library.value(), sp);
            out.result.preset = mc.presetName;
            out.result.workload = wl.name;
            out.result.insts = library.value().totalInsts;
            out.result.ipc = s.ipc;
            out.result.cycles =
                s.ipc > 0 ? static_cast<Cycle>(
                    static_cast<double>(library.value().totalInsts)
                    / s.ipc)
                          : 0;
            out.result.finished = s.reachedEnd;
            out.sampled = true;
            out.windows = s.windowIpc.size();
            out.detailedInsts = s.detailedInsts;
            out.ipcStddev = s.ipcStddev();
            out.ipcCi95 = s.ipcCi95();
            out.warmAccesses = s.warmAccesses;
            out.warmHits = s.warmHits;
            return;
        }

        Machine machine(mc, wl.program);
        if (options.chaos) {
            // Poison-job hook: a config-carried chaos_exit_cycle kills
            // this process at that simulated cycle, every attempt —
            // the retry budget turns that into quarantine.
            if (mc.mem.fault.chaosExitCycle)
                options.chaos->scheduleExit(mc.mem.fault.chaosExitCycle);
            machine.setChaosMonitor(options.chaos);
        }
        SnapPolicy policy;
        if (!options.artifactDir.empty() && options.snapEvery) {
            policy.everyCycles = options.snapEvery;
            policy.path = jobSnapPath(options.artifactDir, job.index);
        }
        if (options.resume && !options.artifactDir.empty()) {
            std::string snapPath =
                jobSnapPath(options.artifactDir, job.index);
            std::error_code ec;
            if (std::filesystem::exists(snapPath, ec)) {
                // Validate the handoff before restoring: a checkpoint
                // some other worker wrote must carry the snapshot
                // magic/version before this process trusts it.
                auto usable = snap::probeSnapshotFile(snapPath);
                auto restored = usable.ok()
                                    ? machine.restoreFromFile(snapPath)
                                    : usable;
                if (!restored.ok())
                    warn("resume: checkpoint '%s' unusable (%s); "
                         "restarting job #%zu from cycle 0",
                         snapPath.c_str(),
                         restored.error().message.c_str(), job.index);
            }
        }
        out.result = policy.everyCycles
                         ? machine.run(sweep.maxCycles, policy)
                         : machine.run(sweep.maxCycles);
        coreStatsJson = machine.core().stats().toJson();
        faultStatsJson = machine.memsys().faults().stats().toJson();

        if (sweep.verifyGolden && out.result.finished) {
            MemoryImage goldenMem;
            goldenMem.loadSegments(wl.program);
            Executor golden(wl.program, goldenMem);
            ArchState goldenState;
            std::uint64_t goldenInsts =
                golden.run(goldenState, 2'000'000'000ULL);
            out.archVerified = true;
            out.archOk = goldenState.halted
                         && machine.core().archState().regsEqual(
                             goldenState)
                         && machine.image().contentEquals(goldenMem)
                         && out.result.insts == goldenInsts;
        }
    });
    out.ran = attempt.ok();
    if (!out.ran)
        out.error = attempt.error().message;
    out.log = capture.take();
    out.recordJson =
        buildRecord(out, effective, coreStatsJson, faultStatsJson);

    if (!options.artifactDir.empty()) {
        // Record first (atomic), then drop the now-redundant
        // checkpoint: a crash between the two leaves both, and resume
        // prefers the record.
        std::string path = jobRecordPath(options.artifactDir, job.index);
        std::vector<std::uint8_t> bytes(out.recordJson.begin(),
                                        out.recordJson.end());
        if (auto written = snap::writeFile(path, bytes); !written.ok())
            warn("cannot write job artifact '%s': %s", path.c_str(),
                 written.error().message.c_str());
        std::error_code ec;
        std::filesystem::remove(jobSnapPath(options.artifactDir,
                                            job.index),
                                ec);
    }
    return out;
}

int
runSweep(const SweepSpec &spec, const SweepRunOptions &options,
         ResultSink &sink)
{
    const std::vector<JobSpec> jobs = spec.expand();
    unsigned workers = options.jobs ? options.jobs
                                    : ThreadPool::defaultWorkers();

    if (!options.artifactDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.artifactDir, ec);
        if (ec)
            warn("cannot create artifact directory '%s': %s",
                 options.artifactDir.c_str(), ec.message().c_str());
    }

    // Resume pass: jobs whose record artifact already exists (and
    // matches this manifest's identity for that index) are finished
    // work — rebuild their outcomes instead of re-running.
    std::vector<char> done(jobs.size(), 0);
    if (options.resume && !options.artifactDir.empty())
        loadFinishedRecords(jobs, options.artifactDir, sink, done);

    {
        ThreadPool pool(workers);
        parallelFor(pool, jobs.size(), [&](std::size_t i) {
            if (!done[i])
                sink.record(runJob(spec, jobs[i], options));
        });
    }

    return sweepExitCode(sink);
}

int
sweepExitCode(const ResultSink &sink)
{
    bool anyError = false, anyLivelock = false, anyBudget = false,
         anyMismatch = false;
    for (const auto &out : sink.outcomes()) {
        if (!out.ran)
            anyError = true;
        else if (out.result.degrade == DegradeReason::Livelock)
            anyLivelock = true;
        else if (!out.result.finished)
            anyBudget = true;
        if (out.archVerified && !out.archOk)
            anyMismatch = true;
    }
    if (anyError)
        return exit_code::badInput;
    if (anyMismatch)
        return exit_code::archMismatch;
    if (anyLivelock)
        return exit_code::livelock;
    if (anyBudget)
        return exit_code::cycleBudget;
    return exit_code::ok;
}

std::string
sweepJson(const SweepSpec &spec, const ResultSink &sink)
{
    std::string j = "{\"schema_version\":1,\"sweep\":{";
    j += "\"name\":\"" + jsonEscape(spec.name) + '"';
    j += ",\"seed\":" + std::to_string(spec.baseSeed);
    j += ",\"repeats\":" + std::to_string(spec.repeats);
    j += ",\"baseline\":\"" + jsonEscape(spec.baseline) + '"';
    j += ",\"max_cycles\":" + std::to_string(spec.maxCycles);
    j += ",\"length_scale\":" + jsonNumber(spec.lengthScale);
    j += ",\"footprint_scale\":" + jsonNumber(spec.footprintScale);
    j += std::string(",\"verify\":")
         + (spec.verifyGolden ? "true" : "false");
    j += ",\"presets\":[";
    for (std::size_t i = 0; i < spec.presets.size(); ++i) {
        if (i)
            j += ',';
        j += '"' + jsonEscape(spec.presets[i]) + '"';
    }
    j += "],\"workloads\":[";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
        if (i)
            j += ',';
        j += '"' + jsonEscape(spec.workloads[i]) + '"';
    }
    j += "],\"axes\":[";
    for (std::size_t i = 0; i < spec.axes.size(); ++i) {
        if (i)
            j += ',';
        j += "{\"key\":\"" + jsonEscape(spec.axes[i].key)
             + "\",\"values\":[";
        for (std::size_t k = 0; k < spec.axes[i].values.size(); ++k) {
            if (k)
                j += ',';
            j += '"' + jsonEscape(spec.axes[i].values[k]) + '"';
        }
        j += "]}";
    }
    j += "],\"points\":" + std::to_string(spec.pointCount());
    j += ",\"jobs_total\":" + std::to_string(spec.jobCount());
    j += "},\"records\":[\n";
    const auto &outcomes = sink.outcomes();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (i)
            j += ",\n";
        j += outcomes[i].recordJson;
    }
    j += "\n]}\n";
    return j;
}

Table
aggregateTable(const SweepSpec &spec, const ResultSink &sink)
{
    struct Group
    {
        std::size_t jobs = 0, ok = 0;
        double ipcMin = 0, ipcMax = 0, ipcSum = 0;
        double cycleSum = 0;
    };
    // Keyed (preset, workload); iterate in manifest order for output.
    std::map<std::pair<std::string, std::string>, Group> groups;
    for (const auto &out : sink.outcomes()) {
        Group &g = groups[{out.spec.preset, out.spec.workload}];
        ++g.jobs;
        if (!out.ran || !out.result.finished)
            continue;
        double ipc = out.result.ipc;
        if (g.ok == 0) {
            g.ipcMin = g.ipcMax = ipc;
        } else {
            g.ipcMin = std::min(g.ipcMin, ipc);
            g.ipcMax = std::max(g.ipcMax, ipc);
        }
        ++g.ok;
        g.ipcSum += ipc;
        g.cycleSum += static_cast<double>(out.result.cycles);
    }

    Table t("sweep '" + spec.name + "' aggregates");
    t.setHeader({"preset", "workload", "jobs", "ok", "ipc min",
                 "ipc mean", "ipc max", "cycles mean"});
    for (const auto &preset : spec.presets) {
        for (const auto &workload : spec.workloads) {
            auto it = groups.find({preset, workload});
            if (it == groups.end())
                continue;
            const Group &g = it->second;
            double n = g.ok ? static_cast<double>(g.ok) : 1.0;
            t.addRow({preset, workload, std::to_string(g.jobs),
                      std::to_string(g.ok), Table::num(g.ipcMin, 4),
                      Table::num(g.ipcSum / n, 4),
                      Table::num(g.ipcMax, 4),
                      Table::num(g.cycleSum / n, 0)});
        }
    }
    return t;
}

Table
baselineTable(const SweepSpec &spec, const ResultSink &sink)
{
    Table t("speedup vs " + spec.baseline
            + " (geomean of cycle ratios per sweep point)");
    std::vector<std::string> header = {"workload"};
    for (const auto &p : spec.presets)
        if (p != spec.baseline)
            header.push_back(p);
    t.setHeader(header);
    if (spec.baseline.empty())
        return t;

    // baseline cycles by point key.
    std::map<std::string, double> baseCycles;
    for (const auto &out : sink.outcomes())
        if (out.spec.preset == spec.baseline && out.ran
            && out.result.finished)
            baseCycles[out.spec.pointKey] =
                static_cast<double>(out.result.cycles);

    // log-speedup accumulators per (preset, workload) and per preset.
    std::map<std::pair<std::string, std::string>,
             std::pair<double, std::size_t>>
        cell;
    std::map<std::string, std::pair<double, std::size_t>> overall;
    for (const auto &out : sink.outcomes()) {
        if (out.spec.preset == spec.baseline || !out.ran
            || !out.result.finished || out.result.cycles == 0)
            continue;
        auto base = baseCycles.find(out.spec.pointKey);
        if (base == baseCycles.end())
            continue;
        double ratio =
            base->second / static_cast<double>(out.result.cycles);
        double lg = std::log(std::max(ratio, 1e-12));
        auto &c = cell[{out.spec.preset, out.spec.workload}];
        c.first += lg;
        ++c.second;
        auto &o = overall[out.spec.preset];
        o.first += lg;
        ++o.second;
    }

    auto geo = [](const std::pair<double, std::size_t> &acc) {
        return acc.second
                   ? std::exp(acc.first
                              / static_cast<double>(acc.second))
                   : 0.0;
    };
    for (const auto &workload : spec.workloads) {
        std::vector<std::string> row = {workload};
        for (const auto &preset : spec.presets) {
            if (preset == spec.baseline)
                continue;
            auto it = cell.find({preset, workload});
            row.push_back(it == cell.end() ? "-"
                                           : Table::num(geo(it->second),
                                                        2));
        }
        t.addRow(row);
    }
    std::vector<std::string> row = {"GEOMEAN"};
    for (const auto &preset : spec.presets) {
        if (preset == spec.baseline)
            continue;
        auto it = overall.find(preset);
        row.push_back(it == overall.end()
                          ? "-"
                          : Table::num(geo(it->second), 2));
    }
    t.addRow(row);
    return t;
}

} // namespace sst::exp
