/**
 * @file
 * Manifest-driven design-space sweeps.
 *
 * A sweep manifest is a plain-text file in the same "key = value"
 * syntax the Config store and the CLI use, with two extensions: `#`
 * comments and comma-separated value lists. Every machine-config key
 * (see sim/presets.hh machineConfigKeys) whose value is a list becomes
 * a sweep *axis*; `preset` and `workload` are list-valued driver keys;
 * `sweep.*` keys steer the expansion itself. The cartesian product of
 * presets x workloads x axes x repeats yields the job list.
 *
 * Example (the paper's memory-latency sensitivity, 2x2x3x1 = 12 jobs):
 *
 *     sweep.name     = memlat
 *     sweep.seed     = 42
 *     sweep.repeats  = 1
 *     sweep.baseline = inorder
 *     preset   = inorder, sst2
 *     workload = oltp_mix, hash_join
 *     mem.dram_base_latency = 120, 240, 480
 *
 * Seeding contract (see rng.hh deriveSeed): every job gets
 *   - jobSeed      = deriveSeed(sweep.seed, 2 * job index) — seeds the
 *     job's fault injector (unless the manifest pins fault.seed);
 *   - workloadSeed = deriveSeed(sweep.seed, 2 * point ordinal + 1) —
 *     seeds the workload generator. The point ordinal identifies the
 *     (workload, axis values, repeat) combination *excluding* the
 *     preset, so every preset at one sweep point runs the bit-identical
 *     program and baseline deltas compare like with like.
 * The even/odd split domain-separates the two streams: job index and
 * point ordinal coincide whenever there is a single preset, and a
 * shared index space would correlate fault timing with workload
 * randomness.
 */

#ifndef SSTSIM_EXP_SWEEP_HH
#define SSTSIM_EXP_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/result.hh"

namespace sst::exp
{

/** One fully resolved simulation job. */
struct JobSpec
{
    std::size_t index = 0; ///< position in expansion order
    std::string preset;
    std::string workload;
    unsigned repeat = 0;
    /** deriveSeed(sweep.seed, 2*index): job-local streams (faults). */
    std::uint64_t jobSeed = 0;
    /** deriveSeed(sweep.seed, 2*ordinal+1): workload generation. */
    std::uint64_t workloadSeed = 0;
    /** Machine-config assignments for this job (axis values, plus
     *  fault.seed = jobSeed when faults are swept without a pinned
     *  seed). */
    Config overrides;
    /** Identity of the sweep point across presets — "workload|axis
     *  values|repeat" — the baseline-comparison join key. */
    std::string pointKey;
};

/** Parsed manifest: the declarative description of a sweep. */
struct SweepSpec
{
    struct Axis
    {
        std::string key;
        std::vector<std::string> values;
    };

    std::string name = "sweep";
    std::uint64_t baseSeed = 42;
    unsigned repeats = 1;
    /** Preset whose runs are the comparison baseline ("" = none). */
    std::string baseline;
    std::uint64_t maxCycles = 500'000'000;
    double lengthScale = 1.0;
    double footprintScale = 1.0;
    /** Cross-check every job's final arch state against the golden
     *  functional executor (costs one extra functional run per point). */
    bool verifyGolden = false;
    /** Run every job SMARTS-sampled from a checkpoint-warmed profile
     *  library (sim/profile.hh) instead of in full detail. Mutually
     *  exclusive with sweep.verify (sampled runs estimate, they do not
     *  reproduce the golden final state). */
    bool sample = false;
    /** Instructions per detailed sample window (sweep.sample_detail). */
    std::uint64_t sampleDetail = 20'000;
    /** Representative regions kept per library, 0 = every region
     *  (sweep.sample_regions). */
    unsigned sampleRegions = 8;
    /** Region stride in instructions; 0 derives it per workload from
     *  its approximate dynamic length (sweep.region_insts). */
    std::uint64_t regionInsts = 0;
    /** Shared on-disk snapshot-library cache for sampled jobs
     *  (sweep.profile_cache; "" = none, each job builds in memory). */
    std::string profileCache;

    std::vector<std::string> presets;
    std::vector<std::string> workloads;
    std::vector<Axis> axes; ///< manifest order; later axes spin fastest
    /** True when the manifest pins fault.seed explicitly (an axis may
     *  still sweep it); otherwise jobs derive it from jobSeed. */
    bool explicitFaultSeed = false;

    /** Parse manifest text; @p origin names it in diagnostics. */
    static Result<SweepSpec> parse(const std::string &text,
                                   const std::string &origin = "manifest");

    /** Read and parse a manifest file. */
    static Result<SweepSpec> parseFile(const std::string &path);

    /** Jobs per preset (workloads x axes x repeats). */
    std::size_t pointCount() const;

    /** Total job count (pointCount x presets). */
    std::size_t jobCount() const { return pointCount() * presets.size(); }

    /**
     * Cartesian expansion in deterministic order: workload (outer),
     * then each axis (manifest order, last spins fastest), then repeat,
     * then preset (innermost). Job indices and seeds depend only on the
     * manifest, never on scheduling.
     */
    std::vector<JobSpec> expand() const;
};

/** Split on @p sep, trimming ASCII whitespace; drops empty pieces. */
std::vector<std::string> splitList(const std::string &text, char sep);

} // namespace sst::exp

#endif // SSTSIM_EXP_SWEEP_HH
