/**
 * @file
 * Minimal JSON document model and recursive-descent parser.
 *
 * The experiment runner *emits* JSON through deterministic string
 * building (stats.hh toJson and runner.cc), because byte-stable output
 * is part of the sweep contract. This parser is the read side: the
 * round-trip tests and result-consuming tools need to get values back
 * out. It supports the full JSON grammar the simulator produces
 * (objects, arrays, strings with escapes, numbers, booleans, null) and
 * preserves object member order. Duplicate object keys are a parse
 * error: the documents this reads back (job records, sweep exports)
 * never legitimately repeat a key, and accepting last-wins would let a
 * corrupted record shadow the identity fields resume validates.
 */

#ifndef SSTSIM_EXP_JSON_HH
#define SSTSIM_EXP_JSON_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hh"

namespace sst::exp
{

/** One parsed JSON value (a tree). */
class Json
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Parse a complete document; trailing garbage is an error. */
    static Result<Json> parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Value accessors; calling the wrong one is a simulator bug. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array/object element count. */
    std::size_t size() const;

    /** Array element (panics out of range / wrong kind). */
    const Json &at(std::size_t i) const;

    /** Object member lookup; null when absent. */
    const Json *find(const std::string &key) const;

    /** Object member (panics when absent). */
    const Json &operator[](const std::string &key) const;

    /** Object members in document order. */
    const std::vector<std::pair<std::string, Json>> &members() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<Json> elements_;
    std::vector<std::pair<std::string, Json>> members_;

    friend class JsonParser;
};

} // namespace sst::exp

#endif // SSTSIM_EXP_JSON_HH
