/**
 * @file
 * Work-stealing thread pool for batch-parallel simulation.
 *
 * The experiment runner executes many independent Machine/Cmp
 * simulations whose run times vary by an order of magnitude (an
 * in-order baseline on compute_kernel vs ooo-huge on pointer_chase), so
 * static partitioning would leave workers idle. Each worker owns a
 * deque: it pushes/pops work at the back (LIFO, cache-warm) and idle
 * workers steal from the front of a victim's deque (FIFO, oldest —
 * the classic Blumofe/Leiserson discipline). Tasks here are whole
 * simulations (milliseconds to seconds), so deques are mutex-protected
 * rather than lock-free; contention is negligible at this granularity.
 *
 * Tasks must not assume any execution order. Determinism of sweep
 * results is the *jobs'* responsibility (each owns its RNG streams and
 * stat tree — see rng.hh deriveSeed); the pool guarantees only that
 * every submitted task runs exactly once and that wait() returns after
 * all of them (including tasks submitted by tasks) have finished.
 */

#ifndef SSTSIM_EXP_THREADPOOL_HH
#define SSTSIM_EXP_THREADPOOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sst::exp
{

/** Fixed-size work-stealing pool. */
class ThreadPool
{
  public:
    /** @p workers = 0 picks defaultWorkers(). */
    explicit ThreadPool(unsigned workers = 0);

    /** Waits for all pending tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task; callable from any thread, including tasks. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Tasks executed so far (approximate while running). */
    std::uint64_t executed() const
    {
        return executed_.load(std::memory_order_relaxed);
    }

    /** Successful steals so far (approximate while running). */
    std::uint64_t steals() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** Hardware concurrency, at least 1. */
    static unsigned defaultWorkers();

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> deque;
    };

    void run(unsigned id);
    std::function<void()> findWork(unsigned id);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Guards pending_/signal_/stop_ and backs both condvars. */
    std::mutex mutex_;
    std::condition_variable workCv_;
    std::condition_variable idleCv_;
    std::size_t pending_ = 0;   ///< submitted, not yet finished
    std::uint64_t signal_ = 0;  ///< bumped on every submit (wakeups)
    bool stop_ = false;

    std::atomic<unsigned> nextQueue_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> steals_{0};
};

/**
 * Run fn(i) for every i in [0, n) on @p pool and wait for completion.
 * @p fn must be safe to call concurrently from multiple threads.
 */
template <typename Fn>
void
parallelFor(ThreadPool &pool, std::size_t n, Fn &&fn)
{
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace sst::exp

#endif // SSTSIM_EXP_THREADPOOL_HH
