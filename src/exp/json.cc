#include "exp/json.hh"

#include <cstdint>
#include <cstdlib>

#include "common/logging.hh"

namespace sst::exp
{

bool
Json::asBool() const
{
    panic_if(kind_ != Kind::Bool, "Json::asBool on non-bool");
    return bool_;
}

double
Json::asNumber() const
{
    panic_if(kind_ != Kind::Number, "Json::asNumber on non-number");
    return number_;
}

const std::string &
Json::asString() const
{
    panic_if(kind_ != Kind::String, "Json::asString on non-string");
    return string_;
}

std::size_t
Json::size() const
{
    if (kind_ == Kind::Array)
        return elements_.size();
    if (kind_ == Kind::Object)
        return members_.size();
    panic("Json::size on a scalar value");
}

const Json &
Json::at(std::size_t i) const
{
    panic_if(kind_ != Kind::Array, "Json::at on non-array");
    panic_if(i >= elements_.size(), "Json::at out of range");
    return elements_[i];
}

const Json *
Json::find(const std::string &key) const
{
    panic_if(kind_ != Kind::Object, "Json::find on non-object");
    for (const auto &kv : members_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

const Json &
Json::operator[](const std::string &key) const
{
    const Json *v = find(key);
    panic_if(!v, "Json: missing member '%s'", key.c_str());
    return *v;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    panic_if(kind_ != Kind::Object, "Json::members on non-object");
    return members_;
}

/** Recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Result<Json>
    document()
    {
        Json v;
        if (auto r = value(v); !r.ok())
            return r.error();
        skipSpace();
        if (pos_ != text_.size())
            return err("trailing characters after JSON value");
        return v;
    }

  private:
    Error
    err(const std::string &msg)
    {
        return Error{"json: " + msg + " at offset "
                     + std::to_string(pos_)};
    }

    Result<void> fail(const std::string &msg) { return err(msg); }

    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t len = std::string(w).size();
        if (text_.compare(pos_, len, w) == 0) {
            pos_ += len;
            return true;
        }
        return false;
    }

    Result<void>
    value(Json &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.kind_ = Json::Kind::String;
            return string(out.string_);
        }
        if (consumeWord("true")) {
            out.kind_ = Json::Kind::Bool;
            out.bool_ = true;
            return {};
        }
        if (consumeWord("false")) {
            out.kind_ = Json::Kind::Bool;
            out.bool_ = false;
            return {};
        }
        if (consumeWord("null")) {
            out.kind_ = Json::Kind::Null;
            return {};
        }
        return number(out);
    }

    Result<void>
    object(Json &out)
    {
        out.kind_ = Json::Kind::Object;
        ++pos_; // '{'
        skipSpace();
        if (consume('}'))
            return {};
        for (;;) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (auto r = string(key); !r.ok())
                return r.error();
            // Duplicate keys are rejected rather than last-wins: a
            // corrupted job record with a repeated "index" or seed
            // member must fail loudly, not silently pass identity
            // validation with whichever copy happened to come last.
            for (const auto &kv : out.members_)
                if (kv.first == key)
                    return fail("duplicate object key '" + key + "'");
            skipSpace();
            if (!consume(':'))
                return fail("expected ':'");
            Json v;
            if (auto r = value(v); !r.ok())
                return r.error();
            out.members_.emplace_back(std::move(key), std::move(v));
            skipSpace();
            if (consume(','))
                continue;
            if (consume('}'))
                return {};
            return fail("expected ',' or '}'");
        }
    }

    Result<void>
    array(Json &out)
    {
        out.kind_ = Json::Kind::Array;
        ++pos_; // '['
        skipSpace();
        if (consume(']'))
            return {};
        for (;;) {
            Json v;
            if (auto r = value(v); !r.ok())
                return r.error();
            out.elements_.push_back(std::move(v));
            skipSpace();
            if (consume(','))
                continue;
            if (consume(']'))
                return {};
            return fail("expected ',' or ']'");
        }
    }

    /** Consume exactly four hex digits of a \u escape into @p code. */
    Result<void>
    hex4(unsigned &code)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        code = 0;
        for (int i = 0; i < 4; ++i) {
            char c = text_[pos_ + i];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return fail("bad \\u escape");
            code = code * 16 + digit;
        }
        pos_ += 4;
        return {};
    }

    Result<void>
    string(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return {};
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                unsigned code;
                if (auto r = hex4(code); !r.ok())
                    return r.error();
                if (code >= 0xdc00 && code < 0xe000)
                    return fail("unpaired low surrogate");
                std::uint32_t cp = code;
                if (code >= 0xd800 && code < 0xdc00) {
                    // High surrogate: must be followed by \uDC00-DFFF.
                    if (pos_ + 2 > text_.size() || text_[pos_] != '\\'
                        || text_[pos_ + 1] != 'u')
                        return fail("unpaired high surrogate");
                    pos_ += 2;
                    unsigned low;
                    if (auto r = hex4(low); !r.ok())
                        return r.error();
                    if (low < 0xdc00 || low >= 0xe000)
                        return fail("unpaired high surrogate");
                    cp = 0x10000 + ((code - 0xd800) << 10)
                         + (low - 0xdc00);
                }
                // The simulator only ever escapes control characters;
                // encode the code point as UTF-8 for completeness.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else if (cp < 0x10000) {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xf0 | (cp >> 18));
                    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    Result<void>
    number(Json &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("expected a JSON value");
        pos_ += static_cast<std::size_t>(end - start);
        out.kind_ = Json::Kind::Number;
        out.number_ = v;
        return {};
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Result<Json>
Json::parse(const std::string &text)
{
    return JsonParser(text).document();
}

} // namespace sst::exp
