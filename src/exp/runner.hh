/**
 * @file
 * The parallel experiment runner: executes a SweepSpec's jobs on a
 * work-stealing ThreadPool and collects structured results.
 *
 * Determinism contract: the per-job JSON records produced by a sweep
 * are BYTE-IDENTICAL for any -j, because
 *   - every job owns its entire mutable world (workload generation,
 *     MemoryImage, Machine, FaultInjector, stat tree) — nothing is
 *     shared between concurrently running jobs;
 *   - all RNG streams are seeded from (sweep seed, job/point index)
 *     via deriveSeed (rng.hh), never from a shared generator;
 *   - warn()/inform() output is captured per job (LogCapture) and
 *     travels inside the record instead of racing to stderr;
 *   - records are keyed by job index, and every number is serialised
 *     with the deterministic formatter in stats.hh.
 * Only the *completion order* (and therefore any progress callback
 * order) varies with scheduling.
 */

#ifndef SSTSIM_EXP_RUNNER_HH
#define SSTSIM_EXP_RUNNER_HH

#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/table.hh"
#include "exp/sweep.hh"
#include "sim/machine.hh"

namespace sst
{
class ChaosMonitor;
}

namespace sst::exp
{

/** Everything one job produced. */
struct JobOutcome
{
    JobSpec spec;
    /** False when the job could not run at all (bad config value). */
    bool ran = false;
    std::string error; ///< failure message when !ran
    RunResult result;  ///< valid when ran
    /** Golden-executor cross-check (verify mode only). */
    bool archVerified = false;
    bool archOk = false;
    /** Sampled-run extras (sweep.sample mode; zero otherwise). The
     *  headline RunResult then carries the *estimated* whole-program
     *  cycles/IPC, and these describe the estimate's quality. */
    bool sampled = false;
    std::size_t windows = 0;
    std::uint64_t detailedInsts = 0;
    double ipcStddev = 0;
    double ipcCi95 = 0;
    std::uint64_t warmAccesses = 0;
    std::uint64_t warmHits = 0;
    /** warn()/inform() lines captured while the job ran. */
    std::string log;
    /** The canonical structured record (one JSON object). */
    std::string recordJson;
};

/** Thread-safe collector; outcomes indexed by job index. */
class ResultSink
{
  public:
    explicit ResultSink(std::size_t jobCount)
        : outcomes_(jobCount), present_(jobCount, 0)
    {
    }

    /** Store @p outcome (and fire the progress callback, if any). */
    void record(JobOutcome outcome);

    /**
     * record() that tolerates duplicates: a second outcome for an
     * already-recorded index is dropped (first write wins, keeping
     * resumed-then-recomputed results stable). @return true when the
     * outcome was stored. Out-of-range indices still panic — they mean
     * the caller mixed sinks from different manifests.
     */
    bool tryRecord(JobOutcome outcome);

    /** True once an outcome for @p index has been recorded. */
    bool has(std::size_t index) const;

    /** Completion-order callback; called under the sink lock. */
    void setOnRecord(std::function<void(const JobOutcome &)> fn)
    {
        onRecord_ = std::move(fn);
    }

    /** All outcomes in job-index order (complete after runSweep). */
    const std::vector<JobOutcome> &outcomes() const { return outcomes_; }

    std::size_t recorded() const;

  private:
    mutable std::mutex mutex_;
    std::vector<JobOutcome> outcomes_;
    std::vector<char> present_;
    std::size_t recorded_ = 0;
    std::function<void(const JobOutcome &)> onRecord_;
};

/** Execution knobs for one sweep run. */
struct SweepRunOptions
{
    /** Worker threads; 0 = one per hardware thread. */
    unsigned jobs = 1;
    /**
     * Per-job artifact directory ("" disables). Each completed job
     * writes "<dir>/job-<index>.json" (its record, atomically); with
     * snapEvery > 0, in-flight jobs additionally checkpoint the whole
     * machine to "<dir>/job-<index>.snap" every snapEvery cycles.
     */
    std::string artifactDir;
    std::uint64_t snapEvery = 0;
    /**
     * Resume an interrupted sweep from artifactDir: jobs whose record
     * artifact exists (and matches the manifest's identity for that
     * index) are not re-run — their outcome is rebuilt from the record;
     * jobs with only a .snap checkpoint restart from it instead of
     * cycle 0. Unreadable, truncated or mismatching records are
     * re-run with a warning, never fatal — a torn write from a killed
     * worker must not wedge the whole sweep.
     */
    bool resume = false;
    /**
     * Process-chaos monitor to attach to each job's machine (service
     * workers pass theirs; in-process sweeps leave it null). When set,
     * a job whose effective config carries fault.chaos_exit_cycle will
     * kill/stall this process at that simulated cycle — the poison-job
     * and crash-recovery test hook. See fault/chaos.hh.
     */
    ChaosMonitor *chaos = nullptr;
    /**
     * Profile-library cache directory for sampled sweeps. Resolution
     * order: this field, then sweep.profile_cache from the manifest,
     * then "<artifactDir>/profile-cache" when artifacts are enabled,
     * else none (each job builds its library in memory).
     */
    std::string profileCache;
};

/** The cache directory a sampled sweep will actually use (see
 *  SweepRunOptions::profileCache); "" when none applies. */
std::string resolveProfileCache(const SweepSpec &spec,
                                const SweepRunOptions &options);

/** Record artifact path for job @p index: "<dir>/job-<index>.json". */
std::string jobRecordPath(const std::string &dir, std::size_t index);

/** Checkpoint artifact path: "<dir>/job-<index>.snap". */
std::string jobSnapPath(const std::string &dir, std::size_t index);

/**
 * Rebuild a JobOutcome from a persisted record, validating that the
 * artifact belongs to this manifest's job @p job (index, preset,
 * workload and seeds must all match). @return false — with a
 * diagnostic in @p why when non-null — for unparseable text or an
 * identity mismatch; the caller re-runs the job.
 */
bool outcomeFromRecord(const JobSpec &job, const std::string &text,
                       JobOutcome &out, std::string *why = nullptr);

/**
 * A synthetic never-ran outcome (ran=false, @p error recorded) with a
 * well-formed record, used to quarantine poison jobs that kill every
 * worker that leases them: the sweep completes with the failure
 * documented instead of wedging on the job.
 */
JobOutcome unrunOutcome(const JobSpec &job, const std::string &error);

/**
 * Resume pass shared by the in-process runner and the service broker:
 * scan @p artifactDir for finished records of @p jobs, feed matching
 * ones to @p sink and mark them in @p done (sized to jobs.size()).
 * Corrupt or mismatching artifacts warn and stay un-done. @return the
 * number of jobs resumed.
 */
std::size_t loadFinishedRecords(const std::vector<JobSpec> &jobs,
                                const std::string &artifactDir,
                                ResultSink &sink,
                                std::vector<char> &done);

/** Run one job in isolation (also the unit the pool executes). */
JobOutcome runJob(const SweepSpec &spec, const JobSpec &job,
                  const SweepRunOptions &options = {});

/**
 * Expand @p spec and run every job; outcomes land in @p sink. The call
 * blocks until the sweep finishes. @return the worst exit code over all
 * jobs (exit_code::ok when everything finished cleanly).
 */
int runSweep(const SweepSpec &spec, const SweepRunOptions &options,
             ResultSink &sink);

/**
 * Worst exit code over all recorded outcomes (the code runSweep
 * returns): badInput > archMismatch > livelock > cycleBudget > ok.
 * Shared with the service broker, which folds quarantine on top.
 */
int sweepExitCode(const ResultSink &sink);

/**
 * The whole sweep as one JSON document:
 *   {"sweep": {...manifest echo...}, "records": [...per-job records...]}
 * Records appear in job-index order; see runner.cc for the schema.
 */
std::string sweepJson(const SweepSpec &spec, const ResultSink &sink);

/** Per (preset, workload) min/mean/max aggregate table. */
Table aggregateTable(const SweepSpec &spec, const ResultSink &sink);

/**
 * Baseline-relative speedups (geomean of baseline.cycles / job.cycles
 * over matching sweep points), one row per workload, one column per
 * preset. Only meaningful when spec.baseline is set.
 */
Table baselineTable(const SweepSpec &spec, const ResultSink &sink);

} // namespace sst::exp

#endif // SSTSIM_EXP_RUNNER_HH
