/**
 * @file
 * Golden functional executor.
 *
 * All instruction semantics live here, factored so the timing cores can
 * reuse the pieces: aluOp() computes results from operand values,
 * branchTaken() evaluates conditions, effectiveAddr() computes memory
 * addresses. Executor::step() composes them against an ArchState and is
 * the oracle that every timing core is differentially tested against.
 */

#ifndef SSTSIM_FUNC_EXECUTOR_HH
#define SSTSIM_FUNC_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "func/memory_image.hh"
#include "isa/instruction.hh"

namespace sst
{

class Program;

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/** Committed architectural state of one hardware context. */
struct ArchState
{
    std::array<std::uint64_t, numArchRegs> regs{};
    std::uint64_t pc = 0;
    bool halted = false;

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

    std::uint64_t reg(RegId r) const { return r == 0 ? 0 : regs[r]; }

    void
    setReg(RegId r, std::uint64_t v)
    {
        if (r != 0)
            regs[r] = v;
    }

    bool regsEqual(const ArchState &other) const;
};

/** Pure-function instruction semantics. */
namespace semantics
{

/**
 * Compute the result of a non-memory, non-control op from operand
 * values. For immediate forms pass the immediate via @p inst.
 */
std::uint64_t aluOp(const Inst &inst, std::uint64_t a, std::uint64_t b);

/** Evaluate a conditional branch. */
bool branchTaken(const Inst &inst, std::uint64_t a, std::uint64_t b);

/** Effective byte address of a memory op given its base register value. */
Addr effectiveAddr(const Inst &inst, std::uint64_t base);

/** Sign-extend a loaded value of @p size bytes (LW/LB sign-extend). */
std::uint64_t extendLoad(Opcode op, std::uint64_t raw);

} // namespace semantics

/** Outcome of executing one instruction. */
struct StepInfo
{
    Inst inst;
    std::uint64_t pc = 0;       ///< PC of the executed instruction
    std::uint64_t nextPc = 0;   ///< architectural successor
    Addr effAddr = invalidAddr; ///< memory address when inst is LD/ST
    unsigned memSize = 0;
    std::uint64_t storeValue = 0;
    std::uint64_t result = 0;   ///< value written to rd (if any)
    bool taken = false;         ///< branch/jump redirected the PC
    bool halted = false;

    void save(snap::Writer &w) const;
    void load(snap::Reader &r);
};

/** Drives ArchState through a Program one instruction at a time. */
class Executor
{
  public:
    /**
     * Bind to a program and a memory image. The image must already hold
     * the program's data segments (see MemoryImage::loadSegments).
     */
    Executor(const Program &program, MemoryImage &memory)
        : program_(program), memory_(memory)
    {}

    /** Execute the instruction at @p state.pc; updates state and memory. */
    StepInfo step(ArchState &state);

    /**
     * Run to HALT or until @p maxInsts instructions retire.
     * @return the number of instructions executed.
     */
    std::uint64_t run(ArchState &state, std::uint64_t maxInsts);

  private:
    const Program &program_;
    MemoryImage &memory_;
};

} // namespace sst

#endif // SSTSIM_FUNC_EXECUTOR_HH
