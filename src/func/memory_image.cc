#include "func/memory_image.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "isa/program.hh"
#include "snap/snap.hh"

namespace sst
{

const MemoryImage::Page *
MemoryImage::findPage(Addr addr) const
{
    auto it = pages_.find(addr >> pageShift);
    return it == pages_.end() ? nullptr : it->second.get();
}

MemoryImage::Page &
MemoryImage::touchPage(Addr addr)
{
    auto &slot = pages_[addr >> pageShift];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint8_t
MemoryImage::readByte(Addr addr) const
{
    const Page *p = findPage(addr);
    return p ? (*p)[addr & (pageSize - 1)] : 0;
}

void
MemoryImage::rawWriteByte(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr & (pageSize - 1)] = value;
}

void
MemoryImage::writeByte(Addr addr, std::uint8_t value)
{
    rawWriteByte(addr, value);
    if (writeObserver_)
        writeObserver_(addr, 1);
}

std::uint64_t
MemoryImage::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "MemoryImage::read size %u", size);
    std::uint64_t v = 0;
    // Fast path: access contained in one page.
    Addr off = addr & (pageSize - 1);
    if (off + size <= pageSize) {
        const Page *p = findPage(addr);
        if (!p)
            return 0;
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<std::uint64_t>((*p)[off + i]) << (8 * i);
        return v;
    }
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return v;
}

void
MemoryImage::write(Addr addr, std::uint64_t value, unsigned size)
{
    panic_if(size == 0 || size > 8, "MemoryImage::write size %u", size);
    Addr off = addr & (pageSize - 1);
    if (off + size <= pageSize) {
        Page &p = touchPage(addr);
        for (unsigned i = 0; i < size; ++i)
            p[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
    } else {
        for (unsigned i = 0; i < size; ++i)
            rawWriteByte(addr + i,
                         static_cast<std::uint8_t>(value >> (8 * i)));
    }
    if (writeObserver_)
        writeObserver_(addr, size);
}

void
MemoryImage::loadSegments(const Program &program)
{
    // Page-sized memcpy chunks: one page lookup per 4 KiB instead of
    // per byte (this runs once per Machine and used to dominate it).
    for (const auto &seg : program.segments()) {
        Addr addr = seg.base;
        std::size_t i = 0;
        while (i < seg.bytes.size()) {
            Page &p = touchPage(addr);
            Addr off = addr & (pageSize - 1);
            std::size_t n = std::min<std::size_t>(
                pageSize - off, seg.bytes.size() - i);
            std::memcpy(p.data() + off, seg.bytes.data() + i, n);
            addr += n;
            i += n;
        }
    }
}

bool
MemoryImage::contentEquals(const MemoryImage &other) const
{
    static const Page zeroPage = [] {
        Page p;
        p.fill(0);
        return p;
    }();

    auto coveredBy = [](const MemoryImage &a, const MemoryImage &b) {
        for (const auto &kv : a.pages_) {
            auto it = b.pages_.find(kv.first);
            const Page &mine = *kv.second;
            const Page &theirs =
                it == b.pages_.end() ? zeroPage : *it->second;
            if (std::memcmp(mine.data(), theirs.data(), pageSize) != 0)
                return false;
        }
        return true;
    };
    return coveredBy(*this, other) && coveredBy(other, *this);
}

Addr
MemoryImage::highWater() const
{
    Addr top = 0;
    for (const auto &kv : pages_) {
        Addr pageEnd = (kv.first + 1) << pageShift;
        const Page &p = *kv.second;
        // Trim trailing zero bytes so an incidentally touched-but-blank
        // tail does not inflate the footprint.
        Addr used = pageSize;
        while (used > 0 && p[used - 1] == 0)
            --used;
        if (used == 0)
            continue;
        top = std::max(top, pageEnd - (pageSize - used));
    }
    return top;
}

void
MemoryImage::save(snap::Writer &w) const
{
    static const Page zeroPage = [] {
        Page p;
        p.fill(0);
        return p;
    }();

    std::vector<Addr> keys;
    keys.reserve(pages_.size());
    for (const auto &kv : pages_)
        if (std::memcmp(kv.second->data(), zeroPage.data(), pageSize) != 0)
            keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    w.tag("memimage");
    w.u64(keys.size());
    for (Addr key : keys) {
        w.u64(key);
        w.bytes(pages_.at(key)->data(), pageSize);
    }
}

void
MemoryImage::load(snap::Reader &r)
{
    r.tag("memimage");
    pages_.clear();
    std::uint64_t n = r.u64();
    Addr prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr key = r.u64();
        fatal_if(i > 0 && key <= prev,
                 "snapshot: memory pages out of order (corrupt snapshot)");
        prev = key;
        // Every byte is overwritten by the copy below, so skip the
        // value-initialisation memset; keys arrive sorted (checked
        // above), so the end hint makes each insert O(1). Together
        // these roughly halve restore time on multi-MB images, which
        // is the per-window floor for library-served sampling.
        auto page = std::make_unique_for_overwrite<Page>();
        r.bytes(page->data(), pageSize);
        pages_.emplace_hint(pages_.end(), key, std::move(page));
    }
}

} // namespace sst
