#include "func/overlay.hh"

#include "common/logging.hh"

namespace sst
{

OverlayImage::VPage *
OverlayImage::findVPage(Addr addr) const
{
    const Addr key = addr >> pageShift;
    if (key == cachedKey_)
        return cachedPage_;
    auto it = vpages_.find(key);
    if (it == vpages_.end())
        return nullptr;
    cachedKey_ = key;
    cachedPage_ = it->second.get();
    return cachedPage_;
}

OverlayImage::VPage &
OverlayImage::touchVPage(Addr addr)
{
    VPage *p = findVPage(addr);
    if (!p) {
        const Addr key = addr >> pageShift;
        auto &slot = vpages_[key];
        slot = std::make_unique<VPage>();
        cachedKey_ = key;
        cachedPage_ = slot.get();
        p = cachedPage_;
    }
    if (p->epoch != epoch_) {
        // Recycled from an earlier quantum: only the present bitmap
        // needs resetting, stale data bytes are unreachable behind it.
        p->present.fill(0);
        p->epoch = epoch_;
    }
    return *p;
}

void
OverlayImage::bufferByte(Addr addr, std::uint8_t value)
{
    VPage &p = touchVPage(addr);
    const Addr off = addr & (pageSize - 1);
    p.present[off >> 6] |= std::uint64_t{1} << (off & 63);
    p.data[off] = value;
}

std::uint8_t
OverlayImage::viewByte(Addr addr) const
{
    const VPage *p = findVPage(addr);
    if (p && p->epoch == epoch_) {
        const Addr off = addr & (pageSize - 1);
        if ((p->present[off >> 6] >> (off & 63)) & 1)
            return p->data[off];
    }
    return base_.readByte(addr);
}

std::uint8_t
OverlayImage::readByte(Addr addr) const
{
    return viewByte(addr);
}

std::uint64_t
OverlayImage::read(Addr addr, unsigned size) const
{
    panic_if(size == 0 || size > 8, "OverlayImage::read size %u", size);
    // Fast path: nothing buffered on this page — serve from the base.
    const VPage *p = findVPage(addr);
    const Addr off = addr & (pageSize - 1);
    if ((!p || p->epoch != epoch_) && off + size <= pageSize)
        return base_.read(addr, size);
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(viewByte(addr + i)) << (8 * i);
    return v;
}

void
OverlayImage::writeByte(Addr addr, std::uint8_t value)
{
    bufferByte(addr, value);
    log_.push_back(WriteRec{now_, addr, value, 1});
}

void
OverlayImage::write(Addr addr, std::uint64_t value, unsigned size)
{
    panic_if(size == 0 || size > 8, "OverlayImage::write size %u", size);
    for (unsigned i = 0; i < size; ++i)
        bufferByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    log_.push_back(
        WriteRec{now_, addr, value, static_cast<std::uint8_t>(size)});
}

std::uint64_t
OverlayImage::atomicSwap(Addr addr, std::uint64_t value, unsigned size)
{
    panic_if(size == 0 || size > 8, "OverlayImage::atomicSwap size %u",
             size);
    // Serialize against every other core's atomics: inside the gate we
    // are the unique (cycle, coreId) minimum, so the journal read-
    // modify-write below is exclusive *and* happens in the same global
    // order at any worker count.
    if (shared_.gate)
        shared_.gate->enter(coreId_, now_);
    std::uint64_t old = 0;
    for (unsigned i = 0; i < size; ++i) {
        // Byte precedence mirrors the quantum's serialization: our own
        // plain stores since our last atomic sink to just before this
        // op (so they win over the journal even if a remote atomic is
        // stamped later); otherwise the journal holds the atomic
        // chain's tail; otherwise nothing atomic touched the byte and
        // the buffered view (overlay, then frozen base) is current.
        const LastWrite lw = lastWriteTo(addr + i);
        std::uint8_t b;
        auto it = shared_.journal.find(addr + i);
        if (lw.found && !lw.atomic)
            b = viewByte(addr + i);
        else if (it != shared_.journal.end())
            b = it->second;
        else
            b = viewByte(addr + i);
        old |= static_cast<std::uint64_t>(b) << (8 * i);
    }
    for (unsigned i = 0; i < size; ++i)
        shared_.journal[addr + i] =
            static_cast<std::uint8_t>(value >> (8 * i));
    // Also buffer + log locally so later own reads see the swap and
    // the barrier drain lands it in the base image.
    for (unsigned i = 0; i < size; ++i)
        bufferByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    log_.push_back(WriteRec{now_, addr, value,
                            static_cast<std::uint8_t>(size), true});
    return old;
}

} // namespace sst
