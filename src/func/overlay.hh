/**
 * @file
 * Per-core write-buffering view over the shared functional image, for
 * the deterministic parallel CMP engine.
 *
 * Inside one sync quantum the shared base image is frozen: every core
 * reads its own buffered writes first and the (immutable) base bytes
 * otherwise, so plain loads and stores never need cross-thread
 * ordering at all. The buffered writes are logged with their cycle
 * stamp; at the quantum barrier the engine merges all cores' logs in
 * (cycle, coreId) order and replays them into the base image on one
 * thread, which is also when the base's write observer (coherence
 * squash fabric) sees them. Cross-core visibility of a store is thus
 * deferred to the next barrier — bounded by the quantum, which the
 * engine sizes to the minimum coherence latency — identically at every
 * worker count, including one.
 *
 * Atomics cannot be buffered privately (a spinlock's mutual exclusion
 * is functional, not timing): atomicSwap serializes through the shared
 * AtomicJournal under the TickGate, so two cores swapping the same
 * word within a quantum still observe each other in deterministic
 * (cycle, coreId) order.
 */

#ifndef SSTSIM_FUNC_OVERLAY_HH
#define SSTSIM_FUNC_OVERLAY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/tickgate.hh"
#include "common/types.hh"
#include "func/memory_image.hh"

namespace sst
{

/**
 * State shared by all overlay views of one CMP: the gate that orders
 * cross-core operations and the byte-granular journal atomics go
 * through. The journal is only ever touched inside gated sections
 * (mutually exclusive) or the serial barrier phase.
 */
struct OverlayShared
{
    /** Null outside a parallel run; atomics then serialize trivially. */
    const TickGate *gate = nullptr;
    /** Bytes written by atomics this quantum (cleared at each drain). */
    std::unordered_map<Addr, std::uint8_t> journal;
};

/**
 * One core's buffered view. Created once per core by the coherent Cmp
 * and handed to the core as its MemoryImage; the base image stays
 * owned by the Cmp. Views are always drained (empty) at barriers, so
 * snapshots never see them.
 */
class OverlayImage final : public MemoryImage
{
  public:
    /** One buffered write, in program order within the core. */
    struct WriteRec
    {
        Cycle cycle;
        Addr addr;
        std::uint64_t value;
        std::uint8_t size;
        /** An atomicSwap's store half (already published through the
         *  journal in gate order) rather than a plain buffered store. */
        bool atomic = false;
    };

    OverlayImage(MemoryImage &base, unsigned coreId,
                 OverlayShared &shared)
        : base_(base), shared_(shared), coreId_(coreId)
    {
    }

    /** Stamp for subsequent writes; the engine calls this before every
     *  tick of the owning core. */
    void beginTick(Cycle now) { now_ = now; }

    std::uint64_t read(Addr addr, unsigned size) const override;
    std::uint8_t readByte(Addr addr) const override;
    void write(Addr addr, std::uint64_t value, unsigned size) override;
    void writeByte(Addr addr, std::uint8_t value) override;
    std::uint64_t atomicSwap(Addr addr, std::uint64_t value,
                             unsigned size) override;

    /** This quantum's buffered writes, in program order. */
    const std::vector<WriteRec> &log() const { return log_; }

    /** The program-order-last buffered write covering byte @p addr
     *  this quantum, if any. Drives the plain-store "sink" rule: a
     *  core's plain store is invisible to other cores' atomics until
     *  the barrier, so in the quantum's serialization it slides as
     *  late as possible — just before its core's next atomic to that
     *  byte, or to the barrier itself if no such atomic follows. */
    struct LastWrite
    {
        bool found = false;
        bool atomic = false;
        Cycle cycle = 0;
        std::uint8_t byte = 0;
    };
    LastWrite lastWriteTo(Addr addr) const
    {
        for (auto it = log_.rbegin(); it != log_.rend(); ++it)
            if (addr >= it->addr && addr < it->addr + it->size)
                return {true, it->atomic, it->cycle,
                        static_cast<std::uint8_t>(
                            it->value >> (8 * (addr - it->addr)))};
        return {};
    }

    /** Forget all buffered state (after the log was replayed into the
     *  base). O(1): pages are recycled by epoch, not freed. */
    void clearQuantum()
    {
        ++epoch_;
        log_.clear();
    }

  private:
    /** A buffered page: data plus a present-bitmap (bit per byte).
     *  epoch tags lazily recycle pages across quanta without a sweep. */
    struct VPage
    {
        std::uint64_t epoch = 0;
        std::array<std::uint64_t, pageSize / 64> present{};
        std::array<std::uint8_t, pageSize> data{};
    };

    VPage *findVPage(Addr addr) const;
    VPage &touchVPage(Addr addr);
    void bufferByte(Addr addr, std::uint8_t value);
    std::uint8_t viewByte(Addr addr) const;

    MemoryImage &base_;
    OverlayShared &shared_;
    const unsigned coreId_;
    Cycle now_ = 0;
    std::uint64_t epoch_ = 1;
    std::vector<WriteRec> log_;
    std::unordered_map<Addr, std::unique_ptr<VPage>> vpages_;
    /** One-entry page cache (map nodes are pointer-stable). */
    mutable VPage *cachedPage_ = nullptr;
    mutable Addr cachedKey_ = ~Addr{0};
};

} // namespace sst

#endif // SSTSIM_FUNC_OVERLAY_HH
