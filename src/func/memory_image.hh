/**
 * @file
 * Sparse byte-addressable memory image backing functional execution.
 */

#ifndef SSTSIM_FUNC_MEMORY_IMAGE_HH
#define SSTSIM_FUNC_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace sst
{

class Program;

namespace snap
{
class Writer;
class Reader;
} // namespace snap

/**
 * Page-granular sparse memory. Unwritten bytes read as zero, which the
 * workload generators rely on for zero-initialised heaps.
 */
class MemoryImage
{
  public:
    static constexpr unsigned pageShift = 12;
    static constexpr Addr pageSize = Addr{1} << pageShift;

    MemoryImage() = default;
    virtual ~MemoryImage() = default;

    MemoryImage(const MemoryImage &) = delete;
    MemoryImage &operator=(const MemoryImage &) = delete;
    MemoryImage(MemoryImage &&) = default;
    MemoryImage &operator=(MemoryImage &&) = default;

    /** Read @p size (1..8) bytes, little-endian, page-crossing allowed.
     *  Virtual so the parallel CMP engine can interpose a per-core
     *  write-buffering view (OverlayImage) between a core and the
     *  shared image without the cores knowing. */
    virtual std::uint64_t read(Addr addr, unsigned size) const;

    /** Write the low @p size bytes of @p value at @p addr. */
    virtual void write(Addr addr, std::uint64_t value, unsigned size);

    virtual std::uint8_t readByte(Addr addr) const;
    virtual void writeByte(Addr addr, std::uint8_t value);

    /**
     * Indivisible read-modify-write (AMOSWAP): read @p size bytes,
     * store @p value there, return the old bytes. On a plain image a
     * whole executor step already runs between core ticks, so this is
     * just read-then-write; the parallel engine's overlay view
     * overrides it to serialize cross-core atomics through a gated
     * journal while plain loads/stores stay buffered.
     */
    virtual std::uint64_t atomicSwap(Addr addr, std::uint64_t value,
                                     unsigned size)
    {
        std::uint64_t old = read(addr, size);
        write(addr, value, size);
        return old;
    }

    /**
     * Observe every write to this image. With one image shared by all
     * cores of a coherent CMP, the observer is how a store by the
     * ticking core becomes visible to the others at the instant it
     * happens (squashing any speculative reader). Not serialized; the
     * owner re-installs it after restore.
     */
    void setWriteObserver(std::function<void(Addr, unsigned)> obs)
    {
        writeObserver_ = std::move(obs);
    }

    /** Copy all of @p program's data segments into this image. */
    void loadSegments(const Program &program);

    /** Number of distinct touched pages (memory footprint metric). */
    std::size_t pageCount() const { return pages_.size(); }

    /** Exact content equality (zero pages compare equal to absence). */
    bool contentEquals(const MemoryImage &other) const;

    /** Drop every page (restore starts from a blank image). */
    void clear() { pages_.clear(); }

    /** One past the highest touched byte address; 0 when untouched. */
    Addr highWater() const;

    /** Serialize pages sorted by address (all-zero pages elided), so
     *  equal contents encode to equal bytes regardless of touch order. */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    using Page = std::array<std::uint8_t, pageSize>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);
    void rawWriteByte(Addr addr, std::uint8_t value);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    std::function<void(Addr, unsigned)> writeObserver_;
};

} // namespace sst

#endif // SSTSIM_FUNC_MEMORY_IMAGE_HH
