#include "func/executor.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "isa/program.hh"
#include "snap/snap.hh"

namespace sst
{

bool
ArchState::regsEqual(const ArchState &other) const
{
    for (unsigned r = 1; r < numArchRegs; ++r)
        if (regs[r] != other.regs[r])
            return false;
    return true;
}

namespace semantics
{

namespace
{

double
asDouble(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
asBits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

} // namespace

std::uint64_t
aluOp(const Inst &inst, std::uint64_t a, std::uint64_t b)
{
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    std::int64_t imm = inst.imm;
    switch (inst.op) {
      case Opcode::ADD: return a + b;
      case Opcode::SUB: return a - b;
      case Opcode::AND: return a & b;
      case Opcode::OR: return a | b;
      case Opcode::XOR: return a ^ b;
      case Opcode::SLL: return a << (b & 63);
      case Opcode::SRL: return a >> (b & 63);
      case Opcode::SRA:
        return static_cast<std::uint64_t>(sa >> (b & 63));
      case Opcode::SLT: return sa < sb ? 1 : 0;
      case Opcode::SLTU: return a < b ? 1 : 0;
      case Opcode::ADDI: return a + static_cast<std::uint64_t>(imm);
      case Opcode::ANDI: return a & static_cast<std::uint64_t>(imm);
      case Opcode::ORI: return a | static_cast<std::uint64_t>(imm);
      case Opcode::XORI: return a ^ static_cast<std::uint64_t>(imm);
      case Opcode::SLLI: return a << (imm & 63);
      case Opcode::SRLI: return a >> (imm & 63);
      case Opcode::SRAI:
        return static_cast<std::uint64_t>(sa >> (imm & 63));
      case Opcode::SLTI: return sa < imm ? 1 : 0;
      case Opcode::LUI:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(inst.imm));
      case Opcode::MUL: return a * b;
      case Opcode::DIV:
        if (sb == 0)
            return ~std::uint64_t{0};
        if (sa == INT64_MIN && sb == -1)
            return static_cast<std::uint64_t>(sa);
        return static_cast<std::uint64_t>(sa / sb);
      case Opcode::REM:
        if (sb == 0)
            return a;
        if (sa == INT64_MIN && sb == -1)
            return 0;
        return static_cast<std::uint64_t>(sa % sb);
      case Opcode::FADD: return asBits(asDouble(a) + asDouble(b));
      case Opcode::FSUB: return asBits(asDouble(a) - asDouble(b));
      case Opcode::FMUL: return asBits(asDouble(a) * asDouble(b));
      case Opcode::FDIV: return asBits(asDouble(a) / asDouble(b));
      case Opcode::FCVT_D_L: return asBits(static_cast<double>(sa));
      case Opcode::FCVT_L_D: {
        double d = asDouble(a);
        if (std::isnan(d))
            return 0;
        if (d >= 9.2233720368547758e18)
            return static_cast<std::uint64_t>(INT64_MAX);
        if (d <= -9.2233720368547758e18)
            return static_cast<std::uint64_t>(INT64_MIN);
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(d));
      }
      case Opcode::NOP: return 0;
      default:
        panic("aluOp on non-ALU opcode %s", opInfo(inst.op).mnemonic);
    }
}

bool
branchTaken(const Inst &inst, std::uint64_t a, std::uint64_t b)
{
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    switch (inst.op) {
      case Opcode::BEQ: return a == b;
      case Opcode::BNE: return a != b;
      case Opcode::BLT: return sa < sb;
      case Opcode::BGE: return sa >= sb;
      case Opcode::BLTU: return a < b;
      case Opcode::BGEU: return a >= b;
      default:
        panic("branchTaken on non-branch opcode %s",
              opInfo(inst.op).mnemonic);
    }
}

Addr
effectiveAddr(const Inst &inst, std::uint64_t base)
{
    panic_if(!isMem(inst.op), "effectiveAddr on non-memory opcode");
    return base + static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(inst.imm));
}

std::uint64_t
extendLoad(Opcode op, std::uint64_t raw)
{
    switch (op) {
      case Opcode::LD:
        return raw;
      case Opcode::LW:
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(static_cast<std::uint32_t>(raw))));
      case Opcode::LB:
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int8_t>(static_cast<std::uint8_t>(raw))));
      default:
        panic("extendLoad on non-load opcode");
    }
}

} // namespace semantics

StepInfo
Executor::step(ArchState &state)
{
    StepInfo info;
    panic_if(state.halted, "step() on halted state");
    info.pc = state.pc;
    const Inst &inst = program_.at(state.pc);
    info.inst = inst;
    info.nextPc = state.pc + 1;

    switch (opInfo(inst.op).cls) {
      case OpClass::Load: {
        info.effAddr = semantics::effectiveAddr(inst, state.reg(inst.rs1));
        info.memSize = memAccessSize(inst.op);
        if (isAtomic(inst.op)) {
            // AMOSWAP: the read-modify-write must be indivisible even
            // when cores tick concurrently, so it goes through the
            // image's atomicSwap (the parallel engine's overlay view
            // serializes it through a gated journal).
            info.storeValue = state.reg(inst.rs2);
            info.result = memory_.atomicSwap(info.effAddr,
                                             info.storeValue,
                                             info.memSize);
        } else {
            std::uint64_t raw = memory_.read(info.effAddr, info.memSize);
            info.result = semantics::extendLoad(inst.op, raw);
        }
        state.setReg(inst.rd, info.result);
        break;
      }
      case OpClass::Store: {
        info.effAddr = semantics::effectiveAddr(inst, state.reg(inst.rs1));
        info.memSize = memAccessSize(inst.op);
        info.storeValue = state.reg(inst.rs2);
        memory_.write(info.effAddr, info.storeValue, info.memSize);
        break;
      }
      case OpClass::Branch: {
        info.taken = semantics::branchTaken(inst, state.reg(inst.rs1),
                                            state.reg(inst.rs2));
        if (info.taken)
            info.nextPc = state.pc
                          + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(inst.imm));
        break;
      }
      case OpClass::Jump: {
        info.taken = true;
        info.result = state.pc + 1; // link value
        if (inst.op == Opcode::JAL) {
            info.nextPc = state.pc
                          + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(inst.imm));
        } else {
            info.nextPc = state.reg(inst.rs1)
                          + static_cast<std::uint64_t>(
                              static_cast<std::int64_t>(inst.imm));
        }
        state.setReg(inst.rd, info.result);
        break;
      }
      case OpClass::Other: {
        if (inst.op == Opcode::HALT) {
            info.halted = true;
            state.halted = true;
            info.nextPc = state.pc;
        }
        break;
      }
      default: {
        info.result = semantics::aluOp(inst, state.reg(inst.rs1),
                                       state.reg(inst.rs2));
        state.setReg(inst.rd, info.result);
        break;
      }
    }
    state.pc = info.nextPc;
    return info;
}

std::uint64_t
Executor::run(ArchState &state, std::uint64_t maxInsts)
{
    std::uint64_t n = 0;
    while (!state.halted && n < maxInsts) {
        step(state);
        ++n;
    }
    return n;
}

void
ArchState::save(snap::Writer &w) const
{
    for (std::uint64_t r : regs)
        w.u64(r);
    w.u64(pc);
    w.b(halted);
}

void
ArchState::load(snap::Reader &r)
{
    for (std::uint64_t &reg : regs)
        reg = r.u64();
    pc = r.u64();
    halted = r.b();
}

void
StepInfo::save(snap::Writer &w) const
{
    w.u64(inst.encode());
    w.u64(pc);
    w.u64(nextPc);
    w.u64(effAddr);
    w.u32(memSize);
    w.u64(storeValue);
    w.u64(result);
    w.b(taken);
    w.b(halted);
}

void
StepInfo::load(snap::Reader &r)
{
    inst = Inst::decode(r.u64());
    pc = r.u64();
    nextPc = r.u64();
    effAddr = r.u64();
    memSize = r.u32();
    storeValue = r.u64();
    result = r.u64();
    taken = r.b();
    halted = r.b();
}

} // namespace sst
