#include "snap/snap.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace sst::snap
{

std::uint64_t
fnv1a(const void *data, std::size_t len, std::uint64_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
Hasher::mixU64(std::uint64_t v)
{
    std::uint8_t le[8];
    for (int i = 0; i < 8; ++i)
        le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    mix(le, sizeof(le));
}

void
Writer::f64(double v)
{
    // Bit pattern, not text: exact round trip including -0.0 and NaN.
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
Writer::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

void
Writer::bytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
Writer::tag(const char *name)
{
    str(name);
}

std::uint64_t
Writer::hash() const
{
    return fnv1a(buf_.data(), buf_.size());
}

void
Reader::failNeed(std::size_t n) const
{
    fatal("snapshot: truncated stream (need %zu bytes at offset %zu, "
          "have %zu)",
          n, pos_, size_ - pos_);
}

void
Reader::failBool(std::uint8_t v) const
{
    fatal("snapshot: bad bool encoding 0x%02x at offset %zu", v, pos_ - 1);
}

double
Reader::f64()
{
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Reader::str()
{
    std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(data_ + pos_), len);
    pos_ += len;
    return s;
}

void
Reader::bytes(void *out, std::size_t len)
{
    need(len);
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
}

void
Reader::tag(const char *name)
{
    std::size_t at = pos_;
    std::string got = str();
    fatal_if(got != name,
             "snapshot: expected section '%s' at offset %zu, found '%s' "
             "(corrupt or incompatible snapshot)",
             name, at, got.c_str());
}

void
Reader::done() const
{
    fatal_if(pos_ != size_,
             "snapshot: %zu trailing bytes after last section (corrupt or "
             "incompatible snapshot)",
             size_ - pos_);
}

Result<void>
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    // tmp + fsync + rename + directory fsync: the rename makes the
    // replacement atomic against process death, and the two fsyncs
    // extend that to power loss — without the directory fsync the
    // rename itself can be lost, leaving a stale (or no) checkpoint
    // after the machine comes back. The pid plus a per-process serial
    // in the tmp name keeps concurrent writers of the same target — a
    // re-leased job's new worker racing its stalled predecessor, or
    // two pool threads populating one profile-cache entry — from
    // renaming each other's half-written staging files into place.
    static std::atomic<unsigned long> writeSerial{0};
    std::string tmp =
        path + ".tmp." + std::to_string(::getpid()) + "."
        + std::to_string(
            writeSerial.fetch_add(1, std::memory_order_relaxed));
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return Error{"cannot open '" + tmp + "' for writing: "
                     + std::strerror(errno)};
    std::size_t done = 0;
    while (done < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            int err = errno;
            ::close(fd);
            std::remove(tmp.c_str());
            return Error{"short write to '" + tmp + "': "
                         + std::strerror(err)};
        }
        done += static_cast<std::size_t>(n);
    }
    bool synced = ::fsync(fd) == 0;
    bool closed = ::close(fd) == 0;
    if (!synced || !closed) {
        std::remove(tmp.c_str());
        return Error{"cannot sync '" + tmp + "': " + std::strerror(errno)};
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        std::remove(tmp.c_str());
        return Error{"cannot rename '" + tmp + "' to '" + path + "': "
                     + std::strerror(err)};
    }
    // Persist the rename: fsync the containing directory. Failure here
    // is reported (the caller may retry elsewhere) but the file content
    // itself is already safely in place for process-death crashes.
    std::size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos ? "."
                                                 : path.substr(0, slash);
    if (dir.empty())
        dir = "/";
    int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0)
        return Error{"cannot open directory '" + dir + "' to sync '"
                     + path + "': " + std::strerror(errno)};
    bool dirSynced = ::fsync(dfd) == 0;
    int err = errno;
    ::close(dfd);
    if (!dirSynced)
        return Error{"cannot sync directory '" + dir + "' after writing '"
                     + path + "': " + std::strerror(err)};
    return {};
}

Result<void>
probeSnapshotFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return Error{"cannot open snapshot '" + path + "'"};
    std::uint8_t head[12];
    std::size_t got = std::fread(head, 1, sizeof(head), f);
    std::fclose(f);
    if (got != sizeof(head))
        return Error{"snapshot '" + path + "' is truncated ("
                     + std::to_string(got) + " bytes)"};
    Reader r(head, sizeof(head));
    if (r.u64() != fileMagic)
        return Error{"snapshot '" + path + "' has bad magic (not a "
                     "snapshot file, or a torn write)"};
    if (std::uint32_t v = r.u32(); v != formatVersion)
        return Error{"snapshot '" + path + "' is format version "
                     + std::to_string(v) + ", this build reads "
                     + std::to_string(formatVersion)};
    return {};
}

Result<std::vector<std::uint8_t>>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return Error{"cannot open snapshot '" + path + "'"};
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        return Error{"cannot size snapshot '" + path + "'"};
    }
    std::fseek(f, 0, SEEK_SET);
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(size));
    std::size_t got =
        buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
    std::fclose(f);
    if (got != buf.size())
        return Error{"short read from snapshot '" + path + "'"};
    return buf;
}

} // namespace sst::snap
