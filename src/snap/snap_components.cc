/**
 * @file
 * save()/load() definitions for classes that live in the common library.
 *
 * The bodies live here (in sst_snap, which links sst_common) rather than
 * in stats.cc/rng.cc so that sst_common never references snap symbols —
 * keeping the static-library dependency graph acyclic.
 */

#include "common/rng.hh"
#include "common/stats.hh"
#include "snap/snap.hh"

namespace sst
{

void
Rng::save(snap::Writer &w) const
{
    for (std::uint64_t word : state_)
        w.u64(word);
}

void
Rng::load(snap::Reader &r)
{
    for (std::uint64_t &word : state_)
        word = r.u64();
}

void
Distribution::save(snap::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(buckets_.size()));
    for (std::uint64_t b : buckets_)
        w.u64(b);
    w.u64(width_);
    w.u64(count_);
    w.u64(sum_);
    w.u64(overflow_);
    w.u64(maxSample_);
}

void
Distribution::load(snap::Reader &r)
{
    std::uint32_t n = r.u32();
    fatal_if(n != buckets_.size(),
             "snapshot: distribution has %u buckets, expected %zu "
             "(configuration mismatch)",
             n, buckets_.size());
    for (std::uint64_t &b : buckets_)
        b = r.u64();
    std::uint64_t width = r.u64();
    fatal_if(width != width_,
             "snapshot: distribution bucket width %llu, expected %llu "
             "(configuration mismatch)",
             static_cast<unsigned long long>(width),
             static_cast<unsigned long long>(width_));
    count_ = r.u64();
    sum_ = r.u64();
    overflow_ = r.u64();
    maxSample_ = r.u64();
}

void
StatGroup::save(snap::Writer &w) const
{
    w.tag("statgroup");
    w.str(name_);
    w.u32(static_cast<std::uint32_t>(scalars_.size()));
    for (const NamedScalar *s : scalars_) {
        w.str(s->name);
        w.u64(s->stat.value());
    }
    w.u32(static_cast<std::uint32_t>(dists_.size()));
    for (const NamedDist *d : dists_) {
        w.str(d->name);
        d->stat.save(w);
    }
    w.u32(static_cast<std::uint32_t>(children_.size()));
    for (const StatGroup *c : children_)
        c->save(w);
}

void
StatGroup::load(snap::Reader &r)
{
    r.tag("statgroup");
    std::string name = r.str();
    fatal_if(name != name_,
             "snapshot: stat group '%s' where '%s' expected "
             "(configuration mismatch)",
             name.c_str(), name_.c_str());
    std::uint32_t nScalars = r.u32();
    fatal_if(nScalars != scalars_.size(),
             "snapshot: stat group '%s' has %u scalars, expected %zu",
             name_.c_str(), nScalars, scalars_.size());
    for (NamedScalar *s : scalars_) {
        std::string sname = r.str();
        fatal_if(sname != s->name,
                 "snapshot: stat '%s.%s' where '%s.%s' expected",
                 name_.c_str(), sname.c_str(), name_.c_str(),
                 s->name.c_str());
        s->stat.set(r.u64());
    }
    std::uint32_t nDists = r.u32();
    fatal_if(nDists != dists_.size(),
             "snapshot: stat group '%s' has %u distributions, expected %zu",
             name_.c_str(), nDists, dists_.size());
    for (NamedDist *d : dists_) {
        std::string dname = r.str();
        fatal_if(dname != d->name,
                 "snapshot: dist '%s.%s' where '%s.%s' expected",
                 name_.c_str(), dname.c_str(), name_.c_str(),
                 d->name.c_str());
        d->stat.load(r);
    }
    std::uint32_t nChildren = r.u32();
    fatal_if(nChildren != children_.size(),
             "snapshot: stat group '%s' has %u children, expected %zu",
             name_.c_str(), nChildren, children_.size());
    for (StatGroup *c : children_)
        c->load(r);
}

} // namespace sst
