/**
 * @file
 * Versioned, endian-stable binary serialization of machine state.
 *
 * Every stateful simulator component exposes a save(Writer&)/load(Reader&)
 * pair built on these two classes. The encoding is deliberately dumb:
 * fixed-width little-endian integers, length-prefixed strings, and
 * explicit tag markers at section boundaries so a corrupt or mismatched
 * snapshot fails with a named location instead of silently misaligned
 * reads. Writer output is a pure function of the saved state — no
 * pointers, no map iteration order, no host endianness — which is what
 * makes the FNV state hash (and the `sstsim diff` divergence search
 * built on it) meaningful across processes and machines.
 *
 * Error discipline: Reader failures call fatal(), matching the repo's
 * convention for bad user input; CLI entry points wrap restore paths in
 * trapFatal() to convert them into exit codes.
 */

#ifndef SSTSIM_SNAP_SNAP_HH
#define SSTSIM_SNAP_SNAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"

namespace sst::snap
{

/** Bump on any incompatible change to a component's save() layout. */
constexpr std::uint32_t formatVersion =
    4; // v4: per-strand branch history, per-epoch RAS, value predictor

/** Leading bytes of every snapshot file. */
constexpr std::uint64_t fileMagic = 0x30504e53'54535353ULL; // "SSSTSNP0"

/** FNV-1a 64-bit over @p len bytes, chained from @p seed. */
std::uint64_t fnv1a(const void *data, std::size_t len,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/** Incremental FNV-1a accumulator for component-wise state hashing. */
class Hasher
{
  public:
    void mix(const void *data, std::size_t len)
    {
        hash_ = fnv1a(data, len, hash_);
    }
    void mixU64(std::uint64_t v);
    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

/** Append-only little-endian encoder. */
class Writer
{
  public:
    // The fixed-width writers are inline: cache and image save loops
    // emit millions of these and the call overhead across translation
    // units would dominate the actual byte stores.
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }
    void u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void f64(double v);
    void str(const std::string &s);
    void bytes(const void *data, std::size_t len);

    /** Section marker; Reader::tag() verifies it by name. */
    void tag(const char *name);

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::size_t size() const { return buf_.size(); }

    /** FNV-1a over everything written so far. */
    std::uint64_t hash() const;

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian decoder over a byte span. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }
    explicit Reader(const std::vector<std::uint8_t> &buf)
        : Reader(buf.data(), buf.size())
    {
    }

    // Inline for the same reason as the Writer side: restoring a warm
    // cache snapshot decodes six fields per line, and an out-of-line
    // call per field makes restore several times slower than the
    // underlying memory traffic. Only the cold failure paths stay in
    // the .cc file.
    std::uint8_t u8()
    {
        need(1);
        return data_[pos_++];
    }
    std::uint16_t u16()
    {
        need(2);
        std::uint16_t v =
            static_cast<std::uint16_t>(data_[pos_]) |
            static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
        pos_ += 2;
        return v;
    }
    std::uint32_t u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }
    std::uint64_t u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool b()
    {
        std::uint8_t v = u8();
        if (v > 1)
            failBool(v);
        return v != 0;
    }
    double f64();
    std::string str();
    void bytes(void *out, std::size_t len);

    /** Consume a tag written by Writer::tag(); fatal on mismatch. */
    void tag(const char *name);

    std::size_t remaining() const { return size_ - pos_; }
    bool atEnd() const { return pos_ == size_; }

    /** Assert the whole buffer was consumed (trailing garbage check). */
    void done() const;

  private:
    void need(std::size_t n) const
    {
        if (size_ - pos_ < n) [[unlikely]]
            failNeed(n);
    }
    [[noreturn]] void failNeed(std::size_t n) const;
    [[noreturn]] void failBool(std::uint8_t v) const;

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Write @p bytes to @p path atomically and durably (tmp file + fsync
 *  + rename + fsync of the containing directory, so the replacement
 *  survives power loss, not just process death). */
Result<void> writeFile(const std::string &path,
                       const std::vector<std::uint8_t> &bytes);

/** Read a whole file into memory. */
Result<std::vector<std::uint8_t>> readFile(const std::string &path);

/**
 * Cheap sanity probe of a snapshot file: checks only the leading magic
 * and format version, without reading component state. Used to decide
 * whether a checkpoint handed off from a crashed worker is worth
 * attempting a full (fatal-on-corruption) restore from.
 */
Result<void> probeSnapshotFile(const std::string &path);

} // namespace sst::snap

#endif // SSTSIM_SNAP_SNAP_HH
