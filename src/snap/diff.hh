/**
 * @file
 * Lockstep divergence differ: run two machines that should behave
 * identically, compare full-state hashes at a stride, and binary-search
 * the first divergent cycle using snapshots.
 *
 * The canonical use is differential validation of "invisible"
 * optimisations (stall-cycle fast-forwarding, sampling warm paths): the
 * two sides are the same preset + workload with one knob flipped, and
 * any state difference at equal cycle counts is a bug. When the sides
 * diverge, the differ restores both from the last equal snapshot,
 * bisects to the exact first cycle whose post-cycle states differ, and
 * dumps both sides' snapshots there for inspection.
 *
 * The injectCycle test hook flips one bit of side B's memory image at
 * a chosen cycle. It is applied inside the shared advance helper, so
 * bisection replays from pre-injection snapshots reproduce it — the
 * self-test that the differ pinpoints a single-bit, single-cycle
 * divergence exactly.
 */

#ifndef SSTSIM_SNAP_DIFF_HH
#define SSTSIM_SNAP_DIFF_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "sim/machine.hh"

namespace sst::snap
{

/** Knobs for one diffMachines() call. */
struct DiffOptions
{
    std::uint64_t maxCycles = 500'000'000;
    /** Lockstep compare interval; divergence inside a stride is then
     *  bisected to the exact cycle. */
    Cycle stride = 1024;
    /** Per-side stall-cycle fast-forwarding. The default pair checks
     *  the fast-forward path against the naive per-cycle loop. */
    bool fastfwdA = true;
    bool fastfwdB = false;
    /** Test hook: flip bit 0 of side B's image byte at injectAddr when
     *  side B reaches this cycle (invalidCycle disables). */
    Cycle injectCycle = invalidCycle;
    Addr injectAddr = 0;
    /** When non-empty and diverged: dump "<prefix>.a.snap" and
     *  "<prefix>.b.snap" taken at the first divergent cycle. */
    std::string outPrefix;
};

/** What diffMachines() found. */
struct DiffReport
{
    bool diverged = false;
    /** First cycle whose post-cycle states differ (valid when
     *  diverged). */
    Cycle firstDivergentCycle = 0;
    std::uint64_t hashA = 0;
    std::uint64_t hashB = 0;
    /** Cycle each side reached when the comparison ended. */
    Cycle cyclesA = 0;
    Cycle cyclesB = 0;
    bool finishedA = false;
    bool finishedB = false;
    /** Number of lockstep compare points that matched. */
    std::uint64_t comparedPoints = 0;
    /** Snapshot dump paths (set when diverged and outPrefix given). */
    std::string snapA;
    std::string snapB;
};

/**
 * Run @p a and @p b in lockstep from their current states and report
 * the first divergent cycle, or a clean no-divergence result when both
 * finish with equal states. Both machines are left positioned at the
 * comparison's final point (the divergent cycle, or completion).
 * Leaves the process-global fast-forward override cleared.
 */
DiffReport diffMachines(Machine &a, Machine &b, const DiffOptions &opt);

} // namespace sst::snap

#endif // SSTSIM_SNAP_DIFF_HH
