#include "snap/diff.hh"

#include <algorithm>

#include "sim/fastfwd.hh"
#include "snap/snap.hh"

namespace sst::snap
{

namespace
{

/** Advance one side to @p target with its own fast-forward setting,
 *  applying the side-B bit injection exactly once when the window
 *  (current, target] contains opt.injectCycle. Being inside the shared
 *  helper makes the injection replayable: bisection restores a
 *  pre-injection snapshot and re-advancing re-applies it at the same
 *  cycle. */
void
advanceSide(Machine &m, bool is_b, Cycle target, bool fastfwd,
            const DiffOptions &opt)
{
    setFastForward(fastfwd);
    if (is_b && opt.injectCycle != invalidCycle
        && m.core().cycles() < opt.injectCycle
        && opt.injectCycle <= target) {
        m.stepTo(opt.injectCycle);
        if (m.core().cycles() == opt.injectCycle) {
            MemoryImage &img = m.image();
            img.writeByte(opt.injectAddr,
                          img.readByte(opt.injectAddr) ^ 0x01);
        }
    }
    m.stepTo(target);
}

bool
statesEqual(Machine &a, Machine &b)
{
    return a.core().cycles() == b.core().cycles()
           && a.stateHash() == b.stateHash();
}

bool
sideDone(Machine &m)
{
    return m.core().halted() || m.livelocked();
}

void
fillReport(DiffReport &rep, Machine &a, Machine &b)
{
    rep.hashA = a.stateHash();
    rep.hashB = b.stateHash();
    rep.cyclesA = a.core().cycles();
    rep.cyclesB = b.core().cycles();
    rep.finishedA = a.core().halted();
    rep.finishedB = b.core().halted();
}

} // namespace

DiffReport
diffMachines(Machine &a, Machine &b, const DiffOptions &opt)
{
    DiffReport rep;

    // Last compare point with equal states, as restorable images.
    std::vector<std::uint8_t> goodA = a.snapshot();
    std::vector<std::uint8_t> goodB = b.snapshot();
    Cycle good = a.core().cycles();
    Cycle divergedAt = invalidCycle; // compare point that mismatched

    if (!statesEqual(a, b)) {
        // Different before a single cycle ran: configuration-level
        // mismatch (different preset geometry, different programs).
        rep.diverged = true;
        rep.firstDivergentCycle = good;
        fillReport(rep, a, b);
    } else {
        while (good < opt.maxCycles && !(sideDone(a) && sideDone(b))) {
            Cycle next = std::min<Cycle>(good + opt.stride,
                                         opt.maxCycles);
            advanceSide(a, false, next, opt.fastfwdA, opt);
            advanceSide(b, true, next, opt.fastfwdB, opt);
            if (!statesEqual(a, b)) {
                divergedAt = next;
                break;
            }
            ++rep.comparedPoints;
            good = next;
            goodA = a.snapshot();
            goodB = b.snapshot();
        }
    }

    if (divergedAt != invalidCycle) {
        // Bisect (good, divergedAt]: restore both sides from the last
        // equal snapshot and probe the midpoint until the window is one
        // cycle wide. The invariant is that goodA/goodB restore to
        // equal states at cycle `good`.
        Cycle lo = good;
        Cycle hi = divergedAt;
        while (hi - lo > 1) {
            Cycle mid = lo + (hi - lo) / 2;
            a.restore(goodA);
            b.restore(goodB);
            advanceSide(a, false, mid, opt.fastfwdA, opt);
            advanceSide(b, true, mid, opt.fastfwdB, opt);
            if (statesEqual(a, b)) {
                lo = mid;
                goodA = a.snapshot();
                goodB = b.snapshot();
            } else {
                hi = mid;
            }
        }
        // Materialize both sides at the first divergent cycle.
        a.restore(goodA);
        b.restore(goodB);
        advanceSide(a, false, hi, opt.fastfwdA, opt);
        advanceSide(b, true, hi, opt.fastfwdB, opt);
        rep.diverged = true;
        rep.firstDivergentCycle = hi;
        fillReport(rep, a, b);
    } else if (!rep.diverged) {
        fillReport(rep, a, b);
    }

    if (rep.diverged && !opt.outPrefix.empty()) {
        rep.snapA = opt.outPrefix + ".a.snap";
        rep.snapB = opt.outPrefix + ".b.snap";
        auto ra = a.snapshotToFile(rep.snapA);
        if (!ra.ok())
            warn("diff: dump '%s' failed: %s", rep.snapA.c_str(),
                 ra.error().message.c_str());
        auto rb = b.snapshotToFile(rep.snapB);
        if (!rb.ok())
            warn("diff: dump '%s' failed: %s", rep.snapB.c_str(),
                 rb.error().message.c_str());
    }

    clearFastForwardOverride();
    return rep;
}

} // namespace sst::snap
