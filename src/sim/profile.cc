#include "sim/profile.hh"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/config.hh"
#include "common/logging.hh"
#include "snap/snap.hh"

namespace sst
{

namespace
{

constexpr unsigned kBbvBuckets = 32;
constexpr std::uint8_t kProfileKind = 2;
constexpr const char *kManifestName = "library.manifest";

unsigned
bbvBucket(Addr pc)
{
    // Fibonacci hash of the PC; the top 5 bits index the histogram.
    return static_cast<unsigned>((pc * 0x9E3779B97F4A7C15ULL) >> 59);
}

std::uint64_t
clampStride(std::uint64_t stride)
{
    return std::clamp<std::uint64_t>(stride, 10'000, 2'000'000);
}

std::string
memberFileName(std::uint64_t index)
{
    return "region-" + std::to_string(index) + ".snap";
}

std::string
hexU64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Serialize one selected region's warm start state. The trailing u64
 *  is an FNV-1a checksum over every preceding byte, so triage can
 *  reject arbitrary corruption without deserializing anything. */
std::vector<std::uint8_t>
serializeMember(const ProfileLibrary &lib, const ProfileRegion &region,
                const ArchState &cursor, const MemorySystem &memsys,
                const MemoryImage &image)
{
    snap::Writer w;
    w.u64(snap::fileMagic);
    w.u32(snap::formatVersion);
    w.u8(kProfileKind);
    w.str(lib.preset);
    w.str(lib.model);
    w.str(lib.workload);
    w.u64(lib.fingerprint);
    w.u64(lib.configHash);
    w.u64(region.index);
    w.u64(region.startInsts);
    w.u64(region.startClock);
    w.tag("profile-cursor");
    cursor.save(w);
    w.tag("profile-mem");
    memsys.save(w);
    w.tag("profile-stats");
    memsys.stats().save(w);
    w.tag("profile-image");
    image.save(w);
    w.tag("profile-end");
    std::uint64_t sum = w.hash();
    w.u64(sum);
    return w.data();
}

bool
memberChecksumOk(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8)
        return false;
    std::size_t body = bytes.size() - 8;
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(bytes[body + i]) << (8 * i);
    return snap::fnv1a(bytes.data(), body) == stored;
}

/** Read and validate a member header against the run's identity;
 *  fatal() (trappable) on any mismatch. Leaves @p r at the start of
 *  the state sections. Callers pass the program's name and
 *  fingerprint rather than the Program so the fingerprint — a hash
 *  over every instruction and data byte — is computed once per run,
 *  not once per member. */
void
readMemberHeader(snap::Reader &r, const MachineConfig &config,
                 const std::string &programName,
                 std::uint64_t programFp, std::uint64_t configHash,
                 std::uint64_t &regionIndex, std::uint64_t &startInsts,
                 Cycle &startClock)
{
    fatal_if(r.u64() != snap::fileMagic,
             "profile member: bad magic (not a snapshot file?)");
    std::uint32_t version = r.u32();
    fatal_if(version != snap::formatVersion,
             "profile member: format version %u, this build reads %u",
             version, snap::formatVersion);
    std::uint8_t kind = r.u8();
    fatal_if(kind != kProfileKind,
             "profile member: snapshot kind %u is not a profile region",
             kind);
    std::string preset = r.str();
    fatal_if(preset != config.presetName,
             "profile member: preset '%s' where '%s' expected",
             preset.c_str(), config.presetName.c_str());
    std::string model = r.str();
    fatal_if(model != config.model,
             "profile member: core model '%s' where '%s' expected",
             model.c_str(), config.model.c_str());
    std::string workload = r.str();
    fatal_if(workload != programName,
             "profile member: workload '%s' where '%s' expected",
             workload.c_str(), programName.c_str());
    std::uint64_t fp = r.u64();
    fatal_if(fp != programFp,
             "profile member: program fingerprint %s does not match this "
             "program (%s)",
             hexU64(fp).c_str(), hexU64(programFp).c_str());
    std::uint64_t ch = r.u64();
    fatal_if(ch != configHash,
             "profile member: config hash %s where %s expected",
             hexU64(ch).c_str(), hexU64(configHash).c_str());
    regionIndex = r.u64();
    startInsts = r.u64();
    startClock = r.u64();
}

void
restoreMemberState(snap::Reader &r, MemorySystem &memsys,
                   MemoryImage &image, ArchState &cursor)
{
    r.tag("profile-cursor");
    cursor.load(r);
    r.tag("profile-mem");
    memsys.load(r);
    r.tag("profile-stats");
    memsys.stats().load(r);
    r.tag("profile-image");
    image.load(r);
    r.tag("profile-end");
}

/** L1 distance between two normalized basic-block vectors. */
double
bbvDistance(const std::array<double, kBbvBuckets> &a,
            const std::array<double, kBbvBuckets> &b)
{
    double d = 0;
    for (unsigned i = 0; i < kBbvBuckets; ++i)
        d += std::abs(a[i] - b[i]);
    return d;
}

/**
 * Greedy k-center (farthest-first) selection over the region BBVs.
 * Deterministic: the seed center is the region nearest the global
 * mean, each following center is the region farthest from the chosen
 * set, and every tie breaks toward the lowest region index. Each
 * region is then assigned to its nearest center, whose weight
 * accumulates the assigned instruction counts.
 */
void
selectRegions(std::vector<ProfileRegion> &regions,
              const std::vector<std::array<double, kBbvBuckets>> &bbv,
              unsigned maxRegions)
{
    std::size_t n = regions.size();
    if (maxRegions == 0 || n <= maxRegions) {
        for (auto &r : regions) {
            r.selected = true;
            r.weight = r.lengthInsts;
        }
        return;
    }

    std::array<double, kBbvBuckets> mean{};
    for (const auto &row : bbv)
        for (unsigned i = 0; i < kBbvBuckets; ++i)
            mean[i] += row[i] / static_cast<double>(n);

    std::vector<std::size_t> centers;
    std::size_t seed = 0;
    double best = bbvDistance(bbv[0], mean);
    for (std::size_t i = 1; i < n; ++i) {
        double d = bbvDistance(bbv[i], mean);
        if (d < best) {
            best = d;
            seed = i;
        }
    }
    centers.push_back(seed);

    std::vector<double> minDist(n);
    for (std::size_t i = 0; i < n; ++i)
        minDist[i] = bbvDistance(bbv[i], bbv[seed]);
    while (centers.size() < maxRegions) {
        std::size_t far = 0;
        double farDist = -1;
        for (std::size_t i = 0; i < n; ++i) {
            if (minDist[i] > farDist) {
                farDist = minDist[i];
                far = i;
            }
        }
        if (farDist <= 0)
            break; // every region coincides with some center
        centers.push_back(far);
        for (std::size_t i = 0; i < n; ++i)
            minDist[i] = std::min(minDist[i], bbvDistance(bbv[i], bbv[far]));
    }
    std::sort(centers.begin(), centers.end());

    for (std::size_t c : centers)
        regions[c].selected = true;
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t rep = centers[0];
        double repDist = bbvDistance(bbv[i], bbv[centers[0]]);
        for (std::size_t c : centers) {
            double d = bbvDistance(bbv[i], bbv[c]);
            if (d < repDist) {
                repDist = d;
                rep = c;
            }
        }
        regions[rep].weight += regions[i].lengthInsts;
    }
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

std::string
trimWs(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

/** Deterministic plain-text manifest (same key=value idiom as sweep
 *  manifests); written last so its presence marks a complete entry. */
std::string
manifestText(const ProfileLibrary &lib)
{
    std::ostringstream out;
    out << "# sstsim profile library\n";
    out << "schema = 1\n";
    out << "preset = " << lib.preset << "\n";
    out << "model = " << lib.model << "\n";
    out << "workload = " << lib.workload << "\n";
    out << "fingerprint = " << hexU64(lib.fingerprint) << "\n";
    out << "config_hash = " << hexU64(lib.configHash) << "\n";
    out << "region_insts = " << lib.regionInsts << "\n";
    out << "max_regions = " << lib.maxRegions << "\n";
    out << "warm_cpi = " << lib.warmCpi << "\n";
    out << "total_insts = " << lib.totalInsts << "\n";
    out << "warm_accesses = " << lib.warmAccesses << "\n";
    out << "warm_hits = " << lib.warmHits << "\n";
    out << "regions = " << lib.regions.size() << "\n";
    for (const ProfileRegion &r : lib.regions) {
        out << "region." << r.index << " = start=" << r.startInsts
            << " length=" << r.lengthInsts << " clock=" << r.startClock
            << " weight=" << r.weight << " selected="
            << (r.selected ? 1 : 0) << " member="
            << (r.selected ? memberFileName(r.index) : std::string("-"))
            << "\n";
    }
    return out.str();
}

Error
manifestError(const std::string &detail)
{
    return Error{"profile library manifest: " + detail};
}

/** Parse manifestText() output. Structural identity only; member
 *  bytes are loaded and triaged separately. */
Result<ProfileLibrary>
parseManifest(const std::string &text)
{
    ProfileLibrary lib;
    std::uint64_t schema = 0, regionCount = 0;
    std::uint64_t maxRegions = 0, warmCpi = 0;
    bool sawRegions = false;
    std::istringstream in(text);
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        line = trimWs(line);
        if (line.empty() || line[0] == '#')
            continue;
        std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return manifestError("line " + std::to_string(lineNo)
                                 + ": expected key = value");
        std::string key = trimWs(line.substr(0, eq));
        std::string val = trimWs(line.substr(eq + 1));
        bool ok = true;
        if (key == "schema")
            ok = parseU64(val, schema);
        else if (key == "preset")
            lib.preset = val;
        else if (key == "model")
            lib.model = val;
        else if (key == "workload")
            lib.workload = val;
        else if (key == "fingerprint")
            ok = parseU64(val, lib.fingerprint);
        else if (key == "config_hash")
            ok = parseU64(val, lib.configHash);
        else if (key == "region_insts")
            ok = parseU64(val, lib.regionInsts);
        else if (key == "max_regions")
            ok = parseU64(val, maxRegions);
        else if (key == "warm_cpi")
            ok = parseU64(val, warmCpi);
        else if (key == "total_insts")
            ok = parseU64(val, lib.totalInsts);
        else if (key == "warm_accesses")
            ok = parseU64(val, lib.warmAccesses);
        else if (key == "warm_hits")
            ok = parseU64(val, lib.warmHits);
        else if (key == "regions") {
            ok = parseU64(val, regionCount);
            sawRegions = true;
        } else if (key.rfind("region.", 0) == 0) {
            ProfileRegion r;
            if (!parseU64(key.substr(7), r.index))
                return manifestError("bad region key '" + key + "'");
            std::istringstream fields(val);
            std::string tok;
            std::string memberName;
            while (fields >> tok) {
                std::size_t feq = tok.find('=');
                if (feq == std::string::npos)
                    return manifestError("region field '" + tok + "'");
                std::string fk = tok.substr(0, feq);
                std::string fv = tok.substr(feq + 1);
                std::uint64_t sel = 0;
                bool fok = true;
                if (fk == "start")
                    fok = parseU64(fv, r.startInsts);
                else if (fk == "length")
                    fok = parseU64(fv, r.lengthInsts);
                else if (fk == "clock")
                    fok = parseU64(fv, r.startClock);
                else if (fk == "weight")
                    fok = parseU64(fv, r.weight);
                else if (fk == "selected") {
                    fok = parseU64(fv, sel);
                    r.selected = sel != 0;
                } else if (fk == "member")
                    memberName = fv;
                else
                    return manifestError("unknown region field '" + fk
                                         + "'");
                if (!fok)
                    return manifestError("bad value in '" + tok + "'");
            }
            if (r.selected && memberName != memberFileName(r.index))
                return manifestError("region " + std::to_string(r.index)
                                     + " names unexpected member '"
                                     + memberName + "'");
            if (r.index != lib.regions.size())
                return manifestError("region entries out of order at "
                                     + key);
            lib.regions.push_back(std::move(r));
        } else {
            return manifestError("unknown key '" + key + "'");
        }
        if (!ok)
            return manifestError("bad value for '" + key + "'");
    }
    if (schema != 1)
        return manifestError("unsupported schema "
                             + std::to_string(schema));
    if (!sawRegions || lib.regions.size() != regionCount)
        return manifestError("region count mismatch");
    if (maxRegions > ~0u || warmCpi > ~0u)
        return manifestError("max_regions/warm_cpi out of range");
    lib.maxRegions = static_cast<unsigned>(maxRegions);
    lib.warmCpi = static_cast<unsigned>(warmCpi);
    return lib;
}

} // namespace

std::size_t
ProfileLibrary::usableCount() const
{
    std::size_t n = 0;
    for (const ProfileRegion &r : regions)
        if (r.selected && !r.member.empty())
            ++n;
    return n;
}

std::uint64_t
memConfigHash(const MachineConfig &config, const Config &effective)
{
    snap::Hasher h;
    auto mix = [&](const std::string &s) {
        h.mixU64(s.size());
        h.mix(s.data(), s.size());
    };
    mix(config.presetName);
    mix(config.model);
    for (const auto &[key, value] : effective.items()) {
        if (key.rfind("mem.", 0) != 0 && key.rfind("fault.", 0) != 0)
            continue;
        mix(key);
        mix(value);
    }
    return h.value();
}

std::uint64_t
profileRegionHint(std::uint64_t approxDynInsts)
{
    return clampStride(approxDynInsts / 16);
}

ProfileLibrary
buildProfileLibrary(const MachineConfig &config, const Program &program,
                    const ProfileParams &params, std::uint64_t configHash)
{
    fatal_if(params.warmCpi == 0, "profile: warmCpi must be positive");
    fatal_if(params.maxInsts == 0, "profile: maxInsts must be positive");

    std::uint64_t stride = params.regionInsts;
    if (stride == 0) {
        // Counting pre-pass: cut the program into ~16 regions.
        MemoryImage cimage;
        cimage.loadSegments(program);
        Executor cexec(program, cimage);
        ArchState cs;
        std::uint64_t n = cexec.run(cs, params.maxInsts);
        fatal_if(!cs.halted,
                 "profile: '%s' did not halt within %llu instructions",
                 program.name().c_str(),
                 static_cast<unsigned long long>(params.maxInsts));
        stride = clampStride(n / 16);
    }

    ProfileLibrary lib;
    lib.preset = config.presetName;
    lib.model = config.model;
    lib.workload = program.name();
    lib.fingerprint = programFingerprint(program);
    lib.configHash = configHash;
    lib.regionInsts = stride;
    lib.maxRegions = params.maxRegions;
    lib.warmCpi = params.warmCpi;

    // Pass 1: pure functional execution collecting one basic-block
    // vector (PC histogram) per fixed-stride region.
    std::vector<std::array<std::uint64_t, kBbvBuckets>> counts;
    {
        MemoryImage image;
        image.loadSegments(program);
        Executor exec(program, image);
        ArchState cursor;
        std::uint64_t done = 0;
        while (!cursor.halted) {
            fatal_if(done >= params.maxInsts,
                     "profile: '%s' did not halt within %llu instructions",
                     program.name().c_str(),
                     static_cast<unsigned long long>(params.maxInsts));
            if (done % stride == 0)
                counts.push_back({});
            ++counts.back()[bbvBucket(cursor.pc)];
            exec.step(cursor);
            ++done;
        }
        lib.totalInsts = done;
    }
    fatal_if(counts.empty(), "profile: '%s' retired no instructions",
             program.name().c_str());

    std::vector<std::array<double, kBbvBuckets>> bbv(counts.size());
    lib.regions.resize(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
        ProfileRegion &r = lib.regions[i];
        r.index = i;
        r.startInsts = i * stride;
        r.lengthInsts = std::min<std::uint64_t>(
            stride, lib.totalInsts - r.startInsts);
        std::uint64_t sum = 0;
        for (std::uint64_t c : counts[i])
            sum += c;
        for (unsigned b = 0; b < kBbvBuckets; ++b)
            bbv[i][b] = static_cast<double>(counts[i][b])
                        / static_cast<double>(sum);
    }

    selectRegions(lib.regions, bbv, params.maxRegions);

    // Pass 2: replay with cache warming — runSampled's fast-forward
    // semantics, including the bounded MSHR-retry loop — and serialize
    // each selected region's start state at its boundary.
    MemorySystem memsys(config.mem);
    CorePort &port = memsys.addCore();
    MemoryImage image;
    image.loadSegments(program);
    Executor exec(program, image);
    ArchState cursor;
    Cycle clock = 0;
    std::uint64_t done = 0;
    std::size_t next = 0;
    while (next < lib.regions.size() && !lib.regions[next].selected)
        ++next;
    while (!cursor.halted) {
        if (next < lib.regions.size()
            && done == lib.regions[next].startInsts) {
            ProfileRegion &r = lib.regions[next];
            r.startClock = clock;
            r.member = serializeMember(lib, r, cursor, memsys, image);
            do {
                ++next;
            } while (next < lib.regions.size()
                     && !lib.regions[next].selected);
        }
        StepInfo info = exec.step(cursor);
        if (info.effAddr != invalidAddr) {
            AccessType type = isStore(info.inst.op) ? AccessType::Store
                                                    : AccessType::Load;
            ++lib.warmAccesses;
            auto res = port.access(type, info.effAddr, clock);
            for (int tries = 0;
                 res.rejected && res.retryCycle > clock && tries < 4;
                 ++tries) {
                clock = res.retryCycle;
                res = port.access(type, info.effAddr, clock);
            }
            if (!res.rejected && res.l1Hit)
                ++lib.warmHits;
        }
        clock += params.warmCpi;
        ++done;
    }
    panic_if(done != lib.totalInsts,
             "profile: warming replay retired %llu insts, pass 1 saw %llu",
             static_cast<unsigned long long>(done),
             static_cast<unsigned long long>(lib.totalInsts));
    panic_if(next < lib.regions.size(),
             "profile: unreached selected region %llu",
             static_cast<unsigned long long>(lib.regions[next].index));
    return lib;
}

std::string
profileCacheDir(const std::string &cacheRoot, const MachineConfig &config,
                const Program &program, const ProfileParams &params,
                std::uint64_t configHash)
{
    snap::Hasher h;
    h.mixU64(programFingerprint(program));
    h.mixU64(configHash);
    h.mixU64(params.regionInsts);
    h.mixU64(params.maxRegions);
    h.mixU64(params.warmCpi);
    return cacheRoot + "/" + config.presetName + "-" + config.model + "-"
           + program.name() + "-" + hexU64(h.value()).substr(2);
}

Result<void>
saveProfileLibrary(const ProfileLibrary &library, const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return Error{"profile cache: cannot create '" + dir
                     + "': " + ec.message()};
    for (const ProfileRegion &r : library.regions) {
        if (!r.selected || r.member.empty())
            continue;
        auto w = snap::writeFile(dir + "/" + memberFileName(r.index),
                                 r.member);
        if (!w.ok())
            return w.error();
    }
    std::string text = manifestText(library);
    std::vector<std::uint8_t> bytes(text.begin(), text.end());
    return snap::writeFile(dir + "/" + kManifestName, bytes);
}

Result<ProfileLibrary>
loadProfileLibrary(const std::string &dir, const MachineConfig &config,
                   const Program &program, const ProfileParams &params,
                   std::uint64_t configHash)
{
    std::ifstream in(dir + "/" + kManifestName, std::ios::binary);
    if (!in)
        return Error{"no profile library at '" + dir + "'"};
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = parseManifest(text.str());
    if (!parsed.ok())
        return parsed.error();
    ProfileLibrary lib = parsed.take();

    const std::uint64_t programFp = programFingerprint(program);
    if (lib.preset != config.presetName || lib.model != config.model
        || lib.workload != program.name()
        || lib.fingerprint != programFp
        || lib.configHash != configHash
        || lib.regionInsts != params.regionInsts
        || lib.maxRegions != params.maxRegions
        || lib.warmCpi != params.warmCpi)
        return Error{"profile library at '" + dir
                     + "' was built for a different run identity"};

    for (ProfileRegion &r : lib.regions) {
        if (!r.selected)
            continue;
        std::string path = dir + "/" + memberFileName(r.index);
        auto skip = [&](const std::string &why) {
            warn("profile cache: %s: %s; skipping region %llu",
                 path.c_str(), why.c_str(),
                 static_cast<unsigned long long>(r.index));
            r.member.clear();
        };
        auto probe = snap::probeSnapshotFile(path);
        if (!probe.ok()) {
            skip(probe.error().message);
            continue;
        }
        auto bytes = snap::readFile(path);
        if (!bytes.ok()) {
            skip(bytes.error().message);
            continue;
        }
        if (!memberChecksumOk(bytes.value())) {
            skip("checksum mismatch (corrupt member)");
            continue;
        }
        const auto &data = bytes.value();
        auto header = trapFatal([&] {
            snap::Reader rd(data.data(), data.size() - 8);
            std::uint64_t index = 0, start = 0;
            Cycle clockAt = 0;
            readMemberHeader(rd, config, program.name(), programFp,
                             configHash, index, start, clockAt);
            fatal_if(index != r.index || start != r.startInsts
                         || clockAt != r.startClock,
                     "member header disagrees with the manifest");
        });
        if (!header.ok()) {
            skip(header.error().message);
            continue;
        }
        r.member = bytes.take();
    }
    if (lib.usableCount() == 0)
        return Error{"profile library at '" + dir
                     + "' has no usable members"};
    return lib;
}

Result<ProfileLibrary>
ensureProfileLibrary(const MachineConfig &config, const Program &program,
                     const ProfileParams &params,
                     const std::string &cacheRoot, std::uint64_t configHash)
{
    if (cacheRoot.empty())
        return trapFatal(
            [&] { return buildProfileLibrary(config, program, params,
                                             configHash); });
    if (params.regionInsts == 0)
        return Error{"profile cache lookups need a resolved region "
                     "stride; set regionInsts (profileRegionHint) before "
                     "caching"};
    std::string dir =
        profileCacheDir(cacheRoot, config, program, params, configHash);
    if (auto cached =
            loadProfileLibrary(dir, config, program, params, configHash);
        cached.ok())
        return cached;
    auto built = trapFatal(
        [&] { return buildProfileLibrary(config, program, params,
                                         configHash); });
    if (!built.ok())
        return built.error();
    if (auto saved = saveProfileLibrary(built.value(), dir); !saved.ok())
        warn("profile cache: could not populate '%s': %s", dir.c_str(),
             saved.error().message.c_str());
    return built;
}

SampledResult
runSampledFromLibrary(const MachineConfig &config, const Program &program,
                      const ProfileLibrary &library,
                      const SampleParams &params)
{
    fatal_if(params.detailInsts == 0, "detailInsts must be positive");

    std::vector<const ProfileRegion *> picks;
    for (const ProfileRegion &r : library.regions)
        if (r.selected && !r.member.empty())
            picks.push_back(&r);
    fatal_if(picks.empty(), "profile library has no usable members");
    if (params.maxSamples != 0 && picks.size() > params.maxSamples) {
        std::stable_sort(picks.begin(), picks.end(),
                         [](const ProfileRegion *a, const ProfileRegion *b) {
                             return a->weight > b->weight;
                         });
        picks.resize(params.maxSamples);
        std::sort(picks.begin(), picks.end(),
                  [](const ProfileRegion *a, const ProfileRegion *b) {
                      return a->startInsts < b->startInsts;
                  });
    }

    SampledResult result;
    result.preset = config.presetName;
    result.warmAccesses = library.warmAccesses;
    result.warmHits = library.warmHits;
    double est_cycles = 0;
    std::uint64_t total_weight = 0;
    const std::uint64_t programFp = programFingerprint(program);
    for (const ProfileRegion *pick : picks) {
        MemorySystem memsys(config.mem);
        CorePort &port = memsys.addCore();
        MemoryImage image;
        ArchState cursor;
        snap::Reader rd(pick->member.data(), pick->member.size() - 8);
        std::uint64_t index = 0, start = 0;
        Cycle clock = 0;
        readMemberHeader(rd, config, program.name(), programFp,
                         library.configHash, index, start, clock);
        restoreMemberState(rd, memsys, image, cursor);
        rd.done();

        auto core = makeCore(config, program, image, port);
        core->warmStart(cursor, clock);
        std::uint64_t budget_cycles = params.detailInsts * 1000;
        while (!core->halted()
               && core->instsRetired() < params.detailInsts
               && core->cycles() - core->startCycle() < budget_cycles)
            core->tick();
        fatal_if(!core->halted()
                     && core->instsRetired() < params.detailInsts,
                 "sampled window made no progress");
        std::uint64_t insts = core->instsRetired();
        Cycle cycles = core->cycles() - core->startCycle();
        fatal_if(insts == 0, "sampled window retired nothing");

        result.windowIpc.push_back(core->ipc());
        result.windowWeight.push_back(static_cast<double>(pick->weight));
        result.detailedInsts += insts;
        est_cycles += static_cast<double>(pick->weight)
                      * static_cast<double>(cycles)
                      / static_cast<double>(insts);
        total_weight += pick->weight;
    }
    result.skippedInsts = library.totalInsts > result.detailedInsts
                              ? library.totalInsts - result.detailedInsts
                              : 0;
    result.ipc = est_cycles > 0
                     ? static_cast<double>(total_weight) / est_cycles
                     : 0.0;
    result.reachedEnd = true;
    return result;
}

Result<void>
warmStartMachine(Machine &machine, const ProfileLibrary &library,
                 std::uint64_t targetInsts, std::uint64_t *startInsts)
{
    if (machine.core().cycles() != 0 || machine.core().instsRetired() != 0)
        return Error{"warm start requires a freshly built machine"};

    const ProfileRegion *pick = nullptr;
    for (const ProfileRegion &r : library.regions) {
        if (!r.selected || r.member.empty())
            continue;
        if (r.startInsts <= targetInsts
            && (!pick || r.startInsts > pick->startInsts))
            pick = &r;
    }
    if (!pick) {
        // Nothing at or below the target: fall back to the earliest
        // member rather than failing the run.
        for (const ProfileRegion &r : library.regions)
            if (r.selected && !r.member.empty()
                && (!pick || r.startInsts < pick->startInsts))
                pick = &r;
    }
    if (!pick)
        return Error{"profile library has no usable members"};

    return trapFatal([&] {
        snap::Reader rd(pick->member.data(), pick->member.size() - 8);
        std::uint64_t index = 0, start = 0;
        Cycle clock = 0;
        readMemberHeader(rd, machine.config(), machine.program().name(),
                         programFingerprint(machine.program()),
                         library.configHash, index, start, clock);
        ArchState cursor;
        restoreMemberState(rd, machine.memsys(), machine.image(), cursor);
        rd.done();
        machine.core().warmStart(cursor, clock);
        machine.watchdog().rebase(clock);
        if (startInsts)
            *startInsts = start;
    });
}

} // namespace sst
