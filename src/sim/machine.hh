/**
 * @file
 * Single-core machine: wires a core model to its memory hierarchy and
 * runs one workload to completion.
 */

#ifndef SSTSIM_SIM_MACHINE_HH
#define SSTSIM_SIM_MACHINE_HH

#include <map>
#include <memory>
#include <string>

#include "core/core.hh"
#include "core/inorder.hh"
#include "core/ooo.hh"
#include "core/sst.hh"
#include "mem/hierarchy.hh"
#include "sim/presets.hh"

namespace sst
{

/** Key metrics of one finished run. */
struct RunResult
{
    std::string preset;
    std::string workload;
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    double ipc = 0;
    double l1dMissRate = 0;
    double meanDemandMlp = 0;
    double mispredictRate = 0;
    bool finished = false; ///< HALT committed within the cycle budget
    /** Flattened stats for anything the summary fields don't cover. */
    std::map<std::string, double> stats;
};

/** Instantiate the core model named by @p config. */
std::unique_ptr<Core> makeCore(const MachineConfig &config,
                               const Program &program,
                               MemoryImage &memory, CorePort &port);

/** One core + private hierarchy + loaded memory image. */
class Machine
{
  public:
    /** @p program must outlive the machine. */
    Machine(const MachineConfig &config, const Program &program);

    /** Run to HALT or @p maxCycles; harvest metrics. */
    RunResult run(std::uint64_t max_cycles = 500'000'000);

    Core &core() { return *core_; }
    MemorySystem &memsys() { return memsys_; }
    MemoryImage &image() { return image_; }
    const MachineConfig &config() const { return config_; }

  private:
    MachineConfig config_;
    const Program &program_;
    MemorySystem memsys_;
    MemoryImage image_;
    std::unique_ptr<Core> core_;
};

/**
 * Convenience: build the preset, generate nothing (caller supplies the
 * program), run, and return metrics.
 */
RunResult runOn(const std::string &preset, const Program &program,
                std::uint64_t max_cycles = 500'000'000);

} // namespace sst

#endif // SSTSIM_SIM_MACHINE_HH
