/**
 * @file
 * Single-core machine: wires a core model to its memory hierarchy and
 * runs one workload to completion.
 */

#ifndef SSTSIM_SIM_MACHINE_HH
#define SSTSIM_SIM_MACHINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hh"
#include "core/core.hh"
#include "core/inorder.hh"
#include "core/ooo.hh"
#include "core/sst.hh"
#include "mem/hierarchy.hh"
#include "sim/presets.hh"

namespace sst
{

class ChaosMonitor;

/** Why a run stopped short of committing HALT. */
enum class DegradeReason
{
    None,        ///< ran to completion
    CycleBudget, ///< max_cycles exhausted with retirement still flowing
    Livelock     ///< watchdog interventions exhausted with no progress
};

/** Human-readable name for a DegradeReason. */
const char *degradeReasonName(DegradeReason reason);

/**
 * No-retirement livelock detector with an escalating response, shared
 * by the Machine and Cmp run loops. When a core retires nothing for
 * stallCycles, the watchdog first asks the core to abandon speculation
 * and make non-speculative progress (degradeSpeculation — a recovery);
 * maxInterventions consecutive fruitless attempts declare livelock.
 */
class Watchdog
{
  public:
    Watchdog(const WatchdogParams &params, Core &core)
        : params_(params), core_(core)
    {
    }

    /** Observe one elapsed cycle. @return false on declared livelock. */
    bool observe();

    /**
     * Latest cycle a fast-forward skip may advance the core to without
     * changing this watchdog's behaviour. The cycle at
     * windowStart + stallCycles is where observe() would intervene, so
     * the run loop must reach it via a real tick+observe; every
     * no-retirement observe strictly before it is a no-op, making the
     * cycles up to (deadline - 1) safe to skip. Unbounded when disabled
     * or the core has halted.
     */
    Cycle skipBound() const;

    std::uint64_t recoveries() const { return recoveries_; }
    std::uint64_t interventions() const { return interventions_; }
    bool gaveUp() const { return gaveUp_; }

    /** Re-anchor the stall window after the core warm-starts at cycle
     *  @p now; without this a warm start far from cycle 0 looks like a
     *  full no-retirement window and triggers a spurious intervention
     *  on the first observe(). */
    void rebase(Cycle now)
    {
        lastInsts_ = core_.instsRetired();
        windowStart_ = now;
        fruitless_ = 0;
    }

    /** Serialize progress-tracking state (params stay bound). */
    void save(snap::Writer &w) const;
    void load(snap::Reader &r);

  private:
    const WatchdogParams params_;
    Core &core_;
    std::uint64_t lastInsts_ = 0;
    Cycle windowStart_ = 0;
    unsigned fruitless_ = 0;
    std::uint64_t recoveries_ = 0;
    std::uint64_t interventions_ = 0;
    bool gaveUp_ = false;
};

/** Key metrics of one finished run. */
struct RunResult
{
    std::string preset;
    std::string workload;
    Cycle cycles = 0;
    std::uint64_t insts = 0;
    double ipc = 0;
    double l1dMissRate = 0;
    double meanDemandMlp = 0;
    double mispredictRate = 0;
    bool finished = false; ///< HALT committed within the cycle budget
    DegradeReason degrade = DegradeReason::None;
    /** Flattened stats for anything the summary fields don't cover.
     *  Includes "fault.*" (injector) and "watchdog.*" entries. */
    std::map<std::string, double> stats;
};

/** Periodic snapshot policy for crash-resumable runs. */
struct SnapPolicy
{
    std::uint64_t everyCycles = 0; ///< 0 disables periodic snapshots
    std::string path;              ///< target file, atomically replaced
};

/** Instantiate the core model named by @p config. */
std::unique_ptr<Core> makeCore(const MachineConfig &config,
                               const Program &program,
                               MemoryImage &memory, CorePort &port);

/** Identity hash of a program (instructions + data + layout), used to
 *  reject restoring a snapshot against the wrong workload. */
std::uint64_t programFingerprint(const Program &program);

/** One core + private hierarchy + loaded memory image. */
class Machine
{
  public:
    /** @p program must outlive the machine. */
    Machine(const MachineConfig &config, const Program &program);

    /** Run to HALT or @p maxCycles; harvest metrics. Resumes from the
     *  current state, so a restore() followed by run() continues the
     *  interrupted simulation. */
    RunResult run(std::uint64_t max_cycles = 500'000'000);

    /** run() that additionally writes a snapshot of the whole machine
     *  to @p snap.path every snap.everyCycles simulated cycles. */
    RunResult run(std::uint64_t max_cycles, const SnapPolicy &snap);

    /**
     * Advance to cycle @p target (or until HALT / livelock) with
     * exactly run()'s tick + watchdog + fast-forward semantics. The
     * lockstep divergence differ is built on this: two machines
     * stepTo() the same cycle and compare stateHash().
     */
    void stepTo(Cycle target);

    /** FNV-1a 64 over the complete serialized machine state. Equal
     *  hashes at equal cycles ⇒ byte-identical future behaviour. */
    std::uint64_t stateHash() const;

    /** Complete machine image (header + state), restorable in a fresh
     *  process via restore(). */
    std::vector<std::uint8_t> snapshot() const;

    /** Restore a snapshot() image. The machine must have been built
     *  with the same preset, model and program; mismatches fatal(). */
    void restore(const std::vector<std::uint8_t> &bytes);

    Result<void> snapshotToFile(const std::string &path) const;
    Result<void> restoreFromFile(const std::string &path);

    /** True once the watchdog declared livelock (sticky; saved). */
    bool livelocked() const { return livelocked_; }

    Core &core() { return *core_; }
    MemorySystem &memsys() { return memsys_; }
    MemoryImage &image() { return image_; }
    const MachineConfig &config() const { return config_; }
    const Program &program() const { return program_; }
    Watchdog &watchdog() { return *watchdog_; }

    /** Route structured pipeline + cache-fill events from the core and
     *  every hierarchy level into @p buf (null detaches everywhere). */
    void attachTraceBuffer(trace::TraceBuffer *buf);

    /**
     * Attach a process-chaos monitor (fault/chaos.hh): the run loop
     * calls observe(cycle) every iteration, which both feeds the
     * service worker's heartbeat probe and fires any scheduled
     * kill/stall at its deterministic simulated cycle. Null detaches.
     */
    void setChaosMonitor(ChaosMonitor *monitor) { chaos_ = monitor; }

  private:
    /** Shared loop body of run()/stepTo(). */
    void loopTo(Cycle bound, const SnapPolicy *snap);
    RunResult harvest();

    /** State payload shared by snapshot(), restore() and stateHash()
     *  (no file header). */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

    MachineConfig config_;
    const Program &program_;
    MemorySystem memsys_;
    MemoryImage image_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<Watchdog> watchdog_;
    trace::TraceBuffer *traceBuf_ = nullptr;
    ChaosMonitor *chaos_ = nullptr;
    bool livelocked_ = false;
};

/**
 * Convenience: build the preset, generate nothing (caller supplies the
 * program), run, and return metrics.
 */
RunResult runOn(const std::string &preset, const Program &program,
                std::uint64_t max_cycles = 500'000'000);

} // namespace sst

#endif // SSTSIM_SIM_MACHINE_HH
