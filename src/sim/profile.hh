/**
 * @file
 * Checkpoint-warmed sampling: one functional profiling pass over a
 * workload drops a library of warm-state region snapshots, and every
 * later sampled (or detailed) run of the same program warm-starts from
 * a library member instead of replaying the fast-forward from cycle 0.
 *
 * The pass is SimPoint-shaped: the program is cut into fixed-stride
 * regions, each region is summarised by a basic-block vector (a
 * histogram of executed PCs), and a greedy k-center selection picks at
 * most maxRegions representatives whose weights are the instruction
 * counts of the regions they stand for. maxRegions = 0 disables
 * selection entirely (the fixed-stride fallback: every region is its
 * own representative). Each selected region's start state — functional
 * cursor, warmed memory hierarchy, memory image, warm clock — is
 * serialized as one member in the snap/ format, headed by
 * preset/model/workload/programFingerprint/configHash so a shared
 * on-disk cache across sweep jobs can never hand state to the wrong
 * run.
 *
 * Determinism contract: a library built in memory and a library read
 * back from disk hold byte-identical members, and
 * runSampledFromLibrary() consumes only those bytes — so a sweep that
 * populates the cache and a sweep that reuses it produce byte-identical
 * job records. Nothing on the clean build/lookup path logs through
 * warn()/inform() (captured logs are part of the record bytes); only
 * genuinely corrupt cache members warn when they are skipped.
 */

#ifndef SSTSIM_SIM_PROFILE_HH
#define SSTSIM_SIM_PROFILE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hh"
#include "sim/sampling.hh"

namespace sst
{

/** Profiling-pass knobs. */
struct ProfileParams
{
    /** Instructions per fixed-stride region (the snapshot stride).
     *  0 = auto: profileRegionHint() of the workload when the caller
     *  has one, else a counting pre-pass cuts the program into ~16
     *  regions (clamped like the hint). Cache lookups need a resolved
     *  (non-zero) stride — it is part of the cache key. */
    std::uint64_t regionInsts = 0;
    /** Representative regions to keep (k-center k). 0 keeps every
     *  region: the fixed-stride fallback. */
    unsigned maxRegions = 8;
    /** Cycles charged per warmed instruction while fast-forwarding;
     *  must match the SampleParams the library will serve. */
    unsigned warmCpi = 2;
    /** Functional budget: a program that does not halt within this
     *  many instructions is a profiling error (fatal). */
    std::uint64_t maxInsts = 2'000'000'000ULL;
};

/** One fixed-stride region of the profiled program. */
struct ProfileRegion
{
    std::uint64_t index = 0;
    /** Instructions retired before the region's first one. */
    std::uint64_t startInsts = 0;
    /** Dynamic instructions in the region (the tail may be short). */
    std::uint64_t lengthInsts = 0;
    /** Warm clock at the region boundary (selected regions only). */
    Cycle startClock = 0;
    /** Instructions this representative stands for: its own length
     *  plus every region assigned to it (selected regions only). */
    std::uint64_t weight = 0;
    bool selected = false;
    /** Serialized warm-start state (selected regions only). */
    std::vector<std::uint8_t> member;
};

/** A profiled workload: identity, totals and the region snapshots. */
struct ProfileLibrary
{
    std::string preset;
    std::string model;
    std::string workload;
    std::uint64_t fingerprint = 0;
    /** Hash over the memory-affecting configuration (memConfigHash);
     *  core.* knobs deliberately do not contribute, so core-axis sweep
     *  jobs share one cache entry. */
    std::uint64_t configHash = 0;
    std::uint64_t regionInsts = 0;
    unsigned maxRegions = 8;
    unsigned warmCpi = 2;
    std::uint64_t totalInsts = 0;
    /** Warming traffic of the profiling pass (see SampledResult). */
    std::uint64_t warmAccesses = 0;
    std::uint64_t warmHits = 0;
    std::vector<ProfileRegion> regions;

    /** Selected regions that still carry usable member bytes. */
    std::size_t usableCount() const;
};

/**
 * Hash the parts of the effective configuration that shape library
 * member bytes: every "mem.*" and "fault.*" assignment plus the preset
 * memory defaults they override. @p effective is the post-
 * applyOverrides Config (its getters record defaulted keys, so it is
 * complete). Core-model knobs are excluded on purpose.
 */
std::uint64_t memConfigHash(const MachineConfig &config,
                            const Config &effective);

/** Auto region stride for a workload: a power-of-two-free cut of its
 *  approximate dynamic length into ~16 regions, clamped to
 *  [10'000, 2'000'000]. */
std::uint64_t profileRegionHint(std::uint64_t approxDynInsts);

/**
 * The profiling pass. Pass 1 runs the golden executor once to collect
 * per-region basic-block vectors and the total instruction count;
 * selection then picks the representatives; pass 2 replays the program
 * with cache warming (runSampled's fast-forward semantics, including
 * the bounded MSHR-retry loop) and serializes each selected region's
 * start state. The program must halt within params.maxInsts (fatal
 * otherwise — wrap in trapFatal on untrusted input).
 */
ProfileLibrary buildProfileLibrary(const MachineConfig &config,
                                   const Program &program,
                                   const ProfileParams &params,
                                   std::uint64_t configHash);

/** Library directory under @p cacheRoot for this identity: one entry
 *  per (preset, model, workload, fingerprint, configHash, schedule). */
std::string profileCacheDir(const std::string &cacheRoot,
                            const MachineConfig &config,
                            const Program &program,
                            const ProfileParams &params,
                            std::uint64_t configHash);

/**
 * Persist @p library into @p dir: one "region-<index>.snap" per
 * selected region (snap::writeFile rename staging, so concurrent
 * populators of one cache entry never tear each other's files), then
 * "library.manifest" last — the manifest's presence marks a complete
 * entry, and byte-identical concurrent writers make last-rename-wins
 * safe.
 */
Result<void> saveProfileLibrary(const ProfileLibrary &library,
                                const std::string &dir);

/**
 * Load a library from @p dir and validate it against the run's
 * identity. A manifest whose preset/model/workload/fingerprint/
 * configHash disagree is rejected outright (Error). Members are then
 * triaged one by one: probeSnapshotFile plus a whole-file checksum
 * and a full header match — a truncated or corrupt member is skipped
 * with a warning and its region dropped; a member carrying a different
 * program fingerprint is rejected the same way. Zero usable members is
 * an Error (the caller rebuilds).
 */
Result<ProfileLibrary> loadProfileLibrary(const std::string &dir,
                                          const MachineConfig &config,
                                          const Program &program,
                                          const ProfileParams &params,
                                          std::uint64_t configHash);

/**
 * Cache-or-build: look the library up under @p cacheRoot, rebuild and
 * atomically populate the entry on a miss (or on a corrupt entry), and
 * return the in-memory library either way. An empty @p cacheRoot
 * builds in memory without touching disk. The returned members are
 * byte-identical whether they came from the cache or were just built.
 */
Result<ProfileLibrary> ensureProfileLibrary(const MachineConfig &config,
                                            const Program &program,
                                            const ProfileParams &params,
                                            const std::string &cacheRoot,
                                            std::uint64_t configHash);

/**
 * Sampled run served entirely from library members: every usable
 * selected region is restored into a fresh hierarchy + image, a
 * detailed core is warm-started at the member's cursor and clock, and
 * one window of params.detailInsts runs. The whole-program IPC
 * estimate is the weight-blended CPI of the windows
 * (sum w_i / sum w_i * cpi_i). params.maxSamples > 0 caps the run to
 * the highest-weight members. windowWeight carries the per-window
 * weights for the CI helper.
 */
SampledResult runSampledFromLibrary(const MachineConfig &config,
                                    const Program &program,
                                    const ProfileLibrary &library,
                                    const SampleParams &params = {});

/**
 * Warm-start a freshly built (never ticked) Machine from the library
 * member nearest below @p targetInsts (the earliest member when none
 * is below): the member's hierarchy, image and stats replace the
 * machine's cold state and the core warm-starts at the member's cursor
 * and clock, so a following Machine::run() continues from the region
 * boundary instead of cycle 0. @p startInsts (when non-null) receives
 * the member's instruction offset — a golden cross-check must compare
 * retired instructions against (golden total - startInsts).
 */
Result<void> warmStartMachine(Machine &machine,
                              const ProfileLibrary &library,
                              std::uint64_t targetInsts,
                              std::uint64_t *startInsts = nullptr);

} // namespace sst

#endif // SSTSIM_SIM_PROFILE_HH
