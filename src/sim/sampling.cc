#include "sim/sampling.hh"

#include <cmath>

#include "common/logging.hh"

namespace sst
{

double
SampledResult::ipcStddev() const
{
    if (windowIpc.size() < 2)
        return 0.0;
    double mean = 0;
    for (double v : windowIpc)
        mean += v;
    mean /= static_cast<double>(windowIpc.size());
    double acc = 0;
    for (double v : windowIpc)
        acc += (v - mean) * (v - mean);
    return std::sqrt(acc / static_cast<double>(windowIpc.size() - 1));
}

double
SampledResult::ipcCi95() const
{
    std::size_t n = windowIpc.size();
    if (n < 2)
        return 0.0;
    bool weighted = windowWeight.size() == n;
    double wsum = 0, wsq = 0, mean = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double w = weighted ? windowWeight[i] : 1.0;
        wsum += w;
        wsq += w * w;
        mean += w * windowIpc[i];
    }
    if (wsum <= 0)
        return 0.0;
    mean /= wsum;
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        double w = weighted ? windowWeight[i] : 1.0;
        acc += w * (windowIpc[i] - mean) * (windowIpc[i] - mean);
    }
    // Bessel-corrected weighted variance and Kish effective sample
    // size; reduces to 1.96 * s / sqrt(n) for equal weights.
    double var = acc / wsum * static_cast<double>(n)
                 / static_cast<double>(n - 1);
    double neff = wsum * wsum / wsq;
    return 1.96 * std::sqrt(var / neff);
}

SampledResult
runSampled(const MachineConfig &config, const Program &program,
           const SampleParams &params)
{
    fatal_if(params.detailInsts == 0, "detailInsts must be positive");

    MemorySystem memsys(config.mem);
    CorePort &port = memsys.addCore();
    MemoryImage image;
    image.loadSegments(program);
    Executor exec(program, image);

    ArchState cursor;
    Cycle clock = 0;

    SampledResult result;
    result.preset = config.presetName;
    std::uint64_t total_insts = 0;
    std::uint64_t total_cycles = 0;

    auto fast_forward = [&](std::uint64_t n) {
        std::uint64_t done = 0;
        while (done < n && !cursor.halted) {
            StepInfo info = exec.step(cursor);
            if (info.effAddr != invalidAddr) {
                AccessType type = isStore(info.inst.op)
                                      ? AccessType::Store
                                      : AccessType::Load;
                ++result.warmAccesses;
                auto res = port.access(type, info.effAddr, clock);
                // A rejected access (MSHRs full) is dropped by the
                // port, not queued. Ignoring the rejection meant that
                // once the coarse warm clock filled the MSHR file,
                // every later access in the window bounced and warming
                // silently stopped. Advance the clock to the port's
                // retry cycle — that is when an MSHR frees — and
                // re-issue, bounded so a pathological port cannot wedge
                // the functional cursor.
                for (int tries = 0;
                     res.rejected && res.retryCycle > clock && tries < 4;
                     ++tries) {
                    clock = res.retryCycle;
                    res = port.access(type, info.effAddr, clock);
                }
                if (!res.rejected && res.l1Hit)
                    ++result.warmHits;
            }
            clock += params.warmCpi;
            ++done;
        }
        result.skippedInsts += done;
    };

    while (!cursor.halted) {
        if (params.maxSamples != 0
            && result.windowIpc.size() >= params.maxSamples)
            break;

        // Detailed window.
        auto core = makeCore(config, program, image, port);
        core->warmStart(cursor, clock);
        std::uint64_t budget_cycles = params.detailInsts * 1000;
        while (!core->halted()
               && core->instsRetired() < params.detailInsts
               && core->cycles() - core->startCycle() < budget_cycles)
            core->tick();
        fatal_if(!core->halted()
                     && core->instsRetired() < params.detailInsts,
                 "sampled window made no progress");

        std::uint64_t insts = core->instsRetired();
        Cycle cycles = core->cycles() - core->startCycle();
        result.windowIpc.push_back(core->ipc());
        total_insts += insts;
        total_cycles += cycles;
        result.detailedInsts += insts;
        clock = core->cycles();
        cursor = core->archState();
        if (core->halted()) {
            result.reachedEnd = true;
            break;
        }
        // The detailed core stopped mid-flight (between commits its
        // ArchState is exact because all models keep arch_ committed).
        cursor.halted = false;

        // Fast-forward with warming.
        fast_forward(params.skipInsts);
        if (cursor.halted)
            result.reachedEnd = true;
    }

    result.ipc = total_cycles
                     ? static_cast<double>(total_insts)
                           / static_cast<double>(total_cycles)
                     : 0.0;
    return result;
}

} // namespace sst
