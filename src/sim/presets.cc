#include "sim/presets.hh"

#include <algorithm>

#include "branch/predictor.hh"
#include "branch/valuepred.hh"
#include "common/config.hh"
#include "common/logging.hh"

namespace sst
{

namespace
{

/** The common hierarchy every preset runs against. */
HierarchyParams
baseHierarchy()
{
    HierarchyParams h;
    h.l1i = CacheParams{"l1i", 32 * 1024, 4, 64, 2, ReplPolicy::Lru};
    h.l1d = CacheParams{"l1d", 32 * 1024, 4, 64, 3, ReplPolicy::Lru};
    h.l2 = CacheParams{"l2", 2 * 1024 * 1024, 8, 64, 20, ReplPolicy::Lru};
    h.dram = DramParams{"dram", 16, 4096, 240, 30, 60, 8};
    h.l1MshrEntries = 32;
    h.l2PortCycles = 4;
    h.dataPrefetch = PrefetcherParams{true, 2, 1};
    h.instPrefetch = PrefetcherParams{true, 1, 1};
    return h;
}

CoreParams
baseCore(const std::string &name)
{
    CoreParams c;
    c.name = name;
    c.fetchWidth = 2;
    c.pipelineDepth = 12;
    c.predictor = "gshare";
    c.storeBufferEntries = 8;
    return c;
}

} // namespace

MachineConfig
makePreset(const std::string &name)
{
    MachineConfig cfg;
    cfg.presetName = name;
    cfg.mem = baseHierarchy();
    cfg.core = baseCore(name);

    if (name == "inorder") {
        cfg.model = "inorder";
    } else if (name == "scout") {
        cfg.model = "sst";
        cfg.core.checkpoints = 1;
        cfg.core.discardSpecWork = true;
        cfg.core.ssqEntries = 32;
    } else if (name == "ea") {
        cfg.model = "sst";
        cfg.core.checkpoints = 1;
        cfg.core.dqEntries = 64;
        cfg.core.ssqEntries = 32;
    } else if (name == "sst2" || name == "sst4" || name == "sst8") {
        cfg.model = "sst";
        cfg.core.checkpoints = name == "sst2" ? 2
                               : name == "sst4" ? 4
                                                : 8;
        cfg.core.dqEntries = 64;
        cfg.core.ssqEntries = 32;
    } else if (name == "ooo-small") {
        cfg.model = "ooo";
        cfg.core.robEntries = 32;
        cfg.core.issueQueueEntries = 16;
        cfg.core.lsqEntries = 16;
        cfg.core.issueWidth = 2;
    } else if (name == "ooo-large") {
        cfg.model = "ooo";
        cfg.core.fetchWidth = 4;
        cfg.core.robEntries = 128;
        cfg.core.issueQueueEntries = 48;
        cfg.core.lsqEntries = 48;
        cfg.core.issueWidth = 4;
    } else if (name == "ooo-huge") {
        // Idealised upper bound: a window nobody would build at the
        // paper's technology node, for context in the figures.
        cfg.model = "ooo";
        cfg.core.fetchWidth = 8;
        cfg.core.robEntries = 512;
        cfg.core.issueQueueEntries = 128;
        cfg.core.lsqEntries = 128;
        cfg.core.issueWidth = 8;
    } else if (name == "rock16") {
        // The ROCK chip: 16 SST cores (2 checkpoints apiece) over one
        // coherent shared 2 MiB L2 — true shared memory, no address
        // salting, lock elision available.
        cfg.model = "sst";
        cfg.core.checkpoints = 2;
        cfg.core.dqEntries = 64;
        cfg.core.ssqEntries = 32;
        cfg.core.elideLocks = true;
        cfg.mem.coh.enabled = true;
        cfg.cmpCores = 16;
    } else {
        fatal("unknown machine preset '%s'", name.c_str());
    }
    return cfg;
}

std::vector<std::string>
presetNames()
{
    return {"inorder",   "scout",     "ea",       "sst2",
            "sst4",      "sst8",      "ooo-small", "ooo-large",
            "ooo-huge",  "rock16"};
}

void
applyOverrides(MachineConfig &config, const Config &overrides)
{
    CoreParams &c = config.core;
    c.fetchWidth = static_cast<unsigned>(
        overrides.getUint("core.fetch_width", c.fetchWidth));
    c.pipelineDepth = static_cast<unsigned>(
        overrides.getUint("core.pipeline_depth", c.pipelineDepth));
    c.predictor = overrides.getString("core.predictor", c.predictor);
    {
        const auto &names = predictorNames();
        if (std::find(names.begin(), names.end(), c.predictor)
            == names.end()) {
            std::string hint = closestMatch(c.predictor, names);
            fatal("unknown branch predictor '%s'%s%s",
                  c.predictor.c_str(),
                  hint.empty() ? "" : "; did you mean '",
                  hint.empty() ? "" : (hint + "'?").c_str());
        }
    }
    c.strandHistory =
        overrides.getBool("core.strand_history", c.strandHistory);
    c.valuePred = overrides.getString("core.value_pred", c.valuePred);
    // Validate eagerly so sweep manifests fail at parse time, not
    // mid-run inside a worker.
    (void)valuePredKindFromString(c.valuePred);
    c.storeBufferEntries = static_cast<unsigned>(overrides.getUint(
        "core.store_buffer_entries", c.storeBufferEntries));
    c.robEntries = static_cast<unsigned>(
        overrides.getUint("core.rob_entries", c.robEntries));
    c.issueQueueEntries = static_cast<unsigned>(
        overrides.getUint("core.iq_entries", c.issueQueueEntries));
    c.lsqEntries = static_cast<unsigned>(
        overrides.getUint("core.lsq_entries", c.lsqEntries));
    c.issueWidth = static_cast<unsigned>(
        overrides.getUint("core.issue_width", c.issueWidth));
    c.checkpoints = static_cast<unsigned>(
        overrides.getUint("core.checkpoints", c.checkpoints));
    c.dqEntries = static_cast<unsigned>(
        overrides.getUint("core.dq_entries", c.dqEntries));
    c.ssqEntries = static_cast<unsigned>(
        overrides.getUint("core.ssq_entries", c.ssqEntries));
    c.deferOnL2MissOnly = overrides.getBool("core.defer_on_l2_miss_only",
                                            c.deferOnL2MissOnly);
    c.maxDeferredBranches = static_cast<unsigned>(overrides.getUint(
        "core.max_deferred_branches", c.maxDeferredBranches));
    c.lineGranularConflicts = overrides.getBool(
        "core.line_granular_conflicts", c.lineGranularConflicts);
    c.elideLocks = overrides.getBool("core.elide_locks", c.elideLocks);

    config.cmpCores = static_cast<unsigned>(
        overrides.getUint("cmp.cores", config.cmpCores));
    config.cmpWorkers = static_cast<unsigned>(
        overrides.getUint("cmp.workers", config.cmpWorkers));
    fatal_if(config.cmpWorkers == 0 || config.cmpWorkers > kMaxCmpWorkers,
             "cmp.workers must be between 1 and %u (got %u)",
             kMaxCmpWorkers, config.cmpWorkers);
    config.cmpQuantum = static_cast<unsigned>(
        overrides.getUint("cmp.quantum", config.cmpQuantum));

    HierarchyParams &m = config.mem;
    m.l1d.sizeBytes =
        overrides.getUint("mem.l1d_kb", m.l1d.sizeBytes / 1024) * 1024;
    m.l2.sizeBytes =
        overrides.getUint("mem.l2_kb", m.l2.sizeBytes / 1024) * 1024;
    m.dram.baseLatency = static_cast<unsigned>(overrides.getUint(
        "mem.dram_base_latency", m.dram.baseLatency));
    m.dram.banks = static_cast<unsigned>(
        overrides.getUint("mem.dram_banks", m.dram.banks));
    m.l1MshrEntries = static_cast<unsigned>(
        overrides.getUint("mem.mshrs", m.l1MshrEntries));
    m.dataPrefetch.enabled =
        overrides.getBool("mem.data_prefetch", m.dataPrefetch.enabled);
    std::string pf_mode = overrides.getString(
        "mem.prefetch_mode",
        m.dataPrefetch.mode == PrefetchMode::Stride ? "stride"
                                                    : "nextline");
    if (pf_mode == "stride")
        m.dataPrefetch.mode = PrefetchMode::Stride;
    else if (pf_mode == "nextline")
        m.dataPrefetch.mode = PrefetchMode::NextLine;
    else
        fatal("unknown prefetch mode '%s'", pf_mode.c_str());
    m.dataPrefetch.degree = static_cast<unsigned>(overrides.getUint(
        "mem.prefetch_degree", m.dataPrefetch.degree));
    m.dtlb.entries = static_cast<unsigned>(
        overrides.getUint("mem.dtlb_entries", m.dtlb.entries));
    m.dtlb.walkLatency = static_cast<unsigned>(overrides.getUint(
        "mem.dtlb_walk_latency", m.dtlb.walkLatency));

    CohParams &coh = m.coh;
    coh.enabled = overrides.getBool("coh.enabled", coh.enabled);
    coh.invalidateLatency = static_cast<unsigned>(overrides.getUint(
        "coh.invalidate_latency", coh.invalidateLatency));
    coh.interventionLatency = static_cast<unsigned>(overrides.getUint(
        "coh.intervention_latency", coh.interventionLatency));
    coh.upgradeLatency = static_cast<unsigned>(
        overrides.getUint("coh.upgrade_latency", coh.upgradeLatency));

    FaultParams &f = m.fault;
    f.seed = overrides.getUint("fault.seed", f.seed);
    f.dropFillRate =
        overrides.getDouble("fault.drop_fill_rate", f.dropFillRate);
    f.dropTimeout = static_cast<unsigned>(
        overrides.getUint("fault.drop_timeout", f.dropTimeout));
    f.delayFillRate =
        overrides.getDouble("fault.delay_fill_rate", f.delayFillRate);
    f.delayCycles = static_cast<unsigned>(
        overrides.getUint("fault.delay_cycles", f.delayCycles));
    f.mshrPressureRate = overrides.getDouble("fault.mshr_pressure_rate",
                                             f.mshrPressureRate);
    f.tlbPressureRate = overrides.getDouble("fault.tlb_pressure_rate",
                                            f.tlbPressureRate);
    f.forceAbortRate =
        overrides.getDouble("fault.force_abort_rate", f.forceAbortRate);
    f.dqSqueeze = static_cast<unsigned>(
        overrides.getUint("fault.dq_squeeze", f.dqSqueeze));
    f.ssqSqueeze = static_cast<unsigned>(
        overrides.getUint("fault.ssq_squeeze", f.ssqSqueeze));
    f.chaosExitCycle =
        overrides.getUint("fault.chaos_exit_cycle", f.chaosExitCycle);

    WatchdogParams &w = config.watchdog;
    w.enabled = overrides.getBool("watchdog.enabled", w.enabled);
    w.stallCycles =
        overrides.getUint("watchdog.stall_cycles", w.stallCycles);
    w.maxInterventions = static_cast<unsigned>(overrides.getUint(
        "watchdog.max_interventions", w.maxInterventions));
}

std::vector<std::string>
machineConfigKeys()
{
    return {
        "core.fetch_width",
        "core.pipeline_depth",
        "core.predictor",
        "core.strand_history",
        "core.value_pred",
        "core.store_buffer_entries",
        "core.rob_entries",
        "core.iq_entries",
        "core.lsq_entries",
        "core.issue_width",
        "core.checkpoints",
        "core.dq_entries",
        "core.ssq_entries",
        "core.defer_on_l2_miss_only",
        "core.max_deferred_branches",
        "core.line_granular_conflicts",
        "core.elide_locks",
        "cmp.cores",
        "cmp.workers",
        "cmp.quantum",
        "coh.enabled",
        "coh.invalidate_latency",
        "coh.intervention_latency",
        "coh.upgrade_latency",
        "mem.l1d_kb",
        "mem.l2_kb",
        "mem.dram_base_latency",
        "mem.dram_banks",
        "mem.mshrs",
        "mem.data_prefetch",
        "mem.prefetch_mode",
        "mem.prefetch_degree",
        "mem.dtlb_entries",
        "mem.dtlb_walk_latency",
        "fault.seed",
        "fault.drop_fill_rate",
        "fault.drop_timeout",
        "fault.delay_fill_rate",
        "fault.delay_cycles",
        "fault.mshr_pressure_rate",
        "fault.tlb_pressure_rate",
        "fault.force_abort_rate",
        "fault.dq_squeeze",
        "fault.ssq_squeeze",
        "fault.chaos_exit_cycle",
        "watchdog.enabled",
        "watchdog.stall_cycles",
        "watchdog.max_interventions",
    };
}

} // namespace sst
