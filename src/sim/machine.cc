#include "sim/machine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/fastfwd.hh"

namespace sst
{

std::unique_ptr<Core>
makeCore(const MachineConfig &config, const Program &program,
         MemoryImage &memory, CorePort &port)
{
    if (config.model == "inorder")
        return std::make_unique<InOrderCore>(config.core, program, memory,
                                             port);
    if (config.model == "ooo")
        return std::make_unique<OoOCore>(config.core, program, memory,
                                         port);
    if (config.model == "sst")
        return std::make_unique<SstCore>(config.core, program, memory,
                                         port);
    fatal("unknown core model '%s'", config.model.c_str());
}

const char *
degradeReasonName(DegradeReason reason)
{
    switch (reason) {
      case DegradeReason::None: return "none";
      case DegradeReason::CycleBudget: return "cycle_budget";
      case DegradeReason::Livelock: return "livelock";
    }
    panic("bad DegradeReason %d", static_cast<int>(reason));
}

bool
Watchdog::observe()
{
    if (!params_.enabled || core_.halted())
        return true;
    std::uint64_t insts = core_.instsRetired();
    if (insts != lastInsts_) {
        lastInsts_ = insts;
        windowStart_ = core_.cycles();
        fruitless_ = 0;
        return true;
    }
    if (core_.cycles() - windowStart_ < params_.stallCycles)
        return true;

    // A full window with zero retirement: intervene. Degrading
    // speculation is always correctness-preserving (it rolls back to
    // committed state), so it is safe to try before giving up.
    ++interventions_;
    windowStart_ = core_.cycles();
    if (core_.degradeSpeculation()) {
        ++recoveries_;
        fruitless_ = 0;
        return true;
    }
    if (++fruitless_ >= params_.maxInterventions) {
        gaveUp_ = true;
        return false;
    }
    return true;
}

Cycle
Watchdog::skipBound() const
{
    if (!params_.enabled || core_.halted())
        return invalidCycle;
    Cycle deadline = windowStart_ + params_.stallCycles;
    return deadline == 0 ? 0 : deadline - 1;
}

Machine::Machine(const MachineConfig &config, const Program &program)
    : config_(config), program_(program), memsys_(config.mem)
{
    image_.loadSegments(program);
    CorePort &port = memsys_.addCore();
    core_ = makeCore(config_, program_, image_, port);
}

void
Machine::attachTraceBuffer(trace::TraceBuffer *buf)
{
    core_->attachTraceBuffer(buf);
    core_->port().l1i().setTrace(buf, 1);
    core_->port().l1d().setTrace(buf, 1);
    memsys_.l2().setTrace(buf, 2);
    memsys_.dram().setTrace(buf);
}

RunResult
Machine::run(std::uint64_t max_cycles)
{
    Watchdog watchdog(config_.watchdog, *core_);
    bool livelocked = false;
    const bool fastfwd = fastForwardEnabled();
    while (!core_->halted() && core_->cycles() < max_cycles) {
        std::uint64_t before = core_->instsRetired();
        core_->tick();
        if (!watchdog.observe()) {
            livelocked = true;
            break;
        }
        // Fast-forward: after a tick that retired nothing, ask the core
        // for the earliest cycle it can act again and replay the stalled
        // window in one step. Capped so the cycle budget and the
        // watchdog's intervention deadline are still hit by real ticks.
        if (!fastfwd || core_->halted()
            || core_->instsRetired() != before)
            continue;
        Cycle wake = core_->nextWakeCycle();
        Cycle now = core_->cycles();
        if (wake <= now)
            continue;
        Cycle target = std::min(std::min(wake, max_cycles),
                                watchdog.skipBound());
        if (target > now)
            core_->advanceIdle(target - now);
    }

    core_->finalizeAttribution();

    RunResult res;
    res.preset = config_.presetName;
    res.workload = program_.name();
    res.cycles = core_->cycles();
    res.insts = core_->instsRetired();
    res.ipc = core_->ipc();
    res.finished = core_->halted();
    if (!res.finished)
        res.degrade = livelocked ? DegradeReason::Livelock
                                 : DegradeReason::CycleBudget;
    res.stats = core_->stats().flatten();
    for (const auto &kv : memsys_.faults().stats().flatten())
        res.stats[kv.first] = kv.second;
    res.stats["watchdog.recoveries"] =
        static_cast<double>(watchdog.recoveries());
    res.stats["watchdog.interventions"] =
        static_cast<double>(watchdog.interventions());

    auto stat = [&](const std::string &suffix) {
        for (const auto &kv : res.stats)
            if (kv.first.size() >= suffix.size()
                && kv.first.compare(kv.first.size() - suffix.size(),
                                    suffix.size(), suffix)
                       == 0)
                return kv.second;
        return 0.0;
    };
    res.l1dMissRate = stat("l1d.miss_rate");
    res.meanDemandMlp = stat("l1_mshrs.demand_mlp.mean");
    res.mispredictRate = stat(".mispredict_rate");
    return res;
}

RunResult
runOn(const std::string &preset, const Program &program,
      std::uint64_t max_cycles)
{
    Machine machine(makePreset(preset), program);
    return machine.run(max_cycles);
}

} // namespace sst
