#include "sim/machine.hh"

#include "common/logging.hh"

namespace sst
{

std::unique_ptr<Core>
makeCore(const MachineConfig &config, const Program &program,
         MemoryImage &memory, CorePort &port)
{
    if (config.model == "inorder")
        return std::make_unique<InOrderCore>(config.core, program, memory,
                                             port);
    if (config.model == "ooo")
        return std::make_unique<OoOCore>(config.core, program, memory,
                                         port);
    if (config.model == "sst")
        return std::make_unique<SstCore>(config.core, program, memory,
                                         port);
    fatal("unknown core model '%s'", config.model.c_str());
}

Machine::Machine(const MachineConfig &config, const Program &program)
    : config_(config), program_(program), memsys_(config.mem)
{
    image_.loadSegments(program);
    CorePort &port = memsys_.addCore();
    core_ = makeCore(config_, program_, image_, port);
}

RunResult
Machine::run(std::uint64_t max_cycles)
{
    while (!core_->halted() && core_->cycles() < max_cycles)
        core_->tick();

    RunResult res;
    res.preset = config_.presetName;
    res.workload = program_.name();
    res.cycles = core_->cycles();
    res.insts = core_->instsRetired();
    res.ipc = core_->ipc();
    res.finished = core_->halted();
    res.stats = core_->stats().flatten();

    auto stat = [&](const std::string &suffix) {
        for (const auto &kv : res.stats)
            if (kv.first.size() >= suffix.size()
                && kv.first.compare(kv.first.size() - suffix.size(),
                                    suffix.size(), suffix)
                       == 0)
                return kv.second;
        return 0.0;
    };
    res.l1dMissRate = stat("l1d.miss_rate");
    res.meanDemandMlp = stat("l1_mshrs.demand_mlp.mean");
    res.mispredictRate = stat(".mispredict_rate");
    return res;
}

RunResult
runOn(const std::string &preset, const Program &program,
      std::uint64_t max_cycles)
{
    Machine machine(makePreset(preset), program);
    return machine.run(max_cycles);
}

} // namespace sst
