#include "sim/machine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/chaos.hh"
#include "sim/fastfwd.hh"
#include "snap/snap.hh"
#include "trace/trace.hh"

namespace sst
{

std::unique_ptr<Core>
makeCore(const MachineConfig &config, const Program &program,
         MemoryImage &memory, CorePort &port)
{
    if (config.model == "inorder")
        return std::make_unique<InOrderCore>(config.core, program, memory,
                                             port);
    if (config.model == "ooo")
        return std::make_unique<OoOCore>(config.core, program, memory,
                                         port);
    if (config.model == "sst")
        return std::make_unique<SstCore>(config.core, program, memory,
                                         port);
    fatal("unknown core model '%s'", config.model.c_str());
}

std::uint64_t
programFingerprint(const Program &program)
{
    snap::Hasher h;
    h.mixU64(program.codeBase());
    h.mixU64(program.size());
    for (const Inst &inst : program.insts())
        h.mixU64(inst.encode());
    for (const auto &seg : program.segments()) {
        h.mixU64(seg.base);
        h.mixU64(seg.bytes.size());
        h.mix(seg.bytes.data(), seg.bytes.size());
    }
    return h.value();
}

const char *
degradeReasonName(DegradeReason reason)
{
    switch (reason) {
      case DegradeReason::None: return "none";
      case DegradeReason::CycleBudget: return "cycle_budget";
      case DegradeReason::Livelock: return "livelock";
    }
    panic("bad DegradeReason %d", static_cast<int>(reason));
}

bool
Watchdog::observe()
{
    if (!params_.enabled || core_.halted())
        return true;
    std::uint64_t insts = core_.instsRetired();
    if (insts != lastInsts_) {
        lastInsts_ = insts;
        windowStart_ = core_.cycles();
        fruitless_ = 0;
        return true;
    }
    if (core_.cycles() - windowStart_ < params_.stallCycles)
        return true;

    // A full window with zero retirement: intervene. Degrading
    // speculation is always correctness-preserving (it rolls back to
    // committed state), so it is safe to try before giving up.
    ++interventions_;
    windowStart_ = core_.cycles();
    if (core_.degradeSpeculation()) {
        ++recoveries_;
        fruitless_ = 0;
        return true;
    }
    if (++fruitless_ >= params_.maxInterventions) {
        gaveUp_ = true;
        return false;
    }
    return true;
}

Cycle
Watchdog::skipBound() const
{
    if (!params_.enabled || core_.halted())
        return invalidCycle;
    Cycle deadline = windowStart_ + params_.stallCycles;
    return deadline == 0 ? 0 : deadline - 1;
}

void
Watchdog::save(snap::Writer &w) const
{
    w.tag("watchdog");
    w.u64(lastInsts_);
    w.u64(windowStart_);
    w.u32(fruitless_);
    w.u64(recoveries_);
    w.u64(interventions_);
    w.b(gaveUp_);
}

void
Watchdog::load(snap::Reader &r)
{
    r.tag("watchdog");
    lastInsts_ = r.u64();
    windowStart_ = r.u64();
    fruitless_ = r.u32();
    recoveries_ = r.u64();
    interventions_ = r.u64();
    gaveUp_ = r.b();
}

Machine::Machine(const MachineConfig &config, const Program &program)
    : config_(config), program_(program), memsys_(config.mem)
{
    image_.loadSegments(program);
    CorePort &port = memsys_.addCore();
    core_ = makeCore(config_, program_, image_, port);
    watchdog_ = std::make_unique<Watchdog>(config_.watchdog, *core_);
}

void
Machine::attachTraceBuffer(trace::TraceBuffer *buf)
{
    traceBuf_ = buf;
    core_->attachTraceBuffer(buf);
    core_->port().l1i().setTrace(buf, 1);
    core_->port().l1d().setTrace(buf, 1);
    memsys_.l2().setTrace(buf, 2);
    memsys_.dram().setTrace(buf);
    memsys_.setTraceBuffer(buf);
}

void
Machine::loopTo(Cycle bound, const SnapPolicy *snap)
{
    const bool fastfwd = fastForwardEnabled();
    Cycle nextSnapAt = snap && snap->everyCycles
                           ? core_->cycles() + snap->everyCycles
                           : invalidCycle;
    while (!livelocked_ && !core_->halted() && core_->cycles() < bound) {
        std::uint64_t before = core_->instsRetired();
        core_->tick();
        if (!watchdog_->observe()) {
            livelocked_ = true;
            break;
        }
        // Fast-forward: after a tick that retired nothing, ask the core
        // for the earliest cycle it can act again and replay the stalled
        // window in one step. Capped so the cycle bound and the
        // watchdog's intervention deadline are still hit by real ticks.
        if (fastfwd && !core_->halted()
            && core_->instsRetired() == before) {
            Cycle wake = core_->nextWakeCycle();
            Cycle now = core_->cycles();
            Cycle target = std::min(std::min(wake, bound),
                                    watchdog_->skipBound());
            if (wake > now && target > now)
                core_->advanceIdle(target - now);
        }
        if (core_->cycles() >= nextSnapAt) {
            auto res = snapshotToFile(snap->path);
            if (!res.ok())
                warn("periodic snapshot to '%s' failed: %s",
                     snap->path.c_str(), res.error().message.c_str());
            nextSnapAt = core_->cycles() + snap->everyCycles;
        }
        // After the snapshot write, so a kill scheduled on a snapshot
        // boundary hands the freshest checkpoint to the next worker.
        if (chaos_)
            chaos_->observe(core_->cycles());
    }
}

void
Machine::stepTo(Cycle target)
{
    loopTo(target, nullptr);
}

RunResult
Machine::harvest()
{
    core_->finalizeAttribution();

    RunResult res;
    res.preset = config_.presetName;
    res.workload = program_.name();
    res.cycles = core_->cycles();
    res.insts = core_->instsRetired();
    res.ipc = core_->ipc();
    res.finished = core_->halted();
    if (!res.finished)
        res.degrade = livelocked_ ? DegradeReason::Livelock
                                  : DegradeReason::CycleBudget;
    res.stats = core_->stats().flatten();
    for (const auto &kv : memsys_.faults().stats().flatten())
        res.stats[kv.first] = kv.second;
    res.stats["watchdog.recoveries"] =
        static_cast<double>(watchdog_->recoveries());
    res.stats["watchdog.interventions"] =
        static_cast<double>(watchdog_->interventions());

    auto stat = [&](const std::string &suffix) {
        for (const auto &kv : res.stats)
            if (kv.first.size() >= suffix.size()
                && kv.first.compare(kv.first.size() - suffix.size(),
                                    suffix.size(), suffix)
                       == 0)
                return kv.second;
        return 0.0;
    };
    res.l1dMissRate = stat("l1d.miss_rate");
    res.meanDemandMlp = stat("l1_mshrs.demand_mlp.mean");
    res.mispredictRate = stat(".mispredict_rate");
    return res;
}

RunResult
Machine::run(std::uint64_t max_cycles)
{
    loopTo(max_cycles, nullptr);
    return harvest();
}

RunResult
Machine::run(std::uint64_t max_cycles, const SnapPolicy &snap)
{
    loopTo(max_cycles, snap.everyCycles ? &snap : nullptr);
    return harvest();
}

void
Machine::saveState(snap::Writer &w) const
{
    w.tag("machine-state");
    core_->save(w);
    memsys_.save(w);
    memsys_.stats().save(w);
    image_.save(w);
    watchdog_->save(w);
    w.b(livelocked_);
}

void
Machine::loadState(snap::Reader &r)
{
    r.tag("machine-state");
    core_->load(r);
    memsys_.load(r);
    memsys_.stats().load(r);
    image_.load(r);
    watchdog_->load(r);
    livelocked_ = r.b();
}

std::uint64_t
Machine::stateHash() const
{
    snap::Writer w;
    saveState(w);
    return w.hash();
}

std::vector<std::uint8_t>
Machine::snapshot() const
{
    snap::Writer w;
    w.u64(snap::fileMagic);
    w.u32(snap::formatVersion);
    w.u8(0); // kind: single-core machine
    w.str(config_.presetName);
    w.str(config_.model);
    w.str(program_.name());
    w.u64(programFingerprint(program_));
    w.u64(core_->cycles());
    saveState(w);
    w.tag("trace");
    w.b(traceBuf_ != nullptr);
    if (traceBuf_)
        traceBuf_->save(w);
    return w.data();
}

void
Machine::restore(const std::vector<std::uint8_t> &bytes)
{
    snap::Reader r(bytes);
    fatal_if(r.u64() != snap::fileMagic,
             "snapshot: bad magic (not a snapshot file?)");
    std::uint32_t version = r.u32();
    fatal_if(version != snap::formatVersion,
             "snapshot: format version %u, this build reads %u", version,
             snap::formatVersion);
    fatal_if(r.u8() != 0, "snapshot: not a single-core machine image");
    std::string preset = r.str();
    fatal_if(preset != config_.presetName,
             "snapshot: preset '%s' where '%s' expected", preset.c_str(),
             config_.presetName.c_str());
    std::string model = r.str();
    fatal_if(model != config_.model,
             "snapshot: core model '%s' where '%s' expected",
             model.c_str(), config_.model.c_str());
    std::string workload = r.str();
    fatal_if(workload != program_.name(),
             "snapshot: workload '%s' where '%s' expected",
             workload.c_str(), program_.name().c_str());
    fatal_if(r.u64() != programFingerprint(program_),
             "snapshot: program '%s' differs from the one snapshotted",
             program_.name().c_str());
    r.u64(); // cycle, informational (authoritative copy in core state)
    loadState(r);
    r.tag("trace");
    if (r.b()) {
        fatal_if(!traceBuf_,
                 "snapshot carries a trace buffer but none is attached; "
                 "attach one before restore to keep traces byte-identical");
        traceBuf_->load(r);
    }
    r.done();
}

Result<void>
Machine::snapshotToFile(const std::string &path) const
{
    return snap::writeFile(path, snapshot());
}

Result<void>
Machine::restoreFromFile(const std::string &path)
{
    auto bytes = snap::readFile(path);
    if (!bytes.ok())
        return bytes.error();
    return trapFatal([&] { restore(bytes.value()); });
}

RunResult
runOn(const std::string &preset, const Program &program,
      std::uint64_t max_cycles)
{
    Machine machine(makePreset(preset), program);
    return machine.run(max_cycles);
}

} // namespace sst
