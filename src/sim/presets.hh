/**
 * @file
 * Named machine configurations — the simulated-machines table (T1).
 *
 * All presets share an identical memory hierarchy (32 KB L1s, 2 MB L2,
 * banked DRAM with ~330-cycle loaded latency), so every comparison in
 * the benches isolates the core microarchitecture:
 *
 * | preset    | core                                                   |
 * |-----------|--------------------------------------------------------|
 * | inorder   | 2-wide in-order, stall-on-use scoreboard               |
 * | scout     | inorder + 1 checkpoint, runahead, work discarded       |
 * | ea        | SST machinery, 1 checkpoint (execute-ahead)            |
 * | sst2      | SST, 2 checkpoints (the ROCK configuration)            |
 * | sst4      | SST, 4 checkpoints                                     |
 * | sst8      | SST, 8 checkpoints                                     |
 * | ooo-small | 2-wide OoO, 32-entry ROB, 16-entry IQ                  |
 * | ooo-large | 4-wide OoO, 128-entry ROB, 48-entry IQ ("larger,       |
 * |           | higher-powered" comparator from the abstract)          |
 * | ooo-huge  | 8-wide OoO, 512-entry ROB: idealised upper bound       |
 */

#ifndef SSTSIM_SIM_PRESETS_HH
#define SSTSIM_SIM_PRESETS_HH

#include <string>
#include <vector>

#include "common/config.hh"
#include "core/core.hh"
#include "mem/hierarchy.hh"

namespace sst
{

/** Livelock watchdog driving the Machine/Cmp run loops. */
struct WatchdogParams
{
    bool enabled = true;
    /** Zero-retirement window length that counts as a stall. Must be
     *  shorter than any recoverable event (e.g. a dropped-fill timeout)
     *  or the watchdog can never help. */
    std::uint64_t stallCycles = 25'000;
    /** Consecutive fruitless interventions before declaring livelock
     *  and terminating the run. */
    unsigned maxInterventions = 8;
};

/** Everything needed to instantiate one machine. */
struct MachineConfig
{
    std::string presetName = "inorder";
    /** Core model: "inorder", "ooo", "sst" (scout via discardSpecWork). */
    std::string model = "inorder";
    CoreParams core;
    HierarchyParams mem;
    WatchdogParams watchdog;
    /** Core count for CMP presets (0 = single-core preset; the CMP
     *  harness is driven by the number of programs, this is the
     *  preset's intended chip size for the CLI and benches). */
    unsigned cmpCores = 0;
    /** Worker threads for the CMP tick engine (results are
     *  byte-identical at any value; 1 = run on the calling thread). */
    unsigned cmpWorkers = 1;
    /** Sync quantum in cycles for the parallel CMP engine; 0 picks the
     *  default (the minimum coherence latency when coherent, a long
     *  horizon otherwise). */
    unsigned cmpQuantum = 0;
};

/** Hard cap on cmp.workers: beyond this the request is a config error,
 *  not a thread-spawn storm. */
constexpr unsigned kMaxCmpWorkers = 256;

/** Build a named preset; unknown names are fatal. */
MachineConfig makePreset(const std::string &name);

/** All preset names in canonical bench order. */
std::vector<std::string> presetNames();

/**
 * Apply flat Config overrides (e.g. "mem.dram_base_latency=400",
 * "core.checkpoints=2", "mem.l2_kb=4096") on top of a preset.
 */
void applyOverrides(MachineConfig &config, const Config &overrides);

/** Every config key applyOverrides understands (for CLI suggestions). */
std::vector<std::string> machineConfigKeys();

} // namespace sst

#endif // SSTSIM_SIM_PRESETS_HH
