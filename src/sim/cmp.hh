/**
 * @file
 * Chip-multiprocessor throughput harness: N identical cores, private
 * L1s, shared L2 + DRAM — the CMP context the ROCK paper designs SST
 * for (area-efficient cores ⇒ more cores per die ⇒ more throughput).
 */

#ifndef SSTSIM_SIM_CMP_HH
#define SSTSIM_SIM_CMP_HH

#include <memory>
#include <vector>

#include "core/core.hh"
#include "func/overlay.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"

namespace sst
{

/** Aggregate result of one CMP run. */
struct CmpResult
{
    std::string preset;
    unsigned cores = 0;
    /** The chip clock when the run stopped (== Cmp::cycles()). When all
     *  cores halt this equals the slowest core's halt cycle; under a
     *  cycle budget it equals the budget. Previously this reported the
     *  max per-core cycle counter, which could disagree with the chip
     *  clock mid-run. */
    Cycle cycles = 0;
    std::uint64_t totalInsts = 0;
    double aggregateIpc = 0;
    std::vector<double> perCoreIpc;
    bool finished = false;
    DegradeReason degrade = DegradeReason::None;
    std::uint64_t watchdogRecoveries = 0;
};

/** N cores over one shared MemorySystem. */
class Cmp
{
  public:
    /**
     * Each core runs its own program. With coherence off (the default)
     * the harness salts every core's timing addresses into a disjoint
     * physical range and gives each core a private functional image; a
     * program whose footprint exceeds the per-core salt stride would
     * alias another core's physical range and is rejected with
     * fatal(). With coherence on (config.mem.coh.enabled) all cores
     * share one unsalted physical space and one functional image —
     * true shared memory. @p programs must outlive the Cmp.
     */
    Cmp(const MachineConfig &config,
        const std::vector<const Program *> &programs);

    /** Physical address space each core's accesses are salted into.
     *  Core i owns [i * stride, (i+1) * stride). */
    static constexpr Addr saltStride = Addr{1} << 30;

    /**
     * Tick all cores until all halt or the budget ends. Resumes from
     * the current state after restore().
     *
     * Runs on config.cmpWorkers threads (1 = the calling thread, no
     * threads spawned). Results — stats, traces, snapshots — are
     * byte-identical at every worker count: cores are sharded across
     * workers, every shared-state touch is ordered in (cycle, coreId)
     * sequence by a TickGate, and cross-core effects (coherence
     * invalidations, functional-write visibility) are deferred into
     * per-core queues drained in fixed order at quantum barriers. See
     * docs/INTERNALS.md "Parallel CMP simulation".
     */
    CmpResult run(std::uint64_t max_cycles = 500'000'000);

    /** Worker threads the engine will use for this chip. */
    unsigned workers() const;

    Core &core(unsigned i) { return *cores_[i]; }
    /** Core @p i's functional image (the one shared image when the
     *  memory system is coherent). */
    MemoryImage &image(unsigned i)
    {
        return *images_[memsys_.coherent() ? 0 : i];
    }
    MemorySystem &memsys() { return memsys_; }
    Cycle cycles() const { return cycle_; }
    bool allHalted() const { return allHalted_; }

    /** Complete chip image / inverse, mirroring Machine::snapshot(). */
    std::vector<std::uint8_t> snapshot() const;
    void restore(const std::vector<std::uint8_t> &bytes);
    Result<void> snapshotToFile(const std::string &path) const;
    Result<void> restoreFromFile(const std::string &path);

  private:
    /** The quantum/barrier tick engine behind run(). */
    void runEngine(std::uint64_t max_cycles);
    /** Sync quantum in cycles (config override or mode default). */
    Cycle quantum() const;

    MachineConfig config_;
    const std::vector<const Program *> programs_;
    MemorySystem memsys_;
    std::vector<std::unique_ptr<MemoryImage>> images_;
    /** Coherent mode only: per-core write-buffering views over
     *  images_[0], drained at quantum barriers. Empty when salted. */
    std::vector<std::unique_ptr<OverlayImage>> views_;
    OverlayShared overlayShared_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<Watchdog>> watchdogs_;
    Cycle cycle_ = 0;
    bool allHalted_ = false;
    bool livelocked_ = false;
};

} // namespace sst

#endif // SSTSIM_SIM_CMP_HH
