/**
 * @file
 * Chip-multiprocessor throughput harness: N identical cores, private
 * L1s, shared L2 + DRAM — the CMP context the ROCK paper designs SST
 * for (area-efficient cores ⇒ more cores per die ⇒ more throughput).
 */

#ifndef SSTSIM_SIM_CMP_HH
#define SSTSIM_SIM_CMP_HH

#include <memory>
#include <vector>

#include "core/core.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "sim/machine.hh"
#include "sim/presets.hh"

namespace sst
{

/** Aggregate result of one CMP run. */
struct CmpResult
{
    std::string preset;
    unsigned cores = 0;
    Cycle cycles = 0; ///< cycles until the slowest core finished
    std::uint64_t totalInsts = 0;
    double aggregateIpc = 0;
    std::vector<double> perCoreIpc;
    bool finished = false;
    DegradeReason degrade = DegradeReason::None;
    std::uint64_t watchdogRecoveries = 0;
};

/** N cores over one shared MemorySystem. */
class Cmp
{
  public:
    /**
     * Each core runs its own program (same address layout is fine: the
     * harness salts every core's timing addresses into a disjoint
     * physical range). @p programs must outlive the Cmp.
     */
    Cmp(const MachineConfig &config,
        const std::vector<const Program *> &programs);

    /** Round-robin tick all cores until all halt or the budget ends. */
    CmpResult run(std::uint64_t max_cycles = 500'000'000);

    Core &core(unsigned i) { return *cores_[i]; }
    MemorySystem &memsys() { return memsys_; }

  private:
    MachineConfig config_;
    MemorySystem memsys_;
    std::vector<std::unique_ptr<MemoryImage>> images_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace sst

#endif // SSTSIM_SIM_CMP_HH
