/**
 * @file
 * Global switch for stall-cycle fast-forwarding (the wake-cycle
 * protocol's escape hatch).
 *
 * The run loops in Machine/Cmp skip stalled windows in bulk via
 * Core::nextWakeCycle()/advanceIdle(). The skip is designed to be
 * invisible — stats, traces and results byte-identical to the naive
 * per-cycle loop — and this switch exists to *prove* that claim:
 *
 *  - env var SSTSIM_NO_FASTFWD=1 disables skipping at runtime (any
 *    value other than empty/"0" counts);
 *  - setFastForward() overrides the env var (differential tests flip it
 *    both ways in-process);
 *  - the CMake option SST_FASTFWD=OFF compiles the fast path out
 *    entirely (fastForwardEnabled() becomes constant false).
 */

#ifndef SSTSIM_SIM_FASTFWD_HH
#define SSTSIM_SIM_FASTFWD_HH

namespace sst
{

/** True when the run loops may skip stalled cycles in bulk. */
bool fastForwardEnabled();

/** Force fast-forwarding on/off for this process (overrides the env
 *  var; no-op in SST_FASTFWD=OFF builds). */
void setFastForward(bool on);

/** Drop any setFastForward() override; the env var rules again. */
void clearFastForwardOverride();

} // namespace sst

#endif // SSTSIM_SIM_FASTFWD_HH
