#include "sim/fastfwd.hh"

#include <atomic>
#include <cstdlib>

namespace sst
{

namespace
{

/** -1 = follow the environment, 0 = forced off, 1 = forced on. */
std::atomic<int> gForce{-1};

bool
envDisabled()
{
    // Magic static: the env var is read once, thread-safely, on first
    // use (sweep workers may race to the first run).
    static const bool disabled = [] {
        const char *v = std::getenv("SSTSIM_NO_FASTFWD");
        return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
    }();
    return disabled;
}

} // namespace

bool
fastForwardEnabled()
{
#if SST_DISABLE_FASTFWD
    return false;
#else
    int f = gForce.load(std::memory_order_relaxed);
    if (f >= 0)
        return f != 0;
    return !envDisabled();
#endif
}

void
setFastForward(bool on)
{
    gForce.store(on ? 1 : 0, std::memory_order_relaxed);
}

void
clearFastForwardOverride()
{
    gForce.store(-1, std::memory_order_relaxed);
}

} // namespace sst
