#include "sim/cmp.hh"

#include <algorithm>
#include <atomic>

#include "common/logging.hh"
#include "common/tickgate.hh"
#include "exp/threadpool.hh"
#include "sim/fastfwd.hh"
#include "sim/machine.hh"
#include "snap/snap.hh"

namespace sst
{

namespace
{

/** Highest physical byte a program's timing accesses can touch: the
 *  data image's high-water mark or one past the last instruction's
 *  byte address, whichever is larger. */
Addr
programFootprint(const Program &program, const MemoryImage &image)
{
    return std::max<Addr>(image.highWater(),
                          program.codeBase() + program.size() * 8);
}

} // namespace

Cmp::Cmp(const MachineConfig &config,
         const std::vector<const Program *> &programs)
    : config_(config), programs_(programs), memsys_(config.mem)
{
    fatal_if(programs.empty(), "Cmp needs at least one program");
    const bool shared = memsys_.coherent();
    if (shared) {
        // True shared memory: one physical image for the whole chip.
        // Every program's segments load into it (shared workloads emit
        // identical init data and disjoint per-core result slots), and
        // its write observer feeds the coherence fabric so remote
        // speculative readers of a written line are squashed.
        images_.push_back(std::make_unique<MemoryImage>());
        for (const Program *program : programs)
            images_.back()->loadSegments(*program);
        // The observer is installed exactly once, here, for the
        // lifetime of the Cmp. restore() repopulates this same image
        // object via MemoryImage::load, which fills pages directly
        // (never through write()/writeByte()), so a restore can
        // neither fire spurious squashes nor drop the observer — a
        // remote write after restore squashes exactly as one before a
        // snapshot would.
        images_.back()->setWriteObserver([this](Addr addr, unsigned size) {
            memsys_.onFunctionalWrite(addr, size);
        });
    }
    for (std::size_t i = 0; i < programs.size(); ++i) {
        CorePort &port = memsys_.addCore();
        if (shared)
            views_.push_back(std::make_unique<OverlayImage>(
                *images_[0], static_cast<unsigned>(i), overlayShared_));
        if (!shared) {
            // saltStride bytes of physical window per core keeps
            // line/set alignment while separating the cores'
            // footprints.
            port.setAddressSalt(static_cast<Addr>(i) * saltStride);
            images_.push_back(std::make_unique<MemoryImage>());
            images_.back()->loadSegments(*programs[i]);
            // A footprint past the stride would alias the next core's
            // window and silently corrupt the timing model (shared
            // lines that don't exist architecturally). Refuse up front
            // — aliasing needs a neighbour, so one core is exempt.
            Addr footprint =
                programFootprint(*programs[i], *images_.back());
            fatal_if(programs.size() > 1 && footprint > saltStride,
                     "Cmp: program '%s' footprint 0x%llx exceeds the "
                     "per-core address salt stride 0x%llx; core %zu "
                     "would alias core %zu's physical range",
                     programs[i]->name().c_str(),
                     static_cast<unsigned long long>(footprint),
                     static_cast<unsigned long long>(saltStride), i,
                     i + 1);
        }
        MachineConfig cfg = config_;
        cfg.core.name = "core" + std::to_string(i);
        // Coherent cores execute through their buffered view; with the
        // engine idle (views drained) a view reads as the base image.
        MemoryImage &coreImage = shared ? *views_[i] : *images_.back();
        cores_.push_back(makeCore(cfg, *programs[i], coreImage, port));
        watchdogs_.push_back(
            std::make_unique<Watchdog>(config_.watchdog, *cores_.back()));
    }
}

unsigned
Cmp::workers() const
{
    // More workers than cores would idle at every barrier.
    return std::min<unsigned>(
        std::max(1u, config_.cmpWorkers),
        static_cast<unsigned>(cores_.size()));
}

Cycle
Cmp::quantum() const
{
    if (config_.cmpQuantum)
        return config_.cmpQuantum;
    if (memsys_.coherent()) {
        // Cross-core visibility is deferred to barriers, so the
        // horizon must not exceed the fastest coherence message: the
        // invalidation/intervention/upgrade a tick can trigger lands
        // at the barrier no later than it would reach the victim.
        const CohParams &coh = config_.mem.coh;
        return std::max<Cycle>(1, std::min({coh.invalidateLatency,
                                            coh.interventionLatency,
                                            coh.upgradeLatency}));
    }
    // Salted chips share only L2/DRAM timing, which the TickGate
    // orders exactly; barriers exist just to re-shard idle skips and
    // check stop conditions, so a long horizon amortises them.
    return 1024;
}

/**
 * The quantum/barrier engine. Workers tick disjoint shards of cores
 * cycle-major up to a sync horizon; every shared-state touch inside
 * the window self-orders through the TickGate in (cycle, coreId)
 * sequence; cross-core effects (coherence delivery, functional-write
 * visibility) are queued and drained in that same fixed order by the
 * barrier's serial phase. The schedule depends only on core state and
 * the quantum grid — never on the worker count — so stats, traces and
 * snapshots are byte-identical at any -j.
 */
void
Cmp::runEngine(std::uint64_t max_cycles)
{
    const unsigned n = static_cast<unsigned>(cores_.size());
    const unsigned nWorkers = workers();
    const bool fastfwd = fastForwardEnabled();
    const bool coherent = memsys_.coherent();
    const Cycle maxCycles = max_cycles;
    const Cycle q = quantum();

    TickGate gate(n);
    for (unsigned i = 0; i < n; ++i)
        gate.completeThrough(i, cycle_);
    overlayShared_.gate = &gate;
    // Once fault injection is armed every access may draw from the
    // shared RNG, even an L1 hit — gate everything.
    memsys_.beginEngineRun(&gate, config_.mem.fault.enabled());

    SpinBarrier barrier(nWorkers);

    // Engine-shared state. Plain fields are written only by the serial
    // phase (between barrier arrival and release) or before launch;
    // the barrier's acquire/release edges publish them.
    struct
    {
        Cycle h0 = 0, h1 = 0;
        bool stop = false;
        std::atomic<bool> livelock{false};
    } eng;
    eng.h0 = cycle_;
    eng.h1 = std::min<Cycle>(maxCycles, (cycle_ / q + 1) * q);
    // Per-core engine state (worker-private by shard inside windows,
    // serial at barriers).
    std::vector<Cycle> stallWake(n, 0);
    std::vector<char> parked(n, 0);

    auto park = [&](unsigned i) {
        parked[i] = 1;
        // A halted core issues nothing more; never make others wait.
        gate.completeThrough(i, invalidCycle);
    };

    // Tick every core of shard w through the window [h0, h1).
    auto tickWindow = [&](unsigned w) {
        const unsigned lo = w * n / nWorkers;
        const unsigned hi = (w + 1) * n / nWorkers;
        const Cycle h1 = eng.h1;
        for (Cycle t = eng.h0; t < h1;) {
            Cycle minNext = invalidCycle;
            for (unsigned i = lo; i < hi; ++i) {
                if (parked[i])
                    continue;
                Core &core = *cores_[i];
                if (core.halted()) {
                    park(i);
                    continue;
                }
                Cycle now = core.cycles();
                if (now == t) {
                    if (coherent)
                        views_[i]->beginTick(t);
                    std::uint64_t before = core.instsRetired();
                    core.tick();
                    // One livelocked core sinks the whole chip; the
                    // flag is examined only at barriers so the window
                    // completes identically at every worker count.
                    if (!watchdogs_[i]->observe())
                        eng.livelock.store(true,
                                           std::memory_order_relaxed);
                    gate.completeThrough(i, t + 1);
                    now = t + 1;
                    if (core.halted()) {
                        park(i);
                        continue;
                    }
                    // Per-core fast-forward: a stalled core's ticks
                    // are pure no-ops until its earliest wake (the
                    // same contract Machine::loopTo relies on), so
                    // skip them inside the window. Publishing the
                    // skip first keeps the gate monotone.
                    if (fastfwd && core.instsRetired() == before) {
                        Cycle wake = core.nextWakeCycle();
                        if (wake > now) {
                            Cycle target = std::min(
                                {wake, h1, watchdogs_[i]->skipBound()});
                            if (target > now) {
                                gate.completeThrough(i, target);
                                core.advanceIdle(target - now);
                                now = target;
                            }
                            // Reached the horizon still asleep: a
                            // candidate for a whole-quantum skip.
                            if (wake > h1 && target == h1)
                                stallWake[i] = wake;
                        }
                    }
                }
                minNext = std::min(minNext, now);
            }
            if (minNext == invalidCycle)
                break; // every owned core halted
            t = minNext;
        }
        // Shard done: every live owned core sits exactly at h1.
    };

    // Serial phase: runs on the last barrier arriver with every worker
    // parked at the horizon. Order matters and is fixed — coherence
    // delivery first, then functional visibility — see INTERNALS.md.
    auto serialPhase = [&]() {
        if (coherent) {
            // 1. Deferred invalidations/downgrades, in the (cycle,
            //    coreId) order the gate queued them.
            memsys_.drainDeferredCoh();
            // 2. Buffered functional writes, merged across cores in
            //    (cycle, coreId, program) order, replayed into the
            //    base image where its observer squashes remote
            //    speculative readers.
            struct Entry
            {
                OverlayImage::WriteRec rec;
                unsigned core;
            };
            std::vector<Entry> drain;
            for (unsigned i = 0; i < n; ++i)
                for (const auto &rec : views_[i]->log())
                    drain.push_back({rec, i});
            std::stable_sort(drain.begin(), drain.end(),
                             [](const Entry &a, const Entry &b) {
                                 if (a.rec.cycle != b.rec.cycle)
                                     return a.rec.cycle < b.rec.cycle;
                                 return a.core < b.core;
                             });
            for (const Entry &e : drain) {
                memsys_.setActiveCore(e.core);
                images_[0]->write(e.rec.addr, e.rec.value, e.rec.size);
            }
            // 3. Sink surviving plain stores past the atomic chain.
            //    A plain store is invisible to other cores' atomics
            //    until this barrier, so in the quantum's serialization
            //    it slides after them — unless its own core's later
            //    atomic superseded it. Concretely: for every byte the
            //    journal touched, the program-order-last plain store
            //    (across cores, latest (cycle, coreId) winning) beats
            //    the journal value; with no surviving plain store the
            //    replay above already left the chain tail in place.
            //    Without this, a spinning core's failed swap could
            //    overwrite the holder's buffered release and poison
            //    the lock for everyone.
            if (!overlayShared_.journal.empty()) {
                std::vector<Addr> touched;
                touched.reserve(overlayShared_.journal.size());
                for (const auto &kv : overlayShared_.journal)
                    touched.push_back(kv.first);
                std::sort(touched.begin(), touched.end());
                for (Addr a : touched) {
                    bool have = false;
                    Cycle bestCycle = 0;
                    unsigned bestCore = 0;
                    std::uint8_t bestVal = 0;
                    for (unsigned i = 0; i < n; ++i) {
                        const auto lw = views_[i]->lastWriteTo(a);
                        if (!lw.found || lw.atomic)
                            continue;
                        if (!have || lw.cycle > bestCycle
                            || (lw.cycle == bestCycle && i > bestCore)) {
                            have = true;
                            bestCycle = lw.cycle;
                            bestCore = i;
                            bestVal = lw.byte;
                        }
                    }
                    if (have && images_[0]->readByte(a) != bestVal) {
                        memsys_.setActiveCore(bestCore);
                        images_[0]->writeByte(a, bestVal);
                    }
                }
            }
            for (unsigned i = 0; i < n; ++i)
                views_[i]->clearQuantum();
            overlayShared_.journal.clear();
        }

        cycle_ = eng.h1;
        allHalted_ = true;
        for (auto &core : cores_)
            allHalted_ &= core->halted();
        if (allHalted_) {
            // The chip clock stops with the slowest core, exactly as
            // the sequential loop's final pass would leave it.
            Cycle slowest = 0;
            for (auto &core : cores_)
                slowest = std::max(slowest, core->cycles());
            cycle_ = slowest;
        }
        if (eng.livelock.load(std::memory_order_relaxed))
            livelocked_ = true;
        eng.stop = allHalted_ || livelocked_ || eng.h1 >= maxCycles;
        if (eng.stop)
            return;

        // Next window, on the quantum grid.
        const Cycle begin = eng.h1;
        Cycle end = (begin / q + 1) * q;
        // Whole-quantum skip: when every live core sleeps past the
        // horizon, jump the grid to the earliest wake (clamped by the
        // watchdogs). The skipped windows are provably empty, so
        // skipping them is byte-equivalent to ticking through them.
        bool allStalled = true;
        Cycle minWake = invalidCycle;
        for (unsigned i = 0; i < n; ++i) {
            if (cores_[i]->halted())
                continue;
            if (!stallWake[i]) {
                allStalled = false;
                break;
            }
            minWake = std::min(
                minWake,
                std::min(stallWake[i], watchdogs_[i]->skipBound()));
        }
        if (allStalled && minWake != invalidCycle) {
            Cycle skipTo = minWake / q * q;
            if (skipTo > end)
                end = skipTo;
        }
        std::fill(stallWake.begin(), stallWake.end(), Cycle{0});
        eng.h0 = begin;
        eng.h1 = std::min(end, maxCycles);
    };

    auto workerLoop = [&](unsigned w) {
        while (true) {
            tickWindow(w);
            if (barrier.arrive()) {
                serialPhase();
                barrier.release();
            }
            if (eng.stop)
                break;
        }
    };

    if (nWorkers == 1) {
        workerLoop(0);
    } else {
        exp::ThreadPool pool(nWorkers - 1);
        for (unsigned w = 1; w < nWorkers; ++w)
            pool.submit([&, w] { workerLoop(w); });
        workerLoop(0);
        pool.wait();
    }

    memsys_.endEngineRun();
    overlayShared_.gate = nullptr;
}

CmpResult
Cmp::run(std::uint64_t max_cycles)
{
    if (!allHalted_ && !livelocked_ && cycle_ < max_cycles)
        runEngine(max_cycles);

    for (auto &core : cores_)
        core->finalizeAttribution();

    CmpResult res;
    res.preset = config_.presetName;
    res.cores = static_cast<unsigned>(cores_.size());
    res.finished = allHalted_;
    if (!allHalted_)
        res.degrade = livelocked_ ? DegradeReason::Livelock
                                  : DegradeReason::CycleBudget;
    for (auto &dog : watchdogs_)
        res.watchdogRecoveries += dog->recoveries();
    for (auto &core : cores_) {
        res.totalInsts += core->instsRetired();
        res.perCoreIpc.push_back(core->ipc());
    }
    // The chip clock, not the max per-core counter: the two agree when
    // the run finishes, but only the chip clock is meaningful on a
    // budget/livelock stop and after restore() (the accounting bug
    // this replaces reported per-core cycles that could exceed the
    // clock the snapshot would resume from).
    res.cycles = cycle_;
    res.aggregateIpc = cycle_ ? static_cast<double>(res.totalInsts)
                                    / static_cast<double>(cycle_)
                              : 0.0;
    return res;
}

std::vector<std::uint8_t>
Cmp::snapshot() const
{
    snap::Writer w;
    w.u64(snap::fileMagic);
    w.u32(snap::formatVersion);
    w.u8(1); // kind: chip multiprocessor
    w.str(config_.presetName);
    w.str(config_.model);
    w.u32(static_cast<std::uint32_t>(cores_.size()));
    for (const Program *program : programs_) {
        w.str(program->name());
        w.u64(programFingerprint(*program));
    }
    w.u64(cycle_);
    w.tag("cmp-state");
    w.b(allHalted_);
    w.b(livelocked_);
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->save(w);
        watchdogs_[i]->save(w);
    }
    // One image in coherent mode, one per core otherwise.
    for (const auto &image : images_)
        image->save(w);
    memsys_.save(w);
    memsys_.stats().save(w);
    return w.data();
}

void
Cmp::restore(const std::vector<std::uint8_t> &bytes)
{
    snap::Reader r(bytes);
    fatal_if(r.u64() != snap::fileMagic,
             "snapshot: bad magic (not a snapshot file?)");
    std::uint32_t version = r.u32();
    fatal_if(version != snap::formatVersion,
             "snapshot: format version %u, this build reads %u", version,
             snap::formatVersion);
    fatal_if(r.u8() != 1, "snapshot: not a CMP image");
    std::string preset = r.str();
    fatal_if(preset != config_.presetName,
             "snapshot: preset '%s' where '%s' expected", preset.c_str(),
             config_.presetName.c_str());
    std::string model = r.str();
    fatal_if(model != config_.model,
             "snapshot: core model '%s' where '%s' expected",
             model.c_str(), config_.model.c_str());
    std::uint32_t n = r.u32();
    fatal_if(n != cores_.size(),
             "snapshot: %u cores where %zu expected", n, cores_.size());
    for (const Program *program : programs_) {
        std::string name = r.str();
        fatal_if(name != program->name(),
                 "snapshot: workload '%s' where '%s' expected",
                 name.c_str(), program->name().c_str());
        fatal_if(r.u64() != programFingerprint(*program),
                 "snapshot: program '%s' differs from the one "
                 "snapshotted",
                 program->name().c_str());
    }
    cycle_ = r.u64();
    r.tag("cmp-state");
    allHalted_ = r.b();
    livelocked_ = r.b();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        cores_[i]->load(r);
        watchdogs_[i]->load(r);
    }
    for (const auto &image : images_)
        image->load(r);
    // Views are always drained at snapshot points; discard any buffered
    // bytes so the restored base is the only truth. The base image's
    // write observer survives load() untouched (see the constructor),
    // so post-restore remote writes squash exactly as before.
    for (const auto &view : views_)
        view->clearQuantum();
    overlayShared_.journal.clear();
    memsys_.load(r);
    memsys_.stats().load(r);
    r.done();
}

Result<void>
Cmp::snapshotToFile(const std::string &path) const
{
    return snap::writeFile(path, snapshot());
}

Result<void>
Cmp::restoreFromFile(const std::string &path)
{
    auto bytes = snap::readFile(path);
    if (!bytes.ok())
        return bytes.error();
    return trapFatal([&] { restore(bytes.value()); });
}

} // namespace sst
