#include "sim/cmp.hh"

#include "common/logging.hh"
#include "sim/machine.hh"

namespace sst
{

Cmp::Cmp(const MachineConfig &config,
         const std::vector<const Program *> &programs)
    : config_(config), memsys_(config.mem)
{
    fatal_if(programs.empty(), "Cmp needs at least one program");
    for (std::size_t i = 0; i < programs.size(); ++i) {
        CorePort &port = memsys_.addCore();
        // 1 GiB per-core physical window keeps line/set alignment while
        // separating the cores' footprints.
        port.setAddressSalt(static_cast<Addr>(i) << 30);
        images_.push_back(std::make_unique<MemoryImage>());
        images_.back()->loadSegments(*programs[i]);
        MachineConfig cfg = config_;
        cfg.core.name = "core" + std::to_string(i);
        cores_.push_back(
            makeCore(cfg, *programs[i], *images_.back(), port));
    }
}

CmpResult
Cmp::run(std::uint64_t max_cycles)
{
    bool all_halted = false;
    std::uint64_t cycle = 0;
    while (!all_halted && cycle < max_cycles) {
        all_halted = true;
        for (auto &core : cores_) {
            core->tick();
            all_halted &= core->halted();
        }
        ++cycle;
    }

    CmpResult res;
    res.preset = config_.presetName;
    res.cores = static_cast<unsigned>(cores_.size());
    res.finished = all_halted;
    Cycle slowest = 0;
    for (auto &core : cores_) {
        res.totalInsts += core->instsRetired();
        res.perCoreIpc.push_back(core->ipc());
        slowest = std::max(slowest, core->cycles());
    }
    res.cycles = slowest;
    res.aggregateIpc =
        slowest ? static_cast<double>(res.totalInsts)
                      / static_cast<double>(slowest)
                : 0.0;
    return res;
}

} // namespace sst
