#include "sim/cmp.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/fastfwd.hh"
#include "sim/machine.hh"

namespace sst
{

Cmp::Cmp(const MachineConfig &config,
         const std::vector<const Program *> &programs)
    : config_(config), memsys_(config.mem)
{
    fatal_if(programs.empty(), "Cmp needs at least one program");
    for (std::size_t i = 0; i < programs.size(); ++i) {
        CorePort &port = memsys_.addCore();
        // 1 GiB per-core physical window keeps line/set alignment while
        // separating the cores' footprints.
        port.setAddressSalt(static_cast<Addr>(i) << 30);
        images_.push_back(std::make_unique<MemoryImage>());
        images_.back()->loadSegments(*programs[i]);
        MachineConfig cfg = config_;
        cfg.core.name = "core" + std::to_string(i);
        cores_.push_back(
            makeCore(cfg, *programs[i], *images_.back(), port));
    }
}

CmpResult
Cmp::run(std::uint64_t max_cycles)
{
    std::vector<Watchdog> watchdogs;
    watchdogs.reserve(cores_.size());
    for (auto &core : cores_)
        watchdogs.emplace_back(config_.watchdog, *core);

    bool all_halted = false;
    bool livelocked = false;
    const bool fastfwd = fastForwardEnabled();
    std::uint64_t cycle = 0;
    while (!all_halted && !livelocked && cycle < max_cycles) {
        all_halted = true;
        bool any_retired = false;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            Core &core = *cores_[i];
            // A halted core's tick/observe are no-ops; don't pay for
            // them every remaining cycle of the run.
            if (core.halted())
                continue;
            std::uint64_t before = core.instsRetired();
            core.tick();
            any_retired |= core.instsRetired() != before;
            all_halted &= core.halted();
            // One livelocked core sinks the whole chip: the run result
            // must not be mistaken for a throughput measurement.
            if (!watchdogs[i].observe())
                livelocked = true;
        }
        ++cycle;

        // Lockstep fast-forward: when every live core is stalled past
        // this cycle, nothing (cores or shared hierarchy) can change
        // until the earliest wake. Halted cores stay frozen, matching
        // the naive loop's early-out tick.
        if (!fastfwd || any_retired || all_halted || livelocked)
            continue;
        Cycle wake = invalidCycle;
        for (auto &core : cores_)
            if (!core->halted())
                wake = std::min(wake, core->nextWakeCycle());
        if (wake <= cycle)
            continue;
        Cycle target = std::min<Cycle>(wake, max_cycles);
        for (std::size_t i = 0; i < cores_.size(); ++i)
            if (!cores_[i]->halted())
                target = std::min(target, watchdogs[i].skipBound());
        if (target <= cycle)
            continue;
        for (auto &core : cores_)
            if (!core->halted())
                core->advanceIdle(target - cycle);
        cycle = target;
    }

    for (auto &core : cores_)
        core->finalizeAttribution();

    CmpResult res;
    res.preset = config_.presetName;
    res.cores = static_cast<unsigned>(cores_.size());
    res.finished = all_halted;
    if (!all_halted)
        res.degrade = livelocked ? DegradeReason::Livelock
                                 : DegradeReason::CycleBudget;
    for (auto &dog : watchdogs)
        res.watchdogRecoveries += dog.recoveries();
    Cycle slowest = 0;
    for (auto &core : cores_) {
        res.totalInsts += core->instsRetired();
        res.perCoreIpc.push_back(core->ipc());
        slowest = std::max(slowest, core->cycles());
    }
    res.cycles = slowest;
    res.aggregateIpc =
        slowest ? static_cast<double>(res.totalInsts)
                      / static_cast<double>(slowest)
                : 0.0;
    return res;
}

} // namespace sst
