#include "sim/cmp.hh"

#include "common/logging.hh"
#include "sim/machine.hh"

namespace sst
{

Cmp::Cmp(const MachineConfig &config,
         const std::vector<const Program *> &programs)
    : config_(config), memsys_(config.mem)
{
    fatal_if(programs.empty(), "Cmp needs at least one program");
    for (std::size_t i = 0; i < programs.size(); ++i) {
        CorePort &port = memsys_.addCore();
        // 1 GiB per-core physical window keeps line/set alignment while
        // separating the cores' footprints.
        port.setAddressSalt(static_cast<Addr>(i) << 30);
        images_.push_back(std::make_unique<MemoryImage>());
        images_.back()->loadSegments(*programs[i]);
        MachineConfig cfg = config_;
        cfg.core.name = "core" + std::to_string(i);
        cores_.push_back(
            makeCore(cfg, *programs[i], *images_.back(), port));
    }
}

CmpResult
Cmp::run(std::uint64_t max_cycles)
{
    std::vector<Watchdog> watchdogs;
    watchdogs.reserve(cores_.size());
    for (auto &core : cores_)
        watchdogs.emplace_back(config_.watchdog, *core);

    bool all_halted = false;
    bool livelocked = false;
    std::uint64_t cycle = 0;
    while (!all_halted && !livelocked && cycle < max_cycles) {
        all_halted = true;
        for (std::size_t i = 0; i < cores_.size(); ++i) {
            cores_[i]->tick();
            all_halted &= cores_[i]->halted();
            // One livelocked core sinks the whole chip: the run result
            // must not be mistaken for a throughput measurement.
            if (!watchdogs[i].observe())
                livelocked = true;
        }
        ++cycle;
    }

    for (auto &core : cores_)
        core->finalizeAttribution();

    CmpResult res;
    res.preset = config_.presetName;
    res.cores = static_cast<unsigned>(cores_.size());
    res.finished = all_halted;
    if (!all_halted)
        res.degrade = livelocked ? DegradeReason::Livelock
                                 : DegradeReason::CycleBudget;
    for (auto &dog : watchdogs)
        res.watchdogRecoveries += dog.recoveries();
    Cycle slowest = 0;
    for (auto &core : cores_) {
        res.totalInsts += core->instsRetired();
        res.perCoreIpc.push_back(core->ipc());
        slowest = std::max(slowest, core->cycles());
    }
    res.cycles = slowest;
    res.aggregateIpc =
        slowest ? static_cast<double>(res.totalInsts)
                      / static_cast<double>(slowest)
                : 0.0;
    return res;
}

} // namespace sst
